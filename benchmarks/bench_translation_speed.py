"""Load-time translation throughput (not a paper table, but the paper's
design constraint: 'translation of OmniVM must be fast').  Times the
translator proper — the operation a host performs at module load."""

import pytest

from repro.native.profiles import MOBILE_SFI
from repro.translators import translate
from repro.workloads import suite


@pytest.mark.parametrize("arch", ["mips", "sparc", "ppc", "x86"])
def bench_translation(benchmark, arch):
    program = suite.build("li")
    result = benchmark(lambda: translate(program, arch, MOBILE_SFI))
    assert result.instrs
    benchmark.extra_info["omni_instrs"] = len(program.instrs)
    benchmark.extra_info["native_instrs"] = len(result.instrs)
