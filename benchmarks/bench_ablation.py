"""Ablation benches for the design choices DESIGN.md calls out.

* **read protection** — the paper: "Software fault isolation can also
  support efficient read protection ... Omniware does not yet
  incorporate these capabilities."  We implement it
  (``TranslationOptions(sfi_reads=True)``) and measure what shipping it
  would have cost on top of write/jump protection.
* **global pointer** — the paper attributes SPARC's strong showing to
  its global pointer and predicts MIPS/PPC gains; this ablation toggles
  gp per target.
* **sp-store exemption** — without the dedicated-register optimization
  (sandboxing *every* store including stack traffic), SFI's price
  triples; measured by diffing against a policy-less translation of the
  stack-heavy `li` workload.
"""

from repro.runtime.native_loader import run_on_target
from repro.translators import TranslationOptions
from repro.workloads import suite


def _cycles(workload, arch, options):
    program = suite.build(workload)
    _code, module = run_on_target(program, arch, options)
    assert suite.check_output(workload, module.host.output_values())
    return module.machine.cycles


def bench_read_protection(benchmark, save_result):
    def measure():
        rows = []
        for arch in ("mips", "ppc"):
            write_only = _cycles("compress", arch, TranslationOptions())
            with_reads = _cycles("compress", arch,
                                 TranslationOptions(sfi_reads=True))
            rows.append((arch, write_only, with_reads,
                         with_reads / write_only))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Ablation: read protection (loads sandboxed too), compress", ""]
    lines.append(f"{'target':>8} {'write-only':>12} {'+reads':>12} {'ratio':>8}")
    for arch, write_only, with_reads, ratio in rows:
        lines.append(f"{arch:>8} {write_only:>12} {with_reads:>12} "
                     f"{ratio:>8.3f}")
    save_result("ablation_read_protection", "\n".join(lines))
    for _arch, write_only, with_reads, ratio in rows:
        assert 1.0 <= ratio < 1.6


def bench_global_pointer(benchmark, save_result):
    def measure():
        rows = []
        for arch in ("mips", "sparc", "ppc"):
            without = _cycles("compress", arch,
                              TranslationOptions(global_pointer=False))
            with_gp = _cycles("compress", arch,
                              TranslationOptions(global_pointer=True))
            rows.append((arch, without, with_gp, with_gp / without))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Ablation: global pointer for data addressing, compress", ""]
    lines.append(f"{'target':>8} {'no gp':>12} {'gp':>12} {'ratio':>8}")
    for arch, without, with_gp, ratio in rows:
        lines.append(f"{arch:>8} {without:>12} {with_gp:>12} {ratio:>8.3f}")
    save_result("ablation_global_pointer", "\n".join(lines))
    # gp never hurts, and helps on at least one target (the paper's
    # prediction for MIPS/PPC).
    assert all(ratio <= 1.001 for _a, _w, _g, ratio in rows)
    assert any(ratio < 0.995 for _a, _w, _g, ratio in rows)
