"""Table 5: translation with the translator optimizations (local
scheduling, delay-slot filling, peepholes) disabled, vs native cc.
Shows the cheap load-time optimizations recover real performance and
hide part of the SFI cost in pipeline interlock slots."""

from repro.evalharness import tables


def bench_table5(benchmark, runner, save_result):
    sfi, nosfi = benchmark.pedantic(lambda: tables.table5(runner),
                                    rounds=1, iterations=1)
    optimized = tables.table1(runner)
    save_result("table5", sfi.render() + "\n\n" + nosfi.render())
    for arch in sfi.columns:
        assert sfi.ratios["average"][arch] >= \
            optimized.ratios["average"][arch]
