"""Raw simulated-execution benchmarks: one workload per configuration
class, so `pytest benchmarks/ --benchmark-only` reports how costly each
engine is to simulate (useful when extending the harness)."""

import pytest

from repro.native.profiles import MOBILE_SFI
from repro.runtime.loader import run_module
from repro.runtime.native_loader import run_on_target
from repro.workloads import suite


def bench_interpreter_eqntott(benchmark):
    program = suite.build("eqntott")
    code, host = benchmark.pedantic(
        lambda: run_module(program), rounds=1, iterations=1
    )
    assert suite.check_output("eqntott", host.output_values())


@pytest.mark.parametrize("arch", ["mips", "x86"])
def bench_translated_eqntott(benchmark, arch):
    program = suite.build("eqntott")
    _code, module = benchmark.pedantic(
        lambda: run_on_target(program, arch, MOBILE_SFI),
        rounds=1, iterations=1,
    )
    assert suite.check_output("eqntott", module.host.output_values())
