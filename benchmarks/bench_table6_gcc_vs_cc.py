"""Table 6: native gcc vs native cc — the machine-dependent-optimization
gap between the two compiler profiles (largest on the PPC, negligible on
SPARC), which bounds how much of the mobile-vs-cc gap is translation's
fault at all."""

from repro.evalharness import tables


def bench_table6(benchmark, runner, save_result):
    table = benchmark.pedantic(lambda: tables.table6(runner),
                               rounds=1, iterations=1)
    save_result("table6", table.render())
    averages = table.ratios["average"]
    assert averages["ppc"] >= averages["sparc"]
