"""Figure 1: dynamic instruction expansion introduced by translation on
MIPS and PowerPC, by category (addr / cmp / ldi / bnop / sfi)."""

from repro.evalharness.figures import figure1
from repro.workloads.suite import WORKLOAD_NAMES


def bench_figure1(benchmark, runner, save_result):
    fig = benchmark.pedantic(lambda: figure1(runner), rounds=1, iterations=1)
    save_result("figure1", fig.render())
    ppc_cmp = sum(fig.expansion["ppc"][w]["cmp"] for w in WORKLOAD_NAMES)
    mips_cmp = sum(fig.expansion["mips"][w]["cmp"] for w in WORKLOAD_NAMES)
    assert ppc_cmp > mips_cmp  # the paper's headline Figure-1 contrast
