"""Table 1: execution time of translated code with SFI, relative to the
native code produced by the vendor cc compiler (the paper's headline
result: mobile code within ~21% of unsafe optimized native code)."""

from repro.evalharness import tables


def bench_table1(benchmark, runner, save_result):
    def regenerate():
        return tables.table1(runner)

    table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_result("table1", table.render())
    # Sanity: the headline claim's shape (generous simulator band).
    for arch in table.columns:
        assert 0.9 <= table.ratios["average"][arch] <= 1.4
