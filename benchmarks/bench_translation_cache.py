"""Translation-cache micro-benchmark: cold vs. warm module loads.

The paper's design constraint is that load-time translation is cheap;
the :class:`repro.cache.TranslationCache` makes the *second* load of the
same module nearly free.  This benchmark measures both paths through
``load_for_target`` — cold (verify + translate + SFI-verify, then cache
store) and warm (content-addressed cache hit, no verification or
translation at all) — on every target, and emits the
``BENCH_translation_cache.json`` artifact at the repository root.

The artifact schema is guarded by :func:`validate_artifact`, which the
tier-1 suite invokes (``tests/test_translation_cache.py``) so the JSON
contract cannot silently rot.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

from repro.cache import TranslationCache
from repro.native.profiles import MOBILE_SFI
from repro.omnivm.linker import LinkedProgram
from repro.runtime.native_loader import load_for_target
from repro.translators import ARCHITECTURES
from repro.workloads import suite

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / (
    "BENCH_translation_cache.json"
)

SCHEMA_VERSION = 1

#: keys every per-arch entry must carry (the artifact contract)
RESULT_KEYS = frozenset(
    ("arch", "cold_seconds", "warm_seconds", "speedup", "cache")
)


def collect_benchmark(
    program: LinkedProgram | None = None,
    archs: tuple[str, ...] = ARCHITECTURES,
    repeats: int = 3,
    options=MOBILE_SFI,
) -> dict:
    """Measure cold vs. warm ``load_for_target`` for each arch.

    Returns the artifact payload (does not write it).  ``cold`` clears
    the cache before each load; ``warm`` repeats the load against the
    populated cache and asserts every repetition was served as a hit —
    i.e. verify+translate were skipped.
    """
    if program is None:
        program = suite.build("li")
    results = []
    for arch in archs:
        cache = TranslationCache()
        cold_times = []
        for _ in range(repeats):
            cache.clear()
            gc.collect()  # keep collector pauses out of the timed region
            start = time.perf_counter()
            load_for_target(program, arch, options, cache=cache)
            cold_times.append(time.perf_counter() - start)
        hits_before = cache.stats().hits
        warm_times = []
        for _ in range(repeats):
            gc.collect()
            start = time.perf_counter()
            load_for_target(program, arch, options, cache=cache)
            warm_times.append(time.perf_counter() - start)
        hits = cache.stats().hits - hits_before
        if hits != repeats:
            raise AssertionError(
                f"{arch}: expected {repeats} warm cache hits, saw {hits}"
            )
        cold = min(cold_times)
        warm = min(warm_times)
        results.append({
            "arch": arch,
            "cold_seconds": cold,
            "warm_seconds": warm,
            "speedup": (cold / warm) if warm > 0 else float("inf"),
            "cache": cache.stats().to_dict(),
        })
    return {
        "benchmark": "translation_cache",
        "schema_version": SCHEMA_VERSION,
        "program_instrs": len(program.instrs),
        "repeats": repeats,
        "results": results,
    }


def validate_artifact(payload: dict) -> None:
    """Raise AssertionError unless *payload* matches the artifact
    contract consumed by the benchmark trajectory."""
    assert payload.get("benchmark") == "translation_cache", "bad benchmark id"
    assert payload.get("schema_version") == SCHEMA_VERSION, "schema drift"
    assert isinstance(payload.get("program_instrs"), int)
    assert isinstance(payload.get("repeats"), int)
    results = payload.get("results")
    assert isinstance(results, list) and results, "no per-arch results"
    for entry in results:
        missing = RESULT_KEYS - entry.keys()
        assert not missing, f"result entry missing keys: {sorted(missing)}"
        assert entry["arch"] in ARCHITECTURES
        assert entry["cold_seconds"] > 0
        assert entry["warm_seconds"] > 0
        cache = entry["cache"]
        assert cache["hits"] >= 1 and cache["misses"] >= 1


def write_artifact(payload: dict, path: Path = ARTIFACT_PATH) -> Path:
    validate_artifact(payload)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def bench_translation_cache(save_result):
    """Full-size run (the ``li`` workload) emitting the JSON artifact."""
    payload = collect_benchmark()
    path = write_artifact(payload)
    lines = [f"translation cache: cold vs warm load "
             f"({payload['program_instrs']} OmniVM instructions)"]
    for entry in payload["results"]:
        lines.append(
            f"  {entry['arch']:<6} cold {entry['cold_seconds'] * 1e3:9.2f} ms"
            f"   warm {entry['warm_seconds'] * 1e3:8.3f} ms"
            f"   speedup {entry['speedup']:8.1f}x"
        )
        # The acceptance bar: warm skips verify+translate and is
        # measurably faster.
        assert entry["warm_seconds"] < entry["cold_seconds"], (
            f"{entry['arch']}: warm load not faster than cold"
        )
    save_result("translation_cache", "\n".join(lines))
    print(f"\nartifact: {path}")
