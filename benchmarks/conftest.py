"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure from the paper.
All experiment execution goes through the cached
:class:`repro.evalharness.runner.Runner`, so the full harness costs one
simulation sweep; the rendered artifacts land in ``results/``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.evalharness.runner import global_runner

RESULTS_DIR = Path(__file__).resolve().parents[1] / "results"


@pytest.fixture(scope="session")
def runner():
    return global_runner()


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}", file=sys.stderr)

    return save
