"""Figure 2: the universal mobile-code substrate — modules from multiple
source languages linked into one OmniVM program running identically on
the reference VM and all four translated targets."""

from repro.evalharness.figures import figure2_demo


def bench_figure2(benchmark, save_result):
    outputs = benchmark.pedantic(figure2_demo, rounds=1, iterations=1)
    lines = ["Figure 2: one mobile program, five execution engines", ""]
    for engine, values in outputs.items():
        lines.append(f"  {engine:>7}: {values}")
    save_result("figure2", "\n".join(lines))
    values = list(outputs.values())
    assert all(v == values[0] for v in values)
