"""Table 2: average overhead vs native SPARC cc as the OmniVM register
file size shrinks from 16 to 8 registers (the compiler's linear-scan
allocator is restricted; spills do the damage)."""

from repro.evalharness import tables


def bench_table2(benchmark, runner, save_result):
    table = benchmark.pedantic(lambda: tables.table2(runner),
                               rounds=1, iterations=1)
    save_result("table2", table.render())
    averages = [table.ratios["average"][str(s)] for s in (8, 10, 12, 14, 16)]
    assert averages[0] >= averages[-1]
