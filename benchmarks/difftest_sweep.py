"""Long-running differential-execution sweep with JSON output.

Runs the difftest corpus at a much larger scale than the tier-1 smoke
test, over several seeds, and writes a machine-readable report.  Use it
to soak the translators after a change:

.. code-block:: none

    PYTHONPATH=src python benchmarks/difftest_sweep.py \
        --programs 2000 --seeds soak-a soak-b -o sweep.json

Exit status is 0 only if every seed's corpus is clean.  Divergence
reports (with minimized repros) are embedded in the JSON; any repro
worth keeping belongs in ``tests/test_difftest_regressions.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.difftest import run_difftest
from repro.engine import ARCHITECTURES, Engine


def sweep(programs: int, seeds: list[str],
          targets: tuple[str, ...] | None, minimize: bool) -> dict:
    engine = Engine(cache=False)
    runs = []
    for seed in seeds:
        started = time.time()
        summary = run_difftest(count=programs, seed=seed, engine=engine,
                               targets=targets, minimize=minimize)
        payload = summary.to_dict()
        payload["elapsed_seconds"] = round(time.time() - started, 3)
        runs.append(payload)
        print(f"{summary.render()}  [{payload['elapsed_seconds']}s]",
              file=sys.stderr)
    counters = engine.metrics.counters if engine.metrics else {}
    return {
        "programs_per_seed": programs,
        "targets": list(targets or ARCHITECTURES),
        "runs": runs,
        "totals": {
            "programs": counters.get("difftest.programs", 0),
            "divergences": counters.get("difftest.divergences", 0),
            "shrink_steps": counters.get("difftest.shrink_steps", 0),
        },
        "clean": all(not run["divergence_count"] for run in runs),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--programs", type=int, default=2000,
                        help="programs per seed (default 2000)")
    parser.add_argument("--seeds", nargs="+",
                        default=["sweep-0", "sweep-1", "sweep-2"],
                        help="corpus seeds (default: three fixed seeds)")
    parser.add_argument("--targets",
                        help="comma-separated target subset "
                             "(default: all four)")
    parser.add_argument("--no-minimize", action="store_true",
                        help="report divergences without shrinking them")
    parser.add_argument("-o", "--output",
                        help="write the JSON report here (default stdout)")
    args = parser.parse_args(argv)

    targets = tuple(args.targets.split(",")) if args.targets else None
    report = sweep(args.programs, args.seeds, targets,
                   minimize=not args.no_minimize)
    text = json.dumps(report, indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0 if report["clean"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
