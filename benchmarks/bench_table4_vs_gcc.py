"""Table 4: mobile code vs native gcc.  Because the mobile code was
compiled by the same front end, the no-SFI ratio is ~1.0 everywhere —
the paper's "virtually indistinguishable from gcc" observation."""

from repro.evalharness import tables


def bench_table4(benchmark, runner, save_result):
    sfi, nosfi = benchmark.pedantic(lambda: tables.table4(runner),
                                    rounds=1, iterations=1)
    save_result("table4", sfi.render() + "\n\n" + nosfi.render())
    for arch in nosfi.columns:
        assert abs(nosfi.ratios["average"][arch] - 1.0) < 0.02
