"""Table 3: mobile code vs native cc, with and without SFI
(SFI costs roughly 5-10% on top of translation)."""

from repro.evalharness import tables


def bench_table3(benchmark, runner, save_result):
    sfi, nosfi = benchmark.pedantic(lambda: tables.table3(runner),
                                    rounds=1, iterations=1)
    save_result("table3", sfi.render() + "\n\n" + nosfi.render())
    for arch in sfi.columns:
        assert sfi.ratios["average"][arch] >= nosfi.ratios["average"][arch]
