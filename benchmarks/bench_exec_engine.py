"""Execution-engine benchmark: legacy dispatch vs. threaded vs. JIT.

Measures dynamic-instruction throughput of the execution tiers — the
legacy per-instruction dispatcher, the predecoded threaded-code engine
(:mod:`repro.omnivm.threaded` / :mod:`repro.targets.threaded`), and the
trace-based superblock JIT (:mod:`repro.omnivm.jit` on the reference
interpreter, :mod:`repro.targets.jit` on the four target simulators) —
for every executor on the four SPEC-derived workloads, and emits the
``BENCH_exec_engine.json`` artifact at the repository root.

All engines must retire the *same* dynamic instruction count and
produce the same output (asserted per run), so the comparison is pure
dispatch overhead: predecoded closures, superinstruction fusion, and
compiled superblocks versus the big-switch loops.  JIT runs share a
:class:`~repro.cache.TranslationCache` across repeats, so the best-of-N
timing reflects warm superblocks — the steady state of a long-running
module — while the cold compile cost is reported separately as
``jit_compile_ms``.

The artifact schema is guarded by :func:`validate_artifact`, which the
tier-1 suite invokes (``tests/test_threaded_engine.py``) so the JSON
contract cannot silently rot.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

from repro.cache import TranslationCache
from repro.runtime.loader import load_for_interpretation
from repro.runtime.native_loader import load_for_target
from repro.translators import ARCHITECTURES
from repro.workloads import suite

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / (
    "BENCH_exec_engine.json"
)

SCHEMA_VERSION = 3

#: The interpreter plus the four target simulators.
EXECUTORS = ("omnivm",) + ARCHITECTURES

#: keys every per-run entry must carry (the artifact contract)
RESULT_KEYS = frozenset(
    ("workload", "executor", "legacy_seconds", "threaded_seconds",
     "legacy_instret", "threaded_instret", "legacy_ips", "threaded_ips",
     "speedup")
)

#: additional keys every entry carries for the JIT tier (schema v3:
#: the superblock JIT covers the interpreter *and* all four targets)
JIT_RESULT_KEYS = frozenset(
    ("jit_seconds", "jit_instret", "jit_ips", "jit_speedup",
     "jit_superblocks", "jit_deopts", "jit_compile_ms")
)

#: Acceptance bars from the issue: threaded must beat legacy by at
#: least this factor, per executor (geometric mean over workloads).
MIN_SPEEDUP = {"omnivm": 2.0, "mips": 1.5, "ppc": 1.5, "sparc": 1.5,
               "x86": 1.5}

#: The JIT tier must beat the *threaded* engine by this factor
#: (geometric mean over workloads, warm superblock cache).
MIN_JIT_SPEEDUP = {"omnivm": 2.0, "mips": 1.8, "ppc": 1.8, "sparc": 1.8,
                   "x86": 1.8}


def _measure(program, name: str, executor: str, engine: str,
             repeats: int, cache=None) -> tuple[float, int, object]:
    best = None
    instret = None
    module = None
    for _ in range(repeats):
        if executor == "omnivm":
            module = load_for_interpretation(program, engine=engine,
                                             cache=cache)
        else:
            module = load_for_target(program, executor, engine=engine,
                                     cache=cache)
        gc.collect()
        start = time.perf_counter()
        module.run()
        elapsed = time.perf_counter() - start
        if not suite.check_output(name, module.host.output_values()):
            raise AssertionError(
                f"{executor}/{name}/{engine}: wrong workload output")
        retired = (module.vm.state.instret if executor == "omnivm"
                   else module.machine.instret)
        if instret is None:
            instret = retired
        elif instret != retired:
            raise AssertionError(
                f"{executor}/{name}/{engine}: instret varies across runs")
        if best is None or elapsed < best:
            best = elapsed
    return best, instret, module


def collect_benchmark(
    workloads: tuple[str, ...] = suite.WORKLOAD_NAMES,
    executors: tuple[str, ...] = EXECUTORS,
    repeats: int = 1,
) -> dict:
    """Measure legacy vs. threaded (vs. JIT on omnivm) execution for
    every (executor, workload) pair.  Returns the artifact payload
    (does not write it).

    Each run checks the workload's expected output, and the engines
    must agree on retired dynamic instructions — the threaded engine's
    block-level accounting changes *when* fuel is checked, never the
    retired count of a completed run, and the JIT's superblocks commit
    the same counts as the blocks they replace.
    """
    results = []
    for executor in executors:
        for name in workloads:
            program = suite.build(name)
            legacy_s, legacy_i, _ = _measure(
                program, name, executor, "legacy", repeats)
            threaded_s, threaded_i, _ = _measure(
                program, name, executor, "threaded", repeats)
            if legacy_i != threaded_i:
                raise AssertionError(
                    f"{executor}/{name}: instret diverged "
                    f"({legacy_i} legacy vs {threaded_i} threaded)")
            entry = {
                "workload": name,
                "executor": executor,
                "legacy_seconds": legacy_s,
                "threaded_seconds": threaded_s,
                "legacy_instret": legacy_i,
                "threaded_instret": threaded_i,
                "legacy_ips": legacy_i / legacy_s,
                "threaded_ips": threaded_i / threaded_s,
                "speedup": legacy_s / threaded_s,
            }
            # Cold run populates the shared cache and pays the
            # compile cost; the timed repeats then reuse the
            # compiled superblocks, like a long-running module.
            cache = TranslationCache()
            _, _, cold = _measure(
                program, name, executor, "jit", 1, cache=cache)
            jit_s, jit_i, warm = _measure(
                program, name, executor, "jit", repeats, cache=cache)
            if jit_i != threaded_i:
                raise AssertionError(
                    f"{executor}/{name}: instret diverged "
                    f"({threaded_i} threaded vs {jit_i} jit)")
            cold_m = cold.vm if executor == "omnivm" else cold.machine
            warm_m = warm.vm if executor == "omnivm" else warm.machine
            entry.update({
                "jit_seconds": jit_s,
                "jit_instret": jit_i,
                "jit_ips": jit_i / jit_s,
                "jit_speedup": threaded_s / jit_s,
                "jit_superblocks": cold_m._superblocks_compiled,
                "jit_deopts": warm_m._jit_deopts,
                "jit_compile_ms": cold_m._jit_compile_ms,
            })
            results.append(entry)
    summary = {}
    jit_summary = {}
    for executor in executors:
        speedups = [r["speedup"] for r in results
                    if r["executor"] == executor]
        product = 1.0
        for value in speedups:
            product *= value
        summary[executor] = product ** (1.0 / len(speedups))
        jit_speedups = [r["jit_speedup"] for r in results
                        if r["executor"] == executor
                        and "jit_speedup" in r]
        if jit_speedups:
            product = 1.0
            for value in jit_speedups:
                product *= value
            jit_summary[executor] = product ** (1.0 / len(jit_speedups))
    return {
        "benchmark": "exec_engine",
        "schema_version": SCHEMA_VERSION,
        "workloads": list(workloads),
        "repeats": repeats,
        "results": results,
        "geomean_speedup": summary,
        "geomean_jit_over_threaded": jit_summary,
    }


def validate_artifact(payload: dict) -> None:
    """Raise AssertionError unless *payload* matches the artifact
    contract consumed by the benchmark trajectory."""
    assert payload.get("benchmark") == "exec_engine", "bad benchmark id"
    assert payload.get("schema_version") == SCHEMA_VERSION, "schema drift"
    assert isinstance(payload.get("workloads"), list) and payload["workloads"]
    assert isinstance(payload.get("repeats"), int)
    results = payload.get("results")
    assert isinstance(results, list) and results, "no results"
    executors = set()
    for entry in results:
        missing = RESULT_KEYS - entry.keys()
        assert not missing, f"result entry missing keys: {sorted(missing)}"
        assert entry["executor"] in EXECUTORS
        assert entry["workload"] in payload["workloads"]
        assert entry["legacy_seconds"] > 0 and entry["threaded_seconds"] > 0
        assert entry["legacy_instret"] == entry["threaded_instret"], (
            "engines disagree on retired instructions")
        assert entry["legacy_instret"] > 0
        missing = JIT_RESULT_KEYS - entry.keys()
        assert not missing, (
            f"entry missing jit keys: {sorted(missing)}")
        assert entry["jit_seconds"] > 0
        assert entry["jit_instret"] == entry["threaded_instret"], (
            "jit tier disagrees on retired instructions")
        assert entry["jit_superblocks"] > 0, "jit never compiled"
        assert entry["jit_compile_ms"] > 0
        assert entry["jit_deopts"] >= 0
        executors.add(entry["executor"])
    summary = payload.get("geomean_speedup")
    assert isinstance(summary, dict) and set(summary) == executors
    for executor, value in summary.items():
        assert value > 0
    jit_summary = payload.get("geomean_jit_over_threaded")
    assert isinstance(jit_summary, dict)
    assert set(jit_summary) == executors, (
        "schema v3: every executor reports a jit geomean")
    for executor, value in jit_summary.items():
        assert value > 0


def write_artifact(payload: dict, path: Path = ARTIFACT_PATH) -> Path:
    validate_artifact(payload)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def bench_exec_engine(save_result):
    """Full-size run (all executors, all workloads) emitting the JSON
    artifact and enforcing the speedup acceptance bars."""
    payload = collect_benchmark(repeats=3)
    path = write_artifact(payload)
    lines = ["execution engine: legacy vs threaded vs jit "
             "(dynamic instructions / second)"]
    for entry in payload["results"]:
        line = (
            f"  {entry['executor']:<6} {entry['workload']:<9}"
            f" legacy {entry['legacy_ips'] / 1e3:8.1f}k ips"
            f"   threaded {entry['threaded_ips'] / 1e3:8.1f}k ips"
            f"   speedup {entry['speedup']:5.2f}x"
        )
        if "jit_ips" in entry:
            line += (f"   jit {entry['jit_ips'] / 1e3:8.1f}k ips"
                     f" ({entry['jit_speedup']:.2f}x over threaded,"
                     f" {entry['jit_superblocks']} superblocks)")
        lines.append(line)
    for executor, geomean in payload["geomean_speedup"].items():
        bar = MIN_SPEEDUP[executor]
        lines.append(f"  {executor:<6} geomean {geomean:5.2f}x"
                     f"  (bar {bar:.1f}x)")
        assert geomean >= bar, (
            f"{executor}: threaded engine {geomean:.2f}x below the "
            f"{bar:.1f}x acceptance bar")
    for executor, geomean in payload["geomean_jit_over_threaded"].items():
        bar = MIN_JIT_SPEEDUP[executor]
        lines.append(f"  {executor:<6} jit-over-threaded geomean "
                     f"{geomean:5.2f}x  (bar {bar:.1f}x)")
        assert geomean >= bar, (
            f"{executor}: jit tier {geomean:.2f}x over threaded, below "
            f"the {bar:.1f}x acceptance bar")
    save_result("exec_engine", "\n".join(lines))
    print(f"\nartifact: {path}")
