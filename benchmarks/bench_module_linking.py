"""Dynamic-linking benchmark: one shared library, many programs.

The economic case for dynamic linking in a mobile-code host: a library
that N hosted programs share is translated **once** and every
subsequent program links the cached translation chunk, paying only its
own (small) translation plus the splice.  This benchmark measures that
directly and emits ``BENCH_module_linking.json`` at the repository
root:

* **cold load** — the first program's link+translate, which pays the
  full library translation;
* **warm loads** — every other program linking the same library
  (content-addressed chunk hits; the canonical deps-first layout makes
  the library's translation unit byte-identical across images);
* **selective invalidation** — one program is hot-reloaded (new epoch,
  its chunks dropped); relinking re-translates only that program while
  the library stays warm.

The headline metric is ``speedup`` = cold seconds / mean warm seconds;
the artifact contract (guarded by :func:`validate_artifact`, invoked
from ``tests/test_dynamic_linking.py``) requires the library to be
translated exactly once across the whole sweep and the warm links to be
at least 5x faster than the cold one.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.engine import Engine

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / (
    "BENCH_module_linking.json"
)

SCHEMA_VERSION = 1

#: keys every per-program entry must carry (the artifact contract)
RESULT_KEYS = frozenset(
    ("program", "seconds", "chunk_hits", "chunk_misses", "exit_code",
     "output")
)

#: required top-level keys
TOP_KEYS = frozenset(
    ("benchmark", "schema_version", "arch", "lib_instrs", "programs",
     "cold_seconds", "warm_seconds_mean", "speedup", "results",
     "invalidation")
)

#: Minimum cold/warm advantage the artifact must demonstrate.
MIN_SPEEDUP = 5.0


def library_source(functions: int = 100) -> str:
    """A wide shared library: *functions* small exported kernels (about
    20 OmniVM instructions each, so the default is ~2000 instructions —
    big enough that its translation dominates a cold load)."""
    parts = []
    for k in range(functions):
        parts.append(f"""
int lib_f{k}(int x) {{
    int a;
    int b;
    a = x * {k + 3};
    b = a + {k + 1};
    a = b * 3 - x;
    b = a - b + {k};
    if (b > a) {{ a = a + b; }} else {{ a = a - b; }}
    return a + x;
}}""")
    return "\n".join(parts)


def program_source(index: int, functions: int) -> str:
    """Program *index*: imports three library kernels and emits a
    deterministic combination (distinct per program, so each app is its
    own translation unit)."""
    a = index % functions
    b = (index * 7 + 1) % functions
    c = (index * 13 + 2) % functions
    return f"""
extern int lib_f{a}(int x);
extern int lib_f{b}(int x);
extern int lib_f{c}(int x);
int main() {{
    emit_int(lib_f{a}({index + 1}));
    emit_int(lib_f{b}({index + 2}) + lib_f{c}({index + 3}));
    return 0;
}}"""


def collect_benchmark(
    arch: str = "mips",
    programs: int = 12,
    functions: int = 100,
) -> dict:
    """Measure the full sweep; returns the artifact payload (does not
    write it)."""
    engine = Engine(target=arch)
    engine.register_module("libshared", library_source(functions))
    names = []
    for index in range(programs):
        name = f"prog{index}"
        engine.register_module(name, program_source(index, functions))
        names.append(name)

    lib_instrs = len(engine.registry.get("libshared").obj.text)

    def counters() -> tuple[int, int]:
        c = engine.metrics.counters
        return c.get("link.chunk_hit", 0), c.get("link.chunk_miss", 0)

    results = []
    for name in names:
        hits0, misses0 = counters()
        # The measured quantity is the translation pipeline — dynamic
        # link, whole-image verification, per-chunk translate/splice.
        # Address-space construction and execution are identical for
        # cold and warm loads, so they run outside the clock (but still
        # run: every program's output is checked).
        start = time.perf_counter()
        image = engine.link_modules([name])
        engine.translate(image)
        seconds = time.perf_counter() - start
        hits1, misses1 = counters()
        module = engine.load(image)
        code = module.run()
        results.append({
            "program": name,
            "seconds": seconds,
            "chunk_hits": hits1 - hits0,
            "chunk_misses": misses1 - misses0,
            "exit_code": code,
            "output": module.host.output_values(),
        })

    cold_seconds = results[0]["seconds"]
    warm = [entry["seconds"] for entry in results[1:]]
    warm_mean = sum(warm) / len(warm)

    # Selective invalidation: hot-reload one program (new epoch drops
    # its chunks); the library must stay warm on the relink.
    engine.register_module("prog0", program_source(0, functions))
    hits0, misses0 = counters()
    start = time.perf_counter()
    image = engine.link_modules(["prog0"])
    engine.translate(image)
    reload_seconds = time.perf_counter() - start
    hits1, misses1 = counters()
    reload_code = engine.load(image).run()
    invalidation = {
        "reloaded": "prog0",
        "seconds": reload_seconds,
        "chunk_hits": hits1 - hits0,     # the warm library
        "chunk_misses": misses1 - misses0,  # only the reloaded program
        "exit_code": reload_code,
    }

    return {
        "benchmark": "module_linking",
        "schema_version": SCHEMA_VERSION,
        "arch": arch,
        "lib_instrs": lib_instrs,
        "programs": programs,
        "cold_seconds": cold_seconds,
        "warm_seconds_mean": warm_mean,
        "speedup": cold_seconds / warm_mean,
        "results": results,
        "invalidation": invalidation,
        "cache": engine.cache.stats().to_dict(),
    }


def validate_artifact(payload: dict) -> None:
    """Raise AssertionError unless *payload* matches the artifact
    contract consumed by the benchmark trajectory."""
    assert payload.get("benchmark") == "module_linking", "bad benchmark id"
    assert payload.get("schema_version") == SCHEMA_VERSION, "schema drift"
    missing = TOP_KEYS - payload.keys()
    assert not missing, f"payload missing keys: {sorted(missing)}"
    assert payload["programs"] >= 10, "sweep must cover >= 10 programs"
    assert payload["lib_instrs"] >= 1500, "shared library too small"
    results = payload["results"]
    assert isinstance(results, list)
    assert len(results) == payload["programs"]
    for entry in results:
        missing = RESULT_KEYS - entry.keys()
        assert not missing, f"result entry missing keys: {sorted(missing)}"
        assert entry["exit_code"] == 0, f"{entry['program']} failed"
        assert entry["seconds"] > 0
        assert entry["output"], f"{entry['program']} emitted nothing"
    # The shared library translates exactly once: the cold load misses
    # (library + program), every warm load misses only its own program
    # and hits the library chunk.
    assert results[0]["chunk_misses"] == 2, "cold load shape changed"
    for entry in results[1:]:
        assert entry["chunk_hits"] >= 1, (
            f"{entry['program']}: library chunk was not served warm"
        )
        assert entry["chunk_misses"] == 1, (
            f"{entry['program']}: re-translated more than itself"
        )
    assert payload["speedup"] >= MIN_SPEEDUP, (
        f"warm link only {payload['speedup']:.1f}x faster than cold "
        f"translate (need >= {MIN_SPEEDUP}x)"
    )
    invalidation = payload["invalidation"]
    assert invalidation["exit_code"] == 0
    assert invalidation["chunk_hits"] >= 1, (
        "library went cold after an unrelated reload"
    )
    assert invalidation["chunk_misses"] == 1, (
        "reload re-translated more than the reloaded program"
    )


def write_artifact(payload: dict, path: Path = ARTIFACT_PATH) -> Path:
    validate_artifact(payload)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def render(payload: dict) -> str:
    lines = [
        f"module linking: 1 shared library "
        f"({payload['lib_instrs']} OmniVM instructions) x "
        f"{payload['programs']} programs on {payload['arch']}",
        f"  cold load  {payload['cold_seconds'] * 1e3:8.2f} ms "
        f"(library + program translated)",
        f"  warm load  {payload['warm_seconds_mean'] * 1e3:8.2f} ms mean "
        f"(library chunk cached)",
        f"  speedup    {payload['speedup']:8.1f}x",
        f"  reload     {payload['invalidation']['seconds'] * 1e3:8.2f} ms "
        f"(1 program re-translated, library warm)",
    ]
    return "\n".join(lines)


def bench_module_linking(save_result):
    """Full-size run emitting the JSON artifact."""
    payload = collect_benchmark()
    write_artifact(payload)
    text = render(payload)
    save_result("module_linking", text)


if __name__ == "__main__":
    payload = collect_benchmark()
    path = write_artifact(payload)
    print(render(payload))
    print(f"wrote {path}")
