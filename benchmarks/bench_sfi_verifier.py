"""SFI-verifier micro-benchmark: CFG verification cost and kill-rate.

Load-time verification is part of the paper's trust story only if it is
cheap enough to run on every load, and meaningful only if it actually
stops escapes.  This benchmark measures both halves of that claim:

* **cost** — wall time per native instruction for the CFG/worklist
  verifier over every target's SFI translation of a real workload,
  with the recovered graph shape (blocks, edges, joins) alongside;
* **strength** — the sandbox-escape mutation fuzzer's kill-rate on a
  fixed seed (the acceptance bar is 100%: every unsafe mutant killed,
  every behavior-preserving mutant still accepted);
* **template safety** (schema v2) — the exhaustive guard-template
  model check (:mod:`repro.sfi.modelcheck`): state count and wall time
  per target, zero surviving counterexamples required;
* **padding ablation** (schema v2) — the instruction-padding policy
  variant (Emamdoost & McCamant): padded-vs-unpadded cycle and static
  size overhead per target, on the same workload.

Emits the ``BENCH_sfi_verifier.json`` artifact at the repository root.
The schema is guarded by :func:`validate_artifact`, which the tier-1
suite invokes (``tests/test_bench_sfi_verifier.py``) so the JSON
contract cannot silently rot.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

from repro.native.profiles import MOBILE_SFI
from repro.omnivm.linker import LinkedProgram
from repro.difftest.sfi_mutator import run_sfi_mutation_fuzz
from repro.runtime.native_loader import run_on_target
from repro.sfi.modelcheck import check_templates
from repro.sfi.policy import PADDED_POLICY
from repro.sfi.verifier import verify_sfi
from repro.translators import ARCHITECTURES, translate
from repro.workloads import suite

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / (
    "BENCH_sfi_verifier.json"
)

SCHEMA_VERSION = 2

#: keys every per-arch entry must carry (the artifact contract)
RESULT_KEYS = frozenset(
    ("arch", "native_instrs", "verify_seconds", "ns_per_instr",
     "blocks", "edges", "joins", "stores_checked", "ijumps_checked")
)

#: keys the fuzz section must carry
FUZZ_KEYS = frozenset(
    ("seed", "programs", "mutants", "unsafe_total", "unsafe_killed",
     "kill_rate", "safe_total", "safe_accepted")
)

#: keys the template-model-check section must carry (schema v2)
MODELCHECK_KEYS = frozenset(
    ("ok", "states_checked", "seconds", "counterexamples")
)

#: keys every padding-ablation entry must carry (schema v2)
PADDING_KEYS = frozenset(
    ("arch", "cycles", "padded_cycles", "cycle_overhead",
     "native_instrs", "padded_instrs", "pad_instrs")
)


def collect_benchmark(
    program: LinkedProgram | None = None,
    archs: tuple[str, ...] = ARCHITECTURES,
    repeats: int = 3,
    fuzz_programs: int = 8,
    fuzz_seed: str = "bench-sfi-verifier",
) -> dict:
    """Measure verification cost per arch and the fixed-seed kill-rate.

    Returns the artifact payload (does not write it).  Verification is
    timed over *repeats* runs of the already-translated module, taking
    the minimum, so the number excludes translation."""
    if program is None:
        program = suite.build("li")
    results = []
    for arch in archs:
        module = translate(program, arch, MOBILE_SFI)
        times = []
        analysis = None
        for _ in range(repeats):
            gc.collect()  # keep collector pauses out of the timed region
            start = time.perf_counter()
            analysis = verify_sfi(module)
            times.append(time.perf_counter() - start)
        seconds = min(times)
        instrs = len(module.instrs)
        results.append({
            "arch": arch,
            "native_instrs": instrs,
            "verify_seconds": seconds,
            "ns_per_instr": seconds * 1e9 / instrs,
            "blocks": analysis.blocks,
            "edges": analysis.edges,
            "joins": analysis.joins,
            "stores_checked": analysis.stores_checked,
            "ijumps_checked": analysis.ijumps_checked,
        })
    fuzz = run_sfi_mutation_fuzz(count=fuzz_programs, seed=fuzz_seed,
                                 targets=archs)
    # Template model check: exhaustive, so one timed pass is the number.
    start = time.perf_counter()
    report = check_templates(archs)
    modelcheck = {
        "ok": report.ok,
        "states_checked": report.states_checked,
        "seconds": time.perf_counter() - start,
        "counterexamples": [str(cx) for cx in report.counterexamples],
    }
    # Padding ablation: same workload, default vs padded policy.
    padding = []
    for arch in archs:
        code0, plain = run_on_target(program, arch, MOBILE_SFI)
        code1, padded = run_on_target(program, arch, MOBILE_SFI,
                                      policy=PADDED_POLICY)
        assert code0 == code1, (
            f"padded translation diverged on {arch}: {code0} != {code1}"
        )
        cycles = plain.machine.cycles
        padded_cycles = padded.machine.cycles
        pad_instrs = sum(1 for i in padded.translated.instrs
                         if i.category == "pad")
        padding.append({
            "arch": arch,
            "cycles": cycles,
            "padded_cycles": padded_cycles,
            "cycle_overhead": padded_cycles / cycles - 1.0,
            "native_instrs": len(plain.translated.instrs),
            "padded_instrs": len(padded.translated.instrs),
            "pad_instrs": pad_instrs,
        })
    return {
        "benchmark": "sfi_verifier",
        "schema_version": SCHEMA_VERSION,
        "program_instrs": len(program.instrs),
        "repeats": repeats,
        "results": results,
        "fuzz": fuzz.to_dict(),
        "modelcheck": modelcheck,
        "padding": padding,
    }


def validate_artifact(payload: dict) -> None:
    """Raise AssertionError unless *payload* matches the artifact
    contract consumed by the benchmark trajectory."""
    assert payload.get("benchmark") == "sfi_verifier", "bad benchmark id"
    assert payload.get("schema_version") == SCHEMA_VERSION, "schema drift"
    assert isinstance(payload.get("program_instrs"), int)
    assert isinstance(payload.get("repeats"), int)
    results = payload.get("results")
    assert isinstance(results, list) and results, "no per-arch results"
    for entry in results:
        missing = RESULT_KEYS - entry.keys()
        assert not missing, f"result entry missing keys: {sorted(missing)}"
        assert entry["arch"] in ARCHITECTURES
        assert entry["native_instrs"] > 0
        assert entry["verify_seconds"] > 0
        assert entry["blocks"] > 0 and entry["edges"] > 0
        assert entry["stores_checked"] > 0
    fuzz = payload.get("fuzz")
    assert isinstance(fuzz, dict), "no fuzz section"
    missing = FUZZ_KEYS - fuzz.keys()
    assert not missing, f"fuzz section missing keys: {sorted(missing)}"
    assert fuzz["mutants"] > 0 and fuzz["unsafe_total"] > 0
    # The acceptance bar: every unsafe mutant killed, nothing over-tight.
    assert fuzz["kill_rate"] == 1.0, "sandbox-escape mutant survived"
    assert fuzz["safe_accepted"] == fuzz["safe_total"], "over-tight verifier"
    modelcheck = payload.get("modelcheck")
    assert isinstance(modelcheck, dict), "no modelcheck section"
    missing = MODELCHECK_KEYS - modelcheck.keys()
    assert not missing, f"modelcheck section missing keys: {sorted(missing)}"
    # Zero surviving counterexamples is part of the artifact contract.
    assert modelcheck["ok"] is True, "guard template counterexample"
    assert modelcheck["counterexamples"] == []
    assert modelcheck["states_checked"] > 0
    padding = payload.get("padding")
    assert isinstance(padding, list) and padding, "no padding section"
    for entry in padding:
        missing = PADDING_KEYS - entry.keys()
        assert not missing, f"padding entry missing keys: {sorted(missing)}"
        assert entry["arch"] in ARCHITECTURES
        assert entry["padded_instrs"] >= entry["native_instrs"]
        assert entry["pad_instrs"] >= 0
        assert entry["cycle_overhead"] >= 0.0


def write_artifact(payload: dict, path: Path = ARTIFACT_PATH) -> Path:
    validate_artifact(payload)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def bench_sfi_verifier(save_result):
    """Full-size run (the ``li`` workload) emitting the JSON artifact."""
    payload = collect_benchmark()
    path = write_artifact(payload)
    lines = ["sfi verifier: CFG verification cost and mutation kill-rate"]
    for entry in payload["results"]:
        lines.append(
            f"  {entry['arch']:<6} {entry['native_instrs']:6d} instrs"
            f"   verify {entry['verify_seconds'] * 1e3:8.2f} ms"
            f"   ({entry['ns_per_instr']:7.0f} ns/instr,"
            f" {entry['blocks']} blocks, {entry['edges']} edges,"
            f" {entry['joins']} joins)"
        )
    fuzz = payload["fuzz"]
    lines.append(
        f"  mutation fuzz: {fuzz['mutants']} mutants over"
        f" {fuzz['programs']} programs, kill-rate"
        f" {fuzz['kill_rate'] * 100:.1f}%"
        f" ({fuzz['unsafe_killed']}/{fuzz['unsafe_total']} unsafe killed,"
        f" {fuzz['safe_accepted']}/{fuzz['safe_total']} safe accepted)"
    )
    mc = payload["modelcheck"]
    lines.append(
        f"  template model check: {mc['states_checked']} states in"
        f" {mc['seconds'] * 1e3:.0f} ms, counterexamples:"
        f" {len(mc['counterexamples'])}"
    )
    lines.append("  padding ablation (padded vs unpadded SFI):")
    for entry in payload["padding"]:
        lines.append(
            f"    {entry['arch']:<6}"
            f" cycles {entry['cycles']:9d} -> {entry['padded_cycles']:9d}"
            f"  (+{entry['cycle_overhead'] * 100:5.1f}%),"
            f" instrs {entry['native_instrs']:5d} ->"
            f" {entry['padded_instrs']:5d}"
            f" ({entry['pad_instrs']} pad)"
        )
    save_result("sfi_verifier", "\n".join(lines))
    print(f"\nartifact: {path}")
