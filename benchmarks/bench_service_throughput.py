"""Module-hosting service benchmark: throughput, deadlines, degradation.

The paper's host runs many untrusted modules concurrently; this
benchmark drives the :class:`repro.service.ModuleHost` the same way and
emits ``BENCH_service_throughput.json`` at the repository root:

* **throughput vs. worker count** — one batch of identical requests per
  worker count, measured twice: *cold* (fresh engine, first load pays
  verify+translate) and *warm* (same engine again, every load is a
  content-addressed cache hit on the shared thread-safe cache);
* **governance under load** — a mixed batch of at least 8 concurrent
  requests where one deliberately slow module must time out
  (``DeadlineExceeded``) without stalling the rest, and an injected
  translator fault must degrade to the reference interpreter instead of
  failing the request.

The artifact schema is guarded by :func:`validate_artifact`, which the
tier-1 suite invokes (``tests/test_service.py``) so the JSON contract
cannot silently rot.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.compiler import compile_and_link
from repro.engine import Engine
from repro.omnivm.linker import LinkedProgram
from repro.service import FaultInjector, ModuleRequest, RequestQuota

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / (
    "BENCH_service_throughput.json"
)

SCHEMA_VERSION = 1

#: keys every per-worker-count entry must carry (the artifact contract)
RESULT_KEYS = frozenset(
    ("workers", "cold_seconds", "warm_seconds", "cold_rps", "warm_rps",
     "ok", "service", "cache")
)

#: keys the governance scenario must carry
GOVERNANCE_KEYS = frozenset(
    ("concurrent_requests", "workers", "ok", "timeouts", "fallbacks",
     "elapsed_seconds", "deadline_seconds")
)

#: A modest compute kernel: heavy enough that execution dominates the
#: per-request cost, light enough for a dense batch.
WORKLOAD_SRC = """
int main() {
    int i;
    int acc;
    acc = 7;
    for (i = 0; i < 2000; i = i + 1) {
        acc = acc * 5 + i;
    }
    emit_int(acc);
    return 0;
}
"""

#: Runs forever (bounded only by fuel); the deadline must stop it.
SPINNER_SRC = """
int main() {
    int i;
    i = 0;
    while (1) { i = i + 1; }
    return i;
}
"""


def _batch(program: LinkedProgram, count: int, arch: str
           ) -> list[ModuleRequest]:
    return [ModuleRequest(program=program, target=arch,
                          request_id=f"load-{index}")
            for index in range(count)]


def measure_throughput(
    program: LinkedProgram,
    worker_counts: tuple[int, ...],
    requests_per_batch: int,
    arch: str,
) -> list[dict]:
    """Cold and warm batch throughput for each worker count."""
    results = []
    for workers in worker_counts:
        engine = Engine(target=arch)  # fresh engine = cold cache
        with engine.serve(workers=workers,
                          queue_depth=requests_per_batch) as host:
            start = time.perf_counter()
            cold = host.run_batch(_batch(program, requests_per_batch, arch))
            cold_seconds = time.perf_counter() - start
            start = time.perf_counter()
            warm = host.run_batch(_batch(program, requests_per_batch, arch))
            warm_seconds = time.perf_counter() - start
        ok = sum(r.ok for r in cold) + sum(r.ok for r in warm)
        results.append({
            "workers": workers,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "cold_rps": requests_per_batch / cold_seconds,
            "warm_rps": requests_per_batch / warm_seconds,
            "ok": ok,
            "service": host.stats.to_dict(),
            "cache": engine.cache.stats().to_dict(),
        })
    return results


def measure_governance(
    program: LinkedProgram,
    concurrent_requests: int = 10,
    workers: int = 8,
    arch: str = "mips",
    fault_arch: str = "sparc",
    deadline_seconds: float = 0.25,
) -> dict:
    """One mixed batch: normal requests + a runaway module with a
    deadline + a request whose translator always faults.

    The deadline must convert the runaway into ``DeadlineExceeded``
    without stalling the batch, and the faulting target must degrade to
    the interpreter (``fallback``) rather than fail."""
    spinner = compile_and_link([SPINNER_SRC])
    faults = FaultInjector()
    faults.fail_translations(count=-1, arch=fault_arch)
    engine = Engine(target=arch)
    requests = _batch(program, concurrent_requests - 2, arch)
    requests.append(ModuleRequest(
        program=spinner, target=arch, request_id="spinner",
        deadline_seconds=deadline_seconds,
        quota=RequestQuota(fuel=10 ** 9),
    ))
    requests.append(ModuleRequest(
        program=program, target=fault_arch, request_id="faulty",
    ))
    with engine.serve(workers=workers, queue_depth=concurrent_requests,
                      faults=faults) as host:
        start = time.perf_counter()
        responses = host.run_batch(requests)
        elapsed = time.perf_counter() - start
    by_id = {r.request_id: r for r in responses}
    timeouts = sum(r.error == "DeadlineExceeded" for r in responses)
    fallbacks = sum(r.fallback for r in responses)
    assert by_id["spinner"].error == "DeadlineExceeded", (
        "runaway module did not hit its deadline"
    )
    assert by_id["faulty"].ok and by_id["faulty"].fallback, (
        "injected translator fault did not degrade to the interpreter"
    )
    stalled = [r.request_id for r in responses
               if r.request_id.startswith("load-") and not r.ok]
    assert not stalled, f"requests stalled by the runaway: {stalled}"
    return {
        "concurrent_requests": concurrent_requests,
        "workers": workers,
        "ok": sum(r.ok for r in responses),
        "timeouts": timeouts,
        "fallbacks": fallbacks,
        "elapsed_seconds": elapsed,
        "deadline_seconds": deadline_seconds,
        "service": host.stats.to_dict(),
    }


def collect_benchmark(
    program: LinkedProgram | None = None,
    worker_counts: tuple[int, ...] = (1, 2, 4, 8),
    requests_per_batch: int = 16,
    arch: str = "mips",
    governance_requests: int = 10,
) -> dict:
    """Measure the full benchmark; returns the artifact payload
    (does not write it)."""
    if program is None:
        program = compile_and_link([WORKLOAD_SRC])
    results = measure_throughput(
        program, worker_counts, requests_per_batch, arch)
    governance = measure_governance(
        program, concurrent_requests=governance_requests, arch=arch)
    return {
        "benchmark": "service_throughput",
        "schema_version": SCHEMA_VERSION,
        "program_instrs": len(program.instrs),
        "requests_per_batch": requests_per_batch,
        "arch": arch,
        "results": results,
        "governance": governance,
    }


def validate_artifact(payload: dict) -> None:
    """Raise AssertionError unless *payload* matches the artifact
    contract consumed by the benchmark trajectory."""
    assert payload.get("benchmark") == "service_throughput", \
        "bad benchmark id"
    assert payload.get("schema_version") == SCHEMA_VERSION, "schema drift"
    assert isinstance(payload.get("program_instrs"), int)
    assert isinstance(payload.get("requests_per_batch"), int)
    results = payload.get("results")
    assert isinstance(results, list) and results, "no per-worker results"
    for entry in results:
        missing = RESULT_KEYS - entry.keys()
        assert not missing, f"result entry missing keys: {sorted(missing)}"
        assert entry["workers"] >= 1
        assert entry["cold_seconds"] > 0 and entry["warm_seconds"] > 0
        assert entry["ok"] == 2 * payload["requests_per_batch"], (
            f"workers={entry['workers']}: not every request succeeded"
        )
        counters = entry["service"]["counters"]
        assert counters.get("request") == 2 * payload["requests_per_batch"]
        assert counters.get("error", 0) == 0
        # the entire warm batch (at least) must be served from the
        # shared cache — that is what "warm" means
        assert entry["cache"]["hits"] >= payload["requests_per_batch"], (
            f"workers={entry['workers']}: warm batch was not cache-served"
        )
    governance = payload.get("governance")
    assert isinstance(governance, dict), "no governance scenario"
    missing = GOVERNANCE_KEYS - governance.keys()
    assert not missing, f"governance missing keys: {sorted(missing)}"
    assert governance["concurrent_requests"] >= 8, (
        "governance scenario must exercise >= 8 concurrent requests"
    )
    assert governance["timeouts"] >= 1, "no deadline was enforced"
    assert governance["fallbacks"] >= 1, "no fault degraded to fallback"
    assert governance["ok"] == governance["concurrent_requests"] - 1, (
        "only the runaway module may fail"
    )


def write_artifact(payload: dict, path: Path = ARTIFACT_PATH) -> Path:
    validate_artifact(payload)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def bench_service_throughput(save_result):
    """Full-size run emitting the JSON artifact."""
    payload = collect_benchmark()
    path = write_artifact(payload)
    lines = [f"service throughput: {payload['requests_per_batch']} requests "
             f"per batch on {payload['arch']} "
             f"({payload['program_instrs']} OmniVM instructions)"]
    for entry in payload["results"]:
        lines.append(
            f"  workers={entry['workers']:<2} "
            f"cold {entry['cold_rps']:7.1f} req/s"
            f"   warm {entry['warm_rps']:7.1f} req/s"
        )
    governance = payload["governance"]
    lines.append(
        f"  governance: {governance['concurrent_requests']} concurrent, "
        f"{governance['ok']} ok, {governance['timeouts']} deadline-expired, "
        f"{governance['fallbacks']} degraded to interpreter "
        f"in {governance['elapsed_seconds']:.2f}s"
    )
    # The acceptance bar: >= 8 concurrent requests sustained with
    # deadlines enforced and faults degraded to the interpreter (both
    # asserted inside measure_governance / validate_artifact).  Warm vs
    # cold timings are reported, not asserted — wall-clock ratios are
    # too noisy on shared machines; the warm batch's cache hits are
    # verified by counters instead.
    top = payload["results"][-1]
    assert top["workers"] >= 8
    save_result("service_throughput", "\n".join(lines))
    print(f"\nartifact: {path}")
