"""Module-hosting service benchmark: throughput, deadlines, degradation.

The paper's host runs many untrusted modules concurrently; this
benchmark drives the :class:`repro.service.ModuleHost` the same way and
emits ``BENCH_service_throughput.json`` at the repository root:

* **throughput vs. worker count** — one batch of identical requests per
  worker count, measured twice: *cold* (fresh engine, first load pays
  verify+translate) and *warm* (same engine again, every load is a
  content-addressed cache hit on the shared thread-safe cache);
* **governance under load** — a mixed batch of at least 8 concurrent
  requests where one deliberately slow module must time out
  (``DeadlineExceeded``) without stalling the rest, and an injected
  translator fault must degrade to the reference interpreter instead of
  failing the request;
* **process sharding** (schema v2) — the
  :class:`repro.service_router.ShardedModuleHost` scaling measurement:
  a translate-heavy warm mix at 1000+ concurrent requests, 1 vs 4
  worker processes.  The >= 2.5x scaling bar is only meaningful with
  real cores to scale onto, so on machines with fewer than 4 CPUs the
  measurement records a graceful skip (``skipped: true`` + reason) and
  runs a reduced functional mix through the sharded path instead;
* **single-flight stampede** (schema v2) — 100 concurrent requests for
  one uncached module through the sharded host must admit exactly one
  translation (``stores == 1``).

The artifact schema is guarded by :func:`validate_artifact`, which the
tier-1 suite invokes (``tests/test_service.py``) so the JSON contract
cannot silently rot.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.compiler import compile_and_link
from repro.engine import Engine
from repro.omnivm.linker import LinkedProgram
from repro.service import FaultInjector, ModuleRequest, RequestQuota

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / (
    "BENCH_service_throughput.json"
)

#: v2 added the "sharded" scaling section and the "single_flight"
#: stampede section (the process-router tentpole).
SCHEMA_VERSION = 2

#: cores needed before the sharded scaling bar is asserted
SHARDED_MIN_CORES = 4

#: required speedup of the largest process count over one process on
#: the translate-heavy warm mix (only asserted with enough cores)
SHARDED_SCALING_BAR = 2.5

#: keys every per-worker-count entry must carry (the artifact contract)
RESULT_KEYS = frozenset(
    ("workers", "cold_seconds", "warm_seconds", "cold_rps", "warm_rps",
     "ok", "service", "cache")
)

#: keys the governance scenario must carry
GOVERNANCE_KEYS = frozenset(
    ("concurrent_requests", "workers", "ok", "timeouts", "fallbacks",
     "elapsed_seconds", "deadline_seconds")
)

#: keys the sharded scaling section must carry
SHARDED_KEYS = frozenset(
    ("cpu_count", "skipped", "requests", "distinct_modules", "results")
)

#: keys the single-flight stampede section must carry
SINGLE_FLIGHT_KEYS = frozenset(
    ("requests", "processes", "stores", "hits", "ok")
)

#: A modest compute kernel: heavy enough that execution dominates the
#: per-request cost, light enough for a dense batch.
WORKLOAD_SRC = """
int main() {
    int i;
    int acc;
    acc = 7;
    for (i = 0; i < 2000; i = i + 1) {
        acc = acc * 5 + i;
    }
    emit_int(acc);
    return 0;
}
"""

#: Runs forever (bounded only by fuel); the deadline must stop it.
SPINNER_SRC = """
int main() {
    int i;
    i = 0;
    while (1) { i = i + 1; }
    return i;
}
"""


def _batch(program: LinkedProgram, count: int, arch: str
           ) -> list[ModuleRequest]:
    return [ModuleRequest(program=program, target=arch,
                          request_id=f"load-{index}")
            for index in range(count)]


def measure_throughput(
    program: LinkedProgram,
    worker_counts: tuple[int, ...],
    requests_per_batch: int,
    arch: str,
) -> list[dict]:
    """Cold and warm batch throughput for each worker count."""
    results = []
    for workers in worker_counts:
        engine = Engine(target=arch)  # fresh engine = cold cache
        with engine.serve(workers=workers,
                          queue_depth=requests_per_batch) as host:
            start = time.perf_counter()
            cold = host.run_batch(_batch(program, requests_per_batch, arch))
            cold_seconds = time.perf_counter() - start
            start = time.perf_counter()
            warm = host.run_batch(_batch(program, requests_per_batch, arch))
            warm_seconds = time.perf_counter() - start
        ok = sum(r.ok for r in cold) + sum(r.ok for r in warm)
        results.append({
            "workers": workers,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "cold_rps": requests_per_batch / cold_seconds,
            "warm_rps": requests_per_batch / warm_seconds,
            "ok": ok,
            "service": host.stats.to_dict(),
            "cache": engine.cache.stats().to_dict(),
        })
    return results


def measure_governance(
    program: LinkedProgram,
    concurrent_requests: int = 10,
    workers: int = 8,
    arch: str = "mips",
    fault_arch: str = "sparc",
    deadline_seconds: float = 0.25,
) -> dict:
    """One mixed batch: normal requests + a runaway module with a
    deadline + a request whose translator always faults.

    The deadline must convert the runaway into ``DeadlineExceeded``
    without stalling the batch, and the faulting target must degrade to
    the interpreter (``fallback``) rather than fail."""
    spinner = compile_and_link([SPINNER_SRC])
    faults = FaultInjector()
    faults.fail_translations(count=-1, arch=fault_arch)
    engine = Engine(target=arch)
    requests = _batch(program, concurrent_requests - 2, arch)
    requests.append(ModuleRequest(
        program=spinner, target=arch, request_id="spinner",
        deadline_seconds=deadline_seconds,
        quota=RequestQuota(fuel=10 ** 9),
    ))
    requests.append(ModuleRequest(
        program=program, target=fault_arch, request_id="faulty",
    ))
    with engine.serve(workers=workers, queue_depth=concurrent_requests,
                      faults=faults) as host:
        start = time.perf_counter()
        responses = host.run_batch(requests)
        elapsed = time.perf_counter() - start
    by_id = {r.request_id: r for r in responses}
    timeouts = sum(r.error == "DeadlineExceeded" for r in responses)
    fallbacks = sum(r.fallback for r in responses)
    assert by_id["spinner"].error == "DeadlineExceeded", (
        "runaway module did not hit its deadline"
    )
    assert by_id["faulty"].ok and by_id["faulty"].fallback, (
        "injected translator fault did not degrade to the interpreter"
    )
    stalled = [r.request_id for r in responses
               if r.request_id.startswith("load-") and not r.ok]
    assert not stalled, f"requests stalled by the runaway: {stalled}"
    return {
        "concurrent_requests": concurrent_requests,
        "workers": workers,
        "ok": sum(r.ok for r in responses),
        "timeouts": timeouts,
        "fallbacks": fallbacks,
        "elapsed_seconds": elapsed,
        "deadline_seconds": deadline_seconds,
        "service": host.stats.to_dict(),
    }


def _distinct_workloads(count: int) -> list[LinkedProgram]:
    """*count* distinct modules (distinct digests), so a mix over them
    is translate-heavy until every shard's cache warms."""
    sources = [
        WORKLOAD_SRC.replace("acc = 7;", f"acc = {7 + index};")
        for index in range(count)
    ]
    return [compile_and_link([source]) for source in sources]


def _sharded_mix(programs: list[LinkedProgram], count: int, arch: str,
                 tag: str) -> list[ModuleRequest]:
    return [ModuleRequest(program=programs[index % len(programs)],
                          target=arch,
                          request_id=f"{tag}-{index}")
            for index in range(count)]


def measure_sharded(
    process_counts: tuple[int, ...] = (1, 4),
    threads_per_process: int = 2,
    total_requests: int = 1000,
    distinct_modules: int = 16,
    arch: str = "mips",
    min_cores: int = SHARDED_MIN_CORES,
) -> dict:
    """Throughput of the sharded process router, 1 vs N processes, on a
    translate-heavy warm mix of *distinct_modules* programs.

    The measurement is honest about hardware: process sharding buys
    nothing without cores to shard onto, so below *min_cores* CPUs the
    scaling run (and its >= 2.5x bar) is **skipped** — recorded as such
    in the artifact — and a reduced mix still exercises the sharded
    path end to end so the artifact always reflects working code."""
    cpu_count = os.cpu_count() or 1
    section: dict = {
        "cpu_count": cpu_count,
        "skipped": cpu_count < min_cores,
        "requests": total_requests,
        "distinct_modules": distinct_modules,
        "threads_per_process": threads_per_process,
        "results": [],
    }
    if section["skipped"]:
        section["skip_reason"] = (
            f"scaling bar needs >= {min_cores} cores, machine has "
            f"{cpu_count}; ran a reduced functional mix instead"
        )
        total_requests = min(total_requests, 8 * distinct_modules)
        process_counts = tuple(min(count, 2) for count in process_counts)
    programs = _distinct_workloads(distinct_modules)
    for processes in process_counts:
        engine = Engine(target=arch)
        with engine.serve(processes=processes,
                          workers=threads_per_process,
                          queue_depth=max(64, total_requests)) as host:
            # Warm pass: every shard translates its share of the
            # modules once; the measured mix then runs against hot
            # per-shard memory caches (the affinity sharding preserves).
            host.run_batch(_sharded_mix(programs, len(programs), arch,
                                        "warmup"))
            start = time.perf_counter()
            responses = host.run_batch(
                _sharded_mix(programs, total_requests, arch, "mix"))
            seconds = time.perf_counter() - start
        ok = sum(r.ok for r in responses)
        assert ok == total_requests, (
            f"processes={processes}: {total_requests - ok} requests failed"
        )
        section["results"].append({
            "processes": processes,
            "requests": total_requests,
            "seconds": seconds,
            "rps": total_requests / seconds,
            "ok": ok,
            "service": host.stats.to_dict(),
        })
    if not section["skipped"] and len(section["results"]) >= 2:
        base = section["results"][0]["rps"]
        top = section["results"][-1]["rps"]
        section["scaling_x"] = top / base
        assert section["scaling_x"] >= SHARDED_SCALING_BAR, (
            f"sharding scaled only {section['scaling_x']:.2f}x "
            f"(bar {SHARDED_SCALING_BAR}x) with {cpu_count} cores"
        )
    return section


def measure_single_flight(
    requests: int = 100,
    processes: int = 2,
    threads_per_process: int = 4,
    arch: str = "mips",
) -> dict:
    """A *requests*-wide stampede on one uncached module through the
    sharded host: the cache's single-flight protocol must admit exactly
    one translation (consistent hashing concentrates the key on one
    shard; in-process leader election does the rest)."""
    program = compile_and_link([WORKLOAD_SRC])
    engine = Engine(target=arch)
    with engine.serve(processes=processes,
                      workers=threads_per_process,
                      queue_depth=requests) as host:
        pending = [host.submit(ModuleRequest(program=program, target=arch),
                               block=True)
                   for _ in range(requests)]
        responses = [p.result(timeout=300.0) for p in pending]
    cache = host.stats.to_dict()["cache"]
    ok = sum(r.ok for r in responses)
    assert ok == requests, f"{requests - ok} stampede requests failed"
    assert cache["stores"] == 1, (
        f"stampede admitted {cache['stores']} translations, expected 1"
    )
    return {
        "requests": requests,
        "processes": processes,
        "threads_per_process": threads_per_process,
        "stores": cache["stores"],
        "hits": cache["hits"],
        "ok": ok,
    }


def collect_benchmark(
    program: LinkedProgram | None = None,
    worker_counts: tuple[int, ...] = (1, 2, 4, 8),
    requests_per_batch: int = 16,
    arch: str = "mips",
    governance_requests: int = 10,
    sharded_requests: int = 1000,
    sharded_modules: int = 16,
    stampede_requests: int = 100,
) -> dict:
    """Measure the full benchmark; returns the artifact payload
    (does not write it)."""
    if program is None:
        program = compile_and_link([WORKLOAD_SRC])
    results = measure_throughput(
        program, worker_counts, requests_per_batch, arch)
    governance = measure_governance(
        program, concurrent_requests=governance_requests, arch=arch)
    sharded = measure_sharded(
        total_requests=sharded_requests,
        distinct_modules=sharded_modules, arch=arch)
    single_flight = measure_single_flight(
        requests=stampede_requests, arch=arch)
    return {
        "benchmark": "service_throughput",
        "schema_version": SCHEMA_VERSION,
        "program_instrs": len(program.instrs),
        "requests_per_batch": requests_per_batch,
        "arch": arch,
        "results": results,
        "governance": governance,
        "sharded": sharded,
        "single_flight": single_flight,
    }


def validate_artifact(payload: dict) -> None:
    """Raise AssertionError unless *payload* matches the artifact
    contract consumed by the benchmark trajectory."""
    assert payload.get("benchmark") == "service_throughput", \
        "bad benchmark id"
    assert payload.get("schema_version") == SCHEMA_VERSION, "schema drift"
    assert isinstance(payload.get("program_instrs"), int)
    assert isinstance(payload.get("requests_per_batch"), int)
    results = payload.get("results")
    assert isinstance(results, list) and results, "no per-worker results"
    for entry in results:
        missing = RESULT_KEYS - entry.keys()
        assert not missing, f"result entry missing keys: {sorted(missing)}"
        assert entry["workers"] >= 1
        assert entry["cold_seconds"] > 0 and entry["warm_seconds"] > 0
        assert entry["ok"] == 2 * payload["requests_per_batch"], (
            f"workers={entry['workers']}: not every request succeeded"
        )
        counters = entry["service"]["counters"]
        assert counters.get("request") == 2 * payload["requests_per_batch"]
        assert counters.get("error", 0) == 0
        # the entire warm batch (at least) must be served from the
        # shared cache — that is what "warm" means
        assert entry["cache"]["hits"] >= payload["requests_per_batch"], (
            f"workers={entry['workers']}: warm batch was not cache-served"
        )
    governance = payload.get("governance")
    assert isinstance(governance, dict), "no governance scenario"
    missing = GOVERNANCE_KEYS - governance.keys()
    assert not missing, f"governance missing keys: {sorted(missing)}"
    assert governance["concurrent_requests"] >= 8, (
        "governance scenario must exercise >= 8 concurrent requests"
    )
    assert governance["timeouts"] >= 1, "no deadline was enforced"
    assert governance["fallbacks"] >= 1, "no fault degraded to fallback"
    assert governance["ok"] == governance["concurrent_requests"] - 1, (
        "only the runaway module may fail"
    )
    sharded = payload.get("sharded")
    assert isinstance(sharded, dict), "no sharded scaling section"
    missing = SHARDED_KEYS - sharded.keys()
    assert not missing, f"sharded section missing keys: {sorted(missing)}"
    assert isinstance(sharded["results"], list) and sharded["results"]
    for entry in sharded["results"]:
        assert entry["ok"] == entry["requests"], (
            f"processes={entry['processes']}: sharded mix had failures"
        )
    if sharded["skipped"]:
        # A skip must be visible and justified, never silent.
        assert sharded.get("skip_reason"), "silent sharded skip"
    else:
        assert sharded.get("scaling_x", 0.0) >= SHARDED_SCALING_BAR, (
            "sharded scaling bar missed"
        )
    single_flight = payload.get("single_flight")
    assert isinstance(single_flight, dict), "no single-flight section"
    missing = SINGLE_FLIGHT_KEYS - single_flight.keys()
    assert not missing, \
        f"single_flight missing keys: {sorted(missing)}"
    assert single_flight["stores"] == 1, (
        "stampede must admit exactly one translation"
    )
    assert single_flight["ok"] == single_flight["requests"]


def write_artifact(payload: dict, path: Path = ARTIFACT_PATH) -> Path:
    validate_artifact(payload)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def bench_service_throughput(save_result):
    """Full-size run emitting the JSON artifact."""
    payload = collect_benchmark()
    path = write_artifact(payload)
    lines = [f"service throughput: {payload['requests_per_batch']} requests "
             f"per batch on {payload['arch']} "
             f"({payload['program_instrs']} OmniVM instructions)"]
    for entry in payload["results"]:
        lines.append(
            f"  workers={entry['workers']:<2} "
            f"cold {entry['cold_rps']:7.1f} req/s"
            f"   warm {entry['warm_rps']:7.1f} req/s"
        )
    governance = payload["governance"]
    lines.append(
        f"  governance: {governance['concurrent_requests']} concurrent, "
        f"{governance['ok']} ok, {governance['timeouts']} deadline-expired, "
        f"{governance['fallbacks']} degraded to interpreter "
        f"in {governance['elapsed_seconds']:.2f}s"
    )
    sharded = payload["sharded"]
    if sharded["skipped"]:
        lines.append(
            f"  sharded: SKIPPED ({sharded['skip_reason']})"
        )
    for entry in sharded["results"]:
        lines.append(
            f"  sharded: processes={entry['processes']:<2} "
            f"{entry['rps']:7.1f} req/s over {entry['requests']} requests"
        )
    if "scaling_x" in sharded:
        lines.append(f"  sharded scaling: {sharded['scaling_x']:.2f}x")
    single_flight = payload["single_flight"]
    lines.append(
        f"  single-flight: {single_flight['requests']}-request stampede "
        f"-> {single_flight['stores']} translation, "
        f"{single_flight['hits']} cache hits"
    )
    # The acceptance bar: >= 8 concurrent requests sustained with
    # deadlines enforced and faults degraded to the interpreter (both
    # asserted inside measure_governance / validate_artifact).  Warm vs
    # cold timings are reported, not asserted — wall-clock ratios are
    # too noisy on shared machines; the warm batch's cache hits are
    # verified by counters instead.
    top = payload["results"][-1]
    assert top["workers"] >= 8
    save_result("service_throughput", "\n".join(lines))
    print(f"\nartifact: {path}")
