"""Tier-1 smoke of the translation-cache benchmark.

``benchmarks/`` is not collected by the tier-1 suite, but the
``BENCH_translation_cache.json`` artifact contract must not silently
rot, so this test loads the benchmark module by path and drives
``collect_benchmark`` / ``validate_artifact`` on a small program.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.compiler import compile_and_link

BENCH_PATH = (Path(__file__).resolve().parents[1] / "benchmarks"
              / "bench_translation_cache.py")

SRC = """
int main() {
    int i;
    int acc;
    acc = 1;
    for (i = 0; i < 10; i = i + 1) {
        acc = acc * 2;
    }
    emit_int(acc);
    return 0;
}
"""


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location(
        "bench_translation_cache", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def payload(bench):
    program = compile_and_link([SRC])
    return bench.collect_benchmark(program=program,
                                   archs=("mips", "x86"), repeats=2)


class TestBenchmarkSmoke:
    def test_payload_validates(self, bench, payload):
        bench.validate_artifact(payload)
        assert payload["schema_version"] == bench.SCHEMA_VERSION
        assert {entry["arch"] for entry in payload["results"]} \
            == {"mips", "x86"}

    def test_warm_loads_were_cache_hits(self, payload):
        for entry in payload["results"]:
            assert entry["cache"]["hits"] == payload["repeats"], entry["arch"]
            # cold loads each missed (cache cleared per repetition)
            assert entry["cache"]["misses"] == payload["repeats"]

    def test_artifact_round_trips(self, bench, payload, tmp_path):
        path = bench.write_artifact(payload,
                                    tmp_path / "BENCH_translation_cache.json")
        reloaded = json.loads(path.read_text())
        bench.validate_artifact(reloaded)
        assert reloaded == json.loads(json.dumps(payload))

    def test_validator_rejects_schema_drift(self, bench, payload):
        broken = json.loads(json.dumps(payload))
        broken["schema_version"] = bench.SCHEMA_VERSION + 1
        with pytest.raises(AssertionError):
            bench.validate_artifact(broken)
        broken = json.loads(json.dumps(payload))
        del broken["results"][0]["warm_seconds"]
        with pytest.raises(AssertionError):
            bench.validate_artifact(broken)

    def test_artifact_default_path_is_repo_root(self, bench):
        assert bench.ARTIFACT_PATH.name == "BENCH_translation_cache.json"
        assert bench.ARTIFACT_PATH.parent == BENCH_PATH.parents[1]
