"""Pinned repros for divergences the differential fuzzer surfaced.

Every program here is a (minimized) difftest counterexample that, before
its fix, produced different observable state on the interpreter and at
least one target simulator.  Each test cross-executes the repro on all
four targets — the assertion is the difftest invariant itself — and
additionally pins the oracle's expected values so the *pair* cannot
drift together.
"""

import pytest

from repro.difftest.generator import GenProgram
from repro.difftest.harness import (
    COMPARED_INT_REGS,
    compare_outcomes,
    run_one,
)
from repro.engine import ARCHITECTURES, Engine, INTERPRETER
from repro.omnivm import semantics
from repro.omnivm.isa import VMInstr as I
from repro.utils.bits import f64_to_bits, round_f32, u32

ENGINE = Engine(cache=False)


def cross_run(stmts, name="repro", data=b"\x00" * 64):
    """Run *stmts* on the interpreter and all targets; assert agreement."""
    program = GenProgram(name, list(stmts), data).build()
    reference = run_one(ENGINE, program, INTERPRETER)
    for target in ARCHITECTURES:
        observed = run_one(ENGINE, program, target)
        diffs = compare_outcomes(reference, observed)
        assert not diffs, f"{name} diverges on {target}: {diffs}"
    return reference


def reg(outcome, number):
    return outcome.regs[COMPARED_INT_REGS.index(number)]


class TestTranslatorDivergences:
    def test_indirect_jump_to_li_materialized_label(self):
        """An address materialized with ``li`` and jumped to via ``jr``
        must be in the translator's entry-point map; the translators used
        to reject it with a sandbox violation while the interpreter
        followed it."""
        outcome = cross_run([
            ("instr", I("li", rd=9, label="L_target")),
            ("instr", I("jr", rs=9)),
            ("instr", I("li", rd=5, imm=111)),  # skipped by the jump
            ("label", "L_target"),
            ("instr", I("li", rd=6, imm=222)),
            ("instr", I("jr", rs=14)),
        ], name="ijump_li_label")
        assert outcome.kind == "exit"
        assert reg(outcome, 5) == 0 and reg(outcome, 6) == 222

    def test_fused_fcmp_branch_still_writes_rd(self):
        """The fcmp+branch-on-zero fusion peephole used to drop the
        compare result's register write; ``rd`` is live after the
        branch."""
        outcome = cross_run([
            ("instr", I("fcled", rd=2, fs=7, ft=2)),  # 0.0 <= 0.0 -> 1
            ("instr", I("bnei", rs=2, imm2=0, label="L_done")),
            ("label", "L_done"),
            ("instr", I("jr", rs=14)),
        ], name="fcmp_fuse_rd")
        assert outcome.kind == "exit"
        assert reg(outcome, 2) == 1

    def test_fused_fcmp_beqi_negated_predicate(self):
        outcome = cross_run([
            ("instr", I("fclts", rd=3, fs=0, ft=1)),  # 0.0 < 0.0 -> 0
            ("instr", I("beqi", rs=3, imm2=0, label="L_done")),
            ("instr", I("li", rd=4, imm=77)),  # skipped: branch taken
            ("label", "L_done"),
            ("instr", I("jr", rs=14)),
        ], name="fcmp_fuse_beqi")
        assert outcome.kind == "exit"
        assert reg(outcome, 3) == 0 and reg(outcome, 4) == 0

    def test_handler_sees_writes_preceding_faulting_load(self):
        """With a virtual exception handler installed, every register
        write program-ordered before a faulting load must be visible at
        delivery; the scheduler used to hoist the load above them."""
        outcome = cross_run([
            ("instr", I("li", rd=8, imm=65536)),
            ("instr", I("li", rd=2, label="L_handler")),
            ("instr", I("sethnd", rs=2)),
            ("instr", I("lw", rd=13, rs=5, imm=0)),  # r5=0: faults
            ("instr", I("addi", rd=2, rs=2, imm=99)),  # after the fault
            ("label", "L_handler"),
            ("instr", I("jr", rs=14)),
        ], name="handler_precise")
        assert outcome.kind == "exit"
        assert outcome.exit_code == 1  # r1 = violation cause (load)
        assert reg(outcome, 8) == 65536

    def test_handler_sees_complete_li_expansion(self):
        """A multi-instruction immediate materialization (lui/ori) must
        not be split across a faulting load: the handler used to observe
        the high half only."""
        outcome = cross_run([
            ("instr", I("li", rd=6, imm=-2147483647)),
            ("instr", I("li", rd=1, label="L_handler")),
            ("instr", I("sethnd", rs=1)),
            ("instr", I("lw", rd=1, rs=8, imm=0)),  # r8=0: faults
            ("label", "L_handler"),
            ("instr", I("jr", rs=14)),
        ], name="handler_li_split")
        assert outcome.kind == "exit"
        assert reg(outcome, 6) == 0x80000001

    def test_store_not_hoisted_above_earlier_load(self):
        """The scheduler ordered a store only against the most recent
        memory op, so it could slide above an *earlier* load of the same
        address; f5 must hold the pre-store bytes."""
        outcome = cross_run([
            ("instr", I("ori", rd=1, rs=4, imm=-92414695)),
            ("instr", I("li", rd=5, imm=536916376)),
            ("instr", I("lfd", fd=5, rs=5, imm=24)),
            ("instr", I("lfd", fd=1, rs=5, imm=32)),
            ("instr", I("sh", rt=1, rs=5, imm=24)),
            ("instr", I("jr", rs=14)),
        ], name="store_load_order")
        assert outcome.kind == "exit"
        assert outcome.fregs[5] == 0  # loaded before the sh landed

    def test_fmovs_narrows_to_single_precision(self):
        """``fmovs`` must round its operand to f32 like every other
        single-precision op; the targets used to copy the double
        verbatim."""
        outcome = cross_run([
            ("instr", I("li", rd=11, imm=686991420)),
            ("instr", I("cvtdwu", fd=0, rs=11)),
            ("instr", I("fmovs", fd=7, fs=0)),
            ("instr", I("jr", rs=14)),
        ], name="fmovs_rounds")
        assert outcome.kind == "exit"
        assert outcome.fregs[7] == f64_to_bits(round_f32(686991420.0))


class TestUnifiedTrapSemantics:
    """Satellite: interpreter and targets share one error/clamp path."""

    def test_integer_divide_by_zero_message_matches(self):
        outcome = cross_run([
            ("instr", I("li", rd=1, imm=7)),
            ("instr", I("div", rd=3, rs=1, rt=2)),  # r2 = 0
            ("instr", I("jr", rs=14)),
        ], name="div_zero")
        assert outcome.kind == "vmerror"
        assert outcome.detail == semantics.INT_DIV_ZERO_MSG

    def test_fp_divide_by_zero_message_matches(self):
        outcome = cross_run([
            ("instr", I("fdivd", fd=2, fs=1, ft=0)),  # f0 = 0.0
            ("instr", I("jr", rs=14)),
        ], name="fdiv_zero")
        assert outcome.kind == "vmerror"
        assert outcome.detail == semantics.FP_DIV_ZERO_MSG

    def test_f2i_overflow_clamps_identically(self):
        outcome = cross_run([
            ("instr", I("li", rd=1, imm=-1)),        # 0xFFFFFFFF
            ("instr", I("cvtdwu", fd=1, rs=1)),      # 4294967295.0
            ("instr", I("fmuld", fd=2, fs=1, ft=1)),  # way out of i32 range
            ("instr", I("cvtwd", rd=3, fs=2)),
            ("instr", I("jr", rs=14)),
        ], name="f2i_clamp")
        assert outcome.kind == "exit"
        assert reg(outcome, 3) == semantics.F2I_CLAMP


class TestArithmeticCorners:
    """Satellite: shift masking and division fixed points, end to end."""

    def test_int32_min_div_minus_one(self):
        outcome = cross_run([
            ("instr", I("li", rd=1, imm=-2147483648)),
            ("instr", I("li", rd=2, imm=-1)),
            ("instr", I("div", rd=3, rs=1, rt=2)),
            ("instr", I("jr", rs=14)),
        ], name="div_overflow")
        assert outcome.kind == "exit"
        assert reg(outcome, 3) == 0x80000000  # wraps to INT32_MIN

    def test_int32_min_rem_minus_one(self):
        outcome = cross_run([
            ("instr", I("li", rd=1, imm=-2147483648)),
            ("instr", I("li", rd=2, imm=-1)),
            ("instr", I("rem", rd=3, rs=1, rt=2)),
            ("instr", I("jr", rs=14)),
        ], name="rem_overflow")
        assert outcome.kind == "exit"
        assert reg(outcome, 3) == 0

    @pytest.mark.parametrize("op", ["sll", "srl", "sra"])
    def test_register_shift_amount_masks_to_five_bits(self, op):
        outcome = cross_run([
            ("instr", I("li", rd=1, imm=-2147483648)),
            ("instr", I("li", rd=2, imm=33)),        # == shift by 1
            ("instr", I(op, rd=3, rs=1, rt=2)),
            ("instr", I("li", rd=4, imm=1)),
            ("instr", I(op, rd=5, rs=1, rt=4)),
            ("instr", I("jr", rs=14)),
        ], name=f"shift_mask_{op}")
        assert outcome.kind == "exit"
        assert reg(outcome, 3) == reg(outcome, 5)

    @pytest.mark.parametrize("op", ["slli", "srli", "srai"])
    def test_immediate_shift_amount_masks_to_five_bits(self, op):
        outcome = cross_run([
            ("instr", I("li", rd=1, imm=-2147483648)),
            ("instr", I(op, rd=3, rs=1, imm=33)),
            ("instr", I(op, rd=5, rs=1, imm=1)),
            ("instr", I("jr", rs=14)),
        ], name=f"shifti_mask_{op}")
        assert outcome.kind == "exit"
        assert reg(outcome, 3) == reg(outcome, 5)


EXTENSION_CASES = [
    ("sext8", 0x7F, 0x0000007F),
    ("sext8", 0x80, 0xFFFFFF80),
    ("sext8", 0xFF, 0xFFFFFFFF),
    ("sext8", 0x1FF, 0xFFFFFFFF),   # only the low byte matters
    ("sext16", 0x7FFF, 0x00007FFF),
    ("sext16", 0x8000, 0xFFFF8000),
    ("sext16", 0xFFFF, 0xFFFFFFFF),
    ("zext8", 0xFF, 0x000000FF),
    ("zext8", 0x180, 0x00000080),
    ("zext16", 0xFFFF, 0x0000FFFF),
    ("zext16", 0x18000, 0x00008000),
]


class TestExtensionBoundaries:
    """Satellite: sign/zero extension at the sign-bit boundaries, through
    the shared helper and end to end on every executor."""

    @pytest.mark.parametrize("op,value,expected", EXTENSION_CASES)
    def test_shared_helper(self, op, value, expected):
        assert semantics.extend(op, value) == expected

    @pytest.mark.parametrize("op,value,expected", EXTENSION_CASES)
    def test_all_executors(self, op, value, expected):
        outcome = cross_run([
            ("instr", I("li", rd=1, imm=u32(value))),
            ("instr", I(op, rd=3, rs=1)),
            ("instr", I("jr", rs=14)),
        ], name=f"ext_{op}_{value:x}")
        assert outcome.kind == "exit"
        assert reg(outcome, 3) == expected
