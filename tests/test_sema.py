"""Unit tests for MiniC semantic analysis (type checking)."""

import pytest

from repro.errors import TypeError_
from repro.frontend.lexer import tokenize
from repro.frontend.parser import Parser
from repro.frontend.sema import SemanticAnalyzer
from repro.frontend.types import DOUBLE, INT, PointerType, UINT


def analyze(source):
    parser = Parser(tokenize(source))
    unit = parser.parse_translation_unit()
    SemanticAnalyzer(parser.struct_types).analyze(unit)
    return unit


def expr_type(expr_text, prelude=""):
    unit = analyze(prelude + f"\nvoid probe() {{ (void)({expr_text}); }}")
    stmt = unit.decls[-1].body.statements[0]
    return stmt.expr.operand.ty


class TestTyping:
    def test_arithmetic_promotions(self):
        assert expr_type("1 + 2") == INT
        assert expr_type("1 + 2.0") == DOUBLE
        assert expr_type("(char)1 + (char)2") == INT  # promotion
        assert expr_type("1u + 2") == UINT

    def test_comparison_yields_int(self):
        assert expr_type("1.5 < 2.5") == INT
        assert expr_type("1 == 2") == INT

    def test_pointer_arithmetic(self):
        ty = expr_type("p + 1", "int *p;")
        assert ty == PointerType(INT)
        assert expr_type("p - q", "int *p; int *q;") == INT

    def test_array_index_type(self):
        assert expr_type("a[2]", "double a[4];") == DOUBLE

    def test_address_and_deref(self):
        assert expr_type("&g", "int g;") == PointerType(INT)
        assert expr_type("*p", "int *p;") == INT

    def test_struct_member(self):
        prelude = "struct P { int x; double y; }; struct P g;"
        assert expr_type("g.y", prelude) == DOUBLE
        assert expr_type("q->x", prelude + " struct P *q;") == INT

    def test_function_call_result(self):
        assert expr_type("f(1)", "double f(int a) { return 0.0; }") == DOUBLE

    def test_sizeof_is_uint(self):
        assert expr_type("sizeof(double)") == UINT

    def test_null_pointer_constant(self):
        analyze("int *p = 0;")  # must not raise

    def test_address_taken_marks_symbol(self):
        unit = analyze("void f() { int x; int *p = &x; }")
        decl = unit.decls[0].body.statements[0]
        assert decl.symbol.address_taken


class TestScoping:
    def test_shadowing_allowed_in_inner_scope(self):
        analyze("int x; void f() { int x; { int x; } }")

    def test_out_of_scope_use_rejected(self):
        with pytest.raises(TypeError_):
            analyze("void f() { { int x; } x = 1; }")

    def test_redefinition_rejected(self):
        with pytest.raises(TypeError_):
            analyze("void f() { int x; int x; }")

    def test_conflicting_function_decl(self):
        with pytest.raises(TypeError_):
            analyze("int f(int a); double f(int a);")

    def test_host_builtins_visible(self):
        analyze("void f() { emit_int(1); emit_double(2.5); }")


class TestRejections:
    @pytest.mark.parametrize("source", [
        "void f() { undefined_name = 1; }",
        "void f() { break; }",
        "void f() { continue; }",
        "int f() { return; }",
        "void f() { return 1; }",
        "void f() { 1 = 2; }",
        "void f() { int x; x(); }",
        "void f(int a) { a.field = 1; }",
        "struct S { int x; }; void f(struct S s) { s.nothere = 1; }",
        "void f() { emit_int(1, 2); }",
        "void f() { int *p; double d; d = d % 2.0; }",
        "void f() { double d; d <<= 2; }",
        "void v; ",
        "struct R { int a; int a; };",
    ])
    def test_rejects(self, source):
        with pytest.raises(TypeError_):
            analyze(source)

    def test_void_condition_rejected(self):
        with pytest.raises(TypeError_):
            analyze("void g() {} void f() { if (g()) ; }")

    def test_deref_non_pointer(self):
        with pytest.raises(TypeError_):
            analyze("void f() { int x; *x = 1; }")

    def test_call_arity_checked(self):
        with pytest.raises(TypeError_):
            analyze("int g(int a, int b) { return 0; } void f() { g(1); }")
