"""The native superblock JIT tier: bit-exactness, SFI, cache, promotion.

:mod:`repro.targets.jit` layers a trace-based superblock JIT over the
threaded native engine.  Its contract is the same as the omni JIT's —
observably identical to the tiers below on every architectural surface
— plus the two native-only obligations the issue calls out: per-arch
cycle accounting folded into the compiled code, and SFI dynamic guard
chains inlined without weakening.  These tests pin:

* a fixed-seed difftest corpus executed bit-exactly by the legacy,
  threaded, and JIT engines on all four targets, comparing registers,
  memory digests, trap outcomes, ``instret``, ``cycles``, and the
  fault ``pc`` (JIT heat forced to 1 so every entry compiles);
* the same parity under the ``cc`` native profile (different cycle
  model, including the ppc cmp-latency override);
* SFI containment: hostile wild-store/wild-jump modules behave
  identically under threaded and JIT, and the host/code segments stay
  intact either way;
* mutated guard chains: unsafe mutants from the SFI mutation fuzzer
  (dropped/retargeted mask guards), run with verification skipped,
  fault identically under both engines — the JIT neither reorders nor
  elides any part of a guard chain;
* superblock source determinism across independent predecodes;
* the ``("jit-native", …)`` cache side table: warm loads reuse
  compiled superblocks, invalidation drops them, and superblock
  probes never touch the predecode hit/miss statistics;
* side-exit heat promotion: a branch the static predictor lays out
  wrong is re-formed instead of deopting forever.
"""

import pytest

from repro.cache import TranslationCache
from repro.compiler import CompileOptions, compile_and_link
from repro.difftest import sfi_mutator
from repro.difftest.generator import GenProgram, ProgramGenerator
from repro.difftest.harness import (
    COMPARED_INT_REGS,
    DEFAULT_SEGMENT_SIZE,
    memory_digest,
)
from repro.errors import (
    AccessViolation,
    FuelExhausted,
    SandboxViolation,
    VMRuntimeError,
    VMTrap,
)
from repro.native.profiles import MOBILE_SFI
from repro.omnivm.isa import VMInstr as I
from repro.omnivm.memory import (
    HOST_BASE,
    PERM_READ,
    PERM_WRITE,
    standard_module_memory,
)
from repro.runtime.host import Host
from repro.runtime.native_loader import _TargetAdapter, load_for_target
from repro.targets.jit import JitTargetMachine, native_superblock_source
from repro.targets.threaded import ThreadedTargetMachine, predecode_native
from repro.translators import ARCHITECTURES, TranslationOptions, translate
from repro.translators.base import initial_register_state
from repro.utils.bits import f64_to_bits

ENGINES = ("legacy", "threaded", "jit")


def build(stmts, name="prog", data=b"\x00" * 64):
    return GenProgram(name, list(stmts), data).build()


def observe_native(module):
    """The full architectural surface of one native run: outcome,
    compared registers, fp registers, memory digest, ``instret``,
    ``cycles``, and the final ``pc`` (the fault pc on violations)."""
    try:
        code = module.run()
        kind, detail = "exit", ""
    except VMTrap as trap:
        kind, detail, code = "trap", f"code={trap.code}", None
    except AccessViolation as violation:
        kind, detail, code = (
            "violation", f"{violation.kind}@{violation.address:#010x}", None)
    except SandboxViolation as violation:
        kind, detail, code = "sandbox", str(violation), None
    except FuelExhausted:
        kind, detail, code = "fuel", "", None
    except VMRuntimeError as err:
        kind, detail, code = "vmerror", str(err), None
    machine = module.machine
    im, fm = machine.spec.int_map, machine.spec.fp_map
    regs = tuple(machine.regs[im[i]] for i in COMPARED_INT_REGS)
    fregs = tuple(f64_to_bits(machine.fregs[fm[i]]) for i in range(16))
    return (kind, detail, code, regs, fregs, memory_digest(module.memory),
            machine.instret, machine.cycles, machine.pc)


def run_engines(program, arch, engines=ENGINES, options=None, fuel=20_000_000):
    """Run *program* on *arch* under each engine; superblocks and
    predecode artifacts flow through a shared cache so translation is
    paid once (which also exercises the JIT's cache path)."""
    cache = TranslationCache()
    runs = {}
    for engine in engines:
        module = load_for_target(program, arch, options, fuel=fuel,
                                 cache=cache,
                                 segment_size=DEFAULT_SEGMENT_SIZE,
                                 engine=engine)
        if engine == "jit":
            module.machine._jit_heat = 1
        runs[engine] = observe_native(module)
    return runs


def assert_engines_agree(runs, context):
    baseline = runs[next(iter(runs))]
    for engine, run in runs.items():
        assert run == baseline, (
            f"{context}: {engine} diverged:\n  {baseline}\n  {run}")


class TestCrossEngineJitCorpus:
    """Fixed-seed generator corpus: the legacy, threaded, and JIT
    engines are bit-exact on every target — including cycles and the
    fault pc, which the threaded corpus test does not compare."""

    SEED = "native-jit-regression"
    COUNT = 8

    def test_corpus_bit_exact(self):
        generator = ProgramGenerator(self.SEED)
        compiled = 0
        for index in range(self.COUNT):
            program = generator.program(index).build()
            for arch in ARCHITECTURES:
                runs = run_engines(program, arch)
                assert_engines_agree(runs, f"program {index} on {arch}")
        # the corpus is only a JIT test if entries actually compile
        program = generator.program(0).build()
        cache = TranslationCache()
        module = load_for_target(program, "mips", cache=cache,
                                 segment_size=DEFAULT_SEGMENT_SIZE,
                                 engine="jit")
        module.machine._jit_heat = 1
        observe_native(module)
        compiled = module.machine._superblocks_compiled
        assert compiled > 0
        assert module.machine._superblocks_run > 0

    def test_cc_profile_bit_exact(self):
        """The folded cycle model tracks the per-profile timing specs,
        including the ppc cmp-latency override applied at load time."""
        generator = ProgramGenerator("native-jit-cc")
        options = TranslationOptions(native_profile="cc")
        for index in range(3):
            program = generator.program(index).build()
            for arch in ARCHITECTURES:
                runs = run_engines(program, arch,
                                   engines=("threaded", "jit"),
                                   options=options)
                assert_engines_agree(runs, f"cc program {index} on {arch}")


WILD_STORE = """
int main() {
    int *p = (int *) %s;
    *p = 0x41414141;
    emit_int(7);
    return 0;
}
"""

WILD_JUMP = """
int main() {
    int (*fp)(void) = (int (*)(void)) %s;
    fp();
    return 0;
}
"""


def _load_hostile(source, arch, engine, fuel=300_000):
    program = compile_and_link([source], CompileOptions(module_name="evil"))
    memory = standard_module_memory(program.text_image,
                                    bytes(program.data_image))
    memory.add_segment("host", HOST_BASE, 1 << 16, PERM_READ | PERM_WRITE)
    module = load_for_target(program, arch, MOBILE_SFI, memory=memory,
                             fuel=fuel, engine=engine)
    if engine == "jit":
        module.machine._jit_heat = 1
    return module


class TestSfiContainmentUnderJit:
    """Inlined guard chains: the JIT contains hostile modules exactly
    as the threaded tier does, on every target."""

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    @pytest.mark.parametrize("address", ["0x50000040", "0x7FFFFFFC"])
    def test_wild_store_parity_and_containment(self, arch, address):
        source = WILD_STORE % address
        runs = {}
        for engine in ("threaded", "jit"):
            module = _load_hostile(source, arch, engine)
            host_segment = module.memory.segment_named("host")
            code_segment = module.memory.segment_named("code")
            host_before = bytes(host_segment.data)
            code_before = bytes(code_segment.data)
            runs[engine] = observe_native(module)
            assert bytes(host_segment.data) == host_before, engine
            assert bytes(code_segment.data) == code_before, engine
        assert_engines_agree(runs, f"wild store {address} on {arch}")

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_wild_jump_to_unmapped_entry_parity(self, arch):
        """A masked jump target that is not a legal entry point raises
        :class:`SandboxViolation` identically under both tiers."""
        runs = {}
        for engine in ("threaded", "jit"):
            module = _load_hostile(WILD_JUMP % "0x10FFFF08", arch, engine)
            runs[engine] = observe_native(module)
        assert_engines_agree(runs, f"wild jump on {arch}")
        assert runs["jit"][0] == "sandbox"

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_wild_jump_into_own_code_contained(self, arch):
        """0x50000000 masks onto the module's first function: it spins
        on its own code until the fuel cut.  Fuel is checked at block
        boundaries on the threaded tier but superblock boundaries on
        the JIT (the documented relaxation), so the exact cut point may
        differ by a few instructions — containment must not."""
        kinds = set()
        for engine in ("threaded", "jit"):
            module = _load_hostile(WILD_JUMP % "0x50000000", arch, engine)
            host_before = bytes(module.memory.segment_named("host").data)
            code_before = bytes(module.memory.segment_named("code").data)
            run = observe_native(module)
            kinds.add(run[0])
            assert bytes(module.memory.segment_named("host").data) == \
                host_before, engine
            assert bytes(module.memory.segment_named("code").data) == \
                code_before, engine
        assert len(kinds) == 1 and kinds <= {"sandbox", "fuel", "violation"}


#: A store through an attacker-chosen pointer: its sandboxing guard
#: chain is load-bearing, so weakening it changes where the store
#: lands — exactly what the runtime parity below must preserve.
MUTANT_SOURCE = """
int main() {
    int *p = (int *) 0x7FFFFFFC;
    *p = 0x41414141;
    return 0;
}
"""


def _run_translated(program, translated, engine, fuel=300_000):
    """Build a machine directly over a (possibly mutated, unverified)
    translation — mirrors native_loader without re-translating."""
    memory = standard_module_memory(program.text_image,
                                    bytes(program.data_image))
    threaded = predecode_native(translated.spec, translated.instrs)
    if engine == "jit":
        machine = JitTargetMachine(
            translated.spec, translated.instrs, memory,
            translated.omni_to_native, fuel=fuel, threaded=threaded)
        machine._jit_heat = 1
    else:
        machine = ThreadedTargetMachine(
            translated.spec, translated.instrs, memory,
            translated.omni_to_native, fuel=fuel, threaded=threaded)
    host = Host()
    adapter = _TargetAdapter(machine)
    machine.hostcall = lambda _m, index: host.hostcall(adapter, index)
    initial_register_state(translated.spec, machine)
    try:
        code = machine.run(translated.entry_native)
        kind, detail = "exit", code
    except AccessViolation as violation:
        kind, detail = (
            "violation", f"{violation.kind}@{violation.address:#010x}")
    except SandboxViolation as violation:
        kind, detail = "sandbox", str(violation)
    except FuelExhausted:
        kind, detail = "fuel", ""
    except (VMTrap, VMRuntimeError) as err:
        kind, detail = "error", str(err)
    return (kind, detail, tuple(machine.regs), machine.pc, machine.cycles,
            machine.instret, memory_digest(memory))


class TestMutatedGuardChains:
    """Unsafe guard-chain mutants (the escapes the SFI verifier kills
    statically) run with verification skipped must behave identically
    under the threaded and JIT tiers: the JIT executes whatever chain
    is present, bit-exactly — it neither repairs nor further weakens
    it, and the resulting faults match in kind, address, pc, cycles,
    and instret."""

    MUTANT_KINDS = ("drop-guard", "retarget-guard")
    PER_ARCH = 3

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_mutants_fault_identically(self, arch):
        program = compile_and_link([MUTANT_SOURCE])
        module = translate(program, arch, MOBILE_SFI)
        analysis = sfi_mutator.verify_sfi(module)
        mutator = sfi_mutator.SfiMutator(module, analysis)
        picked = [m for m in mutator.candidates()
                  if m.expected == "unsafe" and m.kind in self.MUTANT_KINDS]
        assert picked, arch
        outcomes = set()
        for mutation in picked[:self.PER_ARCH]:
            clone = sfi_mutator.clone_module(module)
            mutator.apply(clone, mutation)
            threaded_run = _run_translated(program, clone, "threaded")
            jit_run = _run_translated(program, clone, "jit")
            assert jit_run == threaded_run, (
                f"{arch} {mutation.describe()}:\n  {threaded_run}\n"
                f"  {jit_run}")
            outcomes.add(threaded_run[0])
        # the pristine translation agrees with itself too, and at least
        # one mutant observably diverged from it
        pristine = _run_translated(program, module, "threaded")
        assert pristine == _run_translated(program, module, "jit")

    def test_some_mutant_actually_faults(self):
        """Sanity: the parity above is not vacuous — weakening the
        chain really changes behaviour (typically a wild-address
        violation where the pristine module was contained)."""
        program = compile_and_link([MUTANT_SOURCE])
        module = translate(program, "mips", MOBILE_SFI)
        analysis = sfi_mutator.verify_sfi(module)
        mutator = sfi_mutator.SfiMutator(module, analysis)
        pristine = _run_translated(program, module, "jit")
        diverged = False
        for mutation in mutator.candidates():
            if mutation.expected != "unsafe" or \
                    mutation.kind not in self.MUTANT_KINDS:
                continue
            clone = sfi_mutator.clone_module(module)
            mutator.apply(clone, mutation)
            if _run_translated(program, clone, "jit") != pristine:
                diverged = True
                break
        assert diverged


class TestNativeSuperblockDeterminism:
    """Generated superblock source is a pure function of the predecoded
    instruction stream, so cached compiled superblocks are
    interchangeable across loads (the cache-key contract)."""

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_source_byte_identical_across_predecodes(self, arch):
        generator = ProgramGenerator("native-jit-determinism")
        program = generator.program(0).build()
        translated = translate(program, arch, None)
        first = predecode_native(translated.spec, translated.instrs)
        second = predecode_native(translated.spec, translated.instrs)
        produced = 0
        for entry in range(len(translated.instrs)):
            try:
                a = native_superblock_source(first, entry)
                b = native_superblock_source(second, entry)
            except Exception:
                continue
            assert a == b, f"{arch}: source diverged at entry {entry}"
            assert "_superblock" in a
            produced += 1
        assert produced > 0, arch


class TestJitCacheSideTable:
    """Compiled superblocks live under ``("jit-native", digest, arch,
    options, entry)`` keys in the cache's in-memory side table."""

    def _program(self):
        body = [("instr", I("li", rd=2, imm=0))]
        body += [("label", "L"),
                 ("instr", I("addi", rd=2, rs=2, imm=1)),
                 ("instr", I("blti", rs=2, imm2=500, label="L")),
                 ("instr", I("jr", rs=14))]
        return build(body, name="hotloop")

    def test_warm_load_reuses_compiled_superblocks(self):
        cache = TranslationCache()
        program = self._program()
        cold = load_for_target(program, "mips", cache=cache, engine="jit")
        cold.machine._jit_heat = 1
        cold_run = observe_native(cold)
        assert cold.machine._superblocks_compiled > 0
        warm = load_for_target(program, "mips", cache=cache, engine="jit")
        warm.machine._jit_heat = 1
        warm_run = observe_native(warm)
        assert warm.machine._superblocks_compiled == 0
        assert warm.machine._superblocks_run > 0
        assert warm_run == cold_run

    def test_invalidation_drops_superblocks(self):
        cache = TranslationCache()
        program = self._program()
        cold = load_for_target(program, "mips", cache=cache, engine="jit")
        cold.machine._jit_heat = 1
        observe_native(cold)
        cache.invalidate(program=program)
        fresh = load_for_target(program, "mips", cache=cache, engine="jit")
        fresh.machine._jit_heat = 1
        observe_native(fresh)
        assert fresh.machine._superblocks_compiled > 0

    def test_superblock_probes_leave_predecode_stats_alone(self):
        """The JIT probes the side table through the stats-free
        accessor: warming up superblocks must not move the predecode
        hit/miss counters that the threaded tier's tests pin."""
        cache = TranslationCache()
        program = self._program()
        module = load_for_target(program, "mips", cache=cache, engine="jit")
        module.machine._jit_heat = 1
        before = cache.stats()
        hits, misses = before.predecode_hits, before.predecode_misses
        observe_native(module)
        assert module.machine._superblocks_compiled > 0
        after = cache.stats()
        assert after.predecode_hits == hits
        assert after.predecode_misses == misses


class TestSideExitPromotion:
    """A forward branch the static BTFN predictor lays out untaken but
    that is always taken at runtime: its side exit crosses the heat
    threshold and the trace is re-formed with the prediction flipped,
    instead of deopting on every iteration."""

    def _program(self):
        # two always-taken forward skips in one loop: trace rotation
        # can absorb one of them as the loop-closure branch, but the
        # other stays mispredicted and must be promoted
        return build([
            ("instr", I("li", rd=1, imm=0)),
            ("instr", I("li", rd=4, imm=0)),
            ("label", "L"),
            ("instr", I("addi", rd=1, rs=1, imm=1)),
            ("instr", I("bgti", rs=1, imm2=0, label="S1")),
            ("instr", I("addi", rd=4, rs=4, imm=100)),
            ("label", "S1"),
            ("instr", I("addi", rd=4, rs=4, imm=1)),
            ("instr", I("bgti", rs=1, imm2=0, label="S2")),
            ("instr", I("addi", rd=4, rs=4, imm=200)),
            ("label", "S2"),
            ("instr", I("addi", rd=4, rs=4, imm=2)),
            ("instr", I("blti", rs=1, imm2=300, label="L")),
            ("instr", I("jr", rs=14)),
        ], name="promote")

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_hot_side_exit_is_promoted(self, arch):
        program = self._program()
        module = load_for_target(program, arch, engine="jit")
        module.machine._jit_heat = 1
        jit_run = observe_native(module)
        assert module.machine._jit_promotions >= 1, arch
        # promotion must not change observable behaviour
        baseline = load_for_target(program, arch, engine="threaded")
        assert observe_native(baseline) == jit_run, arch

    def test_promoted_trace_stops_deopting(self):
        program = self._program()
        module = load_for_target(program, "mips", engine="jit")
        module.machine._jit_heat = 1
        observe_native(module)
        # far fewer deopts than iterations: the flipped trace ran
        assert module.machine._jit_deopts < 100

    def _unstable_program(self):
        # r2 = r1 & 1 alternates every iteration: neither direction of
        # the first skip is stable, so a flip must revert and pin
        return build([
            ("instr", I("li", rd=1, imm=0)),
            ("instr", I("li", rd=4, imm=0)),
            ("instr", I("li", rd=5, imm=1)),
            ("label", "L"),
            ("instr", I("addi", rd=1, rs=1, imm=1)),
            ("instr", I("and", rd=2, rs=1, rt=5)),
            ("instr", I("bgti", rs=2, imm2=0, label="S1")),
            ("instr", I("addi", rd=4, rs=4, imm=100)),
            ("label", "S1"),
            ("instr", I("addi", rd=4, rs=4, imm=1)),
            ("instr", I("bgti", rs=1, imm2=0, label="S2")),
            ("instr", I("addi", rd=4, rs=4, imm=200)),
            ("label", "S2"),
            ("instr", I("addi", rd=4, rs=4, imm=2)),
            ("instr", I("blti", rs=1, imm2=400, label="L")),
            ("instr", I("jr", rs=14)),
        ], name="unstable")

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_unstable_branch_reverts_and_pins(self, arch):
        """A 50/50 branch that gets flipped deopts just as hard in the
        other direction: the override is reverted, the site pinned, and
        predictions never flip-flop — with unchanged behaviour."""
        program = self._unstable_program()
        module = load_for_target(program, arch, engine="jit")
        machine = module.machine
        machine._jit_heat = 1
        jit_run = observe_native(module)
        assert machine._jit_reverts >= 1, arch
        assert machine._pinned_sites, arch
        baseline = load_for_target(program, arch, engine="threaded")
        assert observe_native(baseline) == jit_run, arch

    def test_profile_persists_across_machines(self):
        """With a cache, the promotion profile (overrides, pins, and
        the override-compiled superblocks) is adopted by later machines
        of the same translation: the heat ramp, flips, and reverts are
        paid exactly once per program."""
        cache = TranslationCache()
        program = self._program()
        cold = load_for_target(program, "mips", cache=cache, engine="jit")
        cold.machine._jit_heat = 1
        cold_run = observe_native(cold)
        assert cold.machine._jit_promotions >= 1
        warm = load_for_target(program, "mips", cache=cache, engine="jit")
        warm.machine._jit_heat = 1
        warm_run = observe_native(warm)
        assert warm_run == cold_run
        assert warm.machine._jit_promotions == 0
        assert warm.machine._superblocks_compiled == 0
        assert warm.machine._trace_overrides  # adopted, not relearned
        assert warm.machine._jit_deopts < cold.machine._jit_deopts
