"""Unit tests for the MiniC parser."""

import pytest

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend.parser import parse
from repro.frontend.types import (
    CHAR,
    DOUBLE,
    INT,
    UINT,
    ArrayType,
    FunctionType,
    PointerType,
)


class TestDeclarations:
    def test_global_scalar(self):
        unit = parse("int x = 5;")
        (decl,) = unit.decls
        assert isinstance(decl, ast.GlobalVar)
        assert decl.name == "x" and decl.decl_type == INT
        assert isinstance(decl.init, ast.IntLiteral)

    def test_global_array_with_init(self):
        unit = parse("int a[3] = {1, 2, 3};")
        (decl,) = unit.decls
        assert decl.decl_type == ArrayType(INT, 3)
        assert len(decl.init_list) == 3

    def test_unsized_array_from_initializer(self):
        unit = parse("int a[] = {1, 2, 3, 4};")
        assert unit.decls[0].decl_type.count == 4

    def test_string_array(self):
        unit = parse('char msg[] = "hey";')
        assert unit.decls[0].decl_type == ArrayType(CHAR, 4)  # + NUL

    def test_pointer_levels(self):
        unit = parse("int **pp;")
        assert unit.decls[0].decl_type == PointerType(PointerType(INT))

    def test_multiple_declarators(self):
        unit = parse("int a, b = 2, *c;")
        names = [d.name for d in unit.decls]
        assert names == ["a", "b", "c"]
        assert unit.decls[2].decl_type == PointerType(INT)

    def test_function_prototype_and_def(self):
        unit = parse("int f(int a, double b);\nint f(int a, double b) { return a; }")
        proto, definition = unit.decls
        assert proto.body is None and definition.body is not None
        assert proto.func_type == FunctionType(INT, (INT, DOUBLE))

    def test_array_param_decays(self):
        unit = parse("int sum(int a[], int n) { return 0; }")
        assert unit.decls[0].func_type.params[0] == PointerType(INT)

    def test_function_pointer_global(self):
        unit = parse("int (*handler)(int, int);")
        decl = unit.decls[0]
        pointee = decl.decl_type.pointee
        assert isinstance(pointee, FunctionType)
        assert pointee.params == (INT, INT)

    def test_function_pointer_param(self):
        unit = parse("int apply(int (*f)(int), int x) { return f(x); }")
        param = unit.decls[0].func_type.params[0]
        assert isinstance(param.pointee, FunctionType)

    def test_struct_declaration(self):
        unit = parse("struct P { int x; int y; double w; };")
        decl = unit.decls[0]
        assert isinstance(decl, ast.StructDecl)
        assert [m[0] for m in decl.members] == ["x", "y", "w"]

    def test_uint_spelling(self):
        unit = parse("unsigned int a; uint b;")
        assert unit.decls[0].decl_type == UINT
        assert unit.decls[1].decl_type == UINT

    def test_constant_array_dimension_expression(self):
        unit = parse("int a[4 * 2 + 1];")
        assert unit.decls[0].decl_type.count == 9


class TestStatements:
    def _body(self, text):
        unit = parse("void f() {" + text + "}")
        return unit.decls[0].body.statements

    def test_if_else_chain(self):
        (stmt,) = self._body("if (1) ; else if (2) ; else ;")
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.otherwise, ast.If)

    def test_for_with_declaration(self):
        (stmt,) = self._body("for (int i = 0; i < 3; i++) ;")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.DeclStmt)

    def test_do_while(self):
        (stmt,) = self._body("do { } while (0);")
        assert isinstance(stmt, ast.DoWhile)

    def test_break_continue_return(self):
        stmts = self._body("while (1) { break; continue; } return;")
        assert isinstance(stmts[-1], ast.Return)

    def test_decl_group(self):
        (stmt,) = self._body("int a = 1, b = 2;")
        assert isinstance(stmt, ast.DeclGroup)
        assert len(stmt.decls) == 2


class TestExpressions:
    def _expr(self, text):
        unit = parse(f"int g; void f() {{ g = {text}; }}")
        return unit.decls[1].body.statements[0].expr.value

    def test_precedence(self):
        expr = self._expr("1 + 2 * 3")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert expr.right.op == "*"

    def test_associativity(self):
        expr = self._expr("10 - 3 - 2")
        assert expr.op == "-" and expr.left.op == "-"

    def test_ternary(self):
        expr = self._expr("1 ? 2 : 3")
        assert isinstance(expr, ast.Conditional)

    def test_cast_vs_paren(self):
        assert isinstance(self._expr("(int) 1.5"), ast.Cast)
        assert isinstance(self._expr("(1) + 2"), ast.Binary)

    def test_sizeof_forms(self):
        assert isinstance(self._expr("sizeof(int)"), ast.SizeOf)
        assert isinstance(self._expr("sizeof g"), ast.SizeOf)

    def test_postfix_chains(self):
        expr = self._expr("a.b[1]->c(2)")
        assert isinstance(expr, ast.Call)
        assert isinstance(expr.func, ast.Member)

    def test_unary_stack(self):
        expr = self._expr("-!~x")
        assert expr.op == "-" and expr.operand.op == "!"

    def test_assignment_right_associative(self):
        unit = parse("void f() { int a; int b; a = b = 1; }")
        stmt = unit.decls[0].body.statements[-1]
        assert isinstance(stmt.expr.value, ast.Assign)


class TestParseErrors:
    @pytest.mark.parametrize("source", [
        "int f( {",
        "int x = ;",
        "void f() { if (1 ; }",
        "void f() { return 1 }",
        "int a[,];",
        "struct { int x; };",  # anonymous structs unsupported
        "void f() { (int; }",
    ])
    def test_rejects(self, source):
        with pytest.raises(ParseError):
            parse(source)

    def test_unsized_array_without_init(self):
        with pytest.raises(ParseError):
            parse("int a[];")
