"""Disassembler and IR printer round trips."""

from repro.compiler import CompileOptions, compile_and_link, compile_to_ir
from repro.ir.printer import function_to_text, summarize
from repro.omnivm.disasm import disassemble_bytes, disassemble_program


def test_disassemble_bytes_roundtrip():
    program = compile_and_link(["int main() { return 3; }"])
    listing = disassemble_bytes(program.text_image)
    assert "li" in listing
    assert "jr" in listing
    assert listing.count("\n") + 1 == len(program.instrs)


def test_disassemble_program_symbols_and_targets():
    program = compile_and_link(["""
    int helper(int a) { return a + 1; }
    int main() { return helper(4); }
    """])
    listing = disassemble_program(program)
    assert "helper:" in listing and "main:" in listing
    assert "; -> helper" in listing  # annotated call target


def test_disassemble_single_function():
    program = compile_and_link(["""
    int helper(int a) { return a + 1; }
    int main() { return helper(4); }
    """])
    listing = disassemble_program(program, function="helper")
    assert "helper:" in listing
    assert "main:" not in listing


def test_ir_printer_stable():
    module = compile_to_ir("int f(int a) { return a * 2; }",
                           CompileOptions())
    text1 = function_to_text(module.function("f"))
    module2 = compile_to_ir("int f(int a) { return a * 2; }",
                            CompileOptions())
    text2 = function_to_text(module2.function("f"))
    assert text1 == text2
    assert "func @f" in text1


def test_ir_summarize():
    module = compile_to_ir("int f(int a, int b) { return a * b + a; }",
                           CompileOptions())
    counts = summarize(module)["f"]
    assert counts.get("bin.mul") == 1
    assert counts.get("bin.add") == 1
    assert counts.get("ret") == 1
