"""The pipeline metrics layer."""

import json

from repro import metrics
from repro.compiler import compile_and_link
from repro.metrics import MetricsCollector
from repro.native.profiles import MOBILE_NOSFI, MOBILE_SFI
from repro.runtime.loader import run_module
from repro.runtime.native_loader import run_on_target

from tests.conftest import run_everywhere

SRC = """
int main() {
    int a[8];
    int i;
    int sum;
    sum = 0;
    for (i = 0; i < 8; i = i + 1) {
        a[i] = i * i;
    }
    for (i = 0; i < 8; i = i + 1) {
        sum = sum + a[i];
    }
    emit_int(sum);
    return 0;
}
"""


class TestCollector:
    def test_count_and_stage(self):
        collector = MetricsCollector()
        collector.count("x", 2)
        collector.count("x")
        with collector.stage("phase"):
            pass
        assert collector.counters["x"] == 3
        assert collector.stage_calls["phase"] == 1
        assert collector.stage_seconds["phase"] >= 0.0

    def test_module_helpers_are_noops_when_inactive(self):
        assert not metrics.active()
        metrics.count("ignored")          # must not raise
        with metrics.stage("ignored"):    # must not raise
            pass
        assert metrics.current() is None

    def test_collect_activates_and_restores(self):
        with metrics.collect() as collector:
            assert metrics.active()
            assert metrics.current() is collector
            metrics.count("seen")
        assert not metrics.active()
        assert collector.counters["seen"] == 1

    def test_nested_collectors_both_record(self):
        with metrics.collect() as outer:
            with metrics.collect() as inner:
                metrics.count("both", 5)
        assert outer.counters["both"] == 5
        assert inner.counters["both"] == 5

    def test_merge_and_reset(self):
        a, b = MetricsCollector(), MetricsCollector()
        a.count("n", 1)
        a.record_stage("s", 0.25)
        b.count("n", 2)
        b.record_stage("s", 0.5)
        a.merge(b)
        assert a.counters["n"] == 3
        assert a.stage_seconds["s"] == 0.75
        assert a.stage_calls["s"] == 2
        a.reset()
        assert not a.counters and not a.stage_seconds and not a.stage_calls

    def test_serialization_round_trip(self):
        collector = MetricsCollector()
        collector.count("translate.omni_instrs", 10)
        collector.count("translate.native_instrs", 14)
        data = json.loads(collector.to_json())
        assert data["counters"]["translate.native_instrs"] == 14
        assert data["expansion_ratio"] == 1.4
        assert "translate.omni_instrs" in collector.render()

    def test_expansion_ratio_none_without_data(self):
        assert MetricsCollector().expansion_ratio() is None
        assert MetricsCollector().dynamic_expansion_ratio() is None


class TestPipelineInstrumentation:
    def test_compile_stages_recorded(self):
        with metrics.collect() as collector:
            compile_and_link([SRC])
        for stage in ("frontend.lex", "frontend.parse", "frontend.sema",
                      "ir.build", "opt", "codegen", "link"):
            assert collector.stage_calls[stage] >= 1, stage
        assert collector.counters["frontend.tokens"] > 0
        assert collector.counters["codegen.omni_instrs"] > 0

    def test_interpreter_counts_retired_instructions(self):
        program = compile_and_link([SRC])
        with metrics.collect() as collector:
            code, host = run_module(program)
        assert code == 0
        assert collector.counters["execute.omni.instret"] > 0
        assert collector.stage_calls["execute"] == 1

    def test_translation_counts_match_static_expansion(self):
        program = compile_and_link([SRC])
        with metrics.collect() as collector:
            code, module = run_on_target(program, "mips", MOBILE_SFI)
        assert code == 0
        translated = module.translated
        assert (collector.counters["translate.omni_instrs"]
                == len(program.instrs))
        assert (collector.counters["translate.native_instrs"]
                == len(translated.instrs))
        expansion = translated.static_expansion()
        for category, count in expansion.items():
            assert collector.counters[f"translate.static.{category}"] \
                == count, category
        ratio = collector.expansion_ratio()
        assert ratio is not None and ratio >= 1.0

    def test_sfi_check_counts(self):
        """Verifier-side static counts and machine-side dynamic counts
        must agree with the established Figure-1 category machinery."""
        program = compile_and_link([SRC])
        with metrics.collect() as collector:
            code, module = run_on_target(program, "sparc", MOBILE_SFI)
        assert code == 0
        # Static: the SFI verifier saw the program's store sites (array
        # writes + stack traffic).
        assert collector.counters["verify.sfi.stores_checked"] >= 1
        assert collector.counters["verify.sfi.instrs"] \
            == len(module.translated.instrs)
        # Dynamic: executed-sandbox-instruction count equals the target
        # machine's own per-category accounting.
        assert collector.counters["execute.sfi.dynamic"] \
            == module.machine.category_counts["sfi"] > 0
        assert collector.counters["execute.native.instret"] \
            == module.machine.instret

    def test_no_sfi_counts_without_sfi(self):
        # The CFG verifier runs on every load (it recovers the graph
        # and feeds metrics uniformly), but with SFI off it has no
        # sandbox claim to check: zero stores/jumps checked, zero
        # dynamic SFI instructions retired.
        program = compile_and_link([SRC])
        with metrics.collect() as collector:
            code, module = run_on_target(program, "mips", MOBILE_NOSFI)
        assert code == 0
        assert collector.stage_calls.get("verify.sfi") == 1
        assert collector.counters["verify.sfi.stores_checked"] == 0
        assert collector.counters["verify.sfi.ijumps_checked"] == 0
        assert "execute.sfi.dynamic" not in collector.counters
        assert module.machine.category_counts.get("sfi", 0) == 0

    def test_differential_interpreter_vs_targets(self):
        """All five engines retire the same visible output, and the
        dynamic expansion ratio the collectors derive is sane."""
        outputs = run_everywhere(SRC)
        reference = outputs.pop("omnivm")
        assert reference == [140]
        for arch, values in outputs.items():
            assert values == reference, arch

    def test_dynamic_expansion_ratio(self):
        program = compile_and_link([SRC])
        with metrics.collect() as collector:
            run_module(program)
            run_on_target(program, "x86", MOBILE_SFI)
        ratio = collector.dynamic_expansion_ratio()
        assert ratio is not None and ratio > 1.0
