"""Load-time translators: differential correctness against the reference
interpreter, expansion accounting, and per-target instruction selection.
"""

import pytest

from repro.compiler import CompileOptions, compile_and_link
from repro.native.profiles import (
    MOBILE_NOSFI,
    MOBILE_SFI,
    MOBILE_SFI_NOOPT,
    NATIVE_CC,
    NATIVE_GCC,
    PROFILES,
)
from repro.runtime.loader import run_module
from repro.runtime.native_loader import run_on_target
from repro.translators import ARCHITECTURES, target_spec, translate
from tests.conftest import run_everywhere

#: A corpus of small programs chosen to hit distinct translation paths.
CORPUS = {
    "arith": """
        int main() {
            int a = 123456789;       /* large immediate: ldi paths */
            int b = a / 1000;
            emit_int(a % 97); emit_int(b); emit_int(a * 3 - b);
            return 0;
        }
    """,
    "branches": """
        int main() {
            int i; int hits = 0;
            for (i = -5; i < 40000; i += 997) {
                if (i > 30000) hits += 3;          /* imm > 16 bits? no */
                if (i > 100000 - 70000) hits += 1; /* folded compare */
                if ((uint) i < 3000u) hits += 7;   /* unsigned branch */
            }
            emit_int(hits);
            return 0;
        }
    """,
    "memory": """
        short table[64];
        char bytes[64];
        int main() {
            int i;
            for (i = 0; i < 64; i++) { table[i] = (short)(i * 7); bytes[i] = (char)(i - 32); }
            int s = 0;
            for (i = 0; i < 64; i++) s += table[i] + bytes[i];
            emit_int(s);
            return 0;
        }
    """,
    "floats": """
        int main() {
            double acc = 0.0;
            double x = 1.0;
            int i;
            for (i = 0; i < 20; i++) { acc += x / (i + 1); x = x * 1.25 - 0.125; }
            emit_double(acc);
            emit_int(acc > 30.0);
            return 0;
        }
    """,
    "calls": """
        int deep(int n, int acc) { if (n == 0) return acc; return deep(n - 1, acc + n); }
        int twice(int (*f)(int, int), int a, int b) { return f(a, b) + f(b, a); }
        int main() {
            emit_int(deep(50, 0));
            emit_int(twice(deep, 3, 10));
            return 0;
        }
    """,
}


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_differential_all_targets(name):
    """Interpreter and all four targets agree, with and without SFI."""
    outputs = run_everywhere(CORPUS[name])
    reference = outputs.pop("omnivm")
    for arch, values in outputs.items():
        assert values == reference, f"{arch} diverged on {name}"


@pytest.mark.parametrize("arch", ARCHITECTURES)
@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_all_profiles_run_correctly(arch, profile):
    program = compile_and_link([CORPUS["branches"]])
    _code, host = run_module(program)
    _code2, module = run_on_target(program, arch, PROFILES[profile])
    assert module.host.output_values() == host.output_values()


class TestExpansionAccounting:
    def _translated(self, source, arch, options=MOBILE_SFI):
        program = compile_and_link([source])
        return translate(program, arch, options)

    def test_sfi_category_only_with_sfi(self):
        source = "int g; int main() { g = 1; return 0; }"
        with_sfi = self._translated(source, "mips", MOBILE_SFI)
        without = self._translated(source, "mips", MOBILE_NOSFI)
        assert with_sfi.static_expansion().get("sfi", 0) > 0
        assert without.static_expansion().get("sfi", 0) == 0

    def test_ppc_sfi_shorter_than_mips(self):
        """The paper: PPC's indexed store makes its SFI sequence shorter."""
        source = """
        int g[4];
        int main() { int i; for (i = 0; i < 4; i++) g[i] = i; return 0; }
        """
        mips = self._translated(source, "mips").static_expansion()
        ppc = self._translated(source, "ppc").static_expansion()
        assert ppc.get("sfi", 0) < mips.get("sfi", 0)

    def test_mips_indexed_load_needs_addr(self):
        source = """
        int a[8];
        int sum(int *p, int i) { return p[i]; }
        int main() { return sum(a, 3); }
        """
        mips = self._translated(source, "mips").static_expansion()
        ppc = self._translated(source, "ppc").static_expansion()
        assert mips.get("addr", 0) > 0
        assert ppc.get("addr", 0) == 0  # lwzx maps 1:1

    def test_ppc_compare_expansion(self):
        """Every PPC conditional branch needs an explicit compare."""
        source = """
        int main() {
            int i; int n = 0;
            for (i = 0; i < 100; i++) if (i != 50) n++;
            emit_int(n);
            return 0;
        }
        """
        ppc = self._translated(source, "ppc").static_expansion()
        mips = self._translated(source, "mips").static_expansion()
        assert ppc.get("cmp", 0) > mips.get("cmp", 0)

    def test_mips_bnop_with_unscheduled_translation(self):
        source = CORPUS["branches"]
        noopt = self._translated(source, "mips", MOBILE_SFI_NOOPT)
        opt = self._translated(source, "mips", MOBILE_SFI)
        assert noopt.static_expansion().get("bnop", 0) > 0
        # Scheduling fills some slots.
        assert opt.static_expansion().get("bnop", 0) <= \
            noopt.static_expansion().get("bnop", 0)

    def test_sparc_ldi_vs_x86(self):
        """SPARC's 13-bit immediates spill more constants than x86's 32."""
        source = "int main() { emit_int(123456); emit_int(-99999); return 0; }"
        sparc = self._translated(source, "sparc", MOBILE_NOSFI)
        x86 = self._translated(source, "x86", MOBILE_NOSFI)
        assert sparc.static_expansion().get("ldi", 0) > 0
        assert x86.static_expansion().get("ldi", 0) == 0

    def test_x86_twoop_category(self):
        source = "int f(int a, int b) { return a + b; } int main() { return f(1,2); }"
        x86 = self._translated(source, "x86", MOBILE_NOSFI)
        assert x86.static_expansion().get("twoop", 0) > 0


class TestTimingModel:
    def _cycles(self, source, arch, options=MOBILE_NOSFI):
        program = compile_and_link([source])
        _code, module = run_on_target(program, arch, options)
        return module.machine.cycles, module.machine.instret

    def test_cycles_at_least_instructions_scalar(self):
        cycles, instret = self._cycles(CORPUS["memory"], "mips")
        assert cycles >= instret  # scalar machine can't beat 1 IPC

    def test_dual_issue_pairs_independent_int_fp(self):
        """PPC 601 dual issue: an integer op and an FP op with no
        dependence issue in the same cycle (checked at the cycle-model
        level; whole-program IPC is latency-dominated on tiny kernels)."""
        from repro.targets.base import MInstr, TargetMachine
        from repro.omnivm.memory import Memory
        from repro.translators import target_spec

        machine = TargetMachine(target_spec("ppc"), [], Memory(), {})
        a = MInstr("add", rd=8, rs=9, rt=10)
        b = MInstr("faddd", fd=1, fs=2, ft=3)
        machine._charge(a)
        first = machine._last_issue_cycle
        machine._charge(b)
        assert machine._last_issue_cycle == first  # paired
        # A third instruction cannot triple-issue into the same slot.
        machine._charge(MInstr("add", rd=11, rs=9, rt=10))
        assert machine._last_issue_cycle > first

    def test_scheduling_reduces_cycles(self):
        for arch in ARCHITECTURES:
            with_sched, _ = self._cycles(CORPUS["floats"], arch, MOBILE_SFI)
            without, _ = self._cycles(CORPUS["floats"], arch, MOBILE_SFI_NOOPT)
            assert with_sched <= without, arch

    def test_cc_profile_not_slower(self):
        for arch in ARCHITECTURES:
            gcc, _ = self._cycles(CORPUS["branches"], arch, NATIVE_GCC)
            cc, _ = self._cycles(CORPUS["branches"], arch, NATIVE_CC)
            assert cc <= gcc, arch


class TestSpecs:
    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_register_maps_are_injective(self, arch):
        spec = target_spec(arch)
        values = list(spec.int_map.values())
        assert len(values) == len(set(values)), f"{arch} int map collides"
        fp_values = list(spec.fp_map.values())
        assert len(fp_values) == len(set(fp_values))

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_reserved_do_not_shadow_mapped(self, arch):
        spec = target_spec(arch)
        mapped = set(spec.int_map.values())
        for name, reg in spec.reserved.items():
            if reg < 0 or name in ("sp", "ra"):
                continue
            assert reg not in mapped, f"{arch}: reserved {name} is mapped"

    def test_delay_slot_targets(self):
        assert target_spec("mips").delay_slots
        assert target_spec("sparc").delay_slots
        assert not target_spec("ppc").delay_slots
        assert not target_spec("x86").delay_slots
