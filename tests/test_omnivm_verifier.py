"""Load-time OmniVM module verification (pre-translation checks)."""

import pytest

from repro.errors import VerifyError
from repro.omnivm.asmparser import assemble
from repro.omnivm.isa import VMInstr
from repro.omnivm.linker import link
from repro.omnivm.memory import CODE_BASE
from repro.omnivm.verifier import verify_program


def program_of(body, name="main"):
    return link([assemble(f"""
        .text
        .globl {name}
    {name}:
    {body}
    """)])


class TestAccepts:
    def test_minimal_module(self):
        verify_program(program_of("jr ra"))

    def test_branches_and_calls(self):
        verify_program(program_of("""
        top:
            beqi r1, 0, top
            jal top
            j top
        """))

    def test_hostcalls(self):
        verify_program(program_of("""
            hostcall 0
            hostcall 21
            jr ra
        """))


class TestRejects:
    def test_branch_outside_code_segment(self):
        program = program_of("j main")
        program.instrs[0].imm = 0x00001000
        with pytest.raises(VerifyError, match="outside code segment"):
            verify_program(program)

    def test_misaligned_branch_target(self):
        program = program_of("j main")
        program.instrs[0].imm = CODE_BASE + 4
        with pytest.raises(VerifyError, match="misaligned"):
            verify_program(program)

    def test_branch_beyond_text_end(self):
        program = program_of("j main")
        program.instrs[0].imm = CODE_BASE + 8 * 1000
        with pytest.raises(VerifyError, match="outside code segment"):
            verify_program(program)

    def test_bad_hostcall_index(self):
        program = program_of("hostcall 1\n jr ra")
        program.instrs[0].imm = 12345
        with pytest.raises(VerifyError, match="hostcall"):
            verify_program(program)

    def test_unresolved_symbol(self):
        program = program_of("jr ra")
        program.instrs.insert(0, VMInstr("jal", label="ghost"))
        with pytest.raises(VerifyError, match="unresolved"):
            verify_program(program)

    def test_register_out_of_range(self):
        program = program_of("jr ra")
        program.instrs[0].rs = 31
        with pytest.raises(VerifyError, match="register"):
            verify_program(program)

    def test_loader_refuses_unverifiable_module(self):
        from repro.runtime.loader import load_for_interpretation

        program = program_of("hostcall 1\n jr ra")
        program.instrs[0].imm = 12345
        with pytest.raises(VerifyError):
            load_for_interpretation(program)
        # But an explicit opt-out exists for trusted debugging.
        load_for_interpretation(program, verify=False)
