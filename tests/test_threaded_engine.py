"""The threaded-code execution engine: parity, fuel, fusion, plumbing.

The threaded engines (:mod:`repro.omnivm.threaded` and
:mod:`repro.targets.threaded`) must be observably identical to the
legacy per-instruction loops — same outcomes, registers, memory,
retired-instruction counts, and (for the targets) cycles — while fuel
checks move to basic-block boundaries.  These tests pin:

* fuel-boundary semantics: exact-fuel runs finish on both engines,
  one-short runs raise :class:`~repro.errors.FuelExhausted` on both,
  and an asynchronous (watchdog-style) fuel cut stops a running
  threaded machine at its next block boundary;
* a fixed-seed cross-engine corpus (the difftest generator) executed
  bit-exactly by both engines on all five executors;
* the word-aligned :meth:`Memory.load_u32`/:meth:`Memory.store_u32`
  fast path, including its fall-back to the generic accessors for
  faults, permissions, and segment-straddling accesses;
* the ``count_opcodes`` instrumentation gate on both interpreter loops;
* engine selection through :class:`~repro.engine.Engine`, the loaders,
  and the ``omnicc run --engine`` flag, plus the predecode side table
  of the translation cache;
* the ``BENCH_exec_engine.json`` artifact schema.
"""

import importlib.util
import json
import threading
from pathlib import Path

import pytest

from repro import metrics
from repro.difftest.generator import GenProgram, ProgramGenerator
from repro.difftest.harness import (
    COMPARED_INT_REGS,
    DEFAULT_SEGMENT_SIZE,
    memory_digest,
)
from repro.engine import ARCHITECTURES, Engine, INTERPRETER, RunConfig
from repro.cache import TranslationCache
from repro.errors import (
    AccessViolation,
    FuelExhausted,
    VMRuntimeError,
    VMTrap,
)
from repro.omnivm.isa import VMInstr as I
from repro.omnivm.memory import (
    PERM_READ,
    standard_module_memory,
)
from repro.omnivm.threaded import ThreadedVM
from repro.runtime.loader import load_for_interpretation, run_module
from repro.runtime.native_loader import load_for_target
from repro.targets.threaded import ThreadedTargetMachine
from repro.utils.bits import f64_to_bits

BENCH_PATH = (
    Path(__file__).resolve().parents[1] / "benchmarks" / "bench_exec_engine.py"
)
ARTIFACT_PATH = (
    Path(__file__).resolve().parents[1] / "BENCH_exec_engine.json"
)

EXECUTORS = (INTERPRETER,) + ARCHITECTURES


def build(stmts, name="prog", data=b"\x00" * 64):
    return GenProgram(name, list(stmts), data).build()


def straightline_exit(value=7):
    """li; three adds; return — retires exactly 5 instructions."""
    return build([
        ("instr", I("li", rd=1, imm=value)),
        ("instr", I("addi", rd=2, rs=1, imm=1)),
        ("instr", I("addi", rd=3, rs=2, imm=1)),
        ("instr", I("addi", rd=4, rs=3, imm=1)),
        ("instr", I("jr", rs=14)),
    ])


def infinite_loop():
    """A long straight-line block looping forever (watchdog fodder)."""
    body = [("label", "L")]
    body += [("instr", I("addi", rd=2, rs=2, imm=1))] * 40
    body.append(("instr", I("j", label="L")))
    return build(body, name="spin")


def observe(module, executor):
    """(kind, detail, code, regs, fregs, digest, instret) for one run."""
    try:
        code = module.run()
        kind, detail = "exit", ""
    except VMTrap as trap:
        kind, detail, code = "trap", f"code={trap.code}", None
    except AccessViolation as violation:
        kind, detail, code = (
            "violation", f"{violation.kind}@{violation.address:#010x}", None)
    except FuelExhausted:
        kind, detail, code = "fuel", "", None
    except VMRuntimeError as err:
        kind, detail, code = "vmerror", str(err), None
    if executor == INTERPRETER:
        state = module.vm.state
        regs = tuple(state.regs[i] for i in COMPARED_INT_REGS)
        fregs = tuple(f64_to_bits(f) for f in state.fregs)
        instret = state.instret
    else:
        machine = module.machine
        im, fm = machine.spec.int_map, machine.spec.fp_map
        regs = tuple(machine.regs[im[i]] for i in COMPARED_INT_REGS)
        fregs = tuple(f64_to_bits(machine.fregs[fm[i]]) for i in range(16))
        instret = machine.instret
    return (kind, detail, code, regs, fregs,
            memory_digest(module.memory), instret)


class TestFuelBoundaries:
    """Fuel/watchdog semantics: observably identical cut behaviour."""

    def test_exact_fuel_completes_on_both_engines(self):
        program = straightline_exit()
        for engine in ("legacy", "threaded"):
            module = load_for_interpretation(program, fuel=5, engine=engine)
            assert module.run() == 7, engine
            assert module.vm.state.instret == 5

    def test_one_instruction_short_exhausts_both_engines(self):
        program = straightline_exit()
        for engine in ("legacy", "threaded"):
            module = load_for_interpretation(program, fuel=4, engine=engine)
            with pytest.raises(FuelExhausted):
                module.run()

    def test_native_fuel_cut_agrees_at_every_budget(self):
        """For every fuel value from 1 up to a clean run's retired
        count, legacy and threaded must agree on completes-vs-raises
        (delay slots are never fuel-checked, block cuts land at block
        boundaries — but the *decision* is identical)."""
        program = straightline_exit()
        legacy = load_for_target(program, "mips", engine="legacy")
        legacy.run()
        exact = legacy.machine.instret
        exhausted_somewhere = False
        for fuel in range(1, exact + 1):
            outcomes = []
            for engine in ("legacy", "threaded"):
                module = load_for_target(program, "mips", fuel=fuel,
                                         engine=engine)
                try:
                    code = module.run()
                    outcomes.append(("exit", code, module.machine.instret))
                except FuelExhausted:
                    outcomes.append(("fuel",))
                    exhausted_somewhere = True
            assert outcomes[0] == outcomes[1], (
                f"fuel={fuel}: {outcomes[0]} != {outcomes[1]}")
        assert exhausted_somewhere
        assert outcomes[0][0] == "exit" and outcomes[0][1] == 7

    def test_watchdog_cut_stops_threaded_interpreter_mid_run(self):
        """An asynchronous fuel cut (what the service watchdog does)
        must stop a threaded run at the next block boundary."""
        module = load_for_interpretation(
            infinite_loop(), fuel=10**15, engine="threaded")
        assert isinstance(module.vm, ThreadedVM)
        failures = []
        started = threading.Event()

        def spin():
            started.set()
            try:
                module.run()
                failures.append("run returned")
            except FuelExhausted:
                pass
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append(repr(exc))

        thread = threading.Thread(target=spin)
        thread.start()
        started.wait()
        while module.vm.state.instret < 100:  # let it enter the loop
            pass
        module.vm.fuel = -1
        thread.join(timeout=30)
        assert not thread.is_alive(), "fuel cut did not stop the module"
        assert not failures, failures
        assert module.vm.state.instret > 100

    def test_watchdog_cut_stops_threaded_target_mid_run(self):
        module = load_for_target(
            infinite_loop(), "sparc", fuel=10**15, engine="threaded")
        assert isinstance(module.machine, ThreadedTargetMachine)
        failures = []

        def spin():
            try:
                module.run()
                failures.append("run returned")
            except FuelExhausted:
                pass
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append(repr(exc))

        thread = threading.Thread(target=spin)
        thread.start()
        while module.machine.instret < 100:
            pass
        module.machine.fuel = -1
        thread.join(timeout=30)
        assert not thread.is_alive(), "fuel cut did not stop the module"
        assert not failures, failures

    def test_fault_instret_parity_across_engines(self):
        """A mid-block access violation charges exactly the retired
        prefix — identical on both engines, interpreter and targets."""
        program = build([
            ("instr", I("addi", rd=2, rs=0, imm=64)),
            ("instr", I("addi", rd=3, rs=0, imm=1)),
            ("instr", I("lw", rd=5, rs=2, imm=0)),  # load 0x40: unmapped
            ("instr", I("jr", rs=14)),
        ], name="fault")
        for executor in EXECUTORS:
            runs = []
            for engine in ("legacy", "threaded"):
                if executor == INTERPRETER:
                    module = load_for_interpretation(program, engine=engine)
                else:
                    module = load_for_target(program, executor,
                                             engine=engine)
                runs.append(observe(module, executor))
            assert runs[0] == runs[1], f"{executor}: {runs[0]} != {runs[1]}"
        # at minimum the interpreter sees the raw wild-load violation
        module = load_for_interpretation(program, engine="threaded")
        assert observe(module, INTERPRETER)[0] == "violation"


class TestCrossEngineCorpus:
    """Fixed-seed generator corpus: bit-exact between the legacy,
    threaded, and (on the interpreter) JIT engines on every executor
    (the satellite-f pin).  JIT runs force the heat threshold to 1 so
    every dispatched entry actually executes as a compiled superblock."""

    SEED = "threaded-regression"
    COUNT = 12

    def test_corpus_bit_exact(self):
        generator = ProgramGenerator(self.SEED)
        for index in range(self.COUNT):
            program = generator.program(index).build()
            for executor in EXECUTORS:
                engines = (("legacy", "threaded", "jit")
                           if executor == INTERPRETER
                           else ("legacy", "threaded"))
                runs = []
                for engine in engines:
                    if executor == INTERPRETER:
                        module = load_for_interpretation(
                            program, fuel=1_000_000,
                            segment_size=DEFAULT_SEGMENT_SIZE,
                            engine=engine)
                        if engine == "jit":
                            module.vm._jit_heat = 1
                    else:
                        module = load_for_target(
                            program, executor, fuel=20_000_000,
                            segment_size=DEFAULT_SEGMENT_SIZE,
                            engine=engine)
                    runs.append(observe(module, executor))
                for engine, run in zip(engines[1:], runs[1:]):
                    assert run == runs[0], (
                        f"program {index} on {executor}/{engine}: "
                        f"{runs[0][:3]} != {run[:3]}")


class TestWordAccessors:
    """Memory.load_u32/store_u32: fast path + exact fallback faults."""

    def make_memory(self):
        return standard_module_memory(b"\x00" * 64, b"\x12\x34\x56\x78",
                                      segment_size=1 << 16)

    def test_roundtrip_matches_generic_path(self):
        memory = self.make_memory()
        address = 0x20000008
        memory.store_u32(address, 0xDEADBEEF)
        assert memory.load_u32(address) == 0xDEADBEEF
        assert memory.load(address, 4) == 0xDEADBEEF
        memory.store(address, 4, 0x01020304)
        assert memory.load_u32(address) == 0x01020304

    def test_store_masks_to_32_bits(self):
        memory = self.make_memory()
        memory.store_u32(0x20000000, 0x1_FFFF0001)
        assert memory.load_u32(0x20000000) == 0xFFFF0001

    def test_write_count_increments_on_fast_path(self):
        memory = self.make_memory()
        memory.store_u32(0x20000000, 1)  # generic (cache cold)
        before = memory.write_count
        memory.store_u32(0x20000004, 2)  # fast path (cache warm)
        assert memory.write_count == before + 1

    def test_unmapped_load_raises_same_violation_as_generic(self):
        memory = self.make_memory()
        with pytest.raises(AccessViolation) as fast:
            memory.load_u32(0x00000040)
        with pytest.raises(AccessViolation) as generic:
            memory.load(0x00000040, 4)
        assert str(fast.value) == str(generic.value)
        assert "unmapped" in str(fast.value)

    def test_store_to_readonly_segment_denied(self):
        memory = self.make_memory()
        memory.load_u32(0x10000000)  # prime the segment cache with code
        with pytest.raises(AccessViolation) as err:
            memory.store_u32(0x10000000, 1)
        assert "denied by segment 'code'" in str(err.value)

    def test_segment_end_straddle_falls_back_and_faults(self):
        memory = self.make_memory()
        limit = memory.segment_named("data").limit
        memory.load_u32(limit - 4)  # prime cache; in-bounds
        with pytest.raises(AccessViolation):
            memory.load_u32(limit - 2)  # straddles the segment end
        with pytest.raises(AccessViolation):
            memory.store_u32(limit - 2, 5)

    def test_readonly_data_store_denied_without_priming(self):
        memory = standard_module_memory(
            b"\x00" * 64, b"\x00" * 8, segment_size=1 << 16,
            data_writable=False)
        with pytest.raises(AccessViolation) as err:
            memory.store_u32(0x20000000, 1)
        assert "denied by segment 'data'" in str(err.value)
        assert memory.segments and all(
            seg.perms != 0 for seg in memory.segments)

    def test_perm_revocation_respected_by_fast_path(self):
        memory = self.make_memory()
        memory.store_u32(0x20000000, 7)   # prime cache with data segment
        memory.set_perms("data", PERM_READ)
        with pytest.raises(AccessViolation):
            memory.store_u32(0x20000000, 8)
        assert memory.load_u32(0x20000000) == 7


class TestOpcodeCountGate:
    """opcode_counts only accumulates when count_opcodes is set."""

    def test_disabled_by_default_on_both_engines(self):
        for engine in ("legacy", "threaded"):
            module = load_for_interpretation(straightline_exit(),
                                             engine=engine)
            assert module.run() == 7
            assert module.vm.opcode_counts == {}

    def test_enabled_counts_match_across_engines(self):
        counts = []
        for engine in ("legacy", "threaded"):
            module = load_for_interpretation(straightline_exit(),
                                             engine=engine)
            module.vm.count_opcodes = True
            assert module.run() == 7
            counts.append(dict(module.vm.opcode_counts))
            assert sum(module.vm.opcode_counts.values()) == \
                module.vm.state.instret
        assert counts[0] == counts[1] == {"li": 1, "addi": 3, "jr": 1}


class TestEnginePlumbing:
    """Engine selection through the facade, loaders, and cache."""

    def test_unknown_engine_rejected_everywhere(self):
        program = straightline_exit()
        with pytest.raises(ValueError):
            load_for_interpretation(program, engine="bogus")
        with pytest.raises(ValueError):
            load_for_target(program, "mips", engine="bogus")
        with pytest.raises(ValueError):
            Engine(execution_engine="bogus")

    def test_engine_default_and_per_call_override(self):
        from repro.omnivm.interp import OmniVM
        from repro.targets.base import TargetMachine

        engine = Engine(target="mips", cache=False)
        program = straightline_exit()
        module = engine.load(program)
        assert isinstance(module.machine, ThreadedTargetMachine)
        module = engine.load(program, config=RunConfig(engine="legacy"))
        assert type(module.machine) is TargetMachine
        module = engine.load(program, target=INTERPRETER)
        assert isinstance(module.vm, ThreadedVM)
        module = engine.load(program, target=INTERPRETER,
                             config=RunConfig(engine="legacy"))
        assert type(module.vm) is OmniVM

        legacy_engine = Engine(target="mips", cache=False,
                               execution_engine="legacy")
        assert type(legacy_engine.load(program).machine) is TargetMachine

    def test_predecode_cache_round_trip(self):
        engine = Engine(target="mips")
        program = straightline_exit()
        engine.run(program)
        engine.run(program, target=INTERPRETER)
        stats = engine.cache.stats()
        assert stats.predecode_hits == 0
        assert stats.predecode_misses == 2
        engine.run(program)
        engine.run(program, target=INTERPRETER)
        stats = engine.cache.stats()
        assert stats.predecode_hits == 2
        payload = stats.to_dict()
        assert payload["predecode_hits"] == 2
        assert payload["predecode_misses"] == 2

    def test_invalidate_drops_predecode_entries(self):
        engine = Engine(target="mips")
        program = straightline_exit()
        engine.run(program)
        engine.cache.invalidate(program=program)
        before = engine.cache.stats().predecode_misses
        engine.run(program)
        assert engine.cache.stats().predecode_misses == before + 1

    def test_predecode_eviction_is_silent(self):
        cache = TranslationCache(capacity=1)
        cache.put_predecoded(("predecode-omni", "a"), object())
        cache.put_predecoded(("predecode-omni", "b"), object())
        assert cache.stats().evictions == 0
        assert cache.get_predecoded(("predecode-omni", "a")) is None
        assert cache.get_predecoded(("predecode-omni", "b")) is not None

    def test_threaded_metrics_counters(self):
        collector = metrics.MetricsCollector()
        program = straightline_exit()
        with metrics.collect(collector):
            module = load_for_target(program, "ppc", engine="threaded")
            module.run()
        counters = collector.counters
        assert counters.get("execute.predecode_ms", 0) > 0
        assert counters.get("execute.blocks", 0) > 0

    def test_fusion_counter_counts_superinstructions(self):
        """A cmpi+bcc loop on a cc machine must fuse (ppc lists the
        pair in its fusion_pairs)."""
        body = [("instr", I("li", rd=2, imm=0))]
        body += [("label", "L"),
                 ("instr", I("addi", rd=2, rs=2, imm=1)),
                 ("instr", I("blti", rs=2, imm2=50, label="L")),
                 ("instr", I("jr", rs=14))]
        program = build(body, name="fuse")
        collector = metrics.MetricsCollector()
        with metrics.collect(collector):
            module = load_for_target(program, "ppc", engine="threaded")
            module.run()
        assert collector.counters.get("execute.fused", 0) > 0

    def test_cli_engine_flag(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "hi.c"
        src.write_text("int main() { emit_int(41 + 1); return 0; }")
        for flag in ("threaded", "legacy"):
            assert main(["run", str(src), "--engine", flag]) == 0
            assert capsys.readouterr().out == "42"
        assert main(["run", str(src), "--arch", "mips",
                     "--engine", "legacy"]) == 0
        assert capsys.readouterr().out == "42"


class TestBenchmarkSmoke:
    """Tier-1 guard on the BENCH_exec_engine.json contract."""

    @pytest.fixture(scope="class")
    def bench(self):
        spec = importlib.util.spec_from_file_location(
            "bench_exec_engine", BENCH_PATH)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_small_payload_validates(self, bench):
        payload = bench.collect_benchmark(
            workloads=("li",), executors=("omnivm", "mips"), repeats=1)
        bench.validate_artifact(payload)
        assert payload["schema_version"] == bench.SCHEMA_VERSION == 3
        assert {r["executor"] for r in payload["results"]} == \
            {"omnivm", "mips"}
        by_executor = {r["executor"]: r for r in payload["results"]}
        # schema v3: every executor, native targets included, carries
        # the jit tier columns
        assert bench.JIT_RESULT_KEYS <= by_executor["omnivm"].keys()
        assert bench.JIT_RESULT_KEYS <= by_executor["mips"].keys()
        assert set(payload["geomean_jit_over_threaded"]) == \
            {"omnivm", "mips"}

    def test_committed_artifact_validates_and_meets_bars(self, bench):
        payload = json.loads(ARTIFACT_PATH.read_text())
        bench.validate_artifact(payload)
        for executor, bar in bench.MIN_SPEEDUP.items():
            geomean = payload["geomean_speedup"][executor]
            assert geomean >= bar, (
                f"{executor}: committed artifact shows {geomean:.2f}x, "
                f"below the {bar:.1f}x bar")
        for executor, bar in bench.MIN_JIT_SPEEDUP.items():
            geomean = payload["geomean_jit_over_threaded"][executor]
            assert geomean >= bar, (
                f"{executor}: committed jit tier shows {geomean:.2f}x "
                f"over threaded, below the {bar:.1f}x bar")


class TestSuperblockDeterminism:
    """Generated superblock source is a pure function of the
    instruction stream: two independent predecodes of the same program
    yield byte-identical source at every entry, so cached compiled
    superblocks are interchangeable across loads."""

    def test_source_byte_identical_across_predecodes(self):
        from repro.omnivm.jit import superblock_source
        from repro.omnivm.threaded import predecode_program

        generator = ProgramGenerator("jit-determinism")
        first = predecode_program(generator.program(0).build())
        second = predecode_program(generator.program(0).build())
        assert first.length == second.length
        for entry in range(first.length):
            a = superblock_source(first, entry)
            b = superblock_source(second, entry)
            assert a == b, f"superblock source diverged at entry {entry}"
            assert "_superblock" in a


# ---------------------------------------------------------------------------
# fused-pair fault attribution
# ---------------------------------------------------------------------------

def _pair_program(first, second):
    """Setup (3 instrs) + the fused pair (indices 3,4) + return.

    ``r2`` holds an unmapped address (0x40), ``r4`` a mapped data
    address, ``r9`` zero; the ``xor`` spacer is in no fusion table, so
    greedy pairing always forms exactly the pair under test.
    """
    return build([
        ("instr", I("li", rd=2, imm=0x40)),
        ("instr", I("li", rd=4, imm=0x20000000)),
        ("instr", I("xor", rd=9, rs=9, rt=9)),
        ("instr", first),
        ("instr", second),
        ("instr", I("jr", rs=14)),
    ], name="fused-fault")


#: Every fusable body shape that can fault, faulting on instruction 1
#: and (where the second instruction accesses memory) on instruction 2.
BODY_FAULT_SHAPES = [
    ("lw_lw_first", I("lw", rd=5, rs=2, imm=0), I("lw", rd=6, rs=4, imm=0), 3),
    ("lw_lw_second", I("lw", rd=5, rs=4, imm=0), I("lw", rd=6, rs=2, imm=0), 4),
    ("lw_addi_first", I("lw", rd=5, rs=2, imm=0), I("addi", rd=7, rs=9, imm=9), 3),
    ("addi_lw_second", I("addi", rd=7, rs=9, imm=9), I("lw", rd=6, rs=2, imm=0), 4),
    ("li_lw_second", I("li", rd=7, imm=42), I("lw", rd=6, rs=2, imm=0), 4),
    ("li_lwx_second", I("li", rd=7, imm=42), I("lwx", rd=6, rs=2, rt=9), 4),
    ("sw_sw_first", I("sw", rs=2, rt=1, imm=0), I("sw", rs=4, rt=1, imm=0), 3),
    ("sw_sw_second", I("sw", rs=4, rt=1, imm=0), I("sw", rs=2, rt=1, imm=0), 4),
    ("addi_sw_second", I("addi", rd=7, rs=9, imm=9), I("sw", rs=2, rt=1, imm=0), 4),
]


class TestFusedPairFaults:
    """A fused pair faulting on instruction 1 vs instruction 2 must
    report ``fault_pc`` of the faulting half and charge exactly the
    retired prefix — identical across legacy, threaded, and JIT tiers
    (the JIT variant forces superblock compilation on first dispatch)."""

    ENGINES = ("legacy", "threaded", "jit", "jit-hot")

    def _run_engines(self, program):
        runs = {}
        for engine in self.ENGINES:
            module = load_for_interpretation(
                program, engine=engine.split("-")[0])
            if engine == "jit-hot":
                module.vm._jit_heat = 1
            obs = observe(module, INTERPRETER)
            state = module.vm.state
            runs[engine] = (obs, state.pc, state.instret)
        return runs

    @pytest.mark.parametrize(
        "name,first,second,fault_index",
        BODY_FAULT_SHAPES, ids=[s[0] for s in BODY_FAULT_SHAPES])
    def test_body_shape(self, name, first, second, fault_index):
        from repro.omnivm.memory import CODE_BASE
        from repro.omnivm.isa import INSTR_SIZE

        program = _pair_program(first, second)
        # prove the pair actually fused
        vm = load_for_interpretation(program, engine="threaded").vm
        body, body_count, _, _, _, fused = vm._threaded.build_block(0)
        assert fused == 1 and body_count == 5 and len(body) == 4
        runs = self._run_engines(program)
        expect_pc = CODE_BASE + fault_index * INSTR_SIZE
        expect_instret = fault_index + 1  # retired prefix + faulting instr
        for engine, (obs, pc, instret) in runs.items():
            assert obs[0] == "violation", (engine, obs[:2])
            assert pc == expect_pc, (engine, hex(pc))
            assert instret == expect_instret, (engine, instret)
        first_run = runs["legacy"]
        for engine in self.ENGINES[1:]:
            assert runs[engine] == first_run, engine

    def test_term_lw_branch_fault_on_first(self):
        """The fused lw+branch terminator faulting on the load."""
        from repro.omnivm.memory import CODE_BASE
        from repro.omnivm.isa import INSTR_SIZE

        program = build([
            ("instr", I("li", rd=2, imm=0x40)),
            ("instr", I("xor", rd=9, rs=9, rt=9)),
            ("instr", I("lw", rd=5, rs=2, imm=0)),
            ("instr", I("beqi", rs=5, imm=0, label="L")),
            ("label", "L"),
            ("instr", I("jr", rs=14)),
        ], name="fused-term-fault")
        vm = load_for_interpretation(program, engine="threaded").vm
        _, body_count, term, _, term_count, fused = \
            vm._threaded.build_block(0)
        assert term is not None and term_count == 2 and fused == 1
        assert body_count == 2
        runs = self._run_engines(program)
        expect_pc = CODE_BASE + 2 * INSTR_SIZE
        for engine, (obs, pc, instret) in runs.items():
            assert obs[0] == "violation", (engine, obs[:2])
            assert pc == expect_pc, (engine, hex(pc))
            assert instret == 3, (engine, instret)

    def test_second_fault_commits_first_result(self):
        """When instruction 2 faults, instruction 1's architectural
        effect is already committed (register write / memory store)."""
        program = _pair_program(
            I("li", rd=7, imm=42), I("lw", rd=6, rs=2, imm=0))
        for engine in ("legacy", "threaded", "jit"):
            module = load_for_interpretation(program, engine=engine)
            with pytest.raises(AccessViolation):
                module.run()
            assert module.vm.state.regs[7] == 42, engine
