"""Linker: symbol resolution, relocations, multi-object programs."""

import pytest

from repro.errors import LinkError
from repro.omnivm.asmparser import assemble
from repro.omnivm.isa import INSTR_SIZE
from repro.omnivm.linker import link
from repro.omnivm.memory import CODE_BASE, DATA_BASE
from repro.runtime.loader import run_module


class TestSymbolResolution:
    def test_cross_object_call(self):
        caller = assemble("""
            .text
            .globl main
        main:
            addi r15, r15, -8
            sw ra, r15, 0
            li r1, 20
            jal helper
            hostcall 1
            li r1, 0
            lw ra, r15, 0
            addi r15, r15, 8
            jr ra
        """, "caller")
        callee = assemble("""
            .text
            .globl helper
        helper:
            addi r1, r1, 22
            jr ra
        """, "callee")
        code, host = run_module(link([caller, callee]))
        assert host.output_values() == [42]

    def test_cross_object_data(self):
        user = assemble("""
            .text
            .globl main
        main:
            li r2, @shared
            lw r1, r2, 0
            jr ra
        """, "user")
        provider = assemble("""
            .data
            .globl shared
        shared:
            .word 1234
        """, "provider")
        code, _ = run_module(link([user, provider]))
        assert code == 1234

    def test_local_symbols_do_not_collide(self):
        a = assemble("""
            .text
            .globl main
        main:
            jal f_a
            jr ra
            .globl f_a
        f_a:
        local:
            li r1, 1
            jr ra
        """, "a")
        b = assemble("""
            .text
            .globl f_b
        f_b:
        local:
            li r1, 2
            jr ra
        """, "b")
        link([a, b])  # both define local label "local"

    def test_undefined_symbol_rejected(self):
        obj = assemble("""
            .text
            .globl main
        main:
            jal missing
            jr ra
        """)
        with pytest.raises(LinkError, match="missing"):
            link([obj])

    def test_duplicate_global_rejected(self):
        a = assemble(".text\n.globl f\nf:\n jr ra", "a")
        b = assemble(".text\n.globl f\nf:\n jr ra", "b")
        with pytest.raises(LinkError, match="duplicate"):
            link([a, b])

    def test_missing_entry_rejected(self):
        obj = assemble(".text\n.globl f\nf:\n jr ra")
        program = link([obj])
        with pytest.raises(LinkError):
            program.entry_address


class TestLayout:
    def test_addresses_in_segments(self):
        obj = assemble("""
            .text
            .globl main
        main:
            jr ra
            .data
            .globl g
        g:
            .word 0
        """)
        program = link([obj])
        assert program.symbols["main"] == CODE_BASE
        assert program.symbols["g"] >= DATA_BASE

    def test_text_concatenation_order(self):
        a = assemble(".text\n.globl main\nmain:\n jr ra", "a")
        b = assemble(".text\n.globl f\nf:\n jr ra\n jr ra", "b")
        program = link([a, b])
        assert program.symbols["f"] == CODE_BASE + 1 * INSTR_SIZE
        assert program.function_ranges["main"] == (0, 1)
        assert program.function_ranges["f"] == (1, 3)

    def test_data_relocation_applied(self):
        obj = assemble("""
            .text
            .globl main
        main:
            li r2, @ptr
            lw r2, r2, 0     ; r2 = *ptr = &value
            lw r1, r2, 0     ; r1 = value
            jr ra
            .data
            .globl ptr
        ptr:
            .word @value
            .globl value
        value:
            .word 777
        """)
        code, _ = run_module(link([obj]))
        assert code == 777

    def test_bss_zero_initialized(self):
        obj = assemble("""
            .text
            .globl main
        main:
            li r2, @buf
            lw r1, r2, 4
            jr ra
        """)
        obj.bss_size = 64
        obj.define("buf", "bss", 0)
        code, _ = run_module(link([obj]))
        assert code == 0

    def test_text_image_is_executable_bytes(self):
        obj = assemble(".text\n.globl main\nmain:\n li r1, 9\n jr ra")
        program = link([obj])
        assert len(program.text_image) == 2 * INSTR_SIZE
