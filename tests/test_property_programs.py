"""Property-based whole-program testing with hypothesis.

Generates small MiniC programs with real control flow (assignments,
if/else, bounded while loops over a fixed set of int variables) and
checks two strong properties:

1. **optimization soundness** — O0 and O2 builds emit identical output;
2. **translation soundness** — the reference interpreter and a rotating
   simulated target (with SFI) emit identical output.

The generator only produces terminating programs (loops are bounded by
construction) and avoids division (trap paths are tested separately).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CompileOptions, compile_and_link
from repro.runtime.loader import run_module
from repro.runtime.native_loader import run_on_target
from repro.native.profiles import MOBILE_SFI

VARS = ["a", "b", "c", "d"]

_atoms = st.one_of(
    st.integers(min_value=-50, max_value=50).map(str),
    st.sampled_from(VARS),
)


def _expr(depth):
    if depth == 0:
        return _atoms
    sub = _expr(depth - 1)
    return st.one_of(
        _atoms,
        st.tuples(sub, st.sampled_from(["+", "-", "*", "&", "|", "^"]), sub)
        .map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
        st.tuples(sub, st.sampled_from(["<", ">", "==", "!="]), sub)
        .map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
    )


@st.composite
def _stmt(draw, depth):
    kind = draw(st.sampled_from(
        ["assign", "assign", "assign", "if", "while", "emit"]
        if depth > 0 else ["assign", "emit"]
    ))
    if kind == "assign":
        var = draw(st.sampled_from(VARS))
        value = draw(_expr(2))
        return f"{var} = {value};"
    if kind == "emit":
        return f"emit_int({draw(_expr(2))});"
    if kind == "if":
        cond = draw(_expr(1))
        then = draw(_block(depth - 1))
        if draw(st.booleans()):
            other = draw(_block(depth - 1))
            return f"if ({cond}) {{ {then} }} else {{ {other} }}"
        return f"if ({cond}) {{ {then} }}"
    # Bounded while: a per-depth counter guarantees termination even
    # when loops nest (a shared counter would let an inner loop reset
    # the outer loop's progress, making the outer loop effectively
    # infinite — only the fuel limit would stop it, very slowly).
    body = draw(_block(depth - 1))
    bound = draw(st.integers(min_value=1, max_value=6))
    counter = f"t{depth}"
    return (f"{counter} = 0; while ({counter} < {bound}) "
            f"{{ {counter} = {counter} + 1; {body} }}")


@st.composite
def _block(draw, depth):
    statements = draw(st.lists(_stmt(depth), min_size=1, max_size=3))
    return " ".join(statements)


@st.composite
def programs(draw):
    init = " ".join(
        f"int {v} = {draw(st.integers(min_value=-20, max_value=20))};"
        for v in VARS
    )
    body = draw(_block(2))
    return (
        f"int main() {{ {init} int t0 = 0; int t1 = 0; int t2 = 0; {body} "
        f"emit_int(a); emit_int(b); emit_int(c); emit_int(d); return 0; }}"
    )


@settings(max_examples=25, deadline=None)
@given(source=programs())
def test_optimizer_soundness_on_random_programs(source):
    _c0, host0 = _run(source, opt_level=0)
    _c2, host2 = _run(source, opt_level=2)
    assert host0.output_values() == host2.output_values()


@settings(max_examples=15, deadline=None)
@given(source=programs(), arch=st.sampled_from(["mips", "sparc", "ppc", "x86"]))
def test_translation_soundness_on_random_programs(source, arch):
    program = compile_and_link([source])
    _code, host = run_module(program)
    _code2, module = run_on_target(program, arch, MOBILE_SFI)
    assert module.host.output_values() == host.output_values()


def _run(source, **options):
    program = compile_and_link([source], CompileOptions(**options))
    return run_module(program)
