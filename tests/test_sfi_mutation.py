"""The sandbox-escape mutation fuzzer for the SFI verifier.

The fuzzer (``repro.difftest.sfi_mutator``) is the adversarial half of
the verification story: it mutates *verified* translations with the
escapes an attacker would try — dropped/reordered/retargeted guards,
widened sp updates, redirected store bases, clobbered dedicated
registers, raw indirect jumps — and demands that the verifier kill
every unsafe mutant while behavior-preserving mutants keep verifying.

Covered here:

* exhaustive single-mutation classification on a store+indirect-call
  module for every target: each unsafe candidate is killed, each safe
  candidate is accepted (no survivors, nothing over-tight);
* composite mutants: expectation is the OR of site-disjoint parts;
* the fixed-seed end-to-end run pinned by the acceptance criteria:
  100% kill-rate, zero survivors, zero over-tight rejections;
* determinism of the seeded run;
* ddmin minimization of survivors (exercised by stubbing the verifier
  to accept everything, since the real one leaves nothing to shrink);
* clone isolation: evaluating mutants never perturbs the original.
"""

import pytest

from repro import metrics
from repro.compiler import compile_and_link
from repro.difftest import sfi_mutator
from repro.difftest.sfi_mutator import (
    SfiMutator,
    clone_module,
    evaluate_mutant,
    run_sfi_mutation_fuzz,
)
from repro.native.profiles import MOBILE_SFI
from repro.translators import ARCHITECTURES, translate

#: A module with sandboxed stores AND a sandboxed indirect call, so the
#: candidate set spans every mutation operator family.
SOURCE = """
int g[16];
int f(int *p, int i, int v) { p[i] = v; return p[i]; }
int main() {
    int (*fp)(int *, int, int) = f;
    return fp(g, 3, 9);
}
"""


def _mutator(arch):
    program = compile_and_link([SOURCE])
    module = translate(program, arch, MOBILE_SFI)
    analysis = sfi_mutator.verify_sfi(module)
    return module, SfiMutator(module, analysis)


class TestCandidates:
    def test_operator_families_present(self):
        _module, mutator = _mutator("mips")
        kinds = {m.kind for m in mutator.candidates()}
        assert {"drop-guard", "retarget-guard", "redirect-store",
                "raw-jump", "clobber-dedicated", "tweak-value"} <= kinds

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_every_single_mutation_classified_correctly(self, arch):
        """The core soundness/precision check, exhaustively: every
        unsafe candidate must be killed, every safe one accepted."""
        module, mutator = _mutator(arch)
        candidates = mutator.candidates()
        assert candidates, arch
        wrong = []
        for mutation in candidates:
            verdict, _error = evaluate_mutant(module, mutator, [mutation])
            if verdict in ("survived", "overtight"):
                wrong.append((verdict, mutation.describe()))
        assert not wrong, wrong

    def test_composite_expectation_is_or_of_parts(self):
        module, mutator = _mutator("mips")
        candidates = mutator.candidates()
        unsafe = next(m for m in candidates if m.expected == "unsafe")
        safe = next(m for m in candidates
                    if m.expected == "safe" and m.site != unsafe.site)
        verdict, error = evaluate_mutant(module, mutator, [safe, unsafe])
        assert verdict == "killed"
        assert error

    def test_clone_isolation(self):
        module, mutator = _mutator("mips")
        before = [str(instr) for instr in module.instrs]
        for mutation in mutator.candidates()[:8]:
            evaluate_mutant(module, mutator, [mutation])
        assert [str(instr) for instr in module.instrs] == before
        sfi_mutator.verify_sfi(module)  # the original still verifies


class TestSeededRun:
    @pytest.fixture(scope="class")
    def summary(self):
        return run_sfi_mutation_fuzz(count=6, seed="sfi-mutants-tier1",
                                     mutants_per_module=4)

    def test_full_kill_rate_on_fixed_seed(self, summary):
        assert summary.unsafe_total > 0
        assert summary.safe_total > 0
        assert summary.kill_rate == 1.0
        assert summary.clean, summary.render()

    def test_summary_shape(self, summary):
        payload = summary.to_dict()
        assert payload["modules"] > 0
        assert payload["mutants"] == (payload["unsafe_total"]
                                      + payload["safe_total"])
        assert payload["survivors"] == [] and payload["overtight"] == []
        assert set(payload["targets"]) == set(ARCHITECTURES)
        assert "kill-rate 100.0%" in summary.render()

    def test_deterministic_for_a_seed(self, summary):
        again = run_sfi_mutation_fuzz(count=6, seed="sfi-mutants-tier1",
                                      mutants_per_module=4)
        assert again.to_dict() == summary.to_dict()

    def test_metrics_family_recorded(self):
        with metrics.collect() as collector:
            run_sfi_mutation_fuzz(count=1, seed="sfi-metrics",
                                  targets=("mips",), mutants_per_module=2)
        counters = collector.counters
        assert counters["difftest.sfi.modules"] >= 1
        assert counters["difftest.sfi.mutants"] >= 1
        assert counters.get("difftest.sfi.survivors", 0) == 0


class TestMinimization:
    def test_survivors_are_shrunk_to_a_minimal_escape(self, monkeypatch):
        """The real verifier leaves no survivors to shrink, so stub it
        out: with every mutant accepted, a composite escape must ddmin
        down to a single unsafe mutation."""
        module, mutator = _mutator("mips")
        candidates = mutator.candidates()
        unsafe = next(m for m in candidates if m.expected == "unsafe")
        padding = [m for m in candidates if m.site != unsafe.site][:2]
        assert padding
        monkeypatch.setattr(sfi_mutator, "verify_sfi",
                            lambda _module, policy=None: None)
        minimized, checks = sfi_mutator._minimize_survivor(
            module, mutator, padding + [unsafe])
        assert checks > 0
        assert len(minimized) == 1
        assert minimized[0].expected == "unsafe"


class TestTemplatePrecondition:
    """The fuzzer refuses to run over broken guard templates: a
    template bug must fail loudly as a model-check counterexample, not
    masquerade as a storm of mutant verdicts."""

    def test_broken_template_fails_before_fuzzing(self, monkeypatch):
        from repro.errors import VerifyError
        from repro.sfi import rewrite

        real = rewrite.sandbox_store_address

        def drops_offset(spec, policy, base_reg, offset, index_reg,
                         omni_addr):
            if index_reg is not None:
                offset = 0  # the historical base+index+offset bug
            return real(spec, policy, base_reg, offset, index_reg,
                        omni_addr)

        monkeypatch.setattr(rewrite, "sandbox_store_address", drops_offset)
        with pytest.raises(VerifyError, match="model check failed"):
            run_sfi_mutation_fuzz(count=1, seed="precondition",
                                  targets=("mips",), mutants_per_module=1)

    def test_precondition_is_memoized_across_runs(self, monkeypatch):
        from repro.sfi import modelcheck

        calls = {"n": 0}
        real = modelcheck.check_templates

        def counting(archs=None, policies=None):
            calls["n"] += 1
            return real(archs, policies)

        monkeypatch.setattr(modelcheck, "check_templates", counting)
        modelcheck._PRECONDITION_OK.clear()
        for _ in range(2):
            run_sfi_mutation_fuzz(count=1, seed="memo",
                                  targets=("mips",), mutants_per_module=1)
        assert calls["n"] == 1
