"""Evaluation-harness plumbing: caching, table assembly, rendering.

These tests exercise the runner/table machinery WITHOUT paying for full
workload simulations, by stubbing the execution layer.
"""

import json

import pytest

from repro.evalharness.runner import RunKey, Runner, RunResult
from repro.evalharness.tables import PAPER_TABLE1, TableResult


class StubRunner(Runner):
    """Runner with a deterministic fake executor (no simulation)."""

    def __init__(self, tmp_path):
        self.executions = 0
        super().__init__(cache_path=tmp_path / "cache.json")

    def _execute(self, key: RunKey) -> RunResult:
        self.executions += 1
        base = {"mobile-sfi": 110, "mobile-nosfi": 100,
                "native-cc": 95, "native-gcc": 100,
                "interp": 50}[key.profile]
        bump = (hash((key.workload, key.arch)) % 7)
        return RunResult(key, base * 100 + bump, base * 90, 5000,
                         {"sfi": 10, "base": 90})

    def omni_instret(self, workload, num_regs=16):
        return 5000


class TestRunnerCaching:
    def test_memory_cache_prevents_reexecution(self, tmp_path):
        runner = StubRunner(tmp_path)
        key = RunKey("li", "mips", "mobile-sfi")
        first = runner.run(key)
        second = runner.run(key)
        assert first is second
        assert runner.executions == 1

    def test_disk_cache_survives_new_runner(self, tmp_path):
        runner = StubRunner(tmp_path)
        key = RunKey("li", "mips", "mobile-sfi")
        result = runner.run(key)
        fresh = StubRunner(tmp_path)
        restored = fresh.run(key)
        assert fresh.executions == 0
        assert restored.cycles == result.cycles
        assert restored.categories == result.categories

    def test_stale_stamp_invalidates(self, tmp_path):
        runner = StubRunner(tmp_path)
        runner.run(RunKey("li", "mips", "mobile-sfi"))
        payload = json.loads((tmp_path / "cache.json").read_text())
        payload["stamp"] = "0" * 16
        (tmp_path / "cache.json").write_text(json.dumps(payload))
        fresh = StubRunner(tmp_path)
        fresh.run(RunKey("li", "mips", "mobile-sfi"))
        assert fresh.executions == 1

    def test_corrupt_cache_tolerated(self, tmp_path):
        (tmp_path / "cache.json").write_text("{not json")
        runner = StubRunner(tmp_path)
        runner.run(RunKey("li", "mips", "mobile-sfi"))
        assert runner.executions == 1

    def test_distinct_keys_distinct_runs(self, tmp_path):
        runner = StubRunner(tmp_path)
        runner.run(RunKey("li", "mips", "mobile-sfi"))
        runner.run(RunKey("li", "mips", "mobile-nosfi"))
        runner.run(RunKey("li", "sparc", "mobile-sfi"))
        runner.run(RunKey("li", "mips", "mobile-sfi", num_regs=8))
        assert runner.executions == 4

    def test_cycle_ratio(self, tmp_path):
        runner = StubRunner(tmp_path)
        ratio = runner.cycle_ratio("li", "mips", "mobile-sfi", "native-cc")
        subject = runner.run(RunKey("li", "mips", "mobile-sfi")).cycles
        baseline = runner.run(RunKey("li", "mips", "native-cc")).cycles
        assert ratio == pytest.approx(subject / baseline)


class TestTableRendering:
    def _table(self):
        table = TableResult("Test table", ("mips", "x86"),
                            paper={"li": {"mips": 1.10, "x86": 1.11}})
        table.ratios["li"] = {"mips": 1.07, "x86": 1.02}
        table.ratios["compress"] = {"mips": 1.01, "x86": 0.99}
        table.add_average()
        return table

    def test_average_row(self):
        table = self._table()
        assert table.ratios["average"]["mips"] == pytest.approx(1.04)

    def test_render_contains_everything(self):
        text = self._table().render()
        assert "Test table" in text
        assert "li" in text and "compress" in text and "average" in text
        assert "1.07" in text
        assert "paper reported" in text and "1.10" in text

    def test_missing_cells_render_as_dash(self):
        table = TableResult("t", ("a", "b"))
        table.ratios["w"] = {"a": 1.0}
        assert "-" in table.render()

    def test_paper_reference_numbers_present(self):
        # Guard against typos: the embedded paper numbers must match the
        # published Table 1 averages (1.14, 1.05, 1.21, 1.11).
        averages = {
            arch: sum(PAPER_TABLE1[w][arch] for w in PAPER_TABLE1) / 4
            for arch in ("mips", "sparc", "ppc", "x86")
        }
        assert averages["mips"] == pytest.approx(1.135, abs=0.01)
        assert averages["sparc"] == pytest.approx(1.045, abs=0.01)
        assert averages["ppc"] == pytest.approx(1.21, abs=0.01)
        assert averages["x86"] == pytest.approx(1.11, abs=0.01)
