"""The example applications run end-to-end and demonstrate their claims."""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    return buffer.getvalue()


def test_quickstart():
    out = run_example("quickstart")
    assert "sum of squares 1..10 = 385" in out
    assert "output ok=True" in out
    assert out.count("output ok=True") == 4  # all targets
    assert "access violation" in out
    assert "store was contained" in out


def test_mail_filter():
    out = run_example("mail_filter")
    assert "forwarded=3" in out
    assert "URGENT: the omniware beta ships today" in out
    assert "cheap spam" not in out.split("rejected")[0].replace(
        "spam spam", "")  # spam message was filtered out of forwards
    assert "rejected: module is not authorized to call 'gfx_draw'" in out


def test_document_applet():
    out = run_example("document_applet")
    assert "wave drawn" in out
    assert "handled access violation, cause=1" in out
    assert "recovered=1" in out
    assert out.count("#") > 50  # the canvas rendered


def test_multi_language():
    out = run_example("multi_language")
    assert "lisp triangular(10)  = 55" in out
    assert "asm  double(21)      = 42" in out
    assert out.count("identical output = True") == 4
