"""Failure injection: corrupted modules, hostile inputs, resource limits.

A mobile-code system's loader is an attack surface: these tests feed it
truncated, bit-flipped, and deliberately malformed inputs and require a
clean typed error every time — never a crash, hang, or silent
misexecution.
"""

import pytest

from repro.compiler import CompileOptions, compile_and_link, compile_to_object
from repro.errors import (
    EncodingError,
    FuelExhausted,
    LinkError,
    ObjectFormatError,
    ReproError,
    VerifyError,
)
from repro.omnivm.encoding import decode_program
from repro.omnivm.linker import link
from repro.omnivm.objfile import ObjectModule
from repro.runtime.loader import load_for_interpretation


def sample_object() -> ObjectModule:
    return compile_to_object("""
    int data[4] = {1, 2, 3, 4};
    int main() { emit_int(data[2]); return 0; }
    """, CompileOptions(module_name="sample"))


class TestCorruptObjects:
    def test_truncations_never_crash(self):
        blob = sample_object().to_bytes()
        for cut in range(0, len(blob), 7):
            with pytest.raises(ReproError):
                ObjectModule.from_bytes(blob[:cut])

    def test_bit_flips_rejected_or_structurally_valid(self):
        blob = bytearray(sample_object().to_bytes())
        flipped = 0
        for position in range(4, len(blob), 11):
            mutated = bytearray(blob)
            mutated[position] ^= 0x40
            try:
                obj = ObjectModule.from_bytes(bytes(mutated))
                # Structurally decodable garbage must then be caught by
                # the linker or the load-time verifier, or be a benign
                # data/symbol change; it must never crash Python.
                try:
                    program = link([obj])
                    load_for_interpretation(program)
                except ReproError:
                    pass
            except ReproError:
                flipped += 1
        assert flipped > 0  # plenty of positions break the format

    def test_wrong_magic(self):
        with pytest.raises(ObjectFormatError):
            ObjectModule.from_bytes(b"ELF\x7f" + b"\x00" * 100)

    def test_garbage_text_section(self):
        with pytest.raises(EncodingError):
            decode_program(b"\xff" * 16)


class TestHostileModules:
    def test_infinite_loop_bounded_by_fuel(self):
        program = compile_and_link(["int main() { while (1) ; return 0; }"])
        loaded = load_for_interpretation(program, fuel=50_000)
        with pytest.raises(FuelExhausted):
            loaded.run()

    def test_runaway_recursion_faults_cleanly(self):
        # Stack exhaustion walks off the stack segment into a guard hole.
        from repro.errors import AccessViolation

        program = compile_and_link(["""
        int boom(int n) { int pad[64]; pad[0] = n; return boom(n + 1) + pad[0]; }
        int main() { return boom(0); }
        """])
        loaded = load_for_interpretation(program, fuel=50_000_000)
        with pytest.raises((AccessViolation, FuelExhausted)):
            loaded.run()

    def test_heap_exhaustion_returns_null_not_crash(self, minic):
        values = minic("""
        int main() {
            int total = 0;
            int i;
            for (i = 0; i < 64; i++) {
                int *p = (int *) halloc(1 << 20);
                if (p == 0) { emit_int(i); return 0; }
                total++;
            }
            emit_int(-1);
            return 0;
        }
        """)
        assert values[0] > 0  # some allocations succeeded, then NULL

    def test_duplicate_entry_symbols_rejected(self):
        a = compile_to_object("int main() { return 1; }",
                              CompileOptions(module_name="a"))
        b = compile_to_object("int main() { return 2; }",
                              CompileOptions(module_name="b"))
        with pytest.raises(LinkError):
            link([a, b])

    def test_module_without_main_cannot_start(self):
        obj = compile_to_object("int helper() { return 1; }",
                                CompileOptions(module_name="lib"))
        program = link([obj])
        with pytest.raises((LinkError, VerifyError)):
            load_for_interpretation(program).run()


class TestServiceFaultInjection:
    """The deterministic fault hooks the module-hosting service exposes
    (repro.service.FaultInjector) and how the host degrades under them."""

    SRC = "int main() { emit_int(7); return 0; }"

    def test_injected_faults_fire_in_arming_order_then_disarm(self):
        from repro.errors import TransientFault
        from repro.service import FaultInjector

        faults = FaultInjector()
        faults.fail_translations(count=2)
        for _ in range(2):
            with pytest.raises(TransientFault):
                faults.on_translate("mips")
        faults.on_translate("mips")  # disarmed: no raise
        assert faults.fired == 2

    def test_arch_filter_only_hits_that_target(self):
        from repro.errors import TransientFault
        from repro.service import FaultInjector

        faults = FaultInjector()
        faults.fail_translations(count=-1, arch="sparc")
        faults.on_translate("mips")  # unaffected
        with pytest.raises(TransientFault):
            faults.on_translate("sparc")
        faults.reset()
        faults.on_translate("sparc")  # reset disarms permanent faults

    def test_non_transient_fault_is_a_translator_crash(self):
        from repro.errors import TranslationError
        from repro.service import FaultInjector

        faults = FaultInjector()
        faults.fail_translations(count=1, transient=False)
        with pytest.raises(TranslationError):
            faults.on_translate("mips")

    def test_corrupted_disk_cache_self_heals_under_service(self, tmp_path):
        from repro.cache import TranslationCache
        from repro.engine import Engine
        from repro.service import FaultInjector, ModuleRequest

        cache = TranslationCache(disk_dir=tmp_path)
        engine = Engine(target="mips", cache=cache)
        program = engine.compile(self.SRC)
        with engine.serve(workers=2) as host:
            assert host.run(ModuleRequest(program=program)).ok
        assert FaultInjector().corrupt_disk_entries(cache) >= 1

        # A restarted host (fresh LRU, same disk) must reject the
        # corrupted entry, re-translate, and still serve the request.
        fresh_cache = TranslationCache(disk_dir=tmp_path)
        fresh_engine = Engine(target="mips", cache=fresh_cache)
        with fresh_engine.serve(workers=2) as fresh_host:
            response = fresh_host.run(ModuleRequest(program=program))
        assert response.ok and response.output == "7"
        assert not response.fallback  # healed by re-translation, not
        assert fresh_cache.stats().disk_rejects >= 1  # degradation

    def test_injected_slowness_trips_the_deadline(self):
        from repro.engine import Engine
        from repro.service import FaultInjector, ModuleRequest

        faults = FaultInjector()
        faults.delay_execution(0.3)
        with Engine(target="mips").serve(workers=1, faults=faults) as host:
            response = host.run(ModuleRequest(program=self.SRC,
                                              deadline_seconds=0.05))
        assert response.error == "DeadlineExceeded"
