"""Failure injection: corrupted modules, hostile inputs, resource limits.

A mobile-code system's loader is an attack surface: these tests feed it
truncated, bit-flipped, and deliberately malformed inputs and require a
clean typed error every time — never a crash, hang, or silent
misexecution.
"""

import pytest

from repro.compiler import CompileOptions, compile_and_link, compile_to_object
from repro.errors import (
    EncodingError,
    FuelExhausted,
    LinkError,
    ObjectFormatError,
    ReproError,
    VerifyError,
)
from repro.omnivm.encoding import decode_program
from repro.omnivm.linker import link
from repro.omnivm.objfile import ObjectModule
from repro.runtime.loader import load_for_interpretation


def sample_object() -> ObjectModule:
    return compile_to_object("""
    int data[4] = {1, 2, 3, 4};
    int main() { emit_int(data[2]); return 0; }
    """, CompileOptions(module_name="sample"))


class TestCorruptObjects:
    def test_truncations_never_crash(self):
        blob = sample_object().to_bytes()
        for cut in range(0, len(blob), 7):
            with pytest.raises(ReproError):
                ObjectModule.from_bytes(blob[:cut])

    def test_bit_flips_rejected_or_structurally_valid(self):
        blob = bytearray(sample_object().to_bytes())
        flipped = 0
        for position in range(4, len(blob), 11):
            mutated = bytearray(blob)
            mutated[position] ^= 0x40
            try:
                obj = ObjectModule.from_bytes(bytes(mutated))
                # Structurally decodable garbage must then be caught by
                # the linker or the load-time verifier, or be a benign
                # data/symbol change; it must never crash Python.
                try:
                    program = link([obj])
                    load_for_interpretation(program)
                except ReproError:
                    pass
            except ReproError:
                flipped += 1
        assert flipped > 0  # plenty of positions break the format

    def test_wrong_magic(self):
        with pytest.raises(ObjectFormatError):
            ObjectModule.from_bytes(b"ELF\x7f" + b"\x00" * 100)

    def test_garbage_text_section(self):
        with pytest.raises(EncodingError):
            decode_program(b"\xff" * 16)


class TestHostileModules:
    def test_infinite_loop_bounded_by_fuel(self):
        program = compile_and_link(["int main() { while (1) ; return 0; }"])
        loaded = load_for_interpretation(program, fuel=50_000)
        with pytest.raises(FuelExhausted):
            loaded.run()

    def test_runaway_recursion_faults_cleanly(self):
        # Stack exhaustion walks off the stack segment into a guard hole.
        from repro.errors import AccessViolation

        program = compile_and_link(["""
        int boom(int n) { int pad[64]; pad[0] = n; return boom(n + 1) + pad[0]; }
        int main() { return boom(0); }
        """])
        loaded = load_for_interpretation(program, fuel=50_000_000)
        with pytest.raises((AccessViolation, FuelExhausted)):
            loaded.run()

    def test_heap_exhaustion_returns_null_not_crash(self, minic):
        values = minic("""
        int main() {
            int total = 0;
            int i;
            for (i = 0; i < 64; i++) {
                int *p = (int *) halloc(1 << 20);
                if (p == 0) { emit_int(i); return 0; }
                total++;
            }
            emit_int(-1);
            return 0;
        }
        """)
        assert values[0] > 0  # some allocations succeeded, then NULL

    def test_duplicate_entry_symbols_rejected(self):
        a = compile_to_object("int main() { return 1; }",
                              CompileOptions(module_name="a"))
        b = compile_to_object("int main() { return 2; }",
                              CompileOptions(module_name="b"))
        with pytest.raises(LinkError):
            link([a, b])

    def test_module_without_main_cannot_start(self):
        obj = compile_to_object("int helper() { return 1; }",
                                CompileOptions(module_name="lib"))
        program = link([obj])
        with pytest.raises((LinkError, VerifyError)):
            load_for_interpretation(program).run()
