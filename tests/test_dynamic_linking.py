"""Multi-module dynamic linking (`repro.runtime.linker`).

Covers the link-loader end to end: the three-module demo bit-exact
against its statically linked equivalent on the interpreter and all
four targets, the dynamic-link error family (unresolved imports,
duplicate exports, cycles, revocation), the shared-library translation
cache (one translation serving many programs, selective invalidation
on hot reload), and the inter-module SFI rule (cross-module control
transfers must land on exported symbols).  All tests are fast and
deterministic (tier-1)."""

import importlib.util
import threading
from pathlib import Path

import pytest

from repro.cache import program_digest
from repro.engine import Engine, RunConfig
from repro.errors import (
    CrossModuleViolation,
    DuplicateExportError,
    DynamicLinkError,
    ModuleCycleError,
    ModuleRevokedError,
    UnresolvedImportError,
    VerifyError,
)
from repro.omnivm.isa import INSTR_SIZE
from repro.omnivm.memory import CODE_BASE
from repro.omnivm.verifier import verify_program
from repro.runtime.linker import (
    TEXT_ALIGN_INSTRS,
    ModuleRegistry,
    dynamic_link,
    translate_image,
)
from repro.translators import ARCHITECTURES

BENCH_PATH = (Path(__file__).resolve().parents[1] / "benchmarks"
              / "bench_module_linking.py")

LIB_MATH = """
int scale(int x) { return x * 3; }
int offset(int x) { return x + 1; }
"""

LIB_COMPOSE = """
extern int scale(int x);
extern int offset(int x);
int compose(int x) { return scale(offset(x)); }
"""

APP = """
extern int scale(int x);
extern int compose(int x);
int main() {
    emit_int(scale(10));
    emit_int(compose(6));
    return 0;
}
"""


def make_engine(**kwargs) -> Engine:
    engine = Engine(**kwargs)
    engine.register_module("libmath", LIB_MATH)
    engine.register_module("libcompose", LIB_COMPOSE)
    engine.register_module("app", APP)
    return engine


class TestLinkAndRun:
    def test_three_modules_bit_exact_everywhere(self):
        """The tentpole demo: three dynamically linked modules with
        transitive cross-module calls produce the same output as the
        statically linked program, on every execution engine."""
        engine = make_engine()
        static = engine.compile([LIB_MATH, LIB_COMPOSE, APP])
        _code, ref = engine.run(static)
        expected = ref.host.output_values()
        assert expected == [30, 21]
        for target in ("omnivm",) + tuple(ARCHITECTURES):
            module = engine.load_program(["app"], target=target)
            code = module.run()
            assert code == 0, target
            assert module.host.output_values() == expected, target

    def test_linked_image_verifies(self):
        engine = make_engine()
        image = engine.link_modules(["app"])
        verify_program(image)  # must not raise
        assert [layout.name for layout in image.modules] == [
            "libmath", "libcompose", "app"
        ]
        assert image.modules[0].base_index == 0

    def test_closure_is_minimal(self):
        """Linking a root pulls in only its import closure."""
        engine = make_engine()
        engine.register_module("solo", """
            extern int scale(int x);
            int main() { emit_int(scale(7)); return 0; }
        """)
        image = engine.link_modules(["solo"])
        assert {layout.name for layout in image.modules} == \
            {"libmath", "solo"}

    def test_canonical_layout_shares_library_base(self):
        """A shared library lands at the same base in every image that
        links it, so its translation unit is byte-identical (the
        property the chunk cache keys on)."""
        engine = make_engine()
        engine.register_module("other", """
            extern int offset(int x);
            int main() { emit_int(offset(41)); return 0; }
        """)
        image_a = engine.link_modules(["app"])
        image_b = engine.link_modules(["other"])
        assert image_a.layout_named("libmath").base_index == \
            image_b.layout_named("libmath").base_index
        assert image_a.layout_named("libmath").base_index % \
            TEXT_ALIGN_INSTRS == 0

    def test_run_config_reaches_linked_image(self):
        engine = make_engine()
        module = engine.load_program(
            ["app"], target="mips",
            config=RunConfig(fuel=5_000, engine="legacy"))
        assert module.run() == 0
        assert module.host.output_values() == [30, 21]


class TestLinkErrors:
    def test_unresolved_import(self):
        registry = ModuleRegistry()
        engine = Engine(registry=registry)
        engine.register_module("orphan", """
            extern int nowhere(int x);
            int main() { return nowhere(1); }
        """)
        with pytest.raises(UnresolvedImportError, match="nowhere"):
            dynamic_link(registry, ["orphan"])

    def test_unknown_root(self):
        with pytest.raises(DynamicLinkError, match="ghost"):
            dynamic_link(ModuleRegistry(), ["ghost"])

    def test_duplicate_export(self):
        engine = Engine()
        engine.register_module("a", "int scale(int x) { return x; }")
        engine.register_module("b", "int scale(int x) { return x + x; }")
        engine.register_module("uses", """
            extern int scale(int x);
            int main() { return scale(1); }
        """)
        with pytest.raises(DuplicateExportError, match="scale"):
            engine.link_modules(["uses"])

    def test_duplicate_export_within_closure_without_import(self):
        """Two closure members exporting the same never-imported symbol
        still collide: the image namespace is flat."""
        engine = Engine()
        engine.register_module("a", """
            int shared(int x) { return x; }
            int a_entry(int x) { return x; }
        """)
        engine.register_module("b", """
            extern int a_entry(int x);
            int shared(int x) { return x + 1; }
            int main() { return a_entry(shared(1)); }
        """)
        with pytest.raises(DuplicateExportError, match="shared"):
            engine.link_modules(["b"])

    def test_import_cycle(self):
        engine = Engine()
        engine.register_module("ping", """
            extern int pong(int x);
            int ping(int x) { return pong(x); }
            int main() { return ping(1); }
        """)
        engine.register_module("pong", """
            extern int ping(int x);
            int pong(int x) { return ping(x); }
        """)
        with pytest.raises(ModuleCycleError, match="ping"):
            engine.link_modules(["ping"])

    def test_self_import_is_not_a_cycle(self):
        """A module calling its own export resolves locally."""
        engine = Engine()
        engine.register_module("selfish", """
            int twice(int x) { return x + x; }
            int main() { emit_int(twice(21)); return 0; }
        """)
        module = engine.load_program(["selfish"])
        assert module.run() == 0
        assert module.host.output_values() == [42]


class TestRevocation:
    def test_revoked_module_blocks_new_links(self):
        engine = make_engine()
        engine.revoke_module("libmath")
        with pytest.raises(ModuleRevokedError, match="libmath"):
            engine.link_modules(["app"])

    def test_revoke_while_executing(self):
        """Revocation is a link-time barrier, not an execution abort:
        an image loaded before the revocation runs to completion while
        concurrent new links are refused."""
        engine = make_engine(target="mips")
        module = engine.load_program(["app"])
        failures: list[Exception] = []

        def link_after_revoke():
            try:
                engine.link_modules(["app"])
            except ModuleRevokedError as err:
                failures.append(err)

        engine.revoke_module("libmath")
        thread = threading.Thread(target=link_after_revoke)
        thread.start()
        code = module.run()  # in-flight image unaffected
        thread.join()
        assert code == 0
        assert module.host.output_values() == [30, 21]
        assert len(failures) == 1

    def test_reregistration_clears_revocation(self):
        engine = make_engine()
        engine.revoke_module("libmath")
        engine.register_module("libmath", LIB_MATH)
        module = engine.load_program(["app"])
        assert module.run() == 0

    def test_hot_reload_changes_behavior(self):
        engine = make_engine(target="x86")
        module = engine.load_program(["app"])
        module.run()
        assert module.host.output_values() == [30, 21]
        engine.register_module(
            "libmath", """
            int scale(int x) { return x * 10; }
            int offset(int x) { return x + 1; }
        """)
        module = engine.load_program(["app"])
        module.run()
        assert module.host.output_values() == [100, 70]


class TestSharedLibraryCache:
    def _counters(self, engine: Engine) -> dict:
        return dict(engine.metrics.counters)

    def test_shared_library_translates_once(self):
        """The warm-link property: after the first program, every other
        program linking the same library gets its translation from the
        cache (chunk hits, no chunk misses for the library)."""
        engine = make_engine(target="mips")
        engine.load_program(["app"]).run()
        cold = self._counters(engine)
        assert cold.get("link.chunk_miss", 0) == 3
        engine.register_module("other", """
            extern int scale(int x);
            int main() { emit_int(scale(5)); return 0; }
        """)
        module = engine.load_program(["other"])
        assert module.run() == 0
        warm = self._counters(engine)
        # Second image: libmath served warm, only "other" translated.
        assert warm.get("link.chunk_hit", 0) - \
            cold.get("link.chunk_hit", 0) == 1
        assert warm.get("link.chunk_miss", 0) - \
            cold.get("link.chunk_miss", 0) == 1

    def test_single_module_invalidation_keeps_library_warm(self):
        """Hot-reloading one module drops only its chunks: the next
        link re-translates the reloaded module and still serves the
        untouched library from the cache."""
        engine = make_engine(target="sparc")
        engine.load_program(["app"]).run()
        before = self._counters(engine)
        engine.register_module("app", APP)  # same source, new epoch
        module = engine.load_program(["app"])
        assert module.run() == 0
        after = self._counters(engine)
        assert after.get("link.chunk_hit", 0) - \
            before.get("link.chunk_hit", 0) == 2   # libmath, libcompose
        assert after.get("link.chunk_miss", 0) - \
            before.get("link.chunk_miss", 0) == 1  # reloaded app

    def test_chunk_digests_tracked_per_module(self):
        engine = make_engine(target="ppc")
        image = engine.link_modules(["app"])
        definition = engine.registry.get("libmath")
        layout = image.layout_named("libmath")
        assert definition.chunk_digests
        # The layout's subprogram digest is what the cache keys on.
        assert program_digest(layout.subprogram) in \
            definition.chunk_digests


class TestServiceIntegration:
    def test_modules_request_links_and_runs(self):
        engine = make_engine(target="mips")
        from repro.service import ModuleRequest

        with engine.serve(workers=2) as host:
            response = host.run(ModuleRequest(modules=["app"]))
        assert response.ok
        assert response.output == "3021"
        assert response.arch == "mips"

    def test_link_failures_are_typed_and_counted(self):
        engine = make_engine()
        from repro.service import ModuleRequest

        with engine.serve(workers=1) as host:
            host.revoke_module("libcompose")
            revoked = host.run(ModuleRequest(modules=["app"]))
            unknown = host.run(ModuleRequest(modules=["ghost"]))
            host.register_module("cyc_a", """
                extern int cyc_b(int x);
                int cyc_a(int x) { return cyc_b(x); }
                int main() { return cyc_a(1); }
            """)
            host.register_module("cyc_b", """
                extern int cyc_a(int x);
                int cyc_b(int x) { return cyc_a(x); }
            """)
            cyclic = host.run(ModuleRequest(modules=["cyc_a"]))
            counters = host.stats.to_dict()["counters"]
        assert not revoked.ok
        assert revoked.error == "ModuleRevokedError"
        assert not unknown.ok
        assert unknown.error == "DynamicLinkError"
        assert not cyclic.ok
        assert cyclic.error == "ModuleCycleError"
        assert counters["module_revoked"] == 1
        assert counters["link_cycle"] == 1
        assert counters["module_register"] == 2
        assert counters["module_revoke"] == 1
        assert counters["error"] == 3

    def test_request_takes_program_or_modules_not_both(self):
        engine = make_engine()
        from repro.service import ModuleRequest

        with engine.serve(workers=1) as host:
            both = host.run(ModuleRequest(
                program="int main() { return 0; }", modules=["app"]))
            neither = host.run(ModuleRequest())
        assert not both.ok and both.error == "DynamicLinkError"
        assert not neither.ok and neither.error == "DynamicLinkError"

    def test_hot_reload_through_service(self):
        engine = make_engine(target="x86")
        from repro.service import ModuleRequest

        with engine.serve(workers=1) as host:
            first = host.run(ModuleRequest(modules=["app"]))
            host.register_module("libmath", """
                int scale(int x) { return x * 100; }
                int offset(int x) { return x + 1; }
            """)
            second = host.run(ModuleRequest(modules=["app"]))
        assert first.ok and first.output == "3021"
        assert second.ok and second.output == "1000700"


class TestCrossModuleSFI:
    def _image(self):
        engine = make_engine()
        return engine, engine.link_modules(["app"])

    def test_cross_module_call_must_hit_export(self):
        """Redirecting a cross-module call from an exported symbol to a
        private address inside the provider is rejected by the image
        verifier (the per-module SFI rule)."""
        engine, image = self._image()
        lib = image.layout_named("libmath")
        app = image.layout_named("app")
        exports = set(lib.exports.values())
        # A private (non-exported) instruction address inside libmath.
        private = next(
            addr for addr in range(lib.code_lo, lib.code_hi, INSTR_SIZE)
            if addr not in exports
        )
        # Cross-module control flow is funnelled through the module's
        # trampolines, so the trampoline jump is where a malicious
        # image would aim at a private address.
        start = app.base_index
        patched = False
        for offset in range(app.text_len):
            instr = image.instrs[start + offset]
            if instr.spec.kind in ("jump", "call") and \
                    not app.contains_code(instr.imm & 0xFFFFFFFF):
                instr.imm = private
                patched = True
                break
        assert patched, "app should contain a cross-module transfer"
        with pytest.raises(CrossModuleViolation):
            verify_program(image)

    def test_materialized_code_address_checked(self):
        """A li materializing a foreign *private* code address is as
        illegal as jumping to it (it feeds indirect calls)."""
        engine, image = self._image()
        lib = image.layout_named("libmath")
        app = image.layout_named("app")
        private = next(
            addr for addr in range(lib.code_lo, lib.code_hi, INSTR_SIZE)
            if addr not in set(lib.exports.values())
        )
        start = app.base_index
        for offset in range(app.text_len):
            instr = image.instrs[start + offset]
            if instr.spec.kind == "li":
                instr.imm = private
                break
        with pytest.raises(CrossModuleViolation):
            image.verify_cross_module()

    def test_violation_is_a_verify_error(self):
        assert issubclass(CrossModuleViolation, VerifyError)

    def test_trampolines_are_the_only_cross_module_text(self):
        """Every non-trampoline control transfer in a verified image is
        either intra-module or lands on an export."""
        _engine, image = self._image()
        exports = image.code_export_addrs
        for layout in image.modules:
            start = layout.base_index
            own = layout.text_len - layout.tramp_len
            for offset in range(own):
                instr = image.instrs[start + offset]
                if instr.spec.kind in ("branch", "branchi", "jump",
                                       "call"):
                    target = instr.imm & 0xFFFFFFFF
                    assert layout.contains_code(target) or \
                        target in exports

    def test_per_module_translation_respects_layout_policy(self):
        """translate_image verifies each chunk under its own module's
        sandbox policy and splices to the statically-linked result."""
        engine, image = self._image()
        translated = translate_image(image, "mips")
        entry_native = translated.entry_native
        assert translated.instrs
        assert entry_native is not None
        omni_entry = image.entry_address
        assert translated.omni_to_native[omni_entry] == entry_native
        assert CODE_BASE <= omni_entry


class TestBenchmarkSmoke:
    """Tier-1 guard on the BENCH_module_linking.json contract."""

    @pytest.fixture(scope="class")
    def bench(self):
        spec = importlib.util.spec_from_file_location(
            "bench_module_linking", BENCH_PATH)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    @pytest.fixture(scope="class")
    def payload(self, bench):
        return bench.collect_benchmark(programs=10)

    def test_payload_validates(self, bench, payload):
        bench.validate_artifact(payload)
        assert payload["schema_version"] == bench.SCHEMA_VERSION

    def test_library_translates_once(self, payload):
        total_misses = sum(e["chunk_misses"] for e in payload["results"])
        # Cold pays library + its own program; every warm program pays
        # only itself.
        assert total_misses == payload["programs"] + 1

    def test_warm_link_beats_cold_translate(self, bench, payload):
        assert payload["speedup"] >= bench.MIN_SPEEDUP
        assert payload["lib_instrs"] >= 1500
        assert payload["programs"] >= 10

    def test_invalidation_is_selective(self, payload):
        invalidation = payload["invalidation"]
        assert invalidation["chunk_misses"] == 1
        assert invalidation["chunk_hits"] >= 1


class TestExecutionArtifactLifetime:
    """Revoking (or hot-reloading) any module of a linked image must
    also drop the image-level execution artifacts — the interpreter's
    predecode and the JIT's compiled superblocks — from the cache's
    side table, not just the module's translation chunks."""

    def _image_side_keys(self, engine, digest):
        return [k for k in engine.cache._predecoded
                if k[1] == digest and k[0] in ("predecode-omni",
                                               "jit-omni")]

    def _run_interpreted_hot(self, engine, roots):
        from repro.engine import INTERPRETER

        module = engine.load_program(roots, target=INTERPRETER)
        module.vm._jit_heat = 1  # compile superblocks on first dispatch
        module.run()
        return module

    def test_revoke_drops_predecode_and_jit_entries(self):
        engine = make_engine()
        image = engine.link_modules(["app"])
        digest = program_digest(image)
        module = self._run_interpreted_hot(engine, ["app"])
        assert module.host.output_values() == [30, 21]
        keys = self._image_side_keys(engine, digest)
        assert any(k[0] == "predecode-omni" for k in keys)
        assert any(k[0] == "jit-omni" for k in keys)
        engine.revoke_module("libmath")
        assert self._image_side_keys(engine, digest) == []

    def test_reregistration_drops_image_artifacts(self):
        engine = make_engine()
        image = engine.link_modules(["app"])
        digest = program_digest(image)
        self._run_interpreted_hot(engine, ["app"])
        assert self._image_side_keys(engine, digest)
        engine.register_module("libmath", LIB_MATH)  # hot reload
        assert self._image_side_keys(engine, digest) == []

    def test_revoke_then_relink_runs_new_code(self):
        """End to end: revoke, re-register with different behavior,
        relink — the fresh image must execute the new code, never a
        stale cached artifact of the old image."""
        engine = make_engine()
        module = self._run_interpreted_hot(engine, ["app"])
        assert module.host.output_values() == [30, 21]
        engine.revoke_module("libmath")
        engine.register_module(
            "libmath", """
            int scale(int x) { return x * 7; }
            int offset(int x) { return x + 2; }
        """)
        module = self._run_interpreted_hot(engine, ["app"])
        assert module.host.output_values() == [70, 56]
