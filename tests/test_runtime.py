"""Runtime: host services, heap allocator, loader, exception model."""

import pytest

from repro.compiler import CompileOptions, compile_and_link
from repro.errors import HostCallError, VerifyError
from repro.omnivm.asmparser import assemble
from repro.omnivm.linker import link
from repro.runtime import hostapi
from repro.runtime.host import HeapAllocator, Host
from repro.runtime.loader import load_for_interpretation, run_module
from repro.runtime.native_loader import run_on_target
from repro.native.profiles import MOBILE_SFI
from repro.translators import ARCHITECTURES
from tests.conftest import compile_run


class TestHeapAllocator:
    def test_alloc_returns_distinct_blocks(self):
        heap = HeapAllocator()
        a = heap.alloc(100)
        b = heap.alloc(100)
        assert a != b and a != 0 and b != 0

    def test_free_then_realloc_reuses(self):
        heap = HeapAllocator()
        a = heap.alloc(64)
        heap.free(a)
        assert heap.alloc(64) == a

    def test_size_classes_rounded(self):
        heap = HeapAllocator()
        a = heap.alloc(1)
        b = heap.alloc(1)
        assert b - a >= 8

    def test_free_null_is_noop(self):
        HeapAllocator().free(0)

    def test_double_free_detected(self):
        heap = HeapAllocator()
        a = heap.alloc(16)
        heap.free(a)
        from repro.errors import VMRuntimeError

        with pytest.raises(VMRuntimeError):
            heap.free(a)

    def test_exhaustion_returns_null(self):
        heap = HeapAllocator()
        heap.limit = heap.base + 1024
        assert heap.alloc(4096) == 0

    def test_minic_alloc_roundtrip(self, minic):
        src = """
        int main() {
            int *p = (int *) halloc(16);
            int *q = (int *) halloc(16);
            p[0] = 5; q[0] = 6;
            emit_int(p[0] + q[0]);
            hfree(p); hfree(q);
            int *r = (int *) halloc(16);
            emit_int(r == q || r == p);  /* reuse from the free list */
            return 0;
        }
        """
        assert minic(src) == [11, 1]


class TestHostServices:
    def test_output_text_rendering(self, minic):
        _code, host = compile_run("""
        int main() {
            emit_str("x="); emit_int(42); emit_char(10);
            emit_double(1.5);
            return 0;
        }
        """)
        assert host.output_text() == "x=42\n1.5"

    def test_math_exports(self, minic):
        values = minic("""
        int main() {
            emit_double(host_sqrt(9.0));
            emit_double(host_pow(2.0, 8.0));
            emit_double(host_floor(3.9));
            return 0;
        }
        """)
        assert values == [3.0, 256.0, 3.0]

    def test_rng_deterministic(self):
        v1 = compile_run("int main() { emit_int(host_rand()); emit_int(host_rand()); return 0; }")[1]
        v2 = compile_run("int main() { emit_int(host_rand()); emit_int(host_rand()); return 0; }")[1]
        assert v1.output_values() == v2.output_values()

    def test_clock_is_instruction_count(self):
        _code, host = compile_run("""
        int main() {
            int a = host_clock();
            int i; int s = 0;
            for (i = 0; i < 100; i++) s += i;
            int b = host_clock();
            emit_int(b > a);
            return s & 0;
        }
        """)
        assert host.output_values() == [1]

    def test_export_policy_blocks(self):
        host = Host(exports={"exit", "emit_int"})
        with pytest.raises(HostCallError):
            compile_run("int main() { emit_double(1.0); return 0; }", host=host)

    def test_unknown_index_rejected(self):
        program = link([assemble("""
            .text
            .globl main
        main:
            hostcall 1
            jr ra
        """)])
        # Corrupt the index beyond the table (bypassing the verifier).
        program.instrs[0].imm = 999
        loaded = load_for_interpretation(program, verify=False)
        with pytest.raises(HostCallError):
            loaded.run()

    def test_verifier_catches_bad_hostcall_index(self):
        program = link([assemble("""
            .text
            .globl main
        main:
            hostcall 999
            jr ra
        """)])
        with pytest.raises(VerifyError):
            load_for_interpretation(program)

    def test_default_exports_exclude_privileged(self):
        assert "host_send" not in hostapi.DEFAULT_EXPORTS
        assert "gfx_draw" not in hostapi.DEFAULT_EXPORTS
        assert "emit_int" in hostapi.DEFAULT_EXPORTS

    def test_mailbox_roundtrip(self):
        host = Host(exports=set(hostapi.DEFAULT_EXPORTS) | {"host_send",
                                                            "host_recv"})
        host.inbox = [b"one", b"two"]
        compile_run("""
        char buf[16];
        int main() {
            int n;
            while ((n = host_recv(buf, 16)) >= 0) host_send(buf, n);
            return 0;
        }
        """, host=host)
        assert host.sent == [b"one", b"two"]


class TestExceptionModel:
    HANDLER_PROGRAM = """
    int faults;
    void handler(int cause, uint addr, uint pc) {
        faults++;
        emit_int(cause);
        emit_uint(addr);
        exit(40 + faults);
    }
    int main() {
        faults = 0;
        sethandler(handler);
        int *p = (int *) 0x08000000;  /* unmapped */
        %s
        return 99;                    /* unreachable */
    }
    """

    def test_load_violation_delivered_interpreter(self):
        code, host = compile_run(self.HANDLER_PROGRAM % "emit_int(*p);")
        assert code == 41
        assert host.output_values() == [1, 0x08000000]  # cause=load

    def test_store_violation_delivered_interpreter(self):
        # Stores on the *interpreter* hit segment permissions directly
        # (SFI applies to translated code; the VM model faults).
        code, host = compile_run(self.HANDLER_PROGRAM % "*p = 3;")
        assert code == 41
        assert host.output_values() == [2, 0x08000000]  # cause=store

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_load_violation_delivered_on_targets(self, arch):
        program = compile_and_link([self.HANDLER_PROGRAM % "emit_int(*p);"])
        code, module = run_on_target(program, arch, MOBILE_SFI)
        assert code == 41
        assert module.host.output_values()[0] == 1

    def test_without_handler_violation_escapes(self):
        from repro.errors import AccessViolation

        with pytest.raises(AccessViolation):
            compile_run("""
            int main() { int *p = (int *) 0x08000000; return *p; }
            """)
