"""Tier-1 smoke of the SFI-verifier benchmark.

``benchmarks/`` is not collected by the tier-1 suite, but the
``BENCH_sfi_verifier.json`` artifact contract must not silently rot,
so this test loads the benchmark module by path and drives
``collect_benchmark`` / ``validate_artifact`` on a small program and a
small fixed-seed fuzz run.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.compiler import compile_and_link

BENCH_PATH = (Path(__file__).resolve().parents[1] / "benchmarks"
              / "bench_sfi_verifier.py")

SRC = """
int g[8];
int main() {
    int i;
    for (i = 0; i < 8; i = i + 1) {
        g[i] = i * 3;
    }
    emit_int(g[7]);
    return 0;
}
"""


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location(
        "bench_sfi_verifier", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def payload(bench):
    program = compile_and_link([SRC])
    return bench.collect_benchmark(program=program, archs=("mips", "x86"),
                                   repeats=2, fuzz_programs=2)


class TestBenchmarkSmoke:
    def test_payload_validates(self, bench, payload):
        bench.validate_artifact(payload)
        assert payload["schema_version"] == bench.SCHEMA_VERSION
        assert {entry["arch"] for entry in payload["results"]} \
            == {"mips", "x86"}

    def test_kill_rate_is_total(self, payload):
        fuzz = payload["fuzz"]
        assert fuzz["kill_rate"] == 1.0
        assert fuzz["unsafe_killed"] == fuzz["unsafe_total"] > 0
        assert fuzz["safe_accepted"] == fuzz["safe_total"]

    def test_graph_shape_reported(self, payload):
        for entry in payload["results"]:
            assert entry["blocks"] > 1, entry["arch"]
            assert entry["edges"] > 0
            assert entry["ns_per_instr"] > 0

    def test_artifact_round_trips(self, bench, payload, tmp_path):
        path = bench.write_artifact(payload,
                                    tmp_path / "BENCH_sfi_verifier.json")
        reloaded = json.loads(path.read_text())
        bench.validate_artifact(reloaded)
        assert reloaded == json.loads(json.dumps(payload))

    def test_validator_rejects_schema_drift(self, bench, payload):
        broken = json.loads(json.dumps(payload))
        broken["schema_version"] = bench.SCHEMA_VERSION + 1
        with pytest.raises(AssertionError):
            bench.validate_artifact(broken)
        broken = json.loads(json.dumps(payload))
        del broken["results"][0]["blocks"]
        with pytest.raises(AssertionError):
            bench.validate_artifact(broken)
        broken = json.loads(json.dumps(payload))
        broken["fuzz"]["kill_rate"] = 0.5
        with pytest.raises(AssertionError):
            bench.validate_artifact(broken)

    def test_artifact_default_path_is_repo_root(self, bench):
        assert bench.ARTIFACT_PATH.name == "BENCH_sfi_verifier.json"
        assert bench.ARTIFACT_PATH.parent == BENCH_PATH.parents[1]


class TestSchemaV2Sections:
    """Schema v2: the template model check and the padding ablation are
    part of the artifact contract."""

    def test_schema_version_pinned(self, bench):
        assert bench.SCHEMA_VERSION == 2

    def test_modelcheck_section(self, payload):
        modelcheck = payload["modelcheck"]
        assert modelcheck["ok"] is True
        assert modelcheck["counterexamples"] == []
        assert modelcheck["states_checked"] > 0
        assert modelcheck["seconds"] > 0

    def test_padding_section_per_arch(self, payload):
        entries = {entry["arch"]: entry for entry in payload["padding"]}
        assert set(entries) == {"mips", "x86"}
        for entry in entries.values():
            assert entry["padded_instrs"] > entry["native_instrs"]
            assert entry["pad_instrs"] > 0
            assert entry["padded_cycles"] >= entry["cycles"]
            assert entry["cycle_overhead"] >= 0.0

    def test_validator_rejects_missing_v2_sections(self, bench, payload):
        broken = json.loads(json.dumps(payload))
        del broken["modelcheck"]
        with pytest.raises(AssertionError):
            bench.validate_artifact(broken)
        broken = json.loads(json.dumps(payload))
        broken["modelcheck"]["ok"] = False
        with pytest.raises(AssertionError):
            bench.validate_artifact(broken)
        broken = json.loads(json.dumps(payload))
        broken["padding"] = []
        with pytest.raises(AssertionError):
            bench.validate_artifact(broken)
        broken = json.loads(json.dumps(payload))
        del broken["padding"][0]["pad_instrs"]
        with pytest.raises(AssertionError):
            bench.validate_artifact(broken)

    def test_committed_artifact_matches_schema(self, bench):
        committed = BENCH_PATH.parents[1] / "BENCH_sfi_verifier.json"
        payload = json.loads(committed.read_text())
        bench.validate_artifact(payload)
        assert {e["arch"] for e in payload["padding"]} \
            == {"mips", "sparc", "ppc", "x86"}
