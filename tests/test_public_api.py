"""Public API snapshot: the package's exported surface is a contract.

Pins ``repro.__all__``, the :class:`~repro.engine.RunConfig` fields,
the redesigned ``Engine.load``/``Engine.run`` signatures, the dynamic
linking error hierarchy, and the deprecation shim for the pre-RunConfig
keyword arguments.  A failure here means a (possibly accidental)
breaking change to the public API — update the snapshot only on a
deliberate redesign."""

import inspect
import warnings

import pytest

import repro
from repro.engine import Engine, RunConfig
from repro.errors import (
    CrossModuleViolation,
    DuplicateExportError,
    DynamicLinkError,
    LinkError,
    ModuleCycleError,
    ModuleRevokedError,
    ReproError,
    UnresolvedImportError,
    VerifyError,
)

#: The exported names of the `repro` package, frozen.  Additions are
#: appended deliberately; removals/renames are breaking changes.
PUBLIC_API = [
    "ARCHITECTURES",
    "AccessViolation",
    "CompileError",
    "CompileOptions",
    "CrossModuleViolation",
    "DeadlineExceeded",
    "DuplicateExportError",
    "DynamicLinkError",
    "Engine",
    "FaultInjector",
    "Host",
    "HostCallError",
    "LinkedImage",
    "LinkedProgram",
    "MOBILE_NOSFI",
    "MOBILE_SFI",
    "MetricsCollector",
    "ModuleCycleError",
    "ModuleHost",
    "ModuleRegistry",
    "ModuleRequest",
    "ModuleResponse",
    "ModuleRevokedError",
    "NATIVE_CC",
    "NATIVE_GCC",
    "ObjectModule",
    "PROFILES",
    "QuotaExceeded",
    "ReproError",
    "RequestQuota",
    "RetryPolicy",
    "RunConfig",
    "SandboxViolation",
    "ServiceOverloaded",
    "ShardedModuleHost",
    "TranslationCache",
    "TranslationOptions",
    "UnknownArchitectureError",
    "UnresolvedImportError",
    "VerifyError",
    "assemble",
    "compile_and_link",
    "compile_minilisp",
    "compile_to_object",
    "dynamic_link",
    "link",
    "load_for_interpretation",
    "load_for_target",
    "load_module",
    "metrics",
    "run_module",
    "run_on_target",
    "translate",
]


class TestPackageSurface:
    def test_all_matches_snapshot(self):
        assert sorted(repro.__all__) == PUBLIC_API

    def test_every_exported_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


class TestRunConfig:
    def test_fields(self):
        assert [f.name for f in
                __import__("dataclasses").fields(RunConfig)] == [
            "fuel", "segment_size", "engine", "verify", "host"
        ]

    def test_defaults(self):
        config = RunConfig()
        assert config.fuel is None
        assert config.segment_size is None
        assert config.engine is None
        assert config.verify is True
        assert config.host is None

    def test_frozen(self):
        with pytest.raises(Exception):
            RunConfig().fuel = 7  # type: ignore[misc]

    def test_merged(self):
        config = RunConfig(fuel=10).merged(engine="legacy")
        assert (config.fuel, config.engine) == (10, "legacy")

    def test_merged_rejects_unknown_fields(self):
        with pytest.raises(TypeError, match="unknown RunConfig"):
            RunConfig().merged(bogus=1)


class TestEngineSignatures:
    def test_load_takes_config(self):
        params = list(inspect.signature(Engine.load).parameters)
        assert params[:5] == ["self", "program", "target", "options",
                              "config"]

    def test_run_takes_config_after_entry(self):
        params = list(inspect.signature(Engine.run).parameters)
        assert params[:6] == ["self", "program", "target", "options",
                              "entry", "config"]

    def test_engine_has_dynamic_linking_api(self):
        for name in ("register_module", "revoke_module",
                     "link_modules", "load_program", "registry"):
            assert hasattr(Engine, name) or name == "registry"

    def test_legacy_kwargs_warn_but_work(self):
        engine = Engine()
        program = engine.compile(
            "int main() { emit_int(9); return 0; }")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            code, module = engine.run(program, fuel=1_000_000)
        assert code == 0
        assert module.host.output_values() == [9]
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)

    def test_positional_host_still_accepted(self):
        from repro.runtime.host import Host

        engine = Engine()
        program = engine.compile("int main() { return 0; }")
        host = Host()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            module = engine.load(program, None, None, host)
        assert module.host is host

    def test_unknown_legacy_kwarg_rejected(self):
        engine = Engine()
        program = engine.compile("int main() { return 0; }")
        with pytest.raises(TypeError, match="unexpected keyword"):
            engine.load(program, wibble=3)

    def test_config_path_emits_no_warning(self):
        engine = Engine()
        program = engine.compile("int main() { return 0; }")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            engine.load(program, config=RunConfig(fuel=1_000_000))
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]


class TestErrorHierarchy:
    def test_dynamic_link_errors_are_link_errors(self):
        for err in (DynamicLinkError, UnresolvedImportError,
                    DuplicateExportError, ModuleCycleError,
                    ModuleRevokedError):
            assert issubclass(err, LinkError), err
            assert issubclass(err, ReproError), err

    def test_cross_module_violation_is_verify_error(self):
        assert issubclass(CrossModuleViolation, VerifyError)

    def test_error_payloads(self):
        err = UnresolvedImportError("f", importer="m")
        assert err.symbol == "f" and err.importer == "m"
        err = DuplicateExportError("g", ("a", "b"))
        assert err.symbol == "g" and err.modules == ("a", "b")
        err = ModuleCycleError(("a", "b", "a"))
        assert err.cycle == ("a", "b", "a")
        err = ModuleRevokedError("lib", epoch=3)
        assert err.name == "lib" and err.epoch == 3
        err = CrossModuleViolation("bad", module="m", target=64)
        assert err.module == "m" and err.target == 64


class TestConfigKwargConflicts:
    """A field set both in ``config=`` and as a legacy keyword is a
    programming error: the old shim let the keyword silently win."""

    def _program(self, engine):
        return engine.compile("int main() { return 0; }")

    def test_load_conflict_raises_type_error(self):
        engine = Engine()
        program = self._program(engine)
        with pytest.raises(TypeError, match=r"fuel="):
            engine.load(program, config=RunConfig(fuel=5), fuel=9)

    def test_run_conflict_raises_type_error(self):
        engine = Engine()
        program = self._program(engine)
        with pytest.raises(TypeError, match=r"engine="):
            engine.run(program, config=RunConfig(engine="legacy"),
                       engine="threaded")

    def test_conflict_message_names_every_field(self):
        engine = Engine()
        program = self._program(engine)
        with pytest.raises(TypeError, match=r"engine=, fuel="):
            engine.load(program, config=RunConfig(fuel=5, engine="jit"),
                        fuel=9, engine="legacy")

    def test_distinct_fields_merge_with_warning_only(self):
        engine = Engine()
        program = self._program(engine)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            module = engine.load(program, config=RunConfig(verify=False),
                                 fuel=1_000_000)
        assert module.vm.fuel == 1_000_000
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)

    def test_deprecation_warning_points_at_user_call_site(self):
        """`stacklevel` must attribute the warning to the caller of
        Engine.load / Engine.run, not to engine.py internals."""
        engine = Engine()
        program = self._program(engine)
        for invoke in (lambda: engine.load(program, fuel=1_000_000),
                       lambda: engine.run(program, fuel=1_000_000)):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                invoke()
            deprecations = [w for w in caught
                            if issubclass(w.category, DeprecationWarning)]
            assert len(deprecations) == 1
            assert deprecations[0].filename == __file__
