"""The differential-execution fuzzer itself: generator, harness, minimizer.

The regression tests for the divergences the fuzzer found live in
``test_difftest_regressions.py``; this file checks the machinery.
"""

import pytest

from repro.difftest import ProgramGenerator, minimize_program, run_difftest
from repro.difftest.generator import GenProgram
from repro.difftest.harness import (
    COMPARED_INT_REGS,
    Outcome,
    compare_outcomes,
    run_one,
)
from repro.engine import ARCHITECTURES, Engine, INTERPRETER
from repro.omnivm.verifier import verify_program


@pytest.fixture(scope="module")
def engine():
    return Engine(cache=False)


class TestGenerator:
    def test_deterministic_per_seed_and_index(self):
        first = ProgramGenerator("seed-a").program(7)
        second = ProgramGenerator("seed-a").program(7)
        assert first.listing() == second.listing()
        assert first.data == second.data

    def test_different_indices_differ(self):
        gen = ProgramGenerator("seed-a")
        assert gen.program(0).listing() != gen.program(1).listing()

    def test_different_seeds_differ(self):
        a = ProgramGenerator("seed-a").program(3)
        b = ProgramGenerator("seed-b").program(3)
        assert a.listing() != b.listing()

    @pytest.mark.parametrize("index", range(25))
    def test_generated_programs_are_verifier_valid(self, index):
        program = ProgramGenerator("valid").program(index).build()
        verify_program(program)  # must not raise

    def test_programs_terminate_on_interpreter(self, engine):
        for index in range(10):
            program = ProgramGenerator("term").program(index).build()
            outcome = run_one(engine, program, INTERPRETER)
            assert outcome.kind != "fuel"


class TestCompareOutcomes:
    def _exit(self, **overrides):
        base = dict(
            kind="exit", exit_code=0,
            regs=tuple(0 for _ in COMPARED_INT_REGS),
            fregs=tuple(0 for _ in range(16)), digest="d" * 16,
        )
        base.update(overrides)
        return Outcome(**base)

    def test_identical_exits_are_clean(self):
        assert compare_outcomes(self._exit(), self._exit()) == []

    def test_register_difference_is_reported(self):
        regs = list(self._exit().regs)
        regs[COMPARED_INT_REGS.index(5)] = 0xDEAD
        diffs = compare_outcomes(self._exit(), self._exit(regs=tuple(regs)))
        assert diffs == ["int reg r5: 0x00000000 vs 0x0000dead"]

    def test_matching_violations_are_clean(self):
        a = Outcome("violation", "load@0x00000000")
        b = Outcome("violation", "load@0x00000000")
        assert compare_outcomes(a, b) == []

    def test_outcome_kind_mismatch(self):
        a = self._exit()
        b = Outcome("trap", "code=3")
        diffs = compare_outcomes(a, b)
        assert len(diffs) == 1 and diffs[0].startswith("outcome:")

    def test_digest_difference_is_reported(self):
        diffs = compare_outcomes(self._exit(), self._exit(digest="e" * 16))
        assert diffs and diffs[0].startswith("memory digest:")


class TestMinimizer:
    def test_shrinks_to_the_interesting_instruction(self):
        stmts = [("instr", f"i{n}") for n in range(20)]
        stmts.append(("instr", "epilogue"))

        def interesting(candidate):
            return any(s == ("instr", "i13") for s in candidate)

        reduced, checks = minimize_program(stmts, interesting)
        assert ("instr", "i13") in reduced
        # Epilogue is pinned, i13 is required; everything else goes.
        assert len(reduced) == 2
        assert reduced[-1] == ("instr", "epilogue")
        assert checks > 0

    def test_labels_are_never_removed(self):
        stmts = [("label", "L0"), ("instr", "a"), ("label", "L1"),
                 ("instr", "b"), ("instr", "epilogue")]
        reduced, _ = minimize_program(stmts, lambda c: True)
        assert ("label", "L0") in reduced and ("label", "L1") in reduced

    def test_never_true_predicate_keeps_everything(self):
        stmts = [("instr", "a"), ("instr", "b"), ("instr", "epilogue")]
        reduced, _ = minimize_program(stmts, lambda c: False)
        assert reduced == stmts


class TestSmoke:
    def test_fixed_seed_corpus_is_clean_on_all_targets(self, engine):
        """Tier-1 difftest smoke: a fixed-seed corpus must cross-execute
        identically on the interpreter and all four targets."""
        summary = run_difftest(count=30, seed="ci-smoke", engine=engine,
                               minimize=False)
        assert summary.programs == 30
        assert summary.executions == 30 * (1 + len(ARCHITECTURES))
        assert summary.clean, "\n".join(
            d.report() for d in summary.divergences)

    def test_metrics_are_counted(self):
        engine = Engine(cache=False)
        run_difftest(count=3, seed="metrics", engine=engine, minimize=False,
                     targets=("mips",))
        assert engine.metrics.counters["difftest.programs"] == 3

    def test_summary_shapes(self, engine):
        summary = run_difftest(count=2, seed="shape", engine=engine,
                               minimize=False, targets=("x86",))
        payload = summary.to_dict()
        assert payload["divergence_count"] == 0
        assert "CLEAN" in summary.render()
