"""Unit tests for the IR core, CFG analyses, and the IR builder."""

import pytest

from repro.compiler import CompileOptions, compile_to_ir
from repro.errors import IRError
from repro.ir import cfg
from repro.ir.ir import (
    BasicBlock,
    Const,
    Function,
    Instr,
    Temp,
    verify_function,
)


def build_ir(source, opt_level=0):
    return compile_to_ir(source, CompileOptions(opt_level=opt_level))


def make_diamond() -> Function:
    """entry -> (left | right) -> join, with a loop join->entry2->join."""
    func = Function("diamond")
    t = func.new_temp("i32")
    entry = BasicBlock("entry", [Instr("copy", t, [Const(1, "i32")])],
                       Instr("br", args=[t, Const(0, "i32")], subop="ne",
                             cmp_ty="i32", targets=["left", "right"]))
    left = BasicBlock("left", [], Instr("jump", targets=["join"]))
    right = BasicBlock("right", [], Instr("jump", targets=["join"]))
    join = BasicBlock("join", [], Instr("ret", args=[t]))
    func.blocks = [entry, left, right, join]
    return func


class TestIRStructure:
    def test_verify_accepts_wellformed(self):
        verify_function(make_diamond())

    def test_verify_rejects_missing_terminator(self):
        func = make_diamond()
        func.blocks[1].terminator = None
        with pytest.raises(IRError):
            verify_function(func)

    def test_verify_rejects_unknown_target(self):
        func = make_diamond()
        func.blocks[1].terminator = Instr("jump", targets=["nowhere"])
        with pytest.raises(IRError):
            verify_function(func)

    def test_verify_rejects_duplicate_labels(self):
        func = make_diamond()
        func.blocks[2].label = "left"
        func.blocks[2].terminator = Instr("jump", targets=["join"])
        with pytest.raises(IRError):
            verify_function(func)

    def test_instr_replace_uses(self):
        a, b = Temp(0, "i32"), Temp(1, "i32")
        instr = Instr("bin", Temp(2, "i32"), [a, b], subop="add")
        instr.replace_uses({a: Const(5, "i32")})
        assert instr.args[0] == Const(5, "i32")
        assert instr.args[1] == b


class TestCFG:
    def test_predecessors(self):
        func = make_diamond()
        preds = cfg.predecessors(func)
        assert sorted(preds["join"]) == ["left", "right"]
        assert preds["entry"] == []

    def test_reverse_postorder_starts_at_entry(self):
        order = cfg.reverse_postorder(make_diamond())
        assert order[0] == "entry"
        assert order[-1] == "join"
        assert set(order) == {"entry", "left", "right", "join"}

    def test_dominators(self):
        dom = cfg.dominators(make_diamond())
        assert dom["join"] == {"entry", "join"}
        assert dom["left"] == {"entry", "left"}

    def test_remove_unreachable(self):
        func = make_diamond()
        func.blocks.append(BasicBlock("orphan", [],
                                      Instr("jump", targets=["join"])))
        removed = cfg.remove_unreachable(func)
        assert removed == 1
        assert all(b.label != "orphan" for b in func.blocks)

    def test_natural_loop_detection(self):
        ir_mod = build_ir("""
        int f(int n) {
            int s = 0;
            int i;
            for (i = 0; i < n; i++) s += i;
            return s;
        }
        """)
        loops = cfg.natural_loops(ir_mod.function("f"))
        assert len(loops) == 1
        assert loops[0].header in loops[0].body
        assert len(loops[0].body) >= 2

    def test_nested_loops_sorted_inner_first(self):
        ir_mod = build_ir("""
        int f(int n) {
            int s = 0;
            int i; int j;
            for (i = 0; i < n; i++)
                for (j = 0; j < n; j++)
                    s += i * j;
            return s;
        }
        """)
        loops = cfg.natural_loops(ir_mod.function("f"))
        assert len(loops) == 2
        assert len(loops[0].body) < len(loops[1].body)
        assert loops[0].body < loops[1].body  # inner nested in outer


class TestBuilderLowering:
    def test_scalar_local_stays_in_register(self):
        ir_mod = build_ir("int f() { int x = 1; return x + 1; }")
        func = ir_mod.function("f")
        assert not func.stack_slots  # no frame traffic for x

    def test_address_taken_local_gets_slot(self):
        ir_mod = build_ir("int f() { int x = 1; int *p = &x; return *p; }")
        func = ir_mod.function("f")
        assert len(func.stack_slots) == 1

    def test_array_local_gets_slot(self):
        ir_mod = build_ir("int f() { int a[8]; a[0] = 1; return a[0]; }")
        func = ir_mod.function("f")
        assert func.stack_slots[0].size == 32

    def test_short_circuit_produces_branches(self):
        ir_mod = build_ir("int f(int a, int b) { return a && b; }")
        func = ir_mod.function("f")
        branch_count = sum(
            1 for b in func.blocks if b.terminator.op == "br"
        )
        assert branch_count >= 2

    def test_string_literals_pooled(self):
        ir_mod = build_ir("""
        int f() { emit_str("same"); emit_str("same"); return 0; }
        """)
        strings = [g for g in ir_mod.globals if g.name.startswith(".str")]
        assert len(strings) == 1

    def test_global_reloc_for_function_pointer(self):
        ir_mod = build_ir("""
        int f(int x) { return x; }
        int (*fp)(int) = f;
        int main() { return fp(1); }
        """)
        glob = ir_mod.global_named("fp")
        assert glob.relocs == [(0, "f")]

    def test_implicit_return_added(self):
        ir_mod = build_ir("void f() { }")
        func = ir_mod.function("f")
        assert func.blocks[-1].terminator.op == "ret"
