"""OmniVM code generation: ABI, frames, addressing, spills.

These tests inspect the generated OmniVM instructions directly (not just
behaviour), pinning the code-generation contracts the translators and
the SFI exemption rely on — e.g. "sp only moves by small constants" and
"array accesses use the indexed addressing mode".
"""

import pytest

from repro.compiler import CompileOptions, compile_and_link, compile_to_object
from repro.omnivm.isa import REG_RA, REG_SP
from repro.runtime.loader import run_module


def text_of(source, name=None, **options):
    obj = compile_to_object(source, CompileOptions(**options))
    if name is None:
        return obj.text
    symbols = {s.name: s.offset // 8 for s in obj.symbols
               if s.section == "text" and s.is_global}
    start = symbols[name]
    following = [o for o in symbols.values() if o > start]
    end = min(following) if following else len(obj.text)
    return obj.text[start:end]


class TestFrameDiscipline:
    def test_sp_only_moves_by_constants(self):
        # Contract required by the SFI sp-store exemption.
        text = text_of("""
        int helper(int n) { int buf[32]; buf[n] = 1; return buf[0]; }
        int main() { return helper(3); }
        """)
        for instr in text:
            writes_sp = REG_SP in instr.int_writes()
            if writes_sp:
                assert instr.op == "addi" and instr.rs == REG_SP
                assert -32768 <= instr.imm <= 32767

    def test_leaf_saves_ra_only_when_needed(self):
        leaf = text_of("int f(int a) { return a + 1; } int main() { return f(1); }",
                       name="f")
        # A tiny leaf still stores ra in this simple prologue model, but
        # never more than one ra save/restore pair.
        ra_saves = [i for i in leaf if i.op == "sw" and i.rt == REG_RA]
        assert len(ra_saves) <= 1

    def test_epilogue_restores_and_returns(self):
        text = text_of("int f() { return 7; } int main() { return f(); }",
                       name="f")
        assert text[-1].op == "jr" and text[-1].rs == REG_RA

    def test_callee_saved_round_trip(self):
        source = """
        int g(int a) { return a; }
        int f(int a) {
            int keep1 = a * 3; int keep2 = a * 5; int keep3 = a * 7;
            g(1); g(2);
            return keep1 + keep2 + keep3;
        }
        int main() { emit_int(f(2)); return 0; }
        """
        text = text_of(source, name="f")
        saved = {i.rt for i in text if i.op == "sw" and 8 <= i.rt <= 13}
        restored = {i.rd for i in text if i.op == "lw" and 8 <= i.rd <= 13}
        assert saved and saved <= restored
        _code, host = run_module(compile_and_link([source]))
        assert host.output_values() == [2 * (3 + 5 + 7)]


class TestAddressingSelection:
    def test_array_index_uses_indexed_mode(self):
        text = text_of("""
        int a[64];
        int f(int i) { return a[i]; }
        int main() { return f(1); }
        """, name="f")
        assert any(i.op == "lwx" for i in text)

    def test_struct_field_uses_offset(self):
        text = text_of("""
        struct S { int a; int b; int c; };
        int f(struct S *s) { return s->c; }
        int main() { return 0; }
        """, name="f")
        loads = [i for i in text if i.op == "lw" and i.imm == 8]
        assert loads

    def test_compare_and_branch_immediate_form(self):
        text = text_of("""
        int f(int n) { if (n < 10) return 1; return 2; }
        int main() { return f(3); }
        """, name="f")
        assert any(i.op in ("bgei", "blti") and i.imm2 == 10 for i in text)

    def test_large_branch_constant_falls_back_to_register(self):
        text = text_of("""
        int f(int n) { if (n < 2000000) return 1; return 2; }
        int main() { return f(3); }
        """, name="f")
        # 2000000 exceeds the 18-bit imm2 field.
        assert not any(i.spec.kind == "branchi" and i.imm2 == 2000000
                       for i in text)
        assert any(i.op == "li" and i.imm == 2000000 for i in text)


class TestRegisterPressure:
    def test_spill_code_correct_under_tiny_file(self):
        source = """
        int main() {
            int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
            int f = 6; int g = 7; int h = 8; int i = 9; int j = 10;
            int k = a*b + c*d + e*f + g*h + i*j;
            emit_int(k + a + b + c + d + e + f + g + h + i + j);
            return 0;
        }
        """
        expected_k = 1 * 2 + 3 * 4 + 5 * 6 + 7 * 8 + 9 * 10
        expected = expected_k + sum(range(1, 11))
        for num_regs in (8, 10, 12, 16):
            _code, host = run_module(
                compile_and_link([source], CompileOptions(num_regs=num_regs))
            )
            assert host.output_values() == [expected], num_regs

    def test_smaller_file_emits_more_code(self):
        # Many simultaneously-live values derived from a runtime input
        # (so constant folding cannot collapse them).
        source = """
        int f(int x) {
            int a = x*2; int b = x*3; int c = x*5; int d = x*7;
            int e = x*11; int g = x*13; int h = x*17; int i = x*19;
            int j = x*23; int k = x*29;
            return a*b + c*d + e*g + h*i + j*k + a*k + b*j + c*i;
        }
        int main() { emit_int(f(3)); return 0; }
        """
        small = len(text_of(source, num_regs=8, name="f"))
        large = len(text_of(source, num_regs=16, name="f"))
        assert small > large


class TestABICorners:
    def test_argument_register_cycles(self):
        # f(b, a) from f(a, b): a swap through the move graph.
        source = """
        int rot(int a, int b, int c) {
            if (a == 0) return b * 100 + c * 10 + a;
            return rot(a - 1, c, b);
        }
        int main() { emit_int(rot(3, 1, 2)); return 0; }
        """
        _code, host = run_module(compile_and_link([source]))
        def rot(a, b, c):
            return b * 100 + c * 10 + a if a == 0 else rot(a - 1, c, b)
        assert host.output_values() == [rot(3, 1, 2)]

    def test_fp_and_int_args_interleaved_deep(self):
        source = """
        double mix(int a, double x, int b, double y, int c, double z) {
            return a * x + b * y + c * z;
        }
        int main() { emit_double(mix(1, 0.5, 2, 0.25, 3, 0.125)); return 0; }
        """
        _code, host = run_module(compile_and_link([source]))
        assert host.output_values() == [1 * 0.5 + 2 * 0.25 + 3 * 0.125]

    def test_return_value_through_deep_recursion(self):
        source = """
        double chain(int n) {
            if (n == 0) return 1.0;
            return chain(n - 1) * 1.0625;
        }
        int main() { emit_double(chain(64)); return 0; }
        """
        _code, host = run_module(compile_and_link([source]))
        expected = 1.0
        for _ in range(64):
            expected *= 1.0625  # same rounding order as the program
        assert host.output_values() == [expected]
