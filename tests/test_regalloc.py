"""Register allocation: interval construction, class constraints, spills."""

from repro.compiler import CompileOptions, compile_to_ir
from repro.regalloc.linearscan import allocate, omnivm_register_file
from repro.regalloc.liveness import live_intervals


def build_func(source, name="f"):
    return compile_to_ir(source, CompileOptions()).function(name)


class TestLiveness:
    def test_params_start_at_zero(self):
        func = build_func("int f(int a, int b) { return a + b; }")
        intervals, _ = live_intervals(func)
        by_temp = {iv.temp: iv for iv in intervals}
        for param in func.params:
            assert by_temp[param].start == 0

    def test_call_crossing_detected(self):
        func = build_func("""
        int g(int a) { return a; }
        int f(int a) { int before = a * 2; g(1); return before; }
        """)
        intervals, _ = live_intervals(func)
        crossing = [iv for iv in intervals if iv.crosses_call]
        assert crossing  # `before` lives across the call

    def test_call_argument_does_not_cross(self):
        func = build_func("""
        int g(int a) { return a; }
        int f(int a) { return g(a + 1); }
        """)
        intervals, _ = live_intervals(func)
        # The argument temp ends at the call; only values used after the
        # call cross it.
        for iv in intervals:
            if iv.crosses_call:
                assert iv.temp not in func.params or True

    def test_loop_extends_intervals(self):
        func = build_func("""
        int f(int n) {
            int s = 0;
            int i;
            for (i = 0; i < n; i++) s = s + n;
            return s;
        }
        """)
        intervals, order = live_intervals(func)
        # n is live through the whole loop body even though its last
        # textual use is inside it.
        n_interval = next(iv for iv in intervals if iv.temp == func.params[0])
        total = max(end for _s, end in order.block_span.values())
        assert n_interval.end > total // 2


class TestAllocation:
    def _check_no_overlap(self, func):
        """Two temps in the same register must never be live at once."""
        assignment = allocate(func, omnivm_register_file(16))
        intervals, _ = live_intervals(func)
        by_temp = {iv.temp: iv for iv in intervals}
        placed = [
            (by_temp[t], loc)
            for t, loc in assignment.locations.items()
            if loc.is_reg() and t in by_temp
        ]
        for i, (iv_a, loc_a) in enumerate(placed):
            for iv_b, loc_b in placed[i + 1:]:
                if loc_a == loc_b:
                    disjoint = iv_a.end < iv_b.start or iv_b.end < iv_a.start
                    assert disjoint, (
                        f"{iv_a.temp} and {iv_b.temp} share {loc_a} while "
                        f"overlapping"
                    )
        return assignment

    def test_no_overlapping_assignment_simple(self):
        self._check_no_overlap(build_func(
            "int f(int a, int b, int c) { return a * b + b * c + a * c; }"
        ))

    def test_no_overlapping_assignment_loops(self):
        self._check_no_overlap(build_func("""
        int f(int n) {
            int a = 1; int b = 2; int c = 3; int s = 0;
            int i;
            for (i = 0; i < n; i++) { s += a * b; a = b; b = c; c = s; }
            return s;
        }
        """))

    def test_call_crossing_gets_callee_saved(self):
        func = build_func("""
        int g(int a) { return a; }
        int f(int a) { int keep = a * 3; g(1); return keep; }
        """)
        assignment = allocate(func, omnivm_register_file(16))
        regfile = omnivm_register_file(16)
        intervals, _ = live_intervals(func)
        for iv in intervals:
            if iv.crosses_call:
                loc = assignment.locations[iv.temp]
                if loc.kind == "reg":
                    assert loc.index in regfile.callee_int

    def test_pressure_forces_spills(self):
        # 14 simultaneously-live values cannot fit a tiny file.
        decls = "; ".join(f"int v{i} = a * {i + 1}" for i in range(14))
        uses = " + ".join(f"v{i}" for i in range(14))
        func = build_func(f"int f(int a) {{ {decls}; return {uses}; }}")
        small = allocate(func, omnivm_register_file(8))
        assert small.spill_slots > 0
        large = allocate(func, omnivm_register_file(16))
        assert large.spill_slots < small.spill_slots

    def test_fp_bank_independent(self):
        func = build_func("""
        double f(double x, double y) { return x * y + x / y; }
        """)
        assignment = allocate(func, omnivm_register_file(16))
        kinds = {loc.kind for loc in assignment.locations.values()}
        assert "freg" in kinds

    def test_used_callee_saved_reported(self):
        func = build_func("""
        int g(int a) { return a; }
        int f(int a) { int keep = a + 5; g(1); return keep; }
        """)
        assignment = allocate(func, omnivm_register_file(16))
        assert assignment.used_callee_saved


class TestRegisterFileSweep:
    def test_shrinking_file_never_gains_registers(self):
        sizes = [8, 10, 12, 14, 16]
        counts = []
        for size in sizes:
            regfile = omnivm_register_file(size)
            counts.append(len(regfile.caller_int) + len(regfile.callee_int))
        assert counts == sorted(counts)

    def test_reserved_registers_never_allocatable(self):
        for size in (8, 12, 16):
            regfile = omnivm_register_file(size)
            allocatable = set(regfile.caller_int) | set(regfile.callee_int)
            assert 15 not in allocatable  # sp
            assert 14 not in allocatable  # ra
            assert 5 not in allocatable and 6 not in allocatable  # scratch

    def test_spills_increase_monotonically_under_pressure(self):
        decls = "; ".join(f"int v{i} = a * {i + 1}" for i in range(12))
        uses = " + ".join(f"v{i}" for i in range(12))
        func_src = f"int f(int a) {{ {decls}; return {uses}; }}"
        spills = []
        for size in (16, 12, 10, 8):
            func = build_func(func_src)
            assignment = allocate(func, omnivm_register_file(size))
            spills.append(assignment.spill_slots)
        assert spills == sorted(spills)
