"""The sharded process router (`repro.service_router`).

Covers what the parity suite (`test_service_parity.py`) cannot: the
consistent-hash ring itself, cache affinity of the routing key, typed
errors crossing the process boundary, worker-crash detection with
respawn and registry-log replay, cross-shard stats aggregation, and
stampede control through the shared cold tier.
"""

import time

import pytest

from repro.cache import program_digest
from repro.compiler import compile_and_link
from repro.engine import Engine
from repro.errors import (
    DeadlineExceeded,
    DuplicateExportError,
    ModuleCycleError,
    ModuleRevokedError,
    QuotaExceeded,
    ReproError,
    TransientFault,
    UnresolvedImportError,
    deserialize_error,
    serialize_error,
)
from repro.service import FaultInjector, ModuleRequest, RequestQuota
from repro.service_router import (
    RING_REPLICAS,
    ShardedModuleHost,
    _HashRing,
    shard_key,
)

SRC = "int main() { emit_int(42); return 0; }"
LIB_SRC = "int answer() { return 42; }"
APP_SRC = """
extern int answer();
int main() { emit_int(answer()); return 0; }
"""
SLOW_SRC = """
int main() {
    int i;
    i = 0;
    while (1) { i = i + 1; }
    return i;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_and_link([SRC])


def _await(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestHashRing:
    def test_lookup_is_stable(self):
        ring = _HashRing(4)
        keys = [f"digest-{i}" for i in range(200)]
        first = [ring.lookup(k) for k in keys]
        second = [_HashRing(4).lookup(k) for k in keys]
        assert first == second

    def test_every_shard_gets_keys(self):
        ring = _HashRing(4)
        owners = {ring.lookup(f"digest-{i}") for i in range(500)}
        assert owners == {0, 1, 2, 3}

    def test_resize_remaps_a_minority_of_keys(self):
        # The consistent-hash property: growing 4 -> 5 shards should
        # move ~1/5 of the key space, not reshuffle everything.
        keys = [f"digest-{i}" for i in range(2000)]
        before = _HashRing(4)
        after = _HashRing(5)
        moved = sum(before.lookup(k) != after.lookup(k) for k in keys)
        assert moved / len(keys) < 0.40

    def test_replica_count(self):
        ring = _HashRing(3)
        assert len(ring._hashes) == 3 * RING_REPLICAS


class TestShardKey:
    def test_linked_program_routes_by_content_digest(self, program):
        assert shard_key(ModuleRequest(program=program)) == \
            program_digest(program)

    def test_source_text_routes_by_text_hash(self):
        a = shard_key(ModuleRequest(program=SRC, request_id="a"))
        b = shard_key(ModuleRequest(program=SRC, request_id="b"))
        assert a == b  # identity is the content, not the request

    def test_modules_route_by_root_names(self):
        a = shard_key(ModuleRequest(modules=("app",), request_id="x"))
        b = shard_key(ModuleRequest(modules=["app"], request_id="y"))
        assert a == b

    def test_same_module_always_lands_on_same_shard(self, program):
        with Engine(target="mips").serve(processes=3, workers=1) as host:
            shards = {host.shard_of(ModuleRequest(program=program))
                      for _ in range(10)}
        assert len(shards) == 1


class TestErrorSerialization:
    ROUNDTRIP = [
        UnresolvedImportError("f", importer="m"),
        DuplicateExportError("g", ("a", "b")),
        ModuleCycleError(("a", "b", "a")),
        ModuleRevokedError("lib", epoch=3),
        DeadlineExceeded("too slow", deadline_seconds=0.5),
        QuotaExceeded("too much", quota="output_bytes", limit=16),
        TransientFault("blip"),
    ]

    @pytest.mark.parametrize("err", ROUNDTRIP,
                             ids=lambda e: type(e).__name__)
    def test_roundtrip_preserves_class_and_message(self, err):
        clone = deserialize_error(serialize_error(err))
        assert type(clone) is type(err)
        assert str(clone) == str(err)

    def test_roundtrip_preserves_payload_attributes(self):
        clone = deserialize_error(serialize_error(
            UnresolvedImportError("f", importer="m")))
        assert clone.symbol == "f" and clone.importer == "m"
        clone = deserialize_error(serialize_error(
            ModuleCycleError(("a", "b", "a"))))
        assert clone.cycle == ("a", "b", "a")
        clone = deserialize_error(serialize_error(
            QuotaExceeded("x", quota="fuel", limit=7)))
        assert clone.quota == "fuel" and clone.limit == 7

    def test_unknown_class_degrades_to_repro_error(self):
        clone = deserialize_error(
            {"type": "NoSuchError", "message": "gone"})
        assert type(clone) is ReproError
        assert "NoSuchError" in str(clone) and "gone" in str(clone)


class TestCrashRecovery:
    def test_inflight_requests_fail_as_transient_fault(self, program):
        faults = FaultInjector()
        faults.delay_execution(5.0)  # park the request mid-execution
        with Engine(target="mips").serve(
                processes=2, workers=1, faults=faults) as host:
            request = ModuleRequest(program=program, deadline_seconds=30.0)
            victim = host.shard_of(request)
            pending = host.submit(request, block=True)
            time.sleep(0.3)  # let the worker pick it up
            host._shards[victim].process.kill()
            response = pending.result(timeout=15.0)
            assert not response.ok
            assert response.error == "TransientFault"
            assert "safe to retry" in response.error_message
            assert host.stats.counters["worker_restart"] >= 1

    def test_shard_respawns_and_keeps_serving(self, program):
        with Engine(target="mips").serve(processes=2, workers=1) as host:
            request = ModuleRequest(program=program)
            victim = host.shard_of(request)
            shard = host._shards[victim]
            assert host.run(ModuleRequest(program=program)).ok
            shard.process.kill()
            assert _await(lambda: shard.generation >= 2
                          and all(host.alive()))
            # The respawned worker serves the same key; a transient
            # window right after the kill may fail one attempt.
            for _ in range(5):
                response = host.run(ModuleRequest(program=program),
                                    timeout=30.0)
                if response.ok:
                    break
            assert response.ok and response.output == "42"

    def test_registry_log_replays_into_respawned_shard(self):
        with Engine().serve(processes=2, workers=1) as host:
            host.register_module("lib", LIB_SRC)
            host.register_module("app", APP_SRC)
            request = ModuleRequest(modules=["app"])
            assert host.run(request).ok
            victim = host.shard_of(request)
            shard = host._shards[victim]
            shard.process.kill()
            assert _await(lambda: shard.generation >= 2
                          and all(host.alive()))
            for _ in range(5):
                response = host.run(ModuleRequest(modules=["app"]),
                                    timeout=30.0)
                if response.ok:
                    break
            assert response.ok and response.output == "42"

    def test_revocation_survives_respawn(self):
        with Engine().serve(processes=2, workers=1) as host:
            host.register_module("lib", LIB_SRC)
            host.register_module("app", APP_SRC)
            host.revoke_module("lib")
            request = ModuleRequest(modules=["app"])
            victim = host.shard_of(request)
            shard = host._shards[victim]
            shard.process.kill()
            assert _await(lambda: shard.generation >= 2
                          and all(host.alive()))
            for _ in range(5):
                response = host.run(ModuleRequest(modules=["app"]),
                                    timeout=30.0)
                if response.error == "ModuleRevokedError":
                    break
            assert response.error == "ModuleRevokedError"


class TestStatsAggregation:
    def test_counters_sum_across_shards(self):
        # Distinct programs spread over the ring; totals must equal the
        # submitted count regardless of which shard served what.
        sources = [f"int main() {{ emit_int({i}); return 0; }}"
                   for i in range(8)]
        with Engine(target="mips").serve(processes=2, workers=2) as host:
            responses = host.run_batch(
                [ModuleRequest(program=src) for src in sources])
        assert all(r.ok for r in responses)
        payload = host.stats.to_dict()
        assert payload["counters"]["request"] == 8
        assert payload["counters"]["ok"] == 8
        assert payload["completed_requests"] == 8
        assert payload["shards"] == 2
        assert len(payload["cache"]) > 0

    def test_live_and_final_views_agree(self, program):
        host = Engine(target="mips").serve(processes=2, workers=1)
        with host:
            host.run(ModuleRequest(program=program))
            live = host.stats.to_dict()
        final = host.stats.to_dict()
        assert live["counters"]["ok"] == final["counters"]["ok"] == 1

    def test_pre_start_registrations_are_seeded(self):
        engine = Engine()
        engine.register_module("lib", LIB_SRC)
        engine.register_module("app", APP_SRC)
        with ShardedModuleHost(engine, processes=2, workers=1) as host:
            response = host.run(ModuleRequest(modules=["app"]))
        assert response.ok and response.output == "42"


class TestSingleFlightAcrossProcesses:
    def test_stampede_translates_once_per_worker_set(self, tmp_path):
        # 100 concurrent requests for one uncached module: consistent
        # hashing sends them all to one shard, whose cache admits the
        # translation exactly once (stores == 1); everyone else either
        # waited on the flight or hit the warm entry.
        from repro.cache import TranslationCache

        engine = Engine(
            target="mips",
            cache=TranslationCache(disk_dir=tmp_path / "cold"),
        )
        with engine.serve(processes=2, workers=4) as host:
            pending = [host.submit(ModuleRequest(program=SRC), block=True)
                       for _ in range(100)]
            responses = [p.result(timeout=120.0) for p in pending]
        assert all(r.ok for r in responses)
        cache = host.stats.to_dict()["cache"]
        # Exactly one translation was admitted; every other request
        # resolved as a hit (waiters re-read after the flight landed:
        # 99 hits however the 100 interleave).
        assert cache["stores"] == 1
        assert cache["misses"] >= 1
        assert cache["hits"] == 99
