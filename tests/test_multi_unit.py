"""Separate compilation: multiple translation units linked into one
mobile module (the paper's function-shipping scenario depends on this)."""

import pytest

from repro.compiler import CompileOptions, compile_and_link
from repro.errors import LinkError
from repro.runtime.loader import run_module


class TestSeparateCompilation:
    def test_extern_function(self):
        main_unit = """
        extern int triple(int n);
        int main() { emit_int(triple(5)); return 0; }
        """
        lib_unit = "int triple(int n) { return 3 * n; }"
        _code, host = run_module(compile_and_link([main_unit, lib_unit]))
        assert host.output_values() == [15]

    def test_extern_global(self):
        main_unit = """
        extern int shared_counter;
        extern void bump(void);
        int main() {
            bump(); bump(); bump();
            emit_int(shared_counter);
            return 0;
        }
        """
        lib_unit = """
        int shared_counter = 10;
        void bump(void) { shared_counter++; }
        """
        _code, host = run_module(compile_and_link([main_unit, lib_unit]))
        assert host.output_values() == [13]

    def test_cross_unit_function_pointers(self):
        main_unit = """
        extern int apply_op(int (*op)(int, int), int a, int b);
        int my_sub(int a, int b) { return a - b; }
        int main() { emit_int(apply_op(my_sub, 9, 4)); return 0; }
        """
        lib_unit = """
        int apply_op(int (*op)(int, int), int a, int b) { return op(a, b); }
        """
        _code, host = run_module(compile_and_link([main_unit, lib_unit]))
        assert host.output_values() == [5]

    def test_same_struct_in_both_units(self):
        shape = "struct Pair { int a; int b; };"
        main_unit = shape + """
        extern int pair_sum(struct Pair *p);
        int main() {
            struct Pair p;
            p.a = 30; p.b = 12;
            emit_int(pair_sum(&p));
            return 0;
        }
        """
        lib_unit = shape + """
        int pair_sum(struct Pair *p) { return p->a + p->b; }
        """
        _code, host = run_module(compile_and_link([main_unit, lib_unit]))
        assert host.output_values() == [42]

    def test_string_pools_are_per_unit(self):
        # Both units intern ".str0"; local symbols must not collide.
        a = 'extern void say(void); int main() { emit_str("A"); say(); return 0; }'
        b = 'void say(void) { emit_str("B"); }'
        _code, host = run_module(compile_and_link([a, b]))
        assert host.output_values() == [b"A", b"B"]

    def test_missing_extern_fails_at_link(self):
        with pytest.raises(LinkError):
            compile_and_link([
                "extern int ghost(void); int main() { return ghost(); }",
            ])

    def test_three_units_on_targets(self):
        from repro.runtime.native_loader import run_on_target
        from repro.native.profiles import MOBILE_SFI

        units = [
            "extern int f2(int); int main() { emit_int(f2(1)); return 0; }",
            "extern int f3(int); int f2(int x) { return f3(x) * 2; }",
            "int f3(int x) { return x + 10; }",
        ]
        program = compile_and_link(units)
        for arch in ("mips", "x86"):
            _code, module = run_on_target(program, arch, MOBILE_SFI)
            assert module.host.output_values() == [22], arch
