"""Import hygiene: no dead imports in the package (ruff F401).

An unused import in the SFI verifier is what prompted this check: dead
imports hide refactoring debris and make the trusted computing base
harder to audit.  When ``ruff`` is installed the real linter runs
(``ruff check --select F401``); otherwise a pure-AST fallback
implements the same rule, so the check works in hermetic environments
without any third-party installs.

The fallback counts a binding as used when its name appears as an
``ast.Name``/attribute base anywhere in the module, inside a quoted
annotation string, or in ``__all__``.  ``__init__.py`` files are
skipped — re-exporting is their job.
"""

from __future__ import annotations

import ast
import re
import shutil
import subprocess
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _package_files() -> list[Path]:
    files = [p for p in sorted(SRC.rglob("*.py")) if p.name != "__init__.py"]
    assert files, "no package sources found"
    return files


def _imported_bindings(tree: ast.Module) -> list[tuple[str, int]]:
    """(name, lineno) for every binding created by a module-level or
    nested import statement."""
    bindings: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                bindings.append((name, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bindings.append((alias.asname or alias.name, node.lineno))
    return bindings


def _used_names(tree: ast.Module) -> set[str]:
    used: set[str] = set()
    annotation_roots: list[ast.AST] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.AnnAssign):
            annotation_roots.append(node.annotation)
        elif isinstance(node, ast.arg) and node.annotation is not None:
            annotation_roots.append(node.annotation)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.returns is not None:
                annotation_roots.append(node.returns)
        elif (isinstance(node, ast.Assign)
              and any(isinstance(t, ast.Name) and t.id == "__all__"
                      for t in node.targets)):
            annotation_roots.append(node.value)
    # Quoted annotations ("TranslationCache | None") and __all__ entries
    # reference names as strings; count the identifiers inside them.
    for root in annotation_roots:
        for node in ast.walk(root):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                used.update(_WORD.findall(node.value))
    return used


def _unused_imports(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    used = _used_names(tree)
    shown = path.relative_to(REPO) if path.is_relative_to(REPO) else path
    return [
        f"{shown}:{lineno}: F401 {name!r} imported but unused"
        for name, lineno in _imported_bindings(tree)
        if name not in used
    ]


def test_no_unused_imports():
    ruff = shutil.which("ruff")
    if ruff:
        proc = subprocess.run(
            [ruff, "check", "--select", "F401", str(SRC)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        return
    findings: list[str] = []
    for path in _package_files():
        findings.extend(_unused_imports(path))
    assert not findings, "\n".join(findings)


def test_fallback_checker_detects_a_dead_import(tmp_path):
    """The AST fallback itself must actually catch F401 (guards against
    the checker rotting into a tautology)."""
    sample = tmp_path / "sample.py"
    sample.write_text(
        "from os import path\n"
        "import sys\n"
        "import json\n"
        "def f(x: 'json.JSONDecoder') -> None:\n"
        "    return sys.exit\n"
    )
    findings = _unused_imports(sample)
    assert len(findings) == 1 and "'path'" in findings[0]
