"""Unit and property tests for 32-bit arithmetic helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import bits

u32s = st.integers(min_value=0, max_value=2**32 - 1)
s32s = st.integers(min_value=-(2**31), max_value=2**31 - 1)
anyints = st.integers(min_value=-(2**40), max_value=2**40)


class TestConversions:
    def test_u32_truncates(self):
        assert bits.u32(2**32) == 0
        assert bits.u32(-1) == 0xFFFFFFFF
        assert bits.u32(0x1_2345_6789) == 0x2345_6789

    def test_s32_sign(self):
        assert bits.s32(0x7FFFFFFF) == 2**31 - 1
        assert bits.s32(0x80000000) == -(2**31)
        assert bits.s32(0xFFFFFFFF) == -1

    @given(anyints)
    def test_s32_u32_same_bits(self, value):
        assert bits.u32(bits.s32(value)) == bits.u32(value)

    @given(u32s)
    def test_s32_roundtrip(self, value):
        assert bits.u32(bits.s32(value)) == value

    def test_subword(self):
        assert bits.s8(0xFF) == -1
        assert bits.u8(-1) == 0xFF
        assert bits.s16(0x8000) == -0x8000
        assert bits.u16(-1) == 0xFFFF

    @given(anyints, st.integers(min_value=1, max_value=31))
    def test_sext(self, value, width):
        result = bits.sext(value, width)
        assert -(1 << (width - 1)) <= result < (1 << (width - 1))
        assert (result - value) % (1 << width) == 0


class TestFitsSigned:
    """One convention: the value is read through s32 first, so the u32
    and negative-int encodings of the same register value agree."""

    @pytest.mark.parametrize("width,lo,hi", [
        (8, -128, 127), (16, -32768, 32767),
    ])
    def test_boundaries(self, width, lo, hi):
        assert bits.fits_signed(lo, width)
        assert bits.fits_signed(hi, width)
        assert not bits.fits_signed(lo - 1, width)
        assert not bits.fits_signed(hi + 1, width)

    @pytest.mark.parametrize("width,lo,hi", [
        (8, -128, 127), (16, -32768, 32767),
    ])
    def test_u32_encoding_agrees_with_signed(self, width, lo, hi):
        assert bits.fits_signed(bits.u32(lo), width)
        assert not bits.fits_signed(bits.u32(lo - 1), width)
        # High-bit-set u32 values are negative s32 values, not huge
        # positives: 0xFFFFFF80 is -128 and fits in 8 signed bits.
        assert bits.fits_signed(0xFFFFFF80, 8)
        assert not bits.fits_signed(0x80, 8)

    def test_width_32_accepts_every_register_value(self):
        for value in (0, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF,
                      -1, -(2**31)):
            assert bits.fits_signed(value, 32)

    @given(u32s, st.sampled_from([8, 12, 13, 16, 18]))
    def test_matches_range_check_on_s32(self, value, width):
        expected = -(1 << (width - 1)) <= bits.s32(value) < 1 << (width - 1)
        assert bits.fits_signed(value, width) == expected


class TestArithmetic:
    @given(u32s, u32s)
    def test_add_sub_inverse(self, a, b):
        assert bits.sub32(bits.add32(a, b), b) == a

    @given(s32s, s32s)
    def test_div_c_semantics(self, a, b):
        if b == 0:
            with pytest.raises(ZeroDivisionError):
                bits.div32(bits.u32(a), bits.u32(b))
            return
        quotient = bits.s32(bits.div32(bits.u32(a), bits.u32(b)))
        # C: truncation toward zero (int(a/b) except the overflow corner).
        if not (a == -(2**31) and b == -1):
            assert quotient == int(a / b)

    @given(s32s, s32s)
    def test_rem_sign_follows_dividend(self, a, b):
        if b == 0:
            return
        if a == -(2**31) and b == -1:
            return
        remainder = bits.s32(bits.rem32(bits.u32(a), bits.u32(b)))
        assert a == bits.s32(
            bits.add32(bits.mul32(bits.div32(bits.u32(a), bits.u32(b)),
                                  bits.u32(b)), bits.u32(remainder))
        )
        if remainder:
            assert (remainder < 0) == (a < 0)

    @given(u32s, st.integers(min_value=0, max_value=64))
    def test_shifts_mask_amount(self, a, shift):
        assert bits.sll32(a, shift) == bits.sll32(a, shift & 31)
        assert bits.srl32(a, shift) == bits.srl32(a, shift & 31)
        assert bits.sra32(a, shift) == bits.sra32(a, shift & 31)

    @given(u32s)
    def test_sra_sign_fill(self, a):
        result = bits.sra32(a, 31)
        assert result == (0xFFFFFFFF if a & 0x80000000 else 0)

    def test_divu_remu(self):
        assert bits.divu32(0xFFFFFFFF, 2) == 0x7FFFFFFF
        assert bits.remu32(0xFFFFFFFF, 10) == 0xFFFFFFFF % 10


class TestFloats:
    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_f32_bits_roundtrip(self, value):
        assert bits.bits_to_f32(bits.f32_to_bits(value)) == value

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_f64_bits_roundtrip(self, value):
        assert bits.bits_to_f64(bits.f64_to_bits(value)) == value

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_round_f32_idempotent(self, value):
        once = bits.round_f32(value)
        assert bits.round_f32(once) == once


class TestAlignment:
    @given(st.integers(min_value=0, max_value=2**30),
           st.sampled_from([1, 2, 4, 8, 16]))
    def test_align_up(self, value, alignment):
        result = bits.align_up(value, alignment)
        assert result >= value
        assert result % alignment == 0
        assert result - value < alignment

    def test_log2_exact(self):
        assert bits.log2_exact(1) == 0
        assert bits.log2_exact(4096) == 12
        with pytest.raises(ValueError):
            bits.log2_exact(12)

    def test_is_power_of_two(self):
        assert bits.is_power_of_two(1)
        assert bits.is_power_of_two(2**31)
        assert not bits.is_power_of_two(0)
        assert not bits.is_power_of_two(3)
