"""MiniLisp front end: reader, compiler, cross-language linking."""

import pytest

from repro.compiler import CompileOptions, compile_to_object
from repro.errors import CompileError, ParseError
from repro.lang2.compiler import compile_minilisp, read_forms
from repro.omnivm.linker import link
from repro.runtime.loader import run_module
from repro.runtime.native_loader import run_on_target
from repro.native.profiles import MOBILE_SFI


def run_lisp(source):
    program = link([compile_minilisp(source)])
    return run_module(program)


class TestReader:
    def test_atoms_and_lists(self):
        forms = read_forms("(a 1 (b -2) c)")
        assert forms == [["a", 1, ["b", -2], "c"]]

    def test_comments(self):
        assert read_forms("; nothing\n(f 1) ; trailing") == [["f", 1]]

    def test_errors(self):
        with pytest.raises(ParseError):
            read_forms("(unclosed")
        with pytest.raises(ParseError):
            read_forms(")")


class TestEvaluation:
    def test_arithmetic_variadic(self):
        _code, host = run_lisp("(defun main () (emit (+ 1 2 3 4)) (emit (* 2 3 4)) 0)")
        assert host.output_values() == [10, 24]

    def test_unary_minus_and_mod(self):
        _code, host = run_lisp("(defun main () (emit (- 5)) (emit (mod 17 5)) 0)")
        assert host.output_values() == [-5, 2]

    def test_if_and_comparisons(self):
        _code, host = run_lisp("""
        (defun pick (a b) (if (< a b) a b))
        (defun main () (emit (pick 3 9)) (emit (pick 9 3)) (emit (if (= 1 2) 7)) 0)
        """)
        assert host.output_values() == [3, 3, 0]

    def test_let_scoping_and_shadowing(self):
        _code, host = run_lisp("""
        (defun main ()
          (let ((x 1))
            (let ((x 10) (y x))
              (emit (+ x y)))
            (emit x))
          0)
        """)
        # NOTE: bindings evaluate left-to-right with earlier bindings
        # visible (let*-style): y sees the INNER x.
        assert host.output_values()[1] == 1

    def test_while_and_set(self):
        _code, host = run_lisp("""
        (defun main ()
          (let ((i 0) (s 0))
            (while (< i 10) (set! s (+ s i)) (set! i (+ i 1)))
            (emit s))
          0)
        """)
        assert host.output_values() == [45]

    def test_recursion(self):
        _code, host = run_lisp("""
        (defun ack (m n)
          (if (= m 0) (+ n 1)
            (if (= n 0) (ack (- m 1) 1)
              (ack (- m 1) (ack m (- n 1))))))
        (defun main () (emit (ack 2 3)) 0)
        """)
        assert host.output_values() == [9]

    def test_exit_code(self):
        code, _ = run_lisp("(defun main () 17)")
        assert code == 17


class TestCompileErrors:
    @pytest.mark.parametrize("source", [
        "(emit 1)",                       # not a defun at top level
        "(defun f)",                      # malformed
        "(defun f () unbound)",           # unbound variable
        "(defun f () (set! nope 1))",
        "(defun f (a) a) (defun g () (f 1 2))",  # arity
        "(defun f () (+ 1))",             # arity of +
    ])
    def test_rejects(self, source):
        with pytest.raises((CompileError, ParseError)):
            run_lisp(source)


class TestCrossLanguage:
    def test_lisp_calls_c_and_back(self):
        c_obj = compile_to_object("""
        extern int lfib(int n);
        int c_mul(int a, int b) { return a * b; }
        int main() { emit_int(lfib(10)); return 0; }
        """, CompileOptions(module_name="c"))
        lisp_obj = compile_minilisp("""
        (defun lfib (n)
          (if (< n 2) n (+ (lfib (- n 1)) (lfib (c_mul (- n 2) 1)))))
        """, module_name="lisp")
        program = link([c_obj, lisp_obj])
        _code, host = run_module(program)
        assert host.output_values() == [55]

    def test_polyglot_runs_on_all_targets(self):
        c_obj = compile_to_object("""
        extern int triple(int n);
        int main() { emit_int(triple(14)); return 0; }
        """, CompileOptions(module_name="c"))
        lisp_obj = compile_minilisp("(defun triple (n) (* n 3))",
                                    module_name="lisp")
        program = link([c_obj, lisp_obj])
        for arch in ("mips", "sparc", "ppc", "x86"):
            _code, module = run_on_target(program, arch, MOBILE_SFI)
            assert module.host.output_values() == [42], arch
