"""Segmented memory: permissions, violations, typed access."""

import pytest

from repro.errors import AccessViolation
from repro.omnivm.memory import (
    CODE_BASE,
    DATA_BASE,
    HEAP_BASE,
    PERM_EXEC,
    PERM_READ,
    PERM_WRITE,
    SANDBOX_BASE,
    SANDBOX_MASK,
    STACK_BASE,
    Memory,
    standard_module_memory,
)


@pytest.fixture
def memory():
    return standard_module_memory(b"\x01" * 64, b"\x02" * 64)


class TestLayout:
    def test_standard_segments(self, memory):
        names = {seg.name for seg in memory.segments}
        assert names == {"code", "data", "heap", "stack"}

    def test_writable_segments_inside_sandbox(self, memory):
        for name in ("data", "heap", "stack"):
            seg = memory.segment_named(name)
            assert seg.base & ~SANDBOX_MASK == SANDBOX_BASE
            assert (seg.limit - 1) & ~SANDBOX_MASK == SANDBOX_BASE

    def test_code_outside_sandbox(self):
        assert CODE_BASE & ~SANDBOX_MASK != SANDBOX_BASE

    def test_overlap_rejected(self):
        memory = Memory()
        memory.add_segment("a", 0x1000, 0x1000, PERM_READ)
        with pytest.raises(ValueError):
            memory.add_segment("b", 0x1800, 0x1000, PERM_READ)


class TestPermissions:
    def test_code_not_writable(self, memory):
        with pytest.raises(AccessViolation):
            memory.store(CODE_BASE, 4, 0xBAD)

    def test_code_readable_and_executable(self, memory):
        assert memory.load(CODE_BASE, 4) == 0x01010101
        memory.fetch_check(CODE_BASE)

    def test_data_not_executable(self, memory):
        with pytest.raises(AccessViolation):
            memory.fetch_check(DATA_BASE)

    def test_unmapped_faults(self, memory):
        with pytest.raises(AccessViolation) as info:
            memory.load(0, 4)
        assert info.value.address == 0
        with pytest.raises(AccessViolation):
            memory.store(0x05000000, 1, 1)

    def test_straddling_segment_end_faults(self, memory):
        seg = memory.segment_named("data")
        with pytest.raises(AccessViolation):
            memory.load(seg.limit - 2, 4)

    def test_host_imposed_permission_change(self, memory):
        # The host revokes write on the data segment (the paper's
        # host-imposed permissions on multi-page segments).
        memory.store(DATA_BASE, 4, 7)
        memory.set_perms("data", PERM_READ)
        with pytest.raises(AccessViolation):
            memory.store(DATA_BASE, 4, 8)
        assert memory.load(DATA_BASE, 4) == 7

    def test_violation_records_kind(self, memory):
        try:
            memory.store(CODE_BASE, 4, 1)
        except AccessViolation as violation:
            assert violation.kind == "store"


class TestTypedAccess:
    def test_sizes_and_sign(self, memory):
        memory.store(HEAP_BASE, 4, 0xFFFF8080)
        assert memory.load(HEAP_BASE, 1) == 0x80
        assert memory.load(HEAP_BASE, 1, signed=True) == -128
        assert memory.load(HEAP_BASE, 2, signed=True) == -32640
        assert memory.load(HEAP_BASE, 4) == 0xFFFF8080

    def test_little_endian(self, memory):
        memory.store(HEAP_BASE, 4, 0x11223344)
        assert memory.load(HEAP_BASE, 1) == 0x44
        assert memory.load(HEAP_BASE + 3, 1) == 0x11

    def test_floats(self, memory):
        memory.store_f64(STACK_BASE, 2.5)
        assert memory.load_f64(STACK_BASE) == 2.5
        memory.store_f32(STACK_BASE + 8, 1.5)
        assert memory.load_f32(STACK_BASE + 8) == 1.5

    def test_f32_rounds(self, memory):
        memory.store_f32(STACK_BASE, 0.1)
        assert memory.load_f32(STACK_BASE) != 0.1  # rounded to single

    def test_cstring(self, memory):
        memory.write_bytes(HEAP_BASE, b"hello\x00")
        assert memory.read_cstring(HEAP_BASE) == b"hello"

    def test_unterminated_cstring_faults(self, memory):
        memory.write_bytes(HEAP_BASE, b"x" * 32)
        with pytest.raises(AccessViolation):
            memory.read_cstring(HEAP_BASE, max_len=16)

    def test_write_count_tracks_mutation(self, memory):
        before = memory.write_count
        memory.store(HEAP_BASE, 4, 1)
        assert memory.write_count == before + 1
