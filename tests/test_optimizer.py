"""Unit + property tests for the machine-independent optimizer.

The critical property — optimization preserves observable behaviour — is
checked two ways: targeted unit tests per pass, and a hypothesis-driven
differential test compiling randomly generated integer expression
programs at O0 and O2 and asserting identical output.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CompileOptions, compile_to_ir
from repro.ir.ir import Const, Instr
from repro.opt import addrfold, constfold, dce, licm, localopt, simplifycfg, strength
from repro.opt.pipeline import OptOptions, optimize_function
from tests.conftest import compile_run


def build(source, opt_level=0):
    return compile_to_ir(source, CompileOptions(opt_level=opt_level))


def all_instrs(func):
    return [i for b in func.blocks for i in b.all_instrs()]


class TestConstFold:
    def test_folds_arithmetic(self):
        mod = build("int f() { return 3 * 4 + 5; }")
        func = mod.function("f")
        optimize_function(func)
        # After the pipeline, the function is a bare `ret 17`.
        assert len(func.blocks) == 1
        assert not func.blocks[0].instrs
        assert func.blocks[0].terminator.args[0] == Const(17, "i32")

    def test_division_by_zero_not_folded(self):
        mod = build("int f(int a) { return a / 0; }")
        func = mod.function("f")
        # 'a / 0' has non-const lhs; make a const case explicitly:
        mod2 = build("int g() { return 7 / 0; }")
        g = mod2.function("g")
        changes = constfold.run(g)
        assert all(
            not (i.op == "copy" and isinstance(i.args[0], Const))
            or i.args[0].value != 0 or True
            for i in all_instrs(g)
        )
        # The div instruction must survive to trap at runtime.
        assert any(i.op == "bin" and i.subop == "div" for i in all_instrs(g))

    def test_identities(self):
        mod = build("int f(int a) { return (a + 0) * 1 + (a & -1) - (a ^ 0) + a * 0; }")
        func = mod.function("f")
        optimize_function(func)
        muls = [i for i in all_instrs(func) if i.op == "bin" and i.subop == "mul"]
        assert not muls

    def test_branch_folding(self):
        mod = build("int f() { if (1 < 2) return 10; return 20; }")
        func = mod.function("f")
        optimize_function(func)
        assert all(b.terminator.op != "br" for b in func.blocks)

    def test_behaviour_preserved(self, minic):
        src = """
        int main() {
            emit_int(2 + 3 * 4 - 6 / 2);
            emit_int((1 << 4) | (256 >> 4));
            return 0;
        }
        """
        assert minic(src, opt_level=2) == minic(src, opt_level=0)


class TestLocalOpt:
    def test_copy_propagation(self):
        mod = build("int f(int a) { int b = a; int c = b; return c; }")
        func = mod.function("f")
        optimize_function(func)
        # Everything collapses to `ret a` (param temp).
        assert func.blocks[0].terminator.args[0] == func.params[0]

    def test_cse_reuses_computation(self):
        mod = build("int f(int a, int b) { return (a*b) + (a*b); }")
        func = mod.function("f")
        before = sum(1 for i in all_instrs(func)
                     if i.op == "bin" and i.subop == "mul")
        assert before == 2
        optimize_function(func)
        after = sum(1 for i in all_instrs(func)
                    if i.op == "bin" and i.subop == "mul")
        assert after == 1

    def test_load_cse_killed_by_store(self):
        mod = build("""
        int g;
        int f() { int a = g; g = a + 1; return a + g; }
        """)
        func = mod.function("f")
        optimize_function(func)
        loads = [i for i in all_instrs(func) if i.op == "load"]
        assert len(loads) == 2  # the store invalidates the first load

    def test_load_cse_between_pure_code(self, minic):
        src = """
        int g = 5;
        int main() { emit_int(g + g); return 0; }
        """
        assert minic(src, opt_level=2) == [10]


class TestDCE:
    def test_removes_dead_chain(self):
        mod = build("int f(int a) { int unused = a * 17 + 4; return a; }")
        func = mod.function("f")
        optimize_function(func)
        assert not any(i.op == "bin" for i in all_instrs(func))

    def test_keeps_side_effects(self):
        mod = build("int g; int f(int a) { g = a; return 0; }")
        func = mod.function("f")
        optimize_function(func)
        assert any(i.op == "store" for i in all_instrs(func))

    def test_keeps_calls(self):
        mod = build("""
        int h(int a) { return a; }
        int f() { h(3); return 0; }
        """)
        func = mod.function("f")
        optimize_function(func)
        assert any(i.op == "call" for i in all_instrs(func))


class TestStrength:
    def test_mul_pow2_becomes_shift(self):
        mod = build("int f(int a) { return a * 8; }")
        func = mod.function("f")
        strength.run(func)
        assert any(i.op == "bin" and i.subop == "shl" for i in all_instrs(func))
        assert not any(i.op == "bin" and i.subop == "mul"
                       for i in all_instrs(func))

    def test_signed_div_not_reduced(self):
        mod = build("int f(int a) { return a / 4; }")
        func = mod.function("f")
        strength.run(func)
        assert any(i.op == "bin" and i.subop == "div" for i in all_instrs(func))

    def test_unsigned_div_and_rem_reduced(self):
        mod = build("uint f(uint a) { return a / 8 + a % 16; }")
        func = mod.function("f")
        constfold.run(func)
        strength.run(func)
        subops = {i.subop for i in all_instrs(func) if i.op == "bin"}
        assert "div" not in subops and "rem" not in subops

    def test_semantics_preserved_for_negative_division(self, minic):
        src = "int main() { int a = -9; emit_int(a / 4); emit_int(a % 4); return 0; }"
        assert minic(src, opt_level=2) == [-2, -1]


class TestLICM:
    def test_hoists_invariant(self):
        mod = build("""
        int f(int n, int k) {
            int s = 0;
            int i;
            for (i = 0; i < n; i++) s += k * 3;
            return s;
        }
        """)
        func = mod.function("f")
        optimize_function(func)
        from repro.ir.cfg import natural_loops

        loops = natural_loops(func)
        assert loops
        body_labels = loops[0].body
        in_loop_muls = [
            i for b in func.blocks if b.label in body_labels
            for i in b.instrs if i.op == "bin" and i.subop == "mul"
        ]
        assert not in_loop_muls

    def test_does_not_hoist_traps(self):
        mod = build("""
        int f(int n, int d) {
            int s = 0;
            int i;
            for (i = 0; i < n; i++) if (d != 0) s += 100 / d;
            return s;
        }
        """)
        func = mod.function("f")
        optimize_function(func)
        # 100/d must stay guarded: a zero-trip loop with d==0 must not trap.
        _code, host = compile_run("""
        int f(int n, int d) {
            int s = 0;
            int i;
            for (i = 0; i < n; i++) if (d != 0) s += 100 / d;
            return s;
        }
        int main() { emit_int(f(5, 0)); emit_int(f(3, 5)); return 0; }
        """, opt_level=2)
        assert host.output_values() == [0, 60]

    def test_loop_behaviour_preserved(self, minic):
        src = """
        int main() {
            int s = 0; int i; int k = 7;
            for (i = 0; i < 10; i++) s += i * k + (k << 2);
            emit_int(s);
            return 0;
        }
        """
        assert minic(src, opt_level=2) == minic(src, opt_level=0)


class TestSimplifyCFG:
    def test_merges_straightline_chains(self):
        mod = build("int f(int a) { int b = a + 1; int c = b * 2; return c; }")
        func = mod.function("f")
        optimize_function(func)
        assert len(func.blocks) == 1

    def test_folds_constant_diamond(self):
        mod = build("""
        int f() {
            int x;
            if (3 > 2) x = 1; else x = 2;
            return x;
        }
        """)
        func = mod.function("f")
        optimize_function(func)
        assert len(func.blocks) == 1


class TestAddrFold:
    def test_folds_constant_offsets(self):
        mod = build("""
        struct S { int a; int b; int c; };
        int f(struct S *s) { return s->c; }
        """, opt_level=2)
        func = mod.function("f")
        addrfold.run(func)
        loads = [i for i in all_instrs(func) if i.op == "load"]
        assert loads and getattr(loads[0], "offset", 0) == 8

    def test_indexed_mode_selected(self):
        mod = build("int f(int *a, int i) { return a[i]; }", opt_level=2)
        func = mod.function("f")
        addrfold.run(func)
        loads = [i for i in all_instrs(func) if i.op == "load"]
        assert getattr(loads[0], "addr_mode", "simple") == "indexed"

    def test_no_fold_through_multi_def(self, minic):
        # p changes inside the loop: folding its add would be wrong.
        src = """
        int a[4] = {1, 2, 3, 4};
        int main() {
            int *p = a;
            int s = 0;
            int i;
            for (i = 0; i < 4; i++) { s += *(p + 1 - 1); p++; }
            emit_int(s);
            return 0;
        }
        """
        assert minic(src, opt_level=2) == [10]


# ---------------------------------------------------------------------------
# Property: O2 == O0 on randomly generated expression programs.
# ---------------------------------------------------------------------------

_VARS = ["a", "b", "c"]


def _exprs(depth):
    if depth == 0:
        return st.one_of(
            st.integers(min_value=-100, max_value=100).map(str),
            st.sampled_from(_VARS),
        )
    sub = _exprs(depth - 1)
    def binop(op):
        return st.tuples(sub, sub).map(lambda t: f"({t[0]} {op} {t[1]})")
    return st.one_of(
        sub,
        binop("+"), binop("-"), binop("*"),
        binop("&"), binop("|"), binop("^"),
        binop("<"), binop("=="),
        st.tuples(sub, st.integers(min_value=0, max_value=8)).map(
            lambda t: f"({t[0]} << {t[1]})"
        ),
        st.tuples(sub, st.integers(min_value=0, max_value=8)).map(
            lambda t: f"({t[0]} >> {t[1]})"
        ),
        st.tuples(sub, st.integers(min_value=1, max_value=9)).map(
            lambda t: f"({t[0]} / {t[1]})"
        ),
        st.tuples(sub, sub, sub).map(
            lambda t: f"({t[0]} ? {t[1]} : {t[2]})"
        ),
    )


@settings(max_examples=40, deadline=None)
@given(expr=_exprs(3),
       values=st.tuples(*[st.integers(min_value=-1000, max_value=1000)] * 3))
def test_optimizer_preserves_random_expressions(expr, values):
    source = f"""
    int a = {values[0]}; int b = {values[1]}; int c = {values[2]};
    int main() {{ emit_int({expr}); return 0; }}
    """
    _c0, host0 = compile_run(source, opt_level=0)
    _c2, host2 = compile_run(source, opt_level=2)
    assert host0.output_values() == host2.output_values()
