"""Extended interpreter coverage: the opcodes the main tests don't hit
(FP negate/abs/single ops, indexed FP/sub-word memory forms, unsigned
conversions, storex variants, sethnd), plus differential spot checks
against every target executor for the same forms.
"""

import pytest

from repro.omnivm.asmparser import assemble
from repro.omnivm.linker import link
from repro.runtime.loader import load_for_interpretation
from repro.runtime.native_loader import load_for_target
from repro.native.profiles import MOBILE_SFI


def run_asm(body, data=""):
    source = f"""
        .text
        .globl main
    main:
    {body}
        .data
    {data}
    """
    program = link([assemble(source)])
    loaded = load_for_interpretation(program)
    code = loaded.run()
    return code, loaded


def run_asm_on(arch, body, data=""):
    source = f"""
        .text
        .globl main
    main:
    {body}
        .data
    {data}
    """
    program = link([assemble(source)])
    module = load_for_target(program, arch, MOBILE_SFI)
    code = module.run()
    return code, module


class TestFPUnary:
    BODY = """
        li r2, @vals
        lfd f1, r2, 0
        fnegd f2, f1
        fabsd f3, f2
        faddd f1, f2, f3
        hostcall 3
        fmovd f1, f3
        hostcall 3
        li r1, 0
        jr ra
    """
    DATA = "vals:\n  .double 2.5"

    def test_interpreter(self):
        _code, loaded = run_asm(self.BODY, self.DATA)
        assert loaded.host.output_values() == [0.0, 2.5]

    @pytest.mark.parametrize("arch", ["mips", "sparc", "ppc", "x86"])
    def test_targets_agree(self, arch):
        _code, module = run_asm_on(arch, self.BODY, self.DATA)
        assert module.host.output_values() == [0.0, 2.5]


class TestSinglePrecision:
    BODY = """
        li r2, @vals
        lfs f1, r2, 0
        lfs f2, r2, 4
        fmuls f3, f1, f2
        cvtds f1, f3
        hostcall 3
        li r3, @out
        sfs f3, r3, 0
        lfs f1, r3, 0
        cvtds f1, f1
        hostcall 3
        li r1, 0
        jr ra
    """
    DATA = """
    vals:
      .float 1.5
      .float 2.5
    out:
      .float 0.0
    """

    def test_interpreter(self):
        _code, loaded = run_asm(self.BODY, self.DATA)
        assert loaded.host.output_values() == [3.75, 3.75]

    @pytest.mark.parametrize("arch", ["mips", "ppc", "x86"])
    def test_targets_agree(self, arch):
        _code, module = run_asm_on(arch, self.BODY, self.DATA)
        assert module.host.output_values() == [3.75, 3.75]


class TestIndexedStores:
    BODY = """
        li r2, @arr
        li r3, 4
        li r4, 0x55
        sbx r4, r2, r3       ; arr[4] = 0x55 (byte)
        li r3, 6
        li r4, 0x1234
        shx r4, r2, r3       ; halfword at +6
        li r3, 8
        li r4, -9
        swx r4, r2, r3       ; word at +8
        lbux r1, r2, r3      ; reload pieces
        li r3, 4
        lbx r5, r2, r3
        add r1, r1, r5
        li r3, 6
        lhux r5, r2, r3
        add r1, r1, r5
        jr ra
    """
    DATA = "arr:\n  .space 16"

    def expected(self):
        return ((-9) & 0xFF) + 0x55 + 0x1234

    def test_interpreter(self):
        code, _ = run_asm(self.BODY, self.DATA)
        assert code == self.expected()

    @pytest.mark.parametrize("arch", ["mips", "sparc", "ppc", "x86"])
    def test_targets_agree(self, arch):
        code, _ = run_asm_on(arch, self.BODY, self.DATA)
        assert code == self.expected()


class TestIndexedFPMemory:
    BODY = """
        li r2, @arr
        li r3, 8
        lfdx f1, r2, r3
        faddd f1, f1, f1
        li r3, 16
        sfdx f1, r2, r3
        lfd f1, r2, 16
        hostcall 3
        li r1, 0
        jr ra
    """
    DATA = """
    arr:
      .double 0.0
      .double 1.25
      .double 0.0
    """

    def test_interpreter(self):
        _code, loaded = run_asm(self.BODY, self.DATA)
        assert loaded.host.output_values() == [2.5]

    @pytest.mark.parametrize("arch", ["mips", "sparc", "ppc", "x86"])
    def test_targets_agree(self, arch):
        _code, module = run_asm_on(arch, self.BODY, self.DATA)
        assert module.host.output_values() == [2.5]


class TestUnsignedConversions:
    BODY = """
        li r2, 0xC0000000
        cvtdwu f1, r2        ; 3221225472.0
        hostcall 3
        cvtwud r3, f1        ; back to u32
        sgtui r1, r3, 0      ; r1 = (r3 > 0 unsigned)
        beqi r3, 0, fail
        li r1, 1
        jr ra
    fail:
        li r1, 0
        jr ra
    """

    def test_interpreter(self):
        code, loaded = run_asm(self.BODY)
        assert code == 1
        assert loaded.host.output_values() == [3221225472.0]

    @pytest.mark.parametrize("arch", ["mips", "sparc", "ppc", "x86"])
    def test_targets_agree(self, arch):
        code, module = run_asm_on(arch, self.BODY)
        assert code == 1
        assert module.host.output_values() == [3221225472.0]


class TestSetCompareFamilies:
    BODY = """
        li r2, -3
        li r3, 5
        seq r1, r2, r2      ; 1
        sne r4, r2, r3      ; 1
        add r1, r1, r4
        sle r4, r2, r3      ; 1 (signed)
        add r1, r1, r4
        sgeu r4, r2, r3     ; 1 (-3 unsigned is huge)
        add r1, r1, r4
        slei r4, r2, -3     ; 1
        add r1, r1, r4
        sgti r4, r3, 4      ; 1
        add r1, r1, r4
        jr ra
    """

    def test_interpreter(self):
        code, _ = run_asm(self.BODY)
        assert code == 6

    @pytest.mark.parametrize("arch", ["mips", "sparc", "ppc", "x86"])
    def test_targets_agree(self, arch):
        code, _ = run_asm_on(arch, self.BODY)
        assert code == 6
