"""Governance parity: threaded host vs. sharded process router.

The sharded service's contract is that the process boundary is pure
transport — every governance outcome (deadlines, quotas, retry with
backoff, interpreter fallback, overload shedding, typed link errors)
must be byte-identical to the threaded :class:`ModuleHost`: same
``error`` class names on responses, same service counter names, same
raised exception types on the control plane.  Each test here runs once
per host mode via the parametrized ``serve`` fixture.

(The one visible asymmetry is intentional and not tested for equality:
``FaultInjector.fired`` counts in the *injector object*, which workers
copy at spawn, so cross-process assertions use ``response.retries`` and
the ``retry`` counter instead.)
"""

import pytest

from repro.compiler import compile_and_link
from repro.engine import Engine
from repro.errors import DynamicLinkError, ServiceOverloaded
from repro.service import (
    FaultInjector,
    ModuleRequest,
    RequestQuota,
    RetryPolicy,
)

SRC = "int main() { emit_int(42); return 0; }"
SPINNER_SRC = """
int main() {
    int i;
    i = 0;
    while (1) { i = i + 1; }
    return i;
}
"""
EMITTER_SRC = """
int main() {
    int i;
    for (i = 0; i < 50; i = i + 1) { emit_int(i); }
    return 0;
}
"""
LIB_SRC = "int answer() { return 42; }"
APP_SRC = """
extern int answer();
int main() { emit_int(answer()); return 0; }
"""


@pytest.fixture(scope="module")
def program():
    return compile_and_link([SRC])


@pytest.fixture(scope="module")
def spinner():
    return compile_and_link([SPINNER_SRC])


@pytest.fixture(params=["threads", "processes"])
def serve(request):
    """A host factory: ``serve(engine, **kwargs)`` yields a started
    host of the parametrized kind with identical governance config."""
    mode = request.param

    def factory(engine: Engine, **kwargs):
        if mode == "processes":
            kwargs.setdefault("processes", 2)
        return engine.serve(**kwargs)

    factory.mode = mode
    return factory


class TestOutcomeParity:
    def test_ok_path(self, serve, program):
        with serve(Engine(target="mips"), workers=2) as host:
            response = host.run(ModuleRequest(program=program))
        assert response.ok and response.exit_code == 0
        assert response.output == "42"
        assert response.arch == "mips" and not response.fallback
        assert host.stats.counters["ok"] == 1
        assert host.stats.counters["request"] == 1

    def test_source_text_compiles_in_place(self, serve):
        with serve(Engine(), workers=1) as host:
            response = host.run(ModuleRequest(program=SRC))
        assert response.ok and response.output == "42"
        assert response.arch == "omnivm"

    def test_deadline_exceeded(self, serve, spinner):
        with serve(Engine(target="mips"), workers=2) as host:
            response = host.run(ModuleRequest(
                program=spinner, deadline_seconds=0.1,
                quota=RequestQuota(fuel=10 ** 9)))
        assert not response.ok
        assert response.error == "DeadlineExceeded"
        assert host.stats.counters["timeout"] == 1
        assert host.stats.counters["error"] == 1

    def test_fuel_quota_not_misreported_as_deadline(self, serve, spinner):
        with serve(Engine(target="mips"), workers=1) as host:
            response = host.run(ModuleRequest(
                program=spinner, deadline_seconds=30.0,
                quota=RequestQuota(fuel=20_000)))
        assert response.error == "FuelExhausted"
        assert host.stats.counters.get("timeout", 0) == 0

    def test_output_quota_exceeded(self, serve):
        with serve(Engine(), workers=1) as host:
            response = host.run(ModuleRequest(
                program=EMITTER_SRC,
                quota=RequestQuota(max_output_bytes=16)))
        assert not response.ok
        assert response.error == "QuotaExceeded"
        assert host.stats.counters["quota_exceeded"] == 1

    def test_retry_then_succeed(self, serve, program):
        faults = FaultInjector()
        faults.fail_translations(count=2)
        with serve(Engine(target="mips"), workers=1, faults=faults,
                   retry=RetryPolicy(max_attempts=4,
                                     backoff_seconds=0.001)) as host:
            response = host.run(ModuleRequest(program=program))
        assert response.ok and not response.fallback
        assert response.retries == 2
        assert host.stats.counters["retry"] == 2

    def test_exhausted_retries_fall_back(self, serve, program):
        faults = FaultInjector()
        faults.fail_translations(count=-1)
        with serve(Engine(target="mips"), workers=1, faults=faults,
                   retry=RetryPolicy(max_attempts=3,
                                     backoff_seconds=0.001)) as host:
            response = host.run(ModuleRequest(program=program))
        assert response.ok and response.fallback
        assert response.arch == "omnivm" and response.output == "42"
        assert response.retries == 3
        assert host.stats.counters["fallback"] == 1

    def test_overload_sheds_with_typed_error(self, serve, spinner):
        engine = Engine(target="mips")
        with serve(engine, workers=1, queue_depth=1) as host:
            blockers = [host.submit(ModuleRequest(
                program=spinner, deadline_seconds=0.5,
                quota=RequestQuota(fuel=10 ** 9)), block=True)
                for _ in range(2)]
            with pytest.raises(ServiceOverloaded):
                for _ in range(64):
                    host.submit(ModuleRequest(
                        program=spinner, deadline_seconds=0.5,
                        quota=RequestQuota(fuel=10 ** 9)))
            for pending in blockers:
                pending.result(timeout=30.0)
        assert host.stats.counters["rejected"] >= 1


class TestLinkErrorParity:
    def test_unresolved_import(self, serve):
        engine = Engine()
        with serve(engine, workers=1) as host:
            host.register_module("app", APP_SRC)
            response = host.run(ModuleRequest(modules=["app"]))
        assert response.error == "UnresolvedImportError"
        assert host.stats.counters["link_unresolved_import"] == 1

    def test_revoked_module(self, serve):
        engine = Engine()
        with serve(engine, workers=1) as host:
            host.register_module("lib", LIB_SRC)
            host.register_module("app", APP_SRC)
            ok = host.run(ModuleRequest(modules=["app"]))
            host.revoke_module("lib")
            revoked = host.run(ModuleRequest(modules=["app"]))
        assert ok.ok and ok.output == "42"
        assert revoked.error == "ModuleRevokedError"
        assert host.stats.counters["module_revoked"] == 1

    def test_revoking_unknown_module_raises_typed_error(self, serve):
        with serve(Engine(), workers=1) as host:
            with pytest.raises(DynamicLinkError, match="unknown module"):
                host.revoke_module("nonesuch")

    def test_request_needs_program_or_modules(self, serve):
        with serve(Engine(), workers=1) as host:
            response = host.run(ModuleRequest())
        assert response.error == "DynamicLinkError"


class TestStatsShapeParity:
    def test_to_dict_schema_matches(self, serve, program):
        with serve(Engine(target="mips"), workers=2) as host:
            host.run(ModuleRequest(program=program))
        payload = host.stats.to_dict()
        for key in ("counters", "queue_high_water",
                    "completed_requests", "latency_seconds"):
            assert key in payload
        assert payload["completed_requests"] == 1
        assert set(payload["latency_seconds"]) == {"p50", "p90", "p99"}
        assert payload["latency_seconds"]["p99"] > 0.0

    def test_stats_survive_stop(self, serve, program):
        host = serve(Engine(target="mips"), workers=1)
        with host:
            host.run(ModuleRequest(program=program))
        # After the with-block the host is stopped; stats must still
        # answer from the frozen final snapshot.
        assert host.stats.counters["ok"] == 1
