"""SandboxPolicy invariants, containment boundaries, and the
return-sentinel clearance guard.

Pins the two policy-level satellites of the model-check PR:

* ``code_contains`` is *alignment-respecting*: exactly the fixed
  points of ``sandbox_code_address`` (an earlier revision accepted
  unaligned low bits via ``| 0x7``, so a target could be "contained"
  yet changed by the masking sequence);
* ``RETURN_SENTINEL`` occupies the last aligned code slot, so layouts
  whose text reaches that slot are refused at link/load/translate
  time (a maximal-size module is the boundary case).
"""

import pytest

from repro.errors import LinkError
from repro.native.profiles import MOBILE_SFI
from repro.omnivm.memory import CODE_BASE, SANDBOX_BASE, SANDBOX_MASK
from repro.sfi.policy import (
    CODE_OFFSET_MASK,
    DEFAULT_POLICY,
    PADDED_POLICY,
    RETURN_SENTINEL,
    SENTINEL_SLOT_INDEX,
    check_sentinel_clearance,
)
from repro.compiler import compile_and_link
from repro.translators import translate

SRC = "int main() { return 7; }"


class TestPolicyInvariants:
    """Satellite 4: the layout invariants, for every shipped policy."""

    @pytest.mark.parametrize("policy", [DEFAULT_POLICY, PADDED_POLICY],
                             ids=["default", "padded"])
    def test_bases_do_not_overlap_masks(self, policy):
        assert policy.data_base & policy.data_mask == 0
        assert policy.code_base & policy.code_mask == 0

    def test_code_mask_enforces_alignment(self):
        assert CODE_OFFSET_MASK & 0x7 == 0

    def test_default_policy_matches_memory_layout(self):
        assert DEFAULT_POLICY.data_base == SANDBOX_BASE
        assert DEFAULT_POLICY.data_mask == SANDBOX_MASK
        assert DEFAULT_POLICY.code_base == CODE_BASE


class TestContainmentBoundaries:
    def test_data_segment_edges(self):
        policy = DEFAULT_POLICY
        lo = policy.data_base
        hi = policy.data_base + policy.data_mask
        assert policy.data_contains(lo)
        assert policy.data_contains(hi)
        assert not policy.data_contains(lo - 1)
        assert not policy.data_contains(hi + 1)
        assert not policy.data_contains(0)
        assert not policy.data_contains(0xFFFFFFFF)

    def test_code_segment_edges(self):
        policy = DEFAULT_POLICY
        assert policy.code_contains(policy.code_base)
        assert policy.code_contains(policy.code_base + policy.code_mask)
        assert not policy.code_contains(policy.code_base - 8)
        assert not policy.code_contains(
            policy.code_base + policy.code_mask + 8)

    def test_code_contains_rejects_unaligned(self):
        """Satellite 2: alignment-respecting containment."""
        policy = DEFAULT_POLICY
        for low_bits in (1, 2, 3, 4, 7):
            assert not policy.code_contains(policy.code_base + 8 + low_bits)

    def test_code_contains_is_fixed_point_set(self):
        """code_contains(a) iff sandbox_code_address leaves a unchanged."""
        policy = DEFAULT_POLICY
        probes = [
            policy.code_base, policy.code_base + 8, policy.code_base + 9,
            policy.code_base + policy.code_mask, RETURN_SENTINEL,
            policy.code_base - 1, 0, 0xFFFFFFFF, policy.data_base,
        ]
        for address in probes:
            address &= 0xFFFFFFFF
            assert policy.code_contains(address) == (
                policy.sandbox_code_address(address) == address
            ), hex(address)

    def test_sandbox_addresses_idempotent(self):
        policy = DEFAULT_POLICY
        for address in (0, 1, 7, policy.data_base - 1, policy.data_base,
                        policy.code_base + 5, 0x7FFFFFFF, 0xFFFFFFFF):
            once = policy.sandbox_data_address(address)
            assert policy.sandbox_data_address(once) == once
            assert policy.data_contains(once)
            once = policy.sandbox_code_address(address)
            assert policy.sandbox_code_address(once) == once
            assert policy.code_contains(once)


class TestSentinelClearance:
    """Satellite 3: text must stop short of the return-sentinel slot."""

    def test_sentinel_is_last_aligned_slot(self):
        assert RETURN_SENTINEL == CODE_BASE | CODE_OFFSET_MASK
        assert SENTINEL_SLOT_INDEX == (RETURN_SENTINEL - CODE_BASE) // 8
        assert DEFAULT_POLICY.sandbox_code_address(RETURN_SENTINEL) \
            == RETURN_SENTINEL

    def test_maximal_module_passes(self):
        # The largest legal layout: text fills every slot *below* the
        # sentinel's.
        check_sentinel_clearance(0, SENTINEL_SLOT_INDEX)

    def test_one_instruction_too_many_is_refused(self):
        with pytest.raises(LinkError, match="return-sentinel slot"):
            check_sentinel_clearance(0, SENTINEL_SLOT_INDEX + 1)

    def test_based_layout_at_the_edge(self):
        check_sentinel_clearance(SENTINEL_SLOT_INDEX - 4, 4)
        with pytest.raises(LinkError, match="return-sentinel slot"):
            check_sentinel_clearance(SENTINEL_SLOT_INDEX - 4, 5)

    def test_empty_text_is_fine(self):
        check_sentinel_clearance(0, 0)
        check_sentinel_clearance(SENTINEL_SLOT_INDEX + 10, 0)

    def test_translator_refuses_text_reaching_sentinel(self):
        # A maximal-size module by index arithmetic: translation-unit
        # placement (base_index) puts the last instruction in the
        # sentinel slot without materializing 2M instructions.
        program = compile_and_link([SRC])
        program.base_index = SENTINEL_SLOT_INDEX - len(program.instrs) + 1
        with pytest.raises(LinkError, match="return-sentinel slot"):
            translate(program, "mips", MOBILE_SFI)

    def test_sentinel_masks_to_itself_under_jump_guard(self):
        # The executor's halt convention survives SFI masking: that is
        # precisely why the slot must stay unmapped.
        masked = DEFAULT_POLICY.sandbox_code_address(RETURN_SENTINEL)
        assert masked == RETURN_SENTINEL
