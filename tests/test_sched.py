"""Instruction scheduler and delay-slot filler unit tests."""

from repro.targets.base import MInstr
from repro.translators import target_spec
from repro.translators.sched import (
    build_dependences,
    finalize_block,
    list_schedule,
)


def names(block):
    return [f"{i.op}:{i.rd}" for i in block]


class TestDependences:
    def test_raw_dependency(self):
        block = [
            MInstr("lw", rd=8, rs=29, imm=0),
            MInstr("addi", rd=9, rs=8, imm=1),
        ]
        succs = build_dependences(block)
        assert 1 in succs[0]

    def test_waw_and_war(self):
        block = [
            MInstr("li", rd=8, imm=1),
            MInstr("addi", rd=9, rs=8, imm=0),   # reads r8
            MInstr("li", rd=8, imm=2),           # WAR with 1, WAW with 0
        ]
        succs = build_dependences(block)
        assert 2 in succs[0]  # WAW
        assert 2 in succs[1]  # WAR

    def test_store_orders_memory(self):
        block = [
            MInstr("sw", rt=8, rs=29, imm=0),
            MInstr("lw", rd=9, rs=29, imm=0),
            MInstr("sw", rt=9, rs=29, imm=4),
        ]
        succs = build_dependences(block)
        assert 1 in succs[0]  # load after store
        assert 2 in succs[1]  # store after load

    def test_loads_can_reorder(self):
        block = [
            MInstr("lw", rd=8, rs=29, imm=0),
            MInstr("lw", rd=9, rs=29, imm=4),
        ]
        succs = build_dependences(block)
        assert 1 not in succs[0]

    def test_cc_dependence(self):
        block = [
            MInstr("cmp", rs=8, rt=9),
            MInstr("bcc", pred="lt", target=0),
        ]
        succs = build_dependences(block)
        assert 1 in succs[0]


class TestListScheduler:
    def _permutation_of(self, scheduled, original):
        assert sorted(map(id, scheduled)) == sorted(map(id, original))

    def test_hides_load_latency(self):
        spec = target_spec("mips")
        load = MInstr("lw", rd=8, rs=29, imm=0)
        use = MInstr("addi", rd=9, rs=8, imm=1)
        filler = MInstr("li", rd=10, imm=7)
        block = [load, use, filler]
        scheduled = list_schedule(block, spec)
        self._permutation_of(scheduled, block)
        # The independent li moves between load and its use.
        assert scheduled.index(filler) < scheduled.index(use)

    def test_preserves_dependences(self):
        spec = target_spec("mips")
        block = [
            MInstr("li", rd=8, imm=1),
            MInstr("addi", rd=9, rs=8, imm=1),
            MInstr("addi", rd=10, rs=9, imm=1),
            MInstr("li", rd=11, imm=2),
        ]
        scheduled = list_schedule(block, spec)
        order = {id(i): n for n, i in enumerate(scheduled)}
        assert order[id(block[0])] < order[id(block[1])] < order[id(block[2])]

    def test_branch_stays_last(self):
        spec = target_spec("ppc")
        block = [
            MInstr("li", rd=8, imm=1),
            MInstr("cmpi", rs=8, imm=0),
            MInstr("bcc", pred="ne", target=3),
        ]
        scheduled = list_schedule(block, spec)
        assert scheduled[-1].op == "bcc"

    def test_deterministic(self):
        spec = target_spec("mips")
        block = [MInstr("li", rd=8 + i, imm=i) for i in range(6)]
        a = list_schedule(list(block), spec)
        b = list_schedule(list(block), spec)
        assert names(a) == names(b)


class TestDelaySlots:
    def test_fills_with_independent_instruction(self):
        spec = target_spec("mips")
        block = [
            MInstr("li", rd=8, imm=1),
            MInstr("li", rd=10, imm=3),
            MInstr("beq", rs=8, rt=9, target=7),
        ]
        out = finalize_block(block, spec, schedule=True)
        assert out[-2].op == "beq"
        assert out[-1].op == "li" and out[-1].rd == 10

    def test_nop_when_branch_depends(self):
        spec = target_spec("mips")
        block = [
            MInstr("li", rd=8, imm=1),
            MInstr("beq", rs=8, rt=0, target=7),
        ]
        out = finalize_block(block, spec, schedule=True)
        assert out[-1].op == "nop"
        assert out[-1].category == "bnop"

    def test_nop_when_scheduling_disabled(self):
        spec = target_spec("mips")
        block = [
            MInstr("li", rd=10, imm=3),
            MInstr("beq", rs=8, rt=9, target=7),
        ]
        out = finalize_block(block, spec, schedule=False)
        assert out[-1].op == "nop"

    def test_no_slot_on_non_delay_targets(self):
        spec = target_spec("ppc")
        block = [MInstr("bcc", pred="lt", target=0)]
        assert finalize_block(block, spec, schedule=True) == block

    def test_fallthrough_block_untouched(self):
        spec = target_spec("mips")
        block = [MInstr("li", rd=8, imm=1)]
        assert finalize_block(block, spec, schedule=True) == block


class TestDelaySlotHazards:
    def test_link_register_store_not_moved_into_call_slot(self):
        """Regression: `sw ra, sp, 0` must not fill a jal's delay slot —
        jal writes ra before the slot executes (found by the alvinn
        workload returning into the wrong frame)."""
        spec = target_spec("mips")
        ra = spec.reserved["ra"]
        block = [
            MInstr("addi", rd=29, rs=29, imm=-8),
            MInstr("sw", rt=ra, rs=29, imm=0),
            MInstr("jal", target=0, imm=0x10000098),
        ]
        out = finalize_block(block, spec, schedule=True)
        assert out[-1].op == "nop"  # slot NOT filled with the ra store
        assert [i.op for i in out[:3]] == ["addi", "sw", "jal"]

    def test_link_register_consumer_not_moved_into_call_slot(self):
        spec = target_spec("mips")
        ra = spec.reserved["ra"]
        block = [
            MInstr("mov", rd=8, rs=ra),
            MInstr("jal", target=0, imm=0x10000098),
        ]
        out = finalize_block(block, spec, schedule=True)
        assert out[-1].op == "nop"

    def test_unrelated_instruction_still_fills_call_slot(self):
        spec = target_spec("mips")
        block = [
            MInstr("li", rd=8, imm=5),
            MInstr("jal", target=0, imm=0x10000098),
        ]
        out = finalize_block(block, spec, schedule=True)
        assert out[-1].op == "li"
