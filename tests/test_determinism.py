"""Determinism guarantees: every layer is bit-reproducible.

The benchmark harness's cache and the paper-vs-measured comparisons are
only meaningful if repeated builds and runs are identical; these tests
pin that property at each layer.
"""

from repro.compiler import CompileOptions, compile_to_object
from repro.native.profiles import MOBILE_SFI
from repro.omnivm.linker import link
from repro.runtime.loader import run_module
from repro.runtime.native_loader import run_on_target

SOURCE = """
int work(int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) s += i * i + host_rand();
    return s;
}
int main() { emit_int(work(25)); return 0; }
"""


def build():
    return compile_to_object(SOURCE, CompileOptions(module_name="det"))


class TestBuildDeterminism:
    def test_object_bytes_identical(self):
        assert build().to_bytes() == build().to_bytes()

    def test_linked_image_identical(self):
        a = link([build()])
        b = link([build()])
        assert a.text_image == b.text_image
        assert bytes(a.data_image) == bytes(b.data_image)
        assert a.symbols == b.symbols

    def test_translation_identical(self):
        from repro.translators import translate

        program = link([build()])
        first = translate(program, "mips", MOBILE_SFI)
        second = translate(program, "mips", MOBILE_SFI)
        assert [str(i) for i in first.instrs] == [str(i) for i in second.instrs]
        assert first.omni_to_native == second.omni_to_native


class TestRunDeterminism:
    def test_interpreter_runs_identical(self):
        program = link([build()])
        runs = []
        for _ in range(2):
            _code, host = run_module(program)
            runs.append(host.output_values())
        assert runs[0] == runs[1]

    def test_cycle_counts_identical(self):
        program = link([build()])
        cycles = []
        for _ in range(2):
            _code, module = run_on_target(program, "ppc", MOBILE_SFI)
            cycles.append((module.machine.cycles, module.machine.instret,
                           dict(module.machine.category_counts)))
        assert cycles[0] == cycles[1]

    def test_host_rng_is_part_of_the_determinism(self):
        # host_rand is a fixed-seed LCG per Host instance, so two fresh
        # hosts see the same stream.
        program = link([build()])
        _c1, h1 = run_module(program)
        _c2, h2 = run_module(program)
        assert h1.output_values() == h2.output_values()
