"""The CFG/worklist SFI verifier: cross-block dataflow, delay slots,
sp-excursion bounds, and the non-SFI regression.

``tests/test_sfi.py`` covers the sandbox algebra and straight-line
accept/reject cases; this file exercises what the worklist analysis
adds over a linear scan:

* sandboxing state propagated across basic-block boundaries, with the
  meet at join points deciding acceptance (safe iff safe on *every*
  in-edge);
* MIPS/SPARC branch delay slots — a guard or a guarded store sitting in
  a delay slot verifies exactly when it is safe on every path,
  including SPARC annulled branches that skip the slot when untaken;
* the sp-excursion interval: bounded drift (balanced frames, loops that
  restore sp) is accepted, unbounded drift (straight-line or looped) is
  rejected even though each individual update is a small constant;
* non-SFI modules: nothing is enforced — the regression for the dead
  ``or True`` branch the old linear verifier carried, which pretended
  to check returns of non-SFI modules (a raw ``jr`` is legitimate
  non-SFI translator output and must verify);
* the ``verify.sfi.blocks`` / ``edges`` / ``joins`` metrics.

Hostile sequences are hand-built with the same prepend idiom as
``tests/test_sfi.py``: native instructions are spliced in front of a
real translated module with all control-flow maps shifted to stay
consistent, and the module entry is retargeted at the spliced code so
the dataflow analysis actually reaches it from an anchor.
"""

import pytest

from repro import metrics
from repro.compiler import compile_and_link
from repro.errors import VerifyError
from repro.native.profiles import MOBILE_NOSFI, MOBILE_SFI
from repro.sfi.policy import SP_EXCURSION_LIMIT
from repro.sfi.verifier import SCRATCH_DATA_SANDBOXED, verify_sfi
from repro.targets import mips, sparc
from repro.targets.base import MInstr
from repro.translators import ARCHITECTURES, translate

#: The two delay-slot targets, with their register-convention modules.
DELAY_ARCHES = {"mips": mips, "sparc": sparc}


def _module_with_prelude(arch, prelude, options=MOBILE_SFI,
                         anchor_prelude=True):
    """Splice hand-built native instructions in front of a translated
    module, keeping the control-flow maps consistent (indices shift).

    With ``anchor_prelude`` the module entry is moved to index 0 so the
    prelude is reachable from an anchor and gets real propagated
    states; without it the prelude is dead code, checked only by the
    conservative final pass."""
    program = compile_and_link(["int main() { return 0; }"])
    module = translate(program, arch, options)
    shift = len(prelude)
    for instr in module.instrs:
        if instr.target >= 0:
            instr.target += shift
    module.omni_to_native = {
        addr: index + shift for addr, index in module.omni_to_native.items()
    }
    module.entry_native = 0 if anchor_prelude else module.entry_native + shift
    module.instrs = prelude + module.instrs
    return module


def _regs(arch):
    return DELAY_ARCHES[arch]


class TestCrossBlockFlow:
    """Sandboxing sequences that span basic-block boundaries."""

    def test_join_accepts_when_all_paths_sandboxed(self):
        # Guard before the branch; both the taken and the fall-through
        # path reach the store with at = DATA_SANDBOXED.
        t = mips
        module = _module_with_prelude("mips", [
            MInstr("and", rd=t.AT, rs=t.INT_MAP[1], rt=t.SFI_MASK),   # 0
            MInstr("or", rd=t.AT, rs=t.AT, rt=t.SFI_BASE),            # 1
            MInstr("beq", rs=t.INT_MAP[2], target=5),                 # 2
            MInstr("nop"),                                            # 3 slot
            MInstr("addi", rd=t.INT_MAP[1], rs=t.INT_MAP[1], imm=4),  # 4 fall
            MInstr("sw", rt=t.INT_MAP[1], rs=t.AT, imm=0),            # 5 join
        ])
        analysis = verify_sfi(module)
        assert analysis.in_scratch[5] == SCRATCH_DATA_SANDBOXED
        assert analysis.joins >= 1

    def test_join_rejects_when_one_path_clobbers_the_guard(self):
        # Identical shape, but the fall-through path clobbers at: the
        # meet at the join demotes it to UNKNOWN and the store — safe
        # on the taken path alone — must be rejected.
        t = mips
        module = _module_with_prelude("mips", [
            MInstr("and", rd=t.AT, rs=t.INT_MAP[1], rt=t.SFI_MASK),   # 0
            MInstr("or", rd=t.AT, rs=t.AT, rt=t.SFI_BASE),            # 1
            MInstr("beq", rs=t.INT_MAP[2], target=5),                 # 2
            MInstr("nop"),                                            # 3 slot
            MInstr("li", rd=t.AT, imm=0x50000000),                    # 4 fall
            MInstr("sw", rt=t.INT_MAP[1], rs=t.AT, imm=0),            # 5 join
        ])
        with pytest.raises(VerifyError, match="unsandboxed"):
            verify_sfi(module)

    def test_guard_split_across_unconditional_jump(self):
        # Mask in one block, rebase after a `j`: the state must flow
        # along the jump edge for the store to verify.
        t = mips
        module = _module_with_prelude("mips", [
            MInstr("and", rd=t.AT, rs=t.INT_MAP[1], rt=t.SFI_MASK),   # 0
            MInstr("j", target=3),                                    # 1
            MInstr("nop"),                                            # 2 slot
            MInstr("or", rd=t.AT, rs=t.AT, rt=t.SFI_BASE),            # 3
            MInstr("sw", rt=t.INT_MAP[1], rs=t.AT, imm=0),            # 4
        ])
        verify_sfi(module)

    def test_unreachable_blocks_still_checked(self):
        # Code no anchor reaches is checked under the conservative
        # entry state: hostile instructions must not hide behind
        # unreachability.
        t = mips
        module = _module_with_prelude("mips", [
            MInstr("sw", rt=t.INT_MAP[1], rs=t.INT_MAP[2], imm=0),
        ], anchor_prelude=False)
        with pytest.raises(VerifyError, match="unsandboxed"):
            verify_sfi(module)


class TestDelaySlots:
    """The delay slot belongs to its branch: its transfer function
    applies to the taken edge always, to the fall-through edge unless
    the branch annuls."""

    @pytest.mark.parametrize("arch", sorted(DELAY_ARCHES))
    def test_guard_completed_in_slot_verifies_on_both_paths(self, arch):
        t = _regs(arch)
        module = _module_with_prelude(arch, [
            MInstr("and", rd=t.AT, rs=t.INT_MAP[1], rt=t.SFI_MASK),   # 0
            MInstr("beq", rs=t.INT_MAP[2], target=3),                 # 1
            MInstr("or", rd=t.AT, rs=t.AT, rt=t.SFI_BASE),            # 2 slot
            MInstr("sw", rt=t.INT_MAP[1], rs=t.AT, imm=0),            # 3 join
        ])
        analysis = verify_sfi(module)
        assert analysis.in_scratch[3] == SCRATCH_DATA_SANDBOXED

    @pytest.mark.parametrize("arch", sorted(DELAY_ARCHES))
    def test_guarded_store_in_slot_verifies(self, arch):
        t = _regs(arch)
        module = _module_with_prelude(arch, [
            MInstr("and", rd=t.AT, rs=t.INT_MAP[1], rt=t.SFI_MASK),   # 0
            MInstr("or", rd=t.AT, rs=t.AT, rt=t.SFI_BASE),            # 1
            MInstr("beq", rs=t.INT_MAP[2], target=4),                 # 2
            MInstr("sw", rt=t.INT_MAP[1], rs=t.AT, imm=0),            # 3 slot
        ])
        verify_sfi(module)

    @pytest.mark.parametrize("arch", sorted(DELAY_ARCHES))
    def test_raw_store_in_slot_rejected(self, arch):
        t = _regs(arch)
        module = _module_with_prelude(arch, [
            MInstr("beq", rs=t.INT_MAP[2], target=2),                 # 0
            MInstr("sw", rt=t.INT_MAP[1], rs=t.INT_MAP[3], imm=0),    # 1 slot
            MInstr("nop"),                                            # 2
        ])
        with pytest.raises(VerifyError, match="unsandboxed"):
            verify_sfi(module)

    def test_annulled_slot_guard_rejected(self):
        # SPARC annulled branch: the slot executes only when the branch
        # is taken, so the fall-through path reaches the store with the
        # rebase missing — unsafe on one path means rejected.
        t = sparc
        module = _module_with_prelude("sparc", [
            MInstr("and", rd=t.AT, rs=t.INT_MAP[1], rt=t.SFI_MASK),   # 0
            MInstr("beq", rs=t.INT_MAP[2], target=3, annul=True),     # 1
            MInstr("or", rd=t.AT, rs=t.AT, rt=t.SFI_BASE),            # 2 slot
            MInstr("sw", rt=t.INT_MAP[1], rs=t.AT, imm=0),            # 3 join
        ])
        with pytest.raises(VerifyError, match="unsandboxed"):
            verify_sfi(module)

    def test_annulled_branch_with_reguarded_fall_path_verifies(self):
        # Same annulled branch, but the fall-through path completes the
        # guard itself before rejoining: now every path is safe and the
        # split sequence must verify.
        t = sparc
        module = _module_with_prelude("sparc", [
            MInstr("and", rd=t.AT, rs=t.INT_MAP[1], rt=t.SFI_MASK),   # 0
            MInstr("beq", rs=t.INT_MAP[2], target=6, annul=True),     # 1
            MInstr("or", rd=t.AT, rs=t.AT, rt=t.SFI_BASE),            # 2 slot
            MInstr("or", rd=t.AT, rs=t.AT, rt=t.SFI_BASE),            # 3 fall
            MInstr("j", target=6),                                    # 4
            MInstr("nop"),                                            # 5 slot
            MInstr("sw", rt=t.INT_MAP[1], rs=t.AT, imm=0),            # 6 join
        ])
        analysis = verify_sfi(module)
        assert analysis.in_scratch[6] == SCRATCH_DATA_SANDBOXED


class TestSpExcursion:
    """Stores through sp are exempt from masking only while the
    cumulative sp displacement stays within ±SP_EXCURSION_LIMIT."""

    def test_straight_line_drift_past_limit_rejected(self):
        t = mips
        step = -32767
        hops = SP_EXCURSION_LIMIT // -step + 1
        module = _module_with_prelude("mips", [
            MInstr("addi", rd=t.SP, rs=t.SP, imm=step)
            for _ in range(hops)
        ] + [
            MInstr("sw", rt=t.INT_MAP[1], rs=t.SP, imm=0),
        ])
        with pytest.raises(VerifyError, match="excursion"):
            verify_sfi(module)

    def test_balanced_frame_accepted(self):
        t = mips
        module = _module_with_prelude("mips", [
            MInstr("addi", rd=t.SP, rs=t.SP, imm=-64),
            MInstr("sw", rt=t.INT_MAP[1], rs=t.SP, imm=16),
            MInstr("addi", rd=t.SP, rs=t.SP, imm=64),
        ])
        verify_sfi(module)

    def test_loop_with_net_drift_rejected(self):
        # Each update is a small constant, but the loop accumulates:
        # widening at the join drives the interval to top, and the
        # sp-relative store past the loop must be rejected.
        t = mips
        module = _module_with_prelude("mips", [
            MInstr("addi", rd=t.SP, rs=t.SP, imm=-16),                # 0
            MInstr("beq", rs=t.INT_MAP[2], target=0),                 # 1
            MInstr("nop"),                                            # 2 slot
            MInstr("sw", rt=t.INT_MAP[1], rs=t.SP, imm=0),            # 3
        ])
        with pytest.raises(VerifyError, match="excursion"):
            verify_sfi(module)

    def test_loop_with_balanced_frame_accepted(self):
        t = mips
        module = _module_with_prelude("mips", [
            MInstr("addi", rd=t.SP, rs=t.SP, imm=-16),                # 0
            MInstr("sw", rt=t.INT_MAP[1], rs=t.SP, imm=0),            # 1
            MInstr("addi", rd=t.SP, rs=t.SP, imm=16),                 # 2
            MInstr("beq", rs=t.INT_MAP[2], target=0),                 # 3
            MInstr("nop"),                                            # 4 slot
        ])
        verify_sfi(module)


class TestNonSfiModules:
    """Without an SFI sandbox claim there is no invariant to enforce.

    Regression for the dead ``elif not (... or True): pass`` branch the
    linear verifier carried: it *looked* like a return-register rule
    for non-SFI modules but could never fire.  The real rule is that
    non-SFI modules are not checked at all — raw indirect jumps and raw
    stores are legitimate non-SFI translator output."""

    def test_non_sfi_module_with_raw_indirect_jump_verifies(self):
        t = mips
        module = _module_with_prelude("mips", [
            MInstr("jr", rs=t.INT_MAP[3]),
            MInstr("nop"),
        ], options=MOBILE_NOSFI)
        verify_sfi(module)  # must not raise

    def test_non_sfi_module_with_raw_store_verifies(self):
        t = mips
        module = _module_with_prelude("mips", [
            MInstr("sw", rt=t.INT_MAP[1], rs=t.INT_MAP[2], imm=0),
        ], options=MOBILE_NOSFI)
        verify_sfi(module)

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_non_sfi_translator_output_verifies(self, arch):
        program = compile_and_link(["""
        int f(int x) { return x + 1; }
        int main() { return f(41) - 42; }
        """])
        module = translate(program, arch, MOBILE_NOSFI)
        analysis = verify_sfi(module)
        assert analysis.blocks > 0  # the CFG is still recovered

    def test_same_hostile_code_rejected_under_sfi(self):
        # The control: identical raw jr IS rejected when SFI is on.
        t = mips
        module = _module_with_prelude("mips", [
            MInstr("jr", rs=t.INT_MAP[3]),
            MInstr("nop"),
        ], options=MOBILE_SFI)
        with pytest.raises(VerifyError, match="indirect"):
            verify_sfi(module)


class TestAnalysisAndMetrics:
    def _translated(self):
        program = compile_and_link(["""
        int g[8];
        int main() {
            int i;
            for (i = 0; i < 8; i = i + 1) g[i] = i * i;
            return g[7];
        }
        """])
        return translate(program, "mips", MOBILE_SFI)

    def test_analysis_reports_cfg_shape(self):
        module = self._translated()
        analysis = verify_sfi(module)
        assert analysis.blocks > 1
        assert analysis.edges > 0
        assert analysis.joins > 0          # the loop head is a join
        assert analysis.stores_checked > 0
        assert len(analysis.in_scratch) == len(module.instrs)

    def test_metrics_counters_match_analysis(self):
        module = self._translated()
        with metrics.collect() as collector:
            analysis = verify_sfi(module)
        counters = collector.counters
        assert counters["verify.sfi.blocks"] == analysis.blocks
        assert counters["verify.sfi.edges"] == analysis.edges
        assert counters["verify.sfi.joins"] == analysis.joins
        assert counters["verify.sfi.instrs"] == len(module.instrs)
        assert "verify.sfi" in collector.stage_seconds
