"""Additional host-service and adapter coverage across engines."""

import pytest

from repro.compiler import CompileOptions, compile_and_link
from repro.runtime import hostapi
from repro.runtime.host import Host
from repro.runtime.loader import run_module
from repro.runtime.native_loader import run_on_target
from repro.native.profiles import MOBILE_SFI
from repro.translators import ARCHITECTURES


class TestHostApiTable:
    def test_indices_are_dense_and_unique(self):
        indices = sorted(hostapi.HOST_FUNCTIONS_BY_INDEX)
        assert indices == list(range(len(indices)))

    def test_names_unique(self):
        assert len(hostapi.HOST_FUNCTIONS) == len(hostapi._HOST_FUNCTIONS)

    def test_lookup(self):
        assert hostapi.lookup("emit_int").index == 1
        with pytest.raises(KeyError):
            hostapi.lookup("no_such_call")

    def test_signature_kinds_valid(self):
        for fn in hostapi.HOST_FUNCTIONS.values():
            assert fn.result in ("int", "uint", "double", "ptr", "void")
            for param in fn.params:
                assert param in ("int", "uint", "double", "ptr")


class TestAdaptersAgreeAcrossEngines:
    """The same host-calling program must produce identical host-side
    state whether interpreted or translated — argument marshalling goes
    through different register files on each engine."""

    SOURCE = """
    int main() {
        emit_int(-5);
        emit_uint(0xFFFFFFFF);
        emit_char('Z');
        emit_double(2.5);
        emit_double(host_pow(2.0, 10.0));
        int *p = (int *) halloc(8);
        p[0] = 123;
        emit_int(p[0]);
        emit_int(host_rand());
        return 0;
    }
    """

    def test_all_engines_identical_host_state(self):
        program = compile_and_link([self.SOURCE])
        _code, reference_host = run_module(program)
        reference = reference_host.output_values()
        assert reference[0] == -5
        assert reference[1] == 0xFFFFFFFF
        assert reference[3] == 2.5 and reference[4] == 1024.0
        for arch in ARCHITECTURES:
            _code, module = run_on_target(program, arch, MOBILE_SFI)
            assert module.host.output_values() == reference, arch

    def test_fp_args_beyond_int_args(self):
        source = """
        int main() {
            emit_double(host_pow(3.0, 4.0));  /* two FP args */
            return 0;
        }
        """
        program = compile_and_link([source])
        for arch in ARCHITECTURES:
            _code, module = run_on_target(program, arch, MOBILE_SFI)
            assert module.host.output_values() == [81.0], arch


class TestOutputRendering:
    def test_mixed_stream(self):
        host = Host()
        host.output = [("str", b"n="), ("int", 3), ("char", 10),
                       ("double", 0.5), ("uint", 7)]
        assert host.output_text() == "n=3\n0.57"

    def test_srand_resets_sequence(self):
        program = compile_and_link(["""
        int main() {
            host_srand(42);
            int a = host_rand();
            host_srand(42);
            int b = host_rand();
            emit_int(a == b);
            return 0;
        }
        """])
        _code, host = run_module(program)
        assert host.output_values() == [1]
