"""Unit tests for the MiniC type system and struct layout."""

import pytest

from repro.errors import TypeError_
from repro.frontend.types import (
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    SHORT,
    UINT,
    VOID,
    ArrayType,
    PointerType,
    StructType,
    decay,
    layout_struct,
    promote,
    types_compatible,
    usual_arithmetic_conversion,
)


class TestPrimitives:
    def test_sizes(self):
        assert CHAR.size == 1 and SHORT.size == 2 and INT.size == 4
        assert FLOAT.size == 4 and DOUBLE.size == 8
        assert PointerType(DOUBLE).size == 4  # ILP32

    def test_alignment(self):
        assert DOUBLE.align == 8
        assert PointerType(DOUBLE).align == 4
        assert ArrayType(SHORT, 5).align == 2

    def test_array_size(self):
        assert ArrayType(INT, 10).size == 40
        assert ArrayType(ArrayType(INT, 3), 2).size == 24


class TestStructLayout:
    def test_natural_alignment_padding(self):
        struct = layout_struct("S", [("c", CHAR), ("i", INT), ("d", DOUBLE)])
        offsets = {f.name: f.offset for f in struct.fields}
        assert offsets == {"c": 0, "i": 4, "d": 8}
        assert struct.size == 16
        assert struct.align == 8

    def test_tail_padding(self):
        struct = layout_struct("S", [("d", DOUBLE), ("c", CHAR)])
        assert struct.size == 16  # padded to alignment

    def test_packed_when_no_padding_needed(self):
        struct = layout_struct("S", [("a", INT), ("b", INT)])
        assert struct.size == 8

    def test_array_field(self):
        struct = layout_struct("S", [("tag", CHAR), ("v", ArrayType(INT, 4))])
        assert struct.field_named("v").offset == 4
        assert struct.size == 20

    def test_duplicate_field_rejected(self):
        with pytest.raises(TypeError_):
            layout_struct("S", [("x", INT), ("x", INT)])

    def test_incomplete_field_rejected(self):
        with pytest.raises(TypeError_):
            layout_struct("S", [("self", StructType("S"))])

    def test_name_based_equality(self):
        complete = layout_struct("Node", [("v", INT)])
        forward = StructType("Node")
        assert complete == forward
        assert hash(complete) == hash(forward)
        assert complete != StructType("Other")

    def test_missing_field_raises(self):
        struct = layout_struct("S", [("x", INT)])
        with pytest.raises(TypeError_):
            struct.field_named("y")


class TestConversionRules:
    def test_promote(self):
        assert promote(CHAR) == INT
        assert promote(SHORT) == INT
        assert promote(UINT) == UINT
        assert promote(DOUBLE) == DOUBLE

    def test_usual_arithmetic(self):
        assert usual_arithmetic_conversion(INT, DOUBLE) == DOUBLE
        assert usual_arithmetic_conversion(FLOAT, INT) == FLOAT
        assert usual_arithmetic_conversion(CHAR, SHORT) == INT
        assert usual_arithmetic_conversion(UINT, INT) == UINT

    def test_usual_arithmetic_rejects_pointers(self):
        with pytest.raises(TypeError_):
            usual_arithmetic_conversion(PointerType(INT), INT)

    def test_decay(self):
        assert decay(ArrayType(INT, 5)) == PointerType(INT)
        assert decay(INT) == INT

    def test_compat_void_pointer_escape(self):
        assert types_compatible(PointerType(VOID), PointerType(INT))
        assert types_compatible(PointerType(INT), PointerType(VOID))
        assert not types_compatible(PointerType(INT), PointerType(DOUBLE))
