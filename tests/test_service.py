"""The concurrent module-hosting service (`repro.service`).

Covers the worker pool, deadlines, quotas, retry with backoff,
interpreter fallback, queue overflow, the thread-safety of the shared
translation cache, and the throughput-benchmark artifact contract.
All tests here are fast and deterministic (tier-1)."""

import importlib.util
import json
import os
import threading
import time
from pathlib import Path

import pytest

import repro
from repro import metrics
from repro.cache import TranslationCache
from repro.compiler import compile_and_link
from repro.engine import Engine, RunConfig
from repro.errors import ServiceOverloaded
from repro.native.profiles import MOBILE_SFI
from repro.service import (
    LATENCY_WINDOW,
    CappedHost,
    FaultInjector,
    ModuleHost,
    ModuleRequest,
    ModuleResponse,
    RequestQuota,
    RetryPolicy,
    ServiceStats,
)
from repro.translators import translate

BENCH_PATH = (Path(__file__).resolve().parents[1] / "benchmarks"
              / "bench_service_throughput.py")

SRC = "int main() { emit_int(42); return 0; }"
SPINNER_SRC = """
int main() {
    int i;
    i = 0;
    while (1) { i = i + 1; }
    return i;
}
"""
EMITTER_SRC = """
int main() {
    int i;
    for (i = 0; i < 50; i = i + 1) { emit_int(i); }
    return 0;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_and_link([SRC])


@pytest.fixture(scope="module")
def spinner():
    return compile_and_link([SPINNER_SRC])


class TestBasics:
    def test_run_one_request(self, program):
        with Engine(target="mips").serve(workers=2) as host:
            response = host.run(ModuleRequest(program=program))
        assert response.ok and response.exit_code == 0
        assert response.output == "42"
        assert response.arch == "mips" and not response.fallback

    def test_source_text_is_compiled(self):
        with Engine().serve(workers=1) as host:
            response = host.run(ModuleRequest(program=SRC))
        assert response.ok and response.output == "42"
        assert response.arch == "omnivm"

    def test_request_ids_are_assigned(self, program):
        with Engine().serve(workers=1) as host:
            first = host.run(ModuleRequest(program=program))
            named = host.run(ModuleRequest(program=program,
                                           request_id="mine"))
        assert first.request_id.startswith("req-")
        assert named.request_id == "mine"

    def test_engine_serve_entry_point(self):
        host = Engine().serve(workers=3)
        assert isinstance(host, ModuleHost) and host.workers == 3
        host.stop()  # never started: no-op

    def test_exported_at_top_level(self):
        for name in ("ModuleHost", "ModuleRequest", "ModuleResponse",
                     "RequestQuota", "RetryPolicy", "FaultInjector",
                     "DeadlineExceeded", "QuotaExceeded",
                     "ServiceOverloaded"):
            assert hasattr(repro, name), name

    def test_response_to_dict_round_trips(self, program):
        with Engine().serve(workers=1) as host:
            payload = host.run(ModuleRequest(program=program)).to_dict()
        assert payload["ok"] is True and payload["exit_code"] == 0
        assert isinstance(payload["latency_seconds"], float)


class TestConcurrency:
    def test_many_concurrent_requests(self, program):
        with Engine(target="mips").serve(workers=8, queue_depth=16) as host:
            responses = host.run_batch(
                [ModuleRequest(program=program) for _ in range(12)])
        assert len(responses) == 12
        assert all(r.ok and r.output == "42" for r in responses)
        counters = host.stats.counters
        assert counters["request"] == 12 and counters["ok"] == 12
        assert counters.get("error", 0) == 0

    def test_submitting_threads_share_one_host(self, program):
        host = Engine(target="x86").serve(workers=4)
        results: list[ModuleResponse] = []
        lock = threading.Lock()

        def client():
            response = host.run(ModuleRequest(program=program))
            with lock:
                results.append(response)

        threads = [threading.Thread(target=client) for _ in range(10)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        host.stop()
        assert len(results) == 10 and all(r.ok for r in results)
        assert host.stats.counters["ok"] == 10

    def test_latency_percentiles_and_queue_depth(self, program):
        with Engine().serve(workers=2, queue_depth=8) as host:
            host.run_batch([ModuleRequest(program=program)
                            for _ in range(6)])
        pct = host.stats.latency_percentiles()
        assert 0 < pct["p50"] <= pct["p90"] <= pct["p99"]
        payload = host.stats.to_dict()
        assert payload["completed_requests"] == 6
        assert payload["queue_high_water"] >= 0


class TestDeadlines:
    def test_runaway_module_times_out(self, spinner):
        with Engine(target="mips").serve(workers=2) as host:
            response = host.run(ModuleRequest(
                program=spinner, deadline_seconds=0.1,
                quota=RequestQuota(fuel=10 ** 9)))
        assert not response.ok
        assert response.error == "DeadlineExceeded"
        assert host.stats.counters["timeout"] == 1

    def test_runaway_does_not_stall_other_requests(self, program, spinner):
        with Engine(target="mips").serve(workers=4) as host:
            requests = [ModuleRequest(program=program) for _ in range(6)]
            requests.insert(0, ModuleRequest(
                program=spinner, request_id="runaway",
                deadline_seconds=0.15, quota=RequestQuota(fuel=10 ** 9)))
            responses = host.run_batch(requests)
        by_id = {r.request_id: r for r in responses}
        assert by_id["runaway"].error == "DeadlineExceeded"
        others = [r for r in responses if r.request_id != "runaway"]
        assert len(others) == 6 and all(r.ok for r in others)

    def test_default_deadline_applies(self, spinner):
        with Engine(target="mips").serve(
                workers=1, default_deadline=0.1) as host:
            response = host.run(ModuleRequest(
                program=spinner, quota=RequestQuota(fuel=10 ** 9)))
        assert response.error == "DeadlineExceeded"

    def test_fuel_quota_is_not_misreported_as_deadline(self, spinner):
        with Engine(target="mips").serve(workers=1) as host:
            response = host.run(ModuleRequest(
                program=spinner, deadline_seconds=30.0,
                quota=RequestQuota(fuel=20_000)))
        assert response.error == "FuelExhausted"
        assert host.stats.counters.get("timeout", 0) == 0


class TestQuotas:
    def test_output_byte_cap(self):
        with Engine().serve(workers=1) as host:
            response = host.run(ModuleRequest(
                program=EMITTER_SRC,
                quota=RequestQuota(max_output_bytes=16)))
        assert not response.ok
        assert response.error == "QuotaExceeded"
        assert host.stats.counters["quota_exceeded"] == 1

    def test_entry_byte_accounting(self):
        from repro.service import _entry_bytes

        assert _entry_bytes("int", 7) == 4
        assert _entry_bytes("uint", 7) == 4
        assert _entry_bytes("char", 65) == 1
        assert _entry_bytes("double", 1.5) == 8
        assert _entry_bytes("str", "hello") == 5

    def test_capped_host_accounts_during_execution(self):
        engine = Engine()
        program = engine.compile(EMITTER_SRC)  # 50 ints -> 200 bytes
        host = CappedHost(max_output_bytes=None)
        module = engine.load(program, config=RunConfig(host=host))
        module.run()
        assert host.output_bytes == 200

    def test_segment_size_quota_flows_through(self, program):
        with Engine(target="mips").serve(workers=1) as host:
            response = host.run(ModuleRequest(
                program=program,
                quota=RequestQuota(segment_size=1 << 16)))
        assert response.ok and response.output == "42"


class TestRetryAndFallback:
    def test_retry_then_succeed(self, program):
        faults = FaultInjector()
        faults.fail_translations(count=2)
        with Engine(target="mips").serve(
                workers=1, faults=faults,
                retry=RetryPolicy(max_attempts=4,
                                  backoff_seconds=0.001)) as host:
            response = host.run(ModuleRequest(program=program))
        assert response.ok and not response.fallback
        assert response.retries == 2
        assert host.stats.counters["retry"] == 2
        assert faults.fired == 2

    def test_exhausted_retries_fall_back_to_interpreter(self, program):
        faults = FaultInjector()
        faults.fail_translations(count=-1)
        with Engine(target="mips").serve(
                workers=1, faults=faults,
                retry=RetryPolicy(max_attempts=3,
                                  backoff_seconds=0.001)) as host:
            response = host.run(ModuleRequest(program=program))
        assert response.ok and response.fallback
        assert response.arch == "omnivm" and response.output == "42"
        assert response.retries == 3
        assert host.stats.counters["fallback"] == 1

    def test_translator_crash_skips_retries(self, program):
        faults = FaultInjector()
        faults.fail_translations(count=-1, transient=False)
        with Engine(target="mips").serve(workers=1, faults=faults) as host:
            response = host.run(ModuleRequest(program=program))
        assert response.ok and response.fallback
        assert response.retries == 0
        assert host.stats.counters.get("retry", 0) == 0

    def test_arch_specific_fault_spares_other_targets(self, program):
        faults = FaultInjector()
        faults.fail_translations(count=-1, arch="sparc")
        with Engine().serve(workers=2, faults=faults) as host:
            good = host.run(ModuleRequest(program=program, target="mips"))
            degraded = host.run(ModuleRequest(program=program,
                                              target="sparc"))
        assert good.ok and not good.fallback and good.arch == "mips"
        assert degraded.ok and degraded.fallback

    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(backoff_seconds=0.01, backoff_factor=2.0,
                             max_backoff_seconds=0.03, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.01)
        assert policy.delay(2) == pytest.approx(0.02)
        assert policy.delay(3) == pytest.approx(0.03)  # capped
        assert policy.delay(10) == pytest.approx(0.03)

    def test_jitter_is_deterministic_and_desynchronizing(self):
        policy = RetryPolicy(backoff_seconds=0.01, backoff_factor=2.0,
                             max_backoff_seconds=0.03, jitter=0.5,
                             jitter_seed=7)
        # Deterministic: same (seed, key, attempt) -> same delay.
        assert policy.delay(1, key="req-1") == policy.delay(1, key="req-1")
        # Seedable: a different seed moves the schedule.
        other_seed = RetryPolicy(backoff_seconds=0.01, backoff_factor=2.0,
                                 max_backoff_seconds=0.03, jitter=0.5,
                                 jitter_seed=8)
        assert policy.delay(1, key="req-1") != \
            other_seed.delay(1, key="req-1")
        # Desynchronizing: two requests retrying the same attempt do
        # NOT sleep the same time (the lockstep-herd bug).
        assert policy.delay(1, key="req-1") != policy.delay(1, key="req-2")
        # Bounded: jitter only shaves delay, never exceeds the base.
        for attempt in (1, 2, 3, 10):
            for key in ("a", "b", "c"):
                base = RetryPolicy(
                    backoff_seconds=0.01, backoff_factor=2.0,
                    max_backoff_seconds=0.03, jitter=0.0).delay(attempt)
                jittered = policy.delay(attempt, key=key)
                assert base * 0.5 <= jittered <= base

    def test_default_policy_has_jitter(self):
        # The lockstep retry herd was a real bug: the default policy
        # must desynchronize concurrent retries out of the box.
        assert RetryPolicy().jitter > 0.0

    def test_unknown_arch_degrades_gracefully(self, program):
        with Engine().serve(workers=1) as host:
            response = host.run(ModuleRequest(program=program,
                                              target="vax"))
        assert response.ok and response.fallback
        assert response.arch == "omnivm"


class TestOverloadAndErrors:
    def test_full_queue_rejects_nonblocking_submit(self, program):
        faults = FaultInjector()
        faults.delay_execution(0.2)
        with Engine().serve(workers=1, queue_depth=1,
                            faults=faults) as host:
            pendings = []
            with pytest.raises(ServiceOverloaded):
                for _ in range(8):  # worker + queue can absorb at most 2
                    pendings.append(
                        host.submit(ModuleRequest(program=program)))
            assert host.stats.counters["rejected"] >= 1
            for pending in pendings:
                assert pending.result(timeout=10.0).ok

    def test_module_trap_is_a_typed_error_response(self):
        trap_src = "int main() { int z; z = 0; return 1 / z; }"
        with Engine(target="mips").serve(workers=1) as host:
            response = host.run(ModuleRequest(program=trap_src))
        assert not response.ok
        assert response.error == "VMRuntimeError"
        assert host.stats.counters["error"] == 1

    def test_compile_error_is_a_typed_error_response(self):
        with Engine().serve(workers=1) as host:
            response = host.run(ModuleRequest(program="int main( {"))
        assert not response.ok
        assert response.error and "Error" in response.error

    def test_worker_pool_survives_errors(self, program):
        with Engine().serve(workers=1) as host:
            bad = host.run(ModuleRequest(program="int main( {"))
            good = host.run(ModuleRequest(program=program))
        assert not bad.ok and good.ok


class TestServiceMetrics:
    def test_counters_mirrored_into_engine_metrics(self, program):
        engine = Engine(target="mips")
        with engine.serve(workers=2) as host:
            host.run_batch([ModuleRequest(program=program)
                            for _ in range(3)])
        counters = engine.stats()["counters"]
        assert counters["service.request"] == 3
        assert counters["service.ok"] == 3

    def test_counters_visible_to_ambient_collector(self, program):
        collector = metrics.MetricsCollector()
        with metrics.collect(collector):
            with Engine().serve(workers=1) as host:
                host.run(ModuleRequest(program=program))
        assert collector.counters["service.request"] == 1

    def test_stats_counting_is_thread_safe(self):
        stats = ServiceStats()

        def hammer():
            for _ in range(1000):
                stats.count("request")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.counters["request"] == 8000


class TestSharedCacheConcurrency:
    """N threads hammering one TranslationCache: no lost entries, no
    torn counters, no crashes."""

    def test_hammer_get_put_invalidate(self):
        sources = [f"int main() {{ emit_int({n}); return 0; }}"
                   for n in range(4)]
        programs = [compile_and_link([src]) for src in sources]
        translations = [translate(p, "mips", MOBILE_SFI) for p in programs]
        cache = TranslationCache(capacity=3)  # force evictions too
        rounds = 60
        errors = []

        def worker(index: int):
            try:
                for round_ in range(rounds):
                    program = programs[(index + round_) % len(programs)]
                    translated = translations[(index + round_)
                                              % len(translations)]
                    cache.put(program, "mips", MOBILE_SFI, translated)
                    cache.get(program, "mips", MOBILE_SFI)
                    if round_ % 10 == 9:
                        cache.invalidate(program=program)
            except Exception as err:  # pragma: no cover
                errors.append(err)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats()
        assert stats.stores == 8 * rounds
        assert stats.hits + stats.misses == 8 * rounds
        assert len(cache) <= 3

    def test_disk_backed_hammer_leaves_no_temp_files(self, tmp_path):
        program = compile_and_link([SRC])
        translated = translate(program, "mips", MOBILE_SFI)
        cache = TranslationCache(capacity=2, disk_dir=tmp_path)
        errors = []

        def worker():
            try:
                for _ in range(40):
                    cache.put(program, "mips", MOBILE_SFI, translated)
                    assert cache.get(program, "mips", MOBILE_SFI) \
                        is not None
            except Exception as err:  # pragma: no cover
                errors.append(err)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert not list(tmp_path.glob("*.tmp"))
        fresh = TranslationCache(disk_dir=tmp_path)
        assert fresh.get(program, "mips", MOBILE_SFI) is not None

    def test_engine_cache_shared_across_service_workers(self, program):
        engine = Engine(target="mips")
        with engine.serve(workers=6) as host:
            host.run_batch([ModuleRequest(program=program)
                            for _ in range(10)])
        stats = engine.cache.stats()
        # every request either translated-and-stored or hit the shared
        # cache; nothing was lost
        assert stats.hits + stats.misses == 10
        assert stats.misses == stats.stores
        assert stats.hits >= 1


class TestDeadlineBudget:
    """The whole request — backoff sleeps included — spends one
    wall-clock budget (regression: backoffs used to sleep past the
    deadline, returning DeadlineExceeded seconds late)."""

    def test_backoff_is_clamped_to_remaining_deadline(self, program):
        faults = FaultInjector()
        faults.fail_translations(count=-1)
        with Engine(target="mips").serve(
                workers=1, faults=faults,
                retry=RetryPolicy(max_attempts=5, backoff_seconds=5.0,
                                  max_backoff_seconds=30.0,
                                  jitter=0.0)) as host:
            start = time.perf_counter()
            response = host.run(ModuleRequest(
                program=program, deadline_seconds=0.2))
            elapsed = time.perf_counter() - start
        assert response.error == "DeadlineExceeded"
        # Unclamped, the schedule would sleep 5s after the first fault;
        # clamped, the response lands at ~the 0.2s deadline.
        assert elapsed < 2.0
        assert host.stats.counters["timeout"] == 1

    def test_fail_fast_when_budget_spent_before_execution(self, program):
        # One transient fault, then translation would succeed — but the
        # clamped backoff already consumed the whole deadline, so the
        # request must fail fast instead of starting an execution that
        # is born expired.
        faults = FaultInjector()
        faults.fail_translations(count=1)
        with Engine(target="mips").serve(
                workers=1, faults=faults,
                retry=RetryPolicy(max_attempts=3, backoff_seconds=5.0,
                                  jitter=0.0)) as host:
            start = time.perf_counter()
            response = host.run(ModuleRequest(
                program=program, deadline_seconds=0.1))
            elapsed = time.perf_counter() - start
        assert response.error == "DeadlineExceeded"
        assert "before execution" in response.error_message
        assert elapsed < 2.0


class TestLatencyWindow:
    """Latency samples are a bounded ring buffer (regression: a
    long-lived host leaked one float per request, forever)."""

    def test_window_bounds_samples_but_not_totals(self):
        stats = ServiceStats(latency_window=8)
        for i in range(100):
            stats.observe_latency(float(i))
        assert len(stats.latencies) == 8
        assert stats.completed == 100
        assert stats.to_dict()["completed_requests"] == 100

    def test_percentiles_reflect_recent_window_on_overflow(self):
        stats = ServiceStats(latency_window=8)
        for i in range(100):
            stats.observe_latency(float(i))
        pct = stats.latency_percentiles()
        # Only samples 92..99 remain; percentiles must come from them,
        # not the evicted early (low) observations.
        assert pct["p50"] == 96.0
        assert pct["p99"] == 99.0

    def test_default_window(self):
        assert ServiceStats().latencies.maxlen == LATENCY_WINDOW

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ServiceStats(latency_window=0)


class TestSingleFlightStampede:
    def test_hundred_request_stampede_translates_once(self):
        # 100 concurrent requests for one uncached module, 8 workers:
        # the cache's single-flight protocol elects one translator and
        # parks everyone else on its entry — exactly one store, 99 hits.
        engine = Engine(target="mips")
        with engine.serve(workers=8) as host:
            pending = [host.submit(ModuleRequest(program=SRC), block=True)
                       for _ in range(100)]
            responses = [p.result(timeout=120.0) for p in pending]
        assert all(r.ok for r in responses)
        stats = engine.cache.stats()
        assert stats.stores == 1
        assert stats.misses >= 1
        assert stats.hits == 99


class TestBenchmarkSmoke:
    """Tier-1 guard on the BENCH_service_throughput.json contract."""

    @pytest.fixture(scope="class")
    def bench(self):
        spec = importlib.util.spec_from_file_location(
            "bench_service_throughput", BENCH_PATH)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    @pytest.fixture(scope="class")
    def payload(self, bench):
        program = compile_and_link([SRC])
        return bench.collect_benchmark(
            program=program, worker_counts=(2, 8),
            requests_per_batch=4, governance_requests=8,
            sharded_requests=24, sharded_modules=4,
            stampede_requests=30)

    def test_payload_validates(self, bench, payload):
        bench.validate_artifact(payload)
        # schema pin: v2 added the sharded + single-flight sections
        assert payload["schema_version"] == bench.SCHEMA_VERSION == 2

    def test_sharded_section_is_honest_about_cores(self, bench, payload):
        sharded = payload["sharded"]
        cores = os.cpu_count() or 1
        assert sharded["cpu_count"] == cores
        if cores < bench.SHARDED_MIN_CORES:
            # Graceful skip on small machines: visible, justified, and
            # the sharded path still ran (reduced mix, all ok).
            assert sharded["skipped"]
            assert sharded["skip_reason"]
        else:
            assert not sharded["skipped"]
            assert sharded["scaling_x"] >= bench.SHARDED_SCALING_BAR
        assert sharded["results"]
        for entry in sharded["results"]:
            assert entry["ok"] == entry["requests"]

    def test_single_flight_stampede_translated_once(self, payload):
        single_flight = payload["single_flight"]
        assert single_flight["stores"] == 1
        assert single_flight["ok"] == single_flight["requests"]

    def test_committed_artifact_is_schema_v2(self, bench):
        artifact = json.loads(bench.ARTIFACT_PATH.read_text())
        bench.validate_artifact(artifact)
        assert artifact["schema_version"] == 2

    def test_sustains_eight_concurrent_requests(self, payload):
        assert payload["results"][-1]["workers"] >= 8
        governance = payload["governance"]
        assert governance["concurrent_requests"] >= 8
        assert governance["timeouts"] >= 1
        assert governance["fallbacks"] >= 1

    def test_every_result_entry_complete(self, bench, payload):
        for entry in payload["results"]:
            assert not (bench.RESULT_KEYS - entry.keys())
            assert entry["ok"] == 2 * payload["requests_per_batch"]
