"""Software fault isolation: containment, policy, and the SFI verifier.

The security half of the paper's claim.  Tests cover:

* wild stores and wild indirect jumps from hostile modules are contained
  on every target (they land inside the module's own sandbox or trap);
* the host's memory is never touched;
* the SFI verifier accepts all translator output and rejects hand-built
  malicious native code;
* the sandbox algebra itself (masks actually confine every address).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compiler import CompileOptions, compile_and_link
from repro.errors import AccessViolation, SandboxViolation, VerifyError
from repro.native.profiles import MOBILE_NOSFI, MOBILE_SFI
from repro.omnivm.memory import (
    CODE_BASE,
    HOST_BASE,
    PERM_READ,
    PERM_WRITE,
    SANDBOX_BASE,
    SANDBOX_MASK,
    standard_module_memory,
)
from repro.runtime.native_loader import load_for_target
from repro.sfi.policy import DEFAULT_POLICY
from repro.sfi.verifier import assert_masks_are_sound, verify_sfi
from repro.targets.base import MInstr
from repro.translators import ARCHITECTURES, translate

WILD_STORE = """
int main() {
    int *p = (int *) %s;
    *p = 0x41414141;
    emit_int(7);
    return 0;
}
"""

WILD_JUMP = """
int main() {
    int (*fp)(void) = (int (*)(void)) %s;
    fp();
    return 0;
}
"""


def _load_hostile(source, arch, options=MOBILE_SFI, with_host_segment=True,
                  fuel=50_000_000):
    program = compile_and_link([source], CompileOptions(module_name="evil"))
    memory = standard_module_memory(program.text_image,
                                    bytes(program.data_image))
    if with_host_segment:
        memory.add_segment("host", HOST_BASE, 1 << 16,
                           PERM_READ | PERM_WRITE)
    module = load_for_target(program, arch, options, memory=memory, fuel=fuel)
    return module


class TestStoreContainment:
    @pytest.mark.parametrize("arch", ARCHITECTURES)
    @pytest.mark.parametrize("address", [
        "0x50000040",   # host segment
        "0x00000000",   # null
        "0x10000100",   # module code (must not be writable!)
        "0x7FFFFFFC",   # far outside everything
    ])
    def test_wild_store_never_reaches_host_or_code(self, arch, address):
        module = _load_hostile(WILD_STORE % address, arch)
        host_segment = module.memory.segment_named("host")
        code_segment = module.memory.segment_named("code")
        host_before = bytes(host_segment.data)
        code_before = bytes(code_segment.data)
        try:
            module.run()
        except AccessViolation:
            pass  # contained: landed on an unmapped sandbox hole
        assert bytes(host_segment.data) == host_before
        assert bytes(code_segment.data) == code_before

    def test_without_sfi_host_is_corrupted(self):
        """The control: the same wild store WITHOUT SFI does reach the
        host segment — proving the containment above comes from SFI."""
        module = _load_hostile(WILD_STORE % "0x50000040", "mips",
                               MOBILE_NOSFI)
        host_segment = module.memory.segment_named("host")
        module.run()
        assert host_segment.data[0x40:0x44] == b"\x41\x41\x41\x41"

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_sandboxed_module_still_computes(self, arch):
        module = _load_hostile(WILD_STORE % "0x50000040", arch)
        code = module.run()
        assert code == 0
        assert module.host.output_values() == [7]


class TestJumpContainment:
    @pytest.mark.parametrize("arch", ARCHITECTURES)
    @pytest.mark.parametrize("address", [
        "0x50000000",  # host segment
        "0x20000000",  # module data (would be code injection)
        "0x10000004",  # misaligned code address
    ])
    def test_wild_jump_contained(self, arch, address):
        """SFI masks the target into the module's own code segment, onto
        an instruction boundary.  Two containment outcomes are possible:
        the masked address is not a legal entry point (SandboxViolation),
        or it IS one — e.g. 0x50000000 masks to 0x10000000, the module's
        first function — and the module just executes its own code
        (possibly forever: bounded here by fuel).  Either way the module
        cannot escape: the host and code segments stay intact."""
        from repro.errors import FuelExhausted

        module = _load_hostile(WILD_JUMP % address, arch, fuel=300_000)
        host_before = bytes(module.memory.segment_named("host").data)
        code_before = bytes(module.memory.segment_named("code").data)
        with pytest.raises((SandboxViolation, FuelExhausted, AccessViolation)):
            module.run()
        assert bytes(module.memory.segment_named("host").data) == host_before
        assert bytes(module.memory.segment_named("code").data) == code_before

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_wild_jump_to_unmapped_entry_raises(self, arch):
        """A masked target that is NOT a legal entry point (module code
        that is not a function start / return point) is refused."""
        # 0x10000008+k*8 inside main's body but past its entry: pick a
        # high in-segment address no function occupies.
        module = _load_hostile(WILD_JUMP % "0x10FFFF08", arch, fuel=300_000)
        with pytest.raises(SandboxViolation):
            module.run()

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_valid_function_pointer_still_works(self, arch):
        source = """
        int f(void) { return 11; }
        int main() {
            int (*fp)(void) = f;
            emit_int(fp());
            return 0;
        }
        """
        program = compile_and_link([source])
        module = load_for_target(program, arch, MOBILE_SFI)
        module.run()
        assert module.host.output_values() == [11]


class TestPolicyAlgebra:
    def test_masks_sound(self):
        assert_masks_are_sound()

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_every_store_address_lands_in_sandbox(self, address):
        sandboxed = DEFAULT_POLICY.sandbox_data_address(address)
        assert sandboxed & ~SANDBOX_MASK == SANDBOX_BASE

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_every_jump_target_lands_in_code_aligned(self, address):
        sandboxed = DEFAULT_POLICY.sandbox_code_address(address)
        assert sandboxed % 8 == 0
        assert CODE_BASE <= sandboxed < CODE_BASE + (1 << 24)

    @given(st.integers(min_value=0, max_value=SANDBOX_MASK))
    def test_in_sandbox_addresses_unchanged(self, offset):
        address = SANDBOX_BASE + offset
        assert DEFAULT_POLICY.sandbox_data_address(address) == address


class TestSFIVerifier:
    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_translator_output_verifies(self, arch):
        source = """
        int g[16];
        int f(int *p, int i, int v) { p[i] = v; return p[i]; }
        int main() {
            int (*fp)(int *, int, int) = f;
            return fp(g, 3, 9);
        }
        """
        program = compile_and_link([source])
        module = translate(program, arch, MOBILE_SFI)
        verify_sfi(module)  # must not raise

    def _verified_module(self, arch, extra_instrs):
        """Prepend hostile native instructions to a translated module,
        keeping the control-flow maps consistent (indices shift)."""
        program = compile_and_link(["int main() { return 0; }"])
        module = translate(program, arch, MOBILE_SFI)
        shift = len(extra_instrs)
        for instr in module.instrs:
            if instr.target >= 0:
                instr.target += shift
        module.omni_to_native = {
            addr: index + shift for addr, index in module.omni_to_native.items()
        }
        module.entry_native += shift
        module.instrs = extra_instrs + module.instrs
        return module

    def test_rejects_unsandboxed_store(self):
        from repro.targets import mips

        module = self._verified_module("mips", [
            MInstr("sw", rt=mips.INT_MAP[1], rs=mips.INT_MAP[2], imm=0),
        ])
        with pytest.raises(VerifyError, match="unsandboxed"):
            verify_sfi(module)

    def test_rejects_unsandboxed_indirect_jump(self):
        from repro.targets import mips

        module = self._verified_module("mips", [
            MInstr("jr", rs=mips.INT_MAP[3]),
        ])
        with pytest.raises(VerifyError, match="indirect"):
            verify_sfi(module)

    def test_rejects_dedicated_register_write(self):
        from repro.targets import mips

        module = self._verified_module("mips", [
            MInstr("li", rd=mips.SFI_BASE, imm=0x50000000),
        ])
        with pytest.raises(VerifyError, match="dedicated"):
            verify_sfi(module)

    def test_rejects_arbitrary_sp_update(self):
        from repro.targets import mips

        module = self._verified_module("mips", [
            MInstr("add", rd=mips.SP, rs=mips.INT_MAP[1], rt=mips.INT_MAP[2]),
        ])
        with pytest.raises(VerifyError, match="stack pointer"):
            verify_sfi(module)

    def test_rejects_incomplete_sandbox_sequence(self):
        """Mask without rebase (or with the wrong base) must not pass."""
        from repro.targets import mips

        at = mips.AT
        module = self._verified_module("mips", [
            MInstr("and", rd=at, rs=mips.INT_MAP[2], rt=mips.SFI_MASK),
            # missing: or at, at, SFI_BASE
            MInstr("sw", rt=mips.INT_MAP[1], rs=at, imm=0),
        ])
        with pytest.raises(VerifyError):
            verify_sfi(module)

    def test_sp_relative_stores_allowed(self):
        from repro.targets import mips

        module = self._verified_module("mips", [
            MInstr("sw", rt=mips.INT_MAP[1], rs=mips.SP, imm=16),
        ])
        verify_sfi(module)  # sp-relative small offsets are exempt


class TestSpExemptionSafety:
    """The sp-relative store exemption must not be a hole: sp can only
    move by small constants, so it stays inside the sandbox region."""

    def test_module_cannot_load_sp_from_memory(self):
        # MiniC cannot express 'sp = x', but a malicious OBJECT could.
        # The SFI verifier is what stops it (tested above); here we check
        # the translator itself never emits non-constant sp updates for
        # any workload.
        from repro.workloads import suite

        for name in suite.WORKLOAD_NAMES:
            program = suite.build(name)
            for arch in ARCHITECTURES:
                module = translate(program, arch, MOBILE_SFI)
                verify_sfi(module)


class TestReadProtectionExtension:
    """The sfi_reads extension (read protection, which the paper
    describes as possible but unimplemented in Omniware)."""

    def test_workload_correct_with_read_protection(self):
        from repro.translators import TranslationOptions
        from repro.workloads import suite
        from repro.runtime.native_loader import run_on_target

        program = suite.build("eqntott")
        options = TranslationOptions(sfi_reads=True)
        for arch in ARCHITECTURES:
            _code, module = run_on_target(program, arch, options)
            assert suite.check_output(
                "eqntott", module.host.output_values()), arch

    def test_costs_more_than_write_only(self):
        from repro.translators import TranslationOptions, translate
        from repro.workloads import suite

        program = suite.build("eqntott")
        write_only = translate(program, "mips", TranslationOptions())
        with_reads = translate(program, "mips",
                               TranslationOptions(sfi_reads=True))
        assert with_reads.static_expansion()["sfi"] > \
            write_only.static_expansion()["sfi"]

    def test_wild_read_redirected_into_sandbox(self):
        from repro.translators import TranslationOptions

        source = """
        int main() {
            int *p = (int *) 0x50000040;   /* host segment */
            emit_int(*p);                  /* read redirected, not host data */
            return 0;
        }
        """
        module = _load_hostile(source, "mips",
                               TranslationOptions(sfi_reads=True))
        host_segment = module.memory.segment_named("host")
        host_segment.data[0x40:0x44] = b"\xEF\xBE\xAD\xDE"
        module.run()
        (value,) = module.host.output_values()
        assert value != -559038737  # never saw the host's 0xDEADBEEF
