"""Exhaustive model check of the SFI guard templates (the tier-1 hook).

The model checker (``repro.sfi.modelcheck``) proves the per-target
store/jump guard templates safe by exhaustive execution over boundary
and small-model state spaces.  Covered here:

* the acceptance criterion itself: every template on every target,
  zero surviving counterexamples;
* the checker's teeth — deliberately broken templates (dropped offset,
  skipped masking, clobbered dedicated register, non-straight-line
  code, verifier-state mismatch) each produce a counterexample naming
  the violated property with a concrete input state;
* the satellite-1 regression: ``base + index + offset`` stores fold
  the offset into the formed address, and unfittable offsets are a
  typed error rather than silently-wrong code;
* the fuzzer-precondition plumbing: memoized when safe, loud when a
  (monkeypatched) template is broken.
"""

import pytest

from repro.errors import TranslationError, VerifyError
from repro.sfi import modelcheck, rewrite, verifier
from repro.sfi.modelcheck import (
    SMALL_POLICY,
    TEMPLATES,
    _MiniMachine,
    assert_templates_safe,
    check_templates,
)
from repro.sfi.policy import DEFAULT_POLICY
from repro.targets.base import MInstr
from repro.translators import ARCHITECTURES, target_spec
from repro.utils.bits import add32, u32


class TestTemplatesAreSafe:
    """The tentpole acceptance criterion."""

    def test_every_template_every_target_no_counterexamples(self):
        report = check_templates()
        assert report.ok, "\n".join(str(c) for c in report.counterexamples)
        covered = {(r.arch, r.template) for r in report.results}
        assert covered == {(a, t) for a in ARCHITECTURES
                           for t in TEMPLATES}
        # Both the default and the small-model policy sweeps ran.
        assert len(report.results) == len(ARCHITECTURES) * len(TEMPLATES) * 2
        assert report.states_checked > 50_000

    def test_small_policy_satisfies_layout_invariants(self):
        assert SMALL_POLICY.data_base & SMALL_POLICY.data_mask == 0
        assert SMALL_POLICY.code_base & SMALL_POLICY.code_mask == 0
        assert SMALL_POLICY.code_mask & 0x7 == 0


def _broken_store(drop_offset=False, skip_mask=False, clobber=None,
                  wrong_category=False):
    """Wrap the real store template with a specific defect."""
    real = rewrite.sandbox_store_address

    def broken(spec, policy, base_reg, offset, index_reg, omni_addr):
        if drop_offset and index_reg is not None:
            offset = 0  # the original satellite-1 bug
        seq, base, off, idx = real(spec, policy, base_reg, offset,
                                   index_reg, omni_addr)
        if skip_mask:
            seq = [i for i in seq if i.op not in ("and", "andi")]
        if clobber is not None:
            seq.append(MInstr("li", rd=spec.reserved[clobber], imm=1,
                              omni_addr=omni_addr, category="sfi"))
        if wrong_category:
            for instr in seq:
                instr.category = "base"
        return seq, base, off, idx

    return broken


class TestCheckerCatchesBrokenTemplates:
    def _first(self, report):
        assert not report.ok
        return report.counterexamples[0]

    def test_dropped_offset_caught_as_transparency(self, monkeypatch):
        monkeypatch.setattr(rewrite, "sandbox_store_address",
                            _broken_store(drop_offset=True))
        cx = self._first(check_templates(archs=("mips",)))
        assert cx.prop == "transparency"
        assert cx.template == "store_index_offset"
        # The counterexample carries a concrete state.
        assert "base" in cx.inputs and "offset" in cx.inputs
        assert "index" in cx.inputs
        assert "rewritten" in str(cx)

    def test_skipped_mask_caught_as_containment(self, monkeypatch):
        monkeypatch.setattr(rewrite, "sandbox_store_address",
                            _broken_store(skip_mask=True))
        report = check_templates(archs=("x86",))
        assert any(cx.prop in ("containment", "verifier-agreement")
                   for cx in report.counterexamples)

    def test_dedicated_register_clobber_caught(self, monkeypatch):
        monkeypatch.setattr(rewrite, "sandbox_store_address",
                            _broken_store(clobber="gp"))
        cx = self._first(check_templates(archs=("sparc",)))
        assert cx.prop == "isolation"

    def test_non_sfi_category_caught(self, monkeypatch):
        monkeypatch.setattr(rewrite, "sandbox_store_address",
                            _broken_store(wrong_category=True))
        cx = self._first(check_templates(archs=("ppc",)))
        assert cx.prop == "straight-line"

    def test_non_straight_line_jump_caught(self, monkeypatch):
        real = rewrite.sandbox_jump_target

        def with_branch(spec, policy, target_reg, omni_addr):
            seq, reg = real(spec, policy, target_reg, omni_addr)
            seq.append(MInstr("beq", rs=reg, rt=reg, target=0,
                              omni_addr=omni_addr, category="sfi"))
            return seq, reg

        monkeypatch.setattr(rewrite, "sandbox_jump_target", with_branch)
        cx = self._first(check_templates(archs=("mips",)))
        assert cx.prop == "straight-line"

    def test_verifier_disagreement_caught(self, monkeypatch):
        # A masking immediate that is *almost* right: containment still
        # holds (stricter mask), but the CFG verifier's replay no longer
        # recognizes the protection pattern.
        real = rewrite.sandbox_store_address

        def overtight(spec, policy, base_reg, offset, index_reg, omni_addr):
            seq, base, off, idx = real(spec, policy, base_reg, offset,
                                       index_reg, omni_addr)
            for instr in seq:
                if instr.op == "andi":
                    instr.imm = policy.data_mask >> 1
            return seq, base, off, idx

        monkeypatch.setattr(rewrite, "sandbox_store_address", overtight)
        report = check_templates(archs=("x86",))
        assert any(cx.prop == "verifier-agreement"
                   for cx in report.counterexamples)


class TestOffsetFolding:
    """Satellite 1, pinned directly against the template API."""

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_index_plus_offset_forms_full_address(self, arch):
        spec = target_spec(arch)
        policy = DEFAULT_POLICY
        reserved = {r for r in spec.reserved.values() if r >= 0}
        base_r, index_r = [r for r in sorted(set(spec.int_map.values()))
                           if r not in reserved][:2]
        base, index, offset = policy.data_base + 0x100, 0x30, 12
        seq, nb, noff, nidx = rewrite.sandbox_store_address(
            spec, policy, base_r, offset, index_r, omni_addr=0)
        regs = {base_r: base, index_r: index}
        for name, value in (("sfi_mask", policy.data_mask),
                            ("sfi_base", policy.data_base)):
            reg = spec.reserved.get(name, -1)
            if reg >= 0:
                regs[reg] = value
        machine = _MiniMachine(regs)
        for instr in seq:
            machine.step(instr)
        formed = add32(machine.regs.get(nb, 0), u32(noff))
        if nidx is not None:
            formed = add32(formed, machine.regs.get(nidx, 0))
        assert formed == u32(base + index + offset)

    def test_unfittable_offset_is_typed_error(self):
        spec = target_spec("sparc")  # 13-bit immediates
        with pytest.raises(TranslationError, match="does not fit"):
            rewrite.sandbox_store_address(
                spec, DEFAULT_POLICY, 8, 0x10000, 9, omni_addr=0)

    def test_unfittable_offset_with_index_is_typed_error(self):
        spec = target_spec("mips")
        with pytest.raises(TranslationError, match="fold it into the base"):
            rewrite.sandbox_store_address(
                spec, DEFAULT_POLICY, 8, 1 << 20, 9, omni_addr=0)


class TestPrecondition:
    def test_assert_templates_safe_passes_and_memoizes(self, monkeypatch):
        calls = {"n": 0}
        real = modelcheck.check_templates

        def counting(archs=None, policies=None):
            calls["n"] += 1
            return real(archs, policies)

        monkeypatch.setattr(modelcheck, "check_templates", counting)
        modelcheck._PRECONDITION_OK.clear()
        assert_templates_safe(("mips",))
        assert_templates_safe(("mips",))
        assert calls["n"] == 1

    def test_broken_template_raises_with_counterexample(self, monkeypatch):
        monkeypatch.setattr(rewrite, "sandbox_store_address",
                            _broken_store(drop_offset=True))
        with pytest.raises(VerifyError, match="model check failed"):
            assert_templates_safe(("mips",))


class TestMiniMachine:
    def test_rejects_ops_outside_guard_vocabulary(self):
        machine = _MiniMachine({})
        with pytest.raises(VerifyError, match="cannot execute"):
            machine.step(MInstr("sw", rd=1, rs=2, imm=0))

    def test_scratch_replay_matches_verifier_on_small_policy(self):
        # The regression behind the _next_state fix: replay under a
        # non-default policy must recognize the rebase immediate.
        spec = target_spec("x86")
        at = spec.reserved["at"]
        seq = [
            MInstr("andi", rd=at, rs=at, imm=SMALL_POLICY.data_mask),
            MInstr("ori", rd=at, rs=at, imm=SMALL_POLICY.data_base),
        ]
        state = verifier.SCRATCH_UNKNOWN
        for instr in seq:
            state = verifier.scratch_step(instr, spec, SMALL_POLICY, state)
        assert state == verifier.SCRATCH_DATA_SANDBOXED
