"""The unified Engine facade and unknown-architecture normalization."""

import pytest

import repro
from repro import Engine
from repro.cache import TranslationCache
from repro.compiler import compile_and_link
from repro.engine import INTERPRETER, RunConfig
from repro.errors import ReproError, UnknownArchitectureError
from repro.native.profiles import MOBILE_NOSFI, MOBILE_SFI
from repro.runtime.loader import run_module
from repro.runtime.native_loader import load_for_target, run_on_target
from repro.translators import (
    ARCHITECTURES,
    make_translator,
    target_spec,
    translate,
)

SRC = """
int main() {
    int i;
    for (i = 1; i <= 4; i = i + 1) {
        emit_int(i * 10);
    }
    return 0;
}
"""
EXPECTED = [10, 20, 30, 40]


class TestEngineBasics:
    def test_default_engine_runs_on_interpreter(self):
        engine = Engine()
        assert engine.target is None  # resolves to INTERPRETER per call
        assert INTERPRETER == "omnivm"
        code, module = engine.run(SRC)
        assert code == 0
        assert module.host.output_values() == EXPECTED

    def test_compile_accepts_str_or_sequence(self):
        engine = Engine()
        single = engine.compile(SRC)
        many = engine.compile([SRC])
        assert single.text_image == many.text_image

    def test_run_accepts_program_or_source(self):
        engine = Engine(target="mips")
        program = engine.compile(SRC)
        code, module = engine.run(program)
        assert (code, module.host.output_values()) == (0, EXPECTED)
        code, module = engine.run(SRC)
        assert (code, module.host.output_values()) == (0, EXPECTED)

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_matches_legacy_api_on_every_target(self, arch):
        program = compile_and_link([SRC])
        _code, legacy = run_on_target(program, arch, MOBILE_SFI)
        code, module = Engine(target=arch).run(program)
        assert code == 0
        assert module.host.output_values() == legacy.host.output_values()

    def test_matches_legacy_interpreter(self):
        program = compile_and_link([SRC])
        _code, host = run_module(program)
        _code, module = Engine().run(program)
        assert module.host.output_values() == host.output_values()

    def test_profile_by_name_or_options(self):
        by_name = Engine(target="mips", profile="mobile-nosfi")
        by_options = Engine(target="mips", profile=MOBILE_NOSFI)
        assert by_name.profile == by_options.profile
        assert by_name.profile.sfi is False

    def test_per_call_target_override(self):
        engine = Engine(target="mips")
        code, module = engine.run(SRC, target="x86")
        assert code == 0
        assert module.translated.spec.name == "x86"


class TestEngineCaching:
    def test_translate_is_cached(self):
        engine = Engine(target="sparc")
        program = engine.compile(SRC)
        first = engine.translate(program)
        second = engine.translate(program)
        assert first is second
        stats = engine.cache.stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_warm_run_skips_translate(self):
        engine = Engine(target="ppc")
        program = engine.compile(SRC)
        engine.run(program)
        engine.run(program)
        assert engine.metrics.counters["translate.calls"] == 1
        assert engine.metrics.counters["cache.hit"] == 1
        assert engine.metrics.stage_calls["execute"] == 2

    def test_shared_cache_instance(self):
        cache = TranslationCache()
        program = compile_and_link([SRC])
        Engine(target="mips", cache=cache).run(program)
        Engine(target="mips", cache=cache).run(program)
        assert cache.stats().hits == 1

    def test_cache_disabled(self):
        engine = Engine(target="mips", cache=False)
        program = engine.compile(SRC)
        engine.run(program)
        engine.run(program)
        assert engine.cache is None
        assert engine.metrics.counters["translate.calls"] == 2

    def test_stats_surface(self):
        engine = Engine(target="mips")
        engine.run(SRC)
        stats = engine.stats()
        assert stats["counters"]["translate.calls"] == 1
        assert "execute" in stats["stage_seconds"]
        assert stats["cache"]["misses"] == 1
        assert stats["cache_entries"] == 1
        assert "translate" in engine.stats_text()
        engine.reset_stats()
        assert not engine.metrics.counters

    def test_metrics_disabled(self):
        engine = Engine(target="mips", collect_metrics=False)
        code, _module = engine.run(SRC)
        assert code == 0
        assert engine.metrics is None
        assert engine.stats()["counters"] == {}


class TestRunForwardsLoadKnobs:
    """Engine.run() must forward ``fuel`` / ``segment_size`` /
    ``verify`` to load() — the regression was a run() signature that
    silently could not express a bounded or unverified run."""

    LOOP_SRC = """
    int main() {
        int i;
        for (i = 0; i < 1000000; i = i + 1) { }
        return 0;
    }
    """

    def test_fuel_forwarded_to_native_load(self):
        from repro.errors import FuelExhausted

        with pytest.raises(FuelExhausted):
            Engine(target="mips").run(
                self.LOOP_SRC, config=RunConfig(fuel=10_000))

    def test_fuel_forwarded_to_interpreter_load(self):
        from repro.errors import FuelExhausted

        with pytest.raises(FuelExhausted):
            Engine().run(self.LOOP_SRC, config=RunConfig(fuel=10_000))

    def test_sufficient_fuel_still_completes(self):
        code, _module = Engine(target="mips").run(
            SRC, config=RunConfig(fuel=10_000_000))
        assert code == 0

    def test_segment_size_forwarded(self):
        code, module = Engine(target="mips").run(
            SRC, config=RunConfig(segment_size=1 << 16))
        assert code == 0
        heap = next(segment for segment in module.machine.memory.segments
                    if segment.name == "heap")
        assert heap.size == 1 << 16

    def test_verify_false_skips_verification(self):
        engine = Engine(target="mips", cache=False)
        engine.run(SRC)
        assert engine.metrics.stage_calls["verify.module"] == 1
        engine.reset_stats()
        engine.run(SRC, config=RunConfig(verify=False))
        assert "verify.module" not in engine.metrics.stage_calls


class TestUnknownArchitecture:
    @pytest.fixture
    def program(self):
        return compile_and_link([SRC])

    def test_error_type_and_message(self, program):
        with pytest.raises(UnknownArchitectureError) as info:
            translate(program, "arm")
        assert isinstance(info.value, ReproError)
        assert isinstance(info.value, KeyError)  # backward compat
        message = str(info.value)
        assert "arm" in message
        for arch in ARCHITECTURES:
            assert arch in message

    def test_raised_from_every_entry_point(self, program):
        for trigger in (
            lambda: make_translator("z80"),
            lambda: target_spec("z80"),
            lambda: translate(program, "z80"),
            lambda: load_for_target(program, "z80", MOBILE_SFI),
            lambda: Engine(target="z80").run(program),
        ):
            with pytest.raises(UnknownArchitectureError):
                trigger()

    def test_none_arch_is_normalized_too(self):
        with pytest.raises(UnknownArchitectureError):
            target_spec(None)

    def test_exported_at_package_top_level(self):
        assert repro.UnknownArchitectureError is UnknownArchitectureError
        assert "UnknownArchitectureError" in repro.__all__

    def test_engine_exported_at_top_level(self):
        assert repro.Engine is Engine
        assert repro.TranslationCache is TranslationCache
