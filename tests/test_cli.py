"""The omnicc command-line toolchain."""

import json

import pytest

from repro.cli import main
from repro.errors import (
    CrossModuleViolation,
    DuplicateExportError,
    ModuleCycleError,
    ModuleRevokedError,
    UnresolvedImportError,
)
from repro.translators import ARCHITECTURES

HELLO = 'int main() { emit_str("hi\\n"); emit_int(41 + 1); return 0; }'
LISP = "(defun main () (emit (* 6 7)) 0)"
ASM = """
    .text
    .globl main
main:
    li r1, 9
    hostcall 1
    li r1, 0
    jr ra
"""


@pytest.fixture
def src(tmp_path):
    path = tmp_path / "hello.c"
    path.write_text(HELLO)
    return path


class TestCompileAndRun:
    def test_compile_produces_object(self, src, tmp_path, capsys):
        out = tmp_path / "hello.oof"
        assert main(["compile", str(src), "-o", str(out)]) == 0
        assert out.exists() and out.read_bytes()[:4] == b"OOF1"
        assert "OmniVM instructions" in capsys.readouterr().out

    def test_run_source_on_interpreter(self, src, capsys):
        code = main(["run", str(src)])
        assert code == 0
        assert capsys.readouterr().out == "hi\n42"

    @pytest.mark.parametrize("arch", ["mips", "x86"])
    def test_run_source_on_target(self, src, arch, capsys):
        code = main(["run", str(src), "--arch", arch, "--cycles"])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == "hi\n42"
        assert "cycles=" in captured.err

    def test_compile_then_run_object(self, src, tmp_path, capsys):
        out = tmp_path / "hello.oof"
        main(["compile", str(src), "-o", str(out)])
        capsys.readouterr()
        assert main(["run", str(out)]) == 0
        assert capsys.readouterr().out == "hi\n42"

    def test_lisp_frontend(self, tmp_path, capsys):
        path = tmp_path / "prog.lisp"
        path.write_text(LISP)
        assert main(["run", str(path)]) == 0
        assert "42" in capsys.readouterr().out

    def test_asm_frontend(self, tmp_path, capsys):
        path = tmp_path / "prog.s"
        path.write_text(ASM)
        obj = tmp_path / "prog.oof"
        assert main(["asm", str(path), "-o", str(obj)]) == 0
        capsys.readouterr()
        assert main(["run", str(obj)]) == 0
        assert "9" in capsys.readouterr().out


class TestLink:
    def test_link_two_objects(self, tmp_path, capsys):
        a = tmp_path / "a.c"
        a.write_text("extern int helper(void);"
                     "int main() { emit_int(helper()); return 0; }")
        b = tmp_path / "b.c"
        b.write_text("int helper(void) { return 7; }")
        oa, ob = tmp_path / "a.oof", tmp_path / "b.oof"
        main(["compile", str(a), "-o", str(oa)])
        main(["compile", str(b), "-o", str(ob)])
        module = tmp_path / "prog.oom"
        assert main(["link", str(oa), str(ob), "-o", str(module)]) == 0
        capsys.readouterr()
        assert main(["run", str(module)]) == 0
        assert "7" in capsys.readouterr().out


class TestDisasm:
    def test_disasm_lists_functions(self, src, capsys):
        assert main(["disasm", str(src)]) == 0
        out = capsys.readouterr().out
        assert "main:" in out and "hostcall" in out


class TestStats:
    def test_run_stats_flag(self, src, capsys):
        code = main(["run", str(src), "--arch", "sparc", "--stats"])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == "hi\n42"
        assert "pipeline stats" in captured.err
        assert "translate" in captured.err
        assert "verify.sfi.stores_checked" in captured.err

    def test_stats_subcommand_all_targets(self, src, capsys):
        assert main(["stats", str(src)]) == 0
        out = capsys.readouterr().out
        assert "compile stages:" in out
        for stage in ("frontend.lex", "codegen", "link"):
            assert stage in out, stage
        for arch in ARCHITECTURES:
            assert arch in out
        for column in ("verify(ms)", "transl(ms)", "sfiver(ms)",
                       "exec(ms)", "expand", "sfi-chk"):
            assert column in out

    def test_stats_single_arch_json(self, src, capsys):
        assert main(["stats", str(src), "--arch", "mips", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert list(report["targets"]) == ["mips"]
        target = report["targets"]["mips"]
        assert target["counters"]["verify.sfi.stores_checked"] >= 1
        assert target["counters"]["execute.sfi.dynamic"] >= 1
        assert target["expansion_ratio"] > 1.0
        assert target["dynamic_expansion_ratio"] > 1.0
        assert "translate" in target["stage_seconds"]
        assert report["omni_instret"] > 0

    def test_stats_no_sfi(self, src, capsys):
        assert main(["stats", str(src), "--arch", "x86", "--no-sfi",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        counters = report["targets"]["x86"]["counters"]
        assert report["sfi"] is False
        assert "execute.sfi.dynamic" not in counters


class TestErrors:
    def test_compile_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("int main( {")
        assert main(["compile", str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["run", "nonexistent.c"]) == 1

    def test_exit_code_propagates(self, tmp_path):
        path = tmp_path / "m.c"
        path.write_text("int main() { return 5; }")
        assert main(["run", str(path)]) == 5


class TestServe:
    SPINNER = "int main() { while (1) ; return 0; }"

    def _write_requests(self, tmp_path, specs):
        path = tmp_path / "reqs.json"
        path.write_text(json.dumps(specs))
        return path

    def test_serve_batch_from_source(self, tmp_path, capsys):
        reqs = self._write_requests(tmp_path, [
            {"source": HELLO, "id": "hello", "repeat": 3},
        ])
        code = main(["serve", "--requests", str(reqs),
                     "--arch", "mips", "--workers", "2"])
        captured = capsys.readouterr()
        assert code == 0
        assert "hello#0" in captured.out and "hello#2" in captured.out
        assert "3 requests" in captured.out and "3 ok" in captured.out

    def test_serve_batch_from_path(self, src, tmp_path, capsys):
        reqs = self._write_requests(tmp_path, [
            {"path": str(src), "id": "file"},
        ])
        assert main(["serve", "--requests", str(reqs)]) == 0
        assert "file" in capsys.readouterr().out

    def test_serve_json_summary(self, tmp_path, capsys):
        reqs = self._write_requests(tmp_path, [
            {"source": HELLO, "id": "a"},
            {"source": HELLO, "id": "b", "arch": "x86"},
        ])
        code = main(["serve", "--requests", str(reqs), "--json"])
        summary = json.loads(capsys.readouterr().out)
        assert code == 0
        assert summary["requests"] == 2 and summary["ok"] == 2
        assert summary["errors"] == 0
        assert summary["service"]["counters"]["ok"] == 2
        by_id = {r["request_id"]: r for r in summary["responses"]}
        assert by_id["a"]["arch"] == "omnivm"
        assert by_id["b"]["arch"] == "x86"

    def test_serve_deadline_makes_exit_nonzero(self, tmp_path, capsys):
        reqs = self._write_requests(tmp_path, [
            {"source": HELLO, "id": "fine"},
            {"source": self.SPINNER, "id": "spin",
             "deadline_seconds": 0.1, "fuel": 1000000000},
        ])
        code = main(["serve", "--requests", str(reqs),
                     "--arch", "mips", "--workers", "2"])
        captured = capsys.readouterr()
        assert code == 1
        assert "DeadlineExceeded" in captured.out
        assert "1 errors" in captured.out

    def test_serve_rejects_non_array(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.json"
        reqs.write_text(json.dumps({"source": HELLO}))
        assert main(["serve", "--requests", str(reqs)]) == 2
        assert "JSON array" in capsys.readouterr().err

    def test_serve_rejects_spec_without_program(self, tmp_path, capsys):
        reqs = self._write_requests(tmp_path, [{"id": "empty"}])
        assert main(["serve", "--requests", str(reqs)]) == 2
        assert "neither" in capsys.readouterr().err


class TestLinkErrorExitCodes:
    """Each typed dynamic-link error maps to its documented exit
    status, so scripts driving ``omnicc`` can react without parsing
    stderr (4=unresolved, 5=cycle, 6=revoked, 7=cross-module SFI,
    8=duplicate export)."""

    @pytest.mark.parametrize("make_error,expected", [
        (lambda: UnresolvedImportError("f", importer="main"), 4),
        (lambda: ModuleCycleError(("a", "b")), 5),
        (lambda: ModuleRevokedError("libmath", 1), 6),
        (lambda: CrossModuleViolation("stray jump", module="a"), 7),
        (lambda: DuplicateExportError("f", ("a", "b")), 8),
    ], ids=["unresolved", "cycle", "revoked", "cross-module",
            "duplicate"])
    def test_documented_mapping(self, make_error, expected, tmp_path,
                                monkeypatch, capsys):
        import repro.cli as cli

        def boom(args):
            raise make_error()

        monkeypatch.setattr(cli, "_run_linked", boom)
        src = tmp_path / "main.c"
        src.write_text("int main() { return 0; }")
        lib = tmp_path / "lib.c"
        lib.write_text("int f(int x) { return x; }")
        code = main(["run", str(src), "--link", str(lib)])
        assert code == expected
        assert "error" in capsys.readouterr().err

    def test_unresolved_import_end_to_end(self, tmp_path, capsys):
        src = tmp_path / "main.c"
        src.write_text(
            "extern int missing(int x);"
            "int main() { return missing(1); }")
        lib = tmp_path / "lib.c"
        lib.write_text("int f(int x) { return x; }")
        assert main(["run", str(src), "--link", str(lib)]) == 4
        assert "unresolved import" in capsys.readouterr().err

    def test_duplicate_export_end_to_end(self, tmp_path, capsys):
        src = tmp_path / "main.c"
        src.write_text(
            "extern int f(int x); int main() { return f(1); }")
        lib_a = tmp_path / "liba.c"
        lib_a.write_text("int f(int x) { return 1; }")
        lib_b = tmp_path / "libb.c"
        lib_b.write_text("int f(int x) { return 2; }")
        assert main(["run", str(src), "--link", str(lib_a),
                     "--link", str(lib_b)]) == 8
        assert "duplicate export" in capsys.readouterr().err

    def test_module_cycle_end_to_end(self, tmp_path, capsys):
        src = tmp_path / "main.c"
        src.write_text(
            "extern int g(int x);"
            "int f(int x) { return x; }"
            "int main() { return g(1); }")
        lib = tmp_path / "lib.c"
        lib.write_text(
            "extern int f(int x);"
            "int g(int x) { return f(x); }")
        assert main(["run", str(src), "--link", str(lib)]) == 5
        assert "cycle" in capsys.readouterr().err


class TestSfiCheck:
    def test_single_arch_reports_safe(self, capsys):
        assert main(["sfi-check", "--arch", "mips"]) == 0
        out = capsys.readouterr().out
        assert "all guard templates safe" in out
        assert "mips" in out

    def test_json_output_parses(self, capsys):
        assert main(["sfi-check", "--arch", "x86", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["states_checked"] > 0
        assert all(entry["counterexample"] is None
                   for entry in payload["templates"])
        assert {entry["arch"] for entry in payload["templates"]} == {"x86"}

    def test_unknown_arch_is_usage_error(self, capsys):
        assert main(["sfi-check", "--arch", "vax"]) == 2
        assert "unknown target" in capsys.readouterr().err
