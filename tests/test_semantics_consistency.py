"""Cross-layer semantic consistency (hypothesis).

The same 32-bit operation is implemented in three places: the constant
folder (compile time), the OmniVM interpreter (reference semantics), and
the target executors (translated semantics).  If any pair disagrees, the
optimizer could change program behaviour — so we check them against each
other directly, operation by operation, on random operands.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.ir import Const
from repro.omnivm.isa import VMInstr
from repro.omnivm.interp import OmniVM
from repro.omnivm.linker import LinkedProgram
from repro.omnivm.memory import Memory
from repro.opt.constfold import eval_binop, eval_cast, eval_cmp
from repro.targets.base import MInstr, TargetMachine
from repro.translators import target_spec
from repro.utils.bits import s32, u32

u32s = st.integers(min_value=0, max_value=2**32 - 1)

_INT_OPS = ["add", "sub", "mul", "div", "rem", "and", "or", "xor",
            "shl", "shr"]
_OMNI_OP = {"add": "add", "sub": "sub", "mul": "mul",
            "and": "and", "or": "or", "xor": "xor", "shl": "sll"}


def interp_alu(op: str, a: int, b: int, signed: bool) -> int | None:
    """Run one ALU op through the reference interpreter."""
    vm = OmniVM(LinkedProgram("t"), Memory())
    name = _OMNI_OP.get(op)
    if op == "div":
        name = "div" if signed else "divu"
    elif op == "rem":
        name = "rem" if signed else "remu"
    elif op == "shr":
        name = "sra" if signed else "srl"
    vm.state.regs[1], vm.state.regs[2] = a, b
    instr = VMInstr(name, rd=3, rs=1, rt=2)
    try:
        vm.step(instr)
    except Exception:
        return None
    return vm.state.regs[3]


def target_alu(arch: str, op: str, a: int, b: int, signed: bool) -> int | None:
    spec = target_spec(arch)
    machine = TargetMachine(spec, [], Memory(), {})
    name = _OMNI_OP.get(op)
    if op == "div":
        name = "div" if signed else "divu"
    elif op == "rem":
        name = "rem" if signed else "remu"
    elif op == "shr":
        name = "sra" if signed else "srl"
    machine.regs[8], machine.regs[9] = a, b
    try:
        machine.execute(MInstr(name, rd=10, rs=8, rt=9))
    except Exception:
        return None
    return machine.regs[10]


@given(op=st.sampled_from(_INT_OPS), a=u32s, b=u32s,
       signed=st.booleans())
def test_constfold_matches_interpreter(op, a, b, signed):
    ty = "i32" if signed else "u32"
    value_a = s32(a) if signed else a
    value_b = s32(b) if signed else b
    # Shift amounts: the folder and interpreter must both mask to 5 bits.
    folded = eval_binop(op, Const(value_a, ty), Const(value_b, ty), ty)
    executed = interp_alu(op, a, b, signed)
    if folded is None:
        assert executed is None or op in ("shl", "shr")  # div/rem by 0
        return
    assert executed is not None
    assert u32(int(folded.value)) == executed


@given(op=st.sampled_from(_INT_OPS), a=u32s, b=u32s, signed=st.booleans(),
       arch=st.sampled_from(["mips", "sparc", "ppc", "x86"]))
def test_targets_match_interpreter(op, a, b, signed, arch):
    reference = interp_alu(op, a, b, signed)
    native = target_alu(arch, op, a, b, signed)
    assert reference == native


@given(pred=st.sampled_from(["eq", "ne", "lt", "le", "gt", "ge"]),
       a=u32s, b=u32s, signed=st.booleans())
def test_compare_consistency(pred, a, b, signed):
    ty = "i32" if signed else "u32"
    folded = eval_cmp(pred, Const(s32(a) if signed else a, ty),
                      Const(s32(b) if signed else b, ty), ty)
    # Reference: interpreter's set-compare instruction family.
    vm = OmniVM(LinkedProgram("t"), Memory())
    name = {"eq": "seq", "ne": "sne", "lt": "slt", "le": "sle",
            "gt": "sgt", "ge": "sge"}[pred]
    if not signed and pred in ("lt", "le", "gt", "ge"):
        name += "u"
    vm.state.regs[1], vm.state.regs[2] = a, b
    vm.step(VMInstr(name, rd=3, rs=1, rt=2))
    assert folded.value == vm.state.regs[3]


@given(value=u32s, subop=st.sampled_from(
    ["sext8", "sext16", "zext8", "zext16"]))
def test_extension_consistency(value, subop):
    folded = eval_cast(subop, Const(s32(value), "i32"), "i32")
    vm = OmniVM(LinkedProgram("t"), Memory())
    vm.state.regs[1] = value
    vm.step(VMInstr(subop, rd=2, rs=1))
    assert u32(int(folded.value)) == vm.state.regs[2]


@given(value=st.floats(allow_nan=False, allow_infinity=False,
                       min_value=-2**31, max_value=2**31 - 1))
def test_f2i_truncation_consistency(value, ):
    folded = eval_cast("f2i", Const(value, "f64"), "i32")
    vm = OmniVM(LinkedProgram("t"), Memory())
    vm.state.fregs[1] = value
    vm.step(VMInstr("cvtwd", rd=2, fs=1))
    assert u32(int(folded.value)) == vm.state.regs[2]
