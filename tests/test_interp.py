"""Reference interpreter semantics, instruction by instruction.

Programs are built directly out of VMInstr objects (via the assembler
for readability), so these tests pin the SDCA's semantics independently
of the MiniC compiler.
"""

import pytest

from repro.errors import FuelExhausted, VMRuntimeError, VMTrap
from repro.omnivm.asmparser import assemble
from repro.omnivm.linker import link
from repro.runtime.loader import load_for_interpretation, run_module


def run_asm(body, data="", fuel=1_000_000):
    source = f"""
        .text
        .globl main
    main:
    {body}
        .data
    {data}
    """
    program = link([assemble(source)])
    loaded = load_for_interpretation(program, fuel=fuel)
    code = loaded.run()
    return code, loaded


class TestALU:
    def test_add_sub_wrap(self):
        code, _ = run_asm("""
            li r1, 0x7FFFFFFF
            addi r1, r1, 1
            jr ra
        """)
        assert code == -2147483648

    def test_signed_division(self):
        code, _ = run_asm("""
            li r1, -17
            li r2, 5
            div r1, r1, r2
            jr ra
        """)
        assert code == -3

    def test_unsigned_division(self):
        code, _ = run_asm("""
            li r1, 0xFFFFFFFE
            li r2, 2
            divu r1, r1, r2
            jr ra
        """)
        assert code == 0x7FFFFFFF

    def test_division_by_zero_traps(self):
        with pytest.raises(VMRuntimeError):
            run_asm("""
                li r1, 1
                li r2, 0
                div r1, r1, r2
                jr ra
            """)

    def test_shifts(self):
        code, _ = run_asm("""
            li r1, -16
            srai r1, r1, 2
            jr ra
        """)
        assert code == -4
        code, _ = run_asm("""
            li r1, -16
            srli r1, r1, 28
            jr ra
        """)
        assert code == 15

    def test_set_compares(self):
        code, _ = run_asm("""
            li r2, -5
            li r3, 3
            slt r1, r2, r3      ; signed: -5 < 3 -> 1
            sltu r4, r2, r3     ; unsigned: huge < 3 -> 0
            sll r1, r1, r3
            or r1, r1, r4
            jr ra
        """)
        assert code == 8

    def test_extensions(self):
        code, _ = run_asm("""
            li r1, 0x1234ABCD
            sext8 r1, r1
            jr ra
        """)
        assert code == -51  # 0xCD sign-extended
        code, _ = run_asm("""
            li r1, 0x1234ABCD
            zext16 r1, r1
            jr ra
        """)
        assert code == 0xABCD


class TestMemoryOps:
    def test_word_store_load(self):
        code, _ = run_asm("""
            li r2, @cell
            li r3, 12345
            sw r3, r2, 0
            lw r1, r2, 0
            jr ra
        """, data=".globl cell\ncell:\n  .word 0")
        assert code == 12345

    def test_subword_sign_extension(self):
        code, _ = run_asm("""
            li r2, @cell
            li r3, 0x1FF
            sb r3, r2, 0
            lb r1, r2, 0
            jr ra
        """, data="cell:\n  .word 0")
        assert code == -1

    def test_indexed_addressing(self):
        code, _ = run_asm("""
            li r2, @arr
            li r3, 8
            lwx r1, r2, r3
            jr ra
        """, data="arr:\n  .word 10, 20, 30")
        assert code == 30

    def test_fp_memory(self):
        code, loaded = run_asm("""
            li r2, @vals
            lfd f1, r2, 0
            lfd f2, r2, 8
            faddd f1, f1, f2
            hostcall 3          ; emit_double(f1)
            li r1, 0
            jr ra
        """, data="vals:\n  .double 1.25\n  .double 2.5")
        assert loaded.host.output_values() == [3.75]


class TestControl:
    def test_compare_and_branch(self):
        code, _ = run_asm("""
            li r1, 0
            li r2, 10
        loop:
            add r1, r1, r2
            addi r2, r2, -1
            bgti r2, 0, loop
            jr ra
        """)
        assert code == sum(range(1, 11))

    def test_branch_unsigned_predicates(self):
        code, _ = run_asm("""
            li r1, 111
            li r2, 0xFFFFFFFF
            bltui r2, 10, small
            li r1, 222
        small:
            jr ra
        """)
        assert code == 222  # 0xFFFFFFFF unsigned is not < 10

    def test_call_and_return(self):
        code, _ = run_asm("""
            addi r15, r15, -8
            sw ra, r15, 0
            li r1, 5
            jal helper
            lw ra, r15, 0
            addi r15, r15, 8
            jr ra
            .globl helper
        helper:
            muli r1, r1, 3
            jr ra
        """)
        assert code == 15

    def test_indirect_call(self):
        code, _ = run_asm("""
            li r5, @helper
            li r1, 4
            addi r15, r15, -8
            sw ra, r15, 0
            jalr r5
            lw ra, r15, 0
            addi r15, r15, 8
            jr ra
            .globl helper
        helper:
            muli r1, r1, 7
            jr ra
        """)
        assert code == 28

    def test_trap_instruction(self):
        with pytest.raises(VMTrap) as info:
            run_asm("""
                trap 9
                jr ra
            """)
        assert info.value.code == 9

    def test_fuel_guard(self):
        with pytest.raises(FuelExhausted):
            run_asm("""
            spin:
                j spin
            """, fuel=1000)


class TestFloatOps:
    def test_conversions(self):
        _code, loaded = run_asm("""
            li r2, -7
            cvtdw f1, r2
            hostcall 3
            li r2, 0xFFFFFFFF
            cvtdwu f1, r2
            hostcall 3
            li r1, 0
            jr ra
        """)
        assert loaded.host.output_values() == [-7.0, 4294967295.0]

    def test_fp_compare(self):
        code, _ = run_asm("""
            li r2, 3
            cvtdw f1, r2
            li r2, 4
            cvtdw f2, r2
            fcltd r1, f1, f2
            jr ra
        """)
        assert code == 1

    def test_single_precision_rounding(self):
        _code, loaded = run_asm("""
            li r2, @vals
            lfs f1, r2, 0
            cvtds f1, f1
            hostcall 3
            li r1, 0
            jr ra
        """, data="vals:\n  .float 0.1")
        (value,) = loaded.host.output_values()
        assert value != 0.1 and abs(value - 0.1) < 1e-7


class TestHostInterface:
    def test_emit_and_exit(self):
        source = """
            .text
            .globl main
        main:
            li r1, 7
            hostcall 1
            li r1, 3
            hostcall 0          ; exit(3)
            li r1, 99           ; unreachable
            jr ra
        """
        program = link([assemble(source)])
        code, host = run_module(program)
        assert code == 3
        assert host.output_values() == [7]

    def test_instruction_mix_instrumentation(self):
        program = link([assemble("""
            .text
            .globl main
        main:
            li r1, 0
            addi r1, r1, 1
            addi r1, r1, 1
            jr ra
        """)])
        loaded = load_for_interpretation(program)
        loaded.vm.count_opcodes = True
        loaded.run()
        assert loaded.vm.opcode_counts["addi"] == 2
        assert loaded.vm.opcode_counts["li"] == 1
