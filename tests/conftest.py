"""Shared helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.compiler import CompileOptions, compile_and_link
from repro.runtime.host import Host
from repro.runtime.loader import run_module
from repro.runtime.native_loader import run_on_target
from repro.translators import ARCHITECTURES
from repro.native.profiles import MOBILE_SFI


def compile_run(source: str, entry: str = "main",
                host: Host | None = None, **options):
    """Compile MiniC source and run it on the reference interpreter.

    Returns (exit_code, host).
    """
    program = compile_and_link([source], CompileOptions(**options))
    return run_module(program, entry if entry != "main" else None, host)


def run_everywhere(source: str, **options) -> dict[str, list[object]]:
    """Run a program on the interpreter and all four targets (SFI on);
    returns outputs per engine (the caller typically asserts equality)."""
    program = compile_and_link([source], CompileOptions(**options))
    outputs: dict[str, list[object]] = {}
    _code, host = run_module(program)
    outputs["omnivm"] = host.output_values()
    for arch in ARCHITECTURES:
        _code, module = run_on_target(program, arch, MOBILE_SFI)
        outputs[arch] = module.host.output_values()
    return outputs


@pytest.fixture
def minic():
    """Fixture: compile-and-run helper returning emitted values."""

    def runner(source: str, **options) -> list[object]:
        _code, host = compile_run(source, **options)
        return host.output_values()

    return runner
