"""The instruction-padding/alignment policy variant.

``SandboxPolicy.pad_align`` (Emamdoost & McCamant's padding experiment)
makes the translators align every indirect-entry anchor to a bundle
boundary with category-"pad" nops.  Covered here:

* every ``omni_to_native`` anchor lands on a bundle boundary, on all
  four targets;
* padded output is behaviorally identical to unpadded output (same
  exit code and emitted output), just slower and bigger;
* the CFG verifier accepts padded modules and *rejects* non-nop
  instructions hiding under the pad category;
* the translation cache is bypassed for non-default policies, so a
  padded load never collides with a cached default-policy chunk;
* the ``bundle_padding`` helper's arithmetic.
"""

import pytest

from repro.cache import TranslationCache
from repro.compiler import compile_and_link
from repro.errors import VerifyError
from repro.native.profiles import MOBILE_SFI
from repro.runtime.native_loader import load_for_target, run_on_target
from repro.sfi.policy import DEFAULT_POLICY, PADDED_POLICY, SandboxPolicy
from repro.sfi.rewrite import bundle_padding
from repro.sfi.verifier import verify_sfi
from repro.targets.base import CATEGORIES, MInstr
from repro.translators import ARCHITECTURES, target_spec, translate

SRC = """
int g[8];
int f(int x) { g[x & 7] = x; return g[x & 7] + 1; }
int main() {
    int (*fp)(int) = f;
    int i; int acc = 0;
    for (i = 0; i < 5; i = i + 1) { acc = acc + fp(i); }
    emit_int(acc);
    return acc & 0xFF;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_and_link([SRC])


class TestBundlePaddingHelper:
    def test_disabled_policy_emits_nothing(self):
        spec = target_spec("mips")
        assert bundle_padding(spec, DEFAULT_POLICY, 13, 0) == []

    def test_aligned_position_emits_nothing(self):
        spec = target_spec("mips")
        assert bundle_padding(spec, PADDED_POLICY, 16, 0) == []

    def test_pads_to_next_bundle(self):
        spec = target_spec("x86")
        pads = bundle_padding(spec, PADDED_POLICY, 13, 0x10000010)
        assert len(pads) == 3
        assert all(p.op == "nop" and p.category == "pad" for p in pads)
        assert all(p.omni_addr == 0x10000010 for p in pads)

    def test_pad_category_registered(self):
        # The legacy executor counts by category; an unregistered
        # category would KeyError on the first padded dynamic instance.
        assert "pad" in CATEGORIES


class TestPaddedTranslation:
    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_anchors_bundle_aligned_and_verified(self, program, arch):
        module = translate(program, arch, MOBILE_SFI, policy=PADDED_POLICY)
        align = PADDED_POLICY.pad_align
        assert module.omni_to_native, "no anchors translated"
        for omni, native in module.omni_to_native.items():
            assert native % align == 0, (
                f"{arch}: anchor {omni:#x} at native index {native} "
                f"not {align}-aligned"
            )
        assert any(i.category == "pad" for i in module.instrs)
        verify_sfi(module, policy=PADDED_POLICY)

    def test_unpadded_translation_emits_no_pads(self, program):
        module = translate(program, "mips", MOBILE_SFI)
        assert not any(i.category == "pad" for i in module.instrs)

    @pytest.mark.parametrize("arch", ("mips", "x86"))
    def test_padded_run_matches_unpadded(self, program, arch, capsys):
        code0, plain = run_on_target(program, arch, MOBILE_SFI)
        out0 = capsys.readouterr().out
        code1, padded = run_on_target(program, arch, MOBILE_SFI,
                                      policy=PADDED_POLICY)
        out1 = capsys.readouterr().out
        assert code0 == code1
        assert out0 == out1
        assert len(padded.translated.instrs) > len(plain.translated.instrs)
        # Executed pad nops are attributed to their own category.
        assert padded.machine.category_counts.get("pad", 0) > 0

    def test_custom_alignment_respected(self, program):
        policy = SandboxPolicy(pad_align=4)
        module = translate(program, "sparc", MOBILE_SFI, policy=policy)
        for native in module.omni_to_native.values():
            assert native % 4 == 0

    def test_padding_requires_sfi(self, program):
        from repro.translators import TranslationOptions

        module = translate(program, "mips", TranslationOptions(sfi=False),
                           policy=PADDED_POLICY)
        assert not any(i.category == "pad" for i in module.instrs)


class TestPadVerifierRule:
    def test_non_nop_pad_instruction_rejected(self, program):
        module = translate(program, "mips", MOBILE_SFI,
                           policy=PADDED_POLICY)
        pad_index = next(i for i, instr in enumerate(module.instrs)
                         if instr.category == "pad")
        # Smuggle real work in under the pad category: must be caught.
        module.instrs[pad_index] = MInstr(
            "addi", rd=module.spec.int_map[15],
            rs=module.spec.int_map[15], imm=8, category="pad")
        with pytest.raises(VerifyError, match="pad-category"):
            verify_sfi(module, policy=PADDED_POLICY)


class TestCacheBypass:
    def test_padded_load_does_not_reuse_default_chunk(self, program):
        cache = TranslationCache()
        plain = load_for_target(program, "mips", MOBILE_SFI, cache=cache)
        assert not any(i.category == "pad"
                       for i in plain.translated.instrs)
        padded = load_for_target(program, "mips", MOBILE_SFI, cache=cache,
                                 policy=PADDED_POLICY)
        assert any(i.category == "pad" for i in padded.translated.instrs)
        # And the cached default entry was not poisoned by the padded
        # translation.
        again = load_for_target(program, "mips", MOBILE_SFI, cache=cache)
        assert not any(i.category == "pad"
                       for i in again.translated.instrs)
