"""The content-addressed translation cache."""

import json
from pathlib import Path

import pytest

from repro import metrics
from repro.cache import (
    TranslationCache,
    cache_key,
    options_digest,
    program_digest,
)
from repro.compiler import CompileOptions, compile_and_link
from repro.native.profiles import MOBILE_NOSFI, MOBILE_SFI
from repro.runtime.loader import run_module
from repro.runtime.native_loader import load_for_target, run_on_target
from repro.translators import translate
from repro.translators.base import TranslationOptions

SRC = "int main() { emit_int(5 + 6); return 0; }"
OTHER_SRC = "int main() { emit_int(9); return 0; }"


@pytest.fixture
def program():
    return compile_and_link([SRC])


@pytest.fixture
def other_program():
    return compile_and_link([OTHER_SRC])


class TestKeying:
    def test_digest_is_content_addressed(self, program):
        rebuilt = compile_and_link([SRC])
        assert rebuilt is not program
        assert program_digest(rebuilt) == program_digest(program)

    def test_digest_differs_for_different_programs(self, program,
                                                   other_program):
        assert program_digest(program) != program_digest(other_program)

    def test_options_sensitivity(self, program):
        sfi_key = cache_key(program, "mips", MOBILE_SFI)
        nosfi_key = cache_key(program, "mips", MOBILE_NOSFI)
        assert sfi_key != nosfi_key
        # every TranslationOptions field participates
        assert (options_digest(TranslationOptions(sfi_reads=True))
                != options_digest(TranslationOptions(sfi_reads=False)))

    def test_arch_sensitivity(self, program):
        assert cache_key(program, "mips", MOBILE_SFI) != cache_key(
            program, "x86", MOBILE_SFI)

    def test_none_options_means_defaults(self, program):
        assert cache_key(program, "mips", None) == cache_key(
            program, "mips", TranslationOptions())


class TestHitMiss:
    def test_miss_then_hit(self, program):
        cache = TranslationCache()
        assert cache.get(program, "mips", MOBILE_SFI) is None
        translated = translate(program, "mips", MOBILE_SFI)
        cache.put(program, "mips", MOBILE_SFI, translated)
        assert cache.get(program, "mips", MOBILE_SFI) is translated
        stats = cache.stats()
        assert (stats.misses, stats.hits, stats.stores) == (1, 1, 1)

    def test_rebuilt_program_hits_same_entry(self, program):
        cache = TranslationCache()
        cache.put(program, "mips", MOBILE_SFI,
                  translate(program, "mips", MOBILE_SFI))
        rebuilt = compile_and_link([SRC])
        assert cache.get(rebuilt, "mips", MOBILE_SFI) is not None

    def test_options_never_cross_contaminate(self, program):
        cache = TranslationCache()
        cache.put(program, "mips", MOBILE_SFI,
                  translate(program, "mips", MOBILE_SFI))
        assert cache.get(program, "mips", MOBILE_NOSFI) is None

    def test_lru_eviction(self, program):
        cache = TranslationCache(capacity=2)
        for arch in ("mips", "sparc", "ppc"):
            cache.put(program, arch, MOBILE_SFI,
                      translate(program, arch, MOBILE_SFI))
        assert len(cache) == 2
        assert cache.stats().evictions == 1
        assert cache.get(program, "mips", MOBILE_SFI) is None  # oldest out
        assert cache.get(program, "ppc", MOBILE_SFI) is not None

    def test_lru_refresh_on_hit(self, program):
        cache = TranslationCache(capacity=2)
        cache.put(program, "mips", MOBILE_SFI,
                  translate(program, "mips", MOBILE_SFI))
        cache.put(program, "sparc", MOBILE_SFI,
                  translate(program, "sparc", MOBILE_SFI))
        cache.get(program, "mips", MOBILE_SFI)  # refresh mips
        cache.put(program, "ppc", MOBILE_SFI,
                  translate(program, "ppc", MOBILE_SFI))
        assert cache.get(program, "mips", MOBILE_SFI) is not None
        assert cache.get(program, "sparc", MOBILE_SFI) is None

    def test_invalidate_by_program(self, program, other_program):
        cache = TranslationCache()
        cache.put(program, "mips", MOBILE_SFI,
                  translate(program, "mips", MOBILE_SFI))
        cache.put(other_program, "mips", MOBILE_SFI,
                  translate(other_program, "mips", MOBILE_SFI))
        assert cache.invalidate(program=program) == 1
        assert cache.get(program, "mips", MOBILE_SFI) is None
        assert cache.get(other_program, "mips", MOBILE_SFI) is not None

    def test_clear(self, program):
        cache = TranslationCache()
        cache.put(program, "mips", MOBILE_SFI,
                  translate(program, "mips", MOBILE_SFI))
        assert cache.clear() == 1
        assert len(cache) == 0


class TestLoaderIntegration:
    def test_warm_load_skips_verify_and_translate(self, program):
        cache = TranslationCache()
        with metrics.collect() as collector:
            code1, module1 = run_on_target(program, "mips", MOBILE_SFI,
                                           cache=cache)
            code2, module2 = run_on_target(program, "mips", MOBILE_SFI,
                                           cache=cache)
        assert (code1, code2) == (0, 0)
        assert module1.host.output_values() == module2.host.output_values()
        # The warm load was a cache hit and ran no pipeline front half.
        assert cache.stats().hits == 1
        assert collector.counters["cache.hit"] == 1
        assert collector.counters["translate.calls"] == 1
        assert collector.stage_calls["verify.module"] == 1
        assert collector.stage_calls["verify.sfi"] == 1
        assert collector.stage_calls["execute"] == 2

    def test_cached_translation_is_shared(self, program):
        cache = TranslationCache()
        module1 = load_for_target(program, "ppc", MOBILE_SFI, cache=cache)
        module2 = load_for_target(program, "ppc", MOBILE_SFI, cache=cache)
        assert module1.translated is module2.translated


class TestDiskPersistence:
    def test_round_trip_produces_identical_output(self, tmp_path, program):
        warm_dir = tmp_path / "txcache"
        first = TranslationCache(disk_dir=warm_dir)
        code, fresh = run_on_target(program, "x86", MOBILE_SFI, cache=first)
        assert code == 0

        # A new process would start with an empty LRU but a warm disk.
        second = TranslationCache(disk_dir=warm_dir)
        code, reloaded = run_on_target(program, "x86", MOBILE_SFI,
                                       cache=second)
        assert code == 0
        stats = second.stats()
        assert stats.disk_hits == 1 and stats.hits == 1
        assert (reloaded.host.output_values()
                == fresh.host.output_values())
        _code, host = run_module(program)
        assert reloaded.host.output_values() == host.output_values()

    def test_disk_entries_are_options_sensitive(self, tmp_path, program):
        warm_dir = tmp_path / "txcache"
        first = TranslationCache(disk_dir=warm_dir)
        first.put(program, "mips", MOBILE_SFI,
                  translate(program, "mips", MOBILE_SFI))
        second = TranslationCache(disk_dir=warm_dir)
        assert second.get(program, "mips", MOBILE_NOSFI) is None
        assert second.get(program, "mips", MOBILE_SFI) is not None

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path, program):
        warm_dir = tmp_path / "txcache"
        first = TranslationCache(disk_dir=warm_dir)
        first.put(program, "mips", MOBILE_SFI,
                  translate(program, "mips", MOBILE_SFI))
        for path in warm_dir.glob("*.json"):
            path.write_text("{ not json")
        second = TranslationCache(disk_dir=warm_dir)
        assert second.get(program, "mips", MOBILE_SFI) is None

    def test_invalidate_removes_disk_entries(self, tmp_path, program):
        warm_dir = tmp_path / "txcache"
        cache = TranslationCache(disk_dir=warm_dir)
        cache.put(program, "mips", MOBILE_SFI,
                  translate(program, "mips", MOBILE_SFI))
        assert list(warm_dir.glob("*.json"))
        cache.invalidate(program=program)
        assert not list(warm_dir.glob("*.json"))
        assert TranslationCache(disk_dir=warm_dir).get(
            program, "mips", MOBILE_SFI) is None

    def test_num_regs_variants_are_distinct(self, tmp_path):
        # Different register-file sizes produce different programs and
        # must occupy different cache entries (Table 2 sweep safety).
        cache = TranslationCache()
        p16 = compile_and_link([SRC], CompileOptions(num_regs=16))
        p8 = compile_and_link([SRC], CompileOptions(num_regs=8))
        cache.put(p16, "mips", MOBILE_SFI,
                  translate(p16, "mips", MOBILE_SFI))
        if program_digest(p8) != program_digest(p16):
            assert cache.get(p8, "mips", MOBILE_SFI) is None


class TestDurability:
    """Regressions for the cache-durability bugs: torn disk writes,
    disk entries surviving a filtered invalidate after LRU eviction, and
    unverified (tampered) disk entries being executed."""

    def test_interrupted_store_never_corrupts_existing_entry(
            self, tmp_path, program, monkeypatch):
        # A good entry is on disk; a later overwrite dies mid-write
        # (e.g. disk full, crash).  The original entry must survive —
        # the bug was an in-place write_text that left a torn file.
        import os

        import repro.cache as cache_module

        cache = TranslationCache(disk_dir=tmp_path)
        cache.put(program, "mips", MOBILE_SFI,
                  translate(program, "mips", MOBILE_SFI))

        def torn_fsync(fd):
            os.ftruncate(fd, 16)  # the data blocks never made it down
            raise OSError("disk full mid-write")

        monkeypatch.setattr(cache_module, "_fsync_file", torn_fsync)
        writer = TranslationCache(disk_dir=tmp_path)  # fresh LRU
        writer.put(program, "mips", MOBILE_SFI,
                   translate(program, "mips", MOBILE_SFI))
        monkeypatch.undo()

        fresh = TranslationCache(disk_dir=tmp_path)
        assert fresh.get(program, "mips", MOBILE_SFI) is not None
        assert fresh.stats().disk_rejects == 0
        assert not list(tmp_path.glob("*.tmp"))  # no torn leftovers

    def test_truncated_entry_is_clean_miss_and_repaired(
            self, tmp_path, program):
        cache = TranslationCache(disk_dir=tmp_path)
        translated = translate(program, "mips", MOBILE_SFI)
        cache.put(program, "mips", MOBILE_SFI, translated)
        [path] = tmp_path.glob("*.json")
        blob = path.read_text()
        path.write_text(blob[: len(blob) // 2])  # simulate a torn entry

        fresh = TranslationCache(disk_dir=tmp_path)
        assert fresh.get(program, "mips", MOBILE_SFI) is None
        assert fresh.stats().disk_rejects == 1
        assert not path.exists()  # rejected entries are deleted
        fresh.put(program, "mips", MOBILE_SFI, translated)  # repair
        again = TranslationCache(disk_dir=tmp_path)
        assert again.get(program, "mips", MOBILE_SFI) is not None

    def test_filtered_invalidate_reaches_evicted_disk_entries(
            self, tmp_path, program, other_program):
        # put -> evict past LRU capacity -> invalidate(program) -> the
        # disk copy must die too, or get() resurrects invalidated code.
        cache = TranslationCache(capacity=1, disk_dir=tmp_path)
        cache.put(program, "mips", MOBILE_SFI,
                  translate(program, "mips", MOBILE_SFI))
        cache.put(other_program, "mips", MOBILE_SFI,
                  translate(other_program, "mips", MOBILE_SFI))
        assert cache.stats().evictions == 1  # program left the LRU

        dropped = cache.invalidate(program=program)
        assert dropped == 0  # it was not resident ...
        assert cache.stats().invalidations == 1  # ... but disk matched
        assert cache.get(program, "mips", MOBILE_SFI) is None
        assert cache.get(other_program, "mips", MOBILE_SFI) is not None

    def test_filtered_invalidate_by_arch_reaches_disk(
            self, tmp_path, program):
        cache = TranslationCache(capacity=1, disk_dir=tmp_path)
        cache.put(program, "mips", MOBILE_SFI,
                  translate(program, "mips", MOBILE_SFI))
        cache.put(program, "sparc", MOBILE_SFI,
                  translate(program, "sparc", MOBILE_SFI))  # evicts mips
        cache.invalidate(arch="mips")
        assert cache.get(program, "mips", MOBILE_SFI) is None
        assert cache.get(program, "sparc", MOBILE_SFI) is not None

    def test_tampered_disk_entry_is_rejected(self, tmp_path, program):
        # Valid JSON whose instruction payload was modified must fail
        # the integrity digest — the bug was executing it unverified.
        cache = TranslationCache(disk_dir=tmp_path)
        cache.put(program, "mips", MOBILE_SFI,
                  translate(program, "mips", MOBILE_SFI))
        [path] = tmp_path.glob("*.json")
        payload = json.loads(path.read_text())
        payload["instrs"][0], payload["instrs"][1] = (
            payload["instrs"][1], payload["instrs"][0])
        path.write_text(json.dumps(payload))

        fresh = TranslationCache(disk_dir=tmp_path)
        with metrics.collect() as collector:
            assert fresh.get(program, "mips", MOBILE_SFI) is None
        assert fresh.stats().disk_rejects == 1
        assert collector.counters["cache.disk_reject"] == 1
        assert not path.exists()

    def test_bit_flip_anywhere_is_rejected(self, tmp_path, program):
        cache = TranslationCache(disk_dir=tmp_path)
        cache.put(program, "mips", MOBILE_SFI,
                  translate(program, "mips", MOBILE_SFI))
        [path] = tmp_path.glob("*.json")
        blob = bytearray(path.read_bytes())
        flip_at = blob.find(b'"instrs"') + 24  # inside the payload
        blob[flip_at] ^= 0x01
        path.write_bytes(bytes(blob))

        fresh = TranslationCache(disk_dir=tmp_path)
        entry = fresh.get(program, "mips", MOBILE_SFI)
        # Either the flip landed in structure (reject) or in a value the
        # digest covers (reject); a surviving hit would be the bug.
        assert entry is None
        assert fresh.stats().disk_rejects == 1

    def test_stats_include_disk_rejects(self, program):
        assert TranslationCache().stats().to_dict()["disk_rejects"] == 0


class TestFsyncOrdering:
    """Crash durability of disk stores (regression: the store renamed
    without fsyncing, so a machine crash could commit an entry whose
    data blocks never hit the disk — surfacing later as a torn file)."""

    def test_file_is_fsynced_before_rename_and_dir_after(
            self, tmp_path, program, monkeypatch):
        import repro.cache as cache_module

        events = []
        real_file, real_dir = (cache_module._fsync_file,
                               cache_module._fsync_dir)

        def spy_file(fd):
            # At file-fsync time the rename must not have happened yet.
            events.append(("file", len(list(tmp_path.glob("*.json")))))
            real_file(fd)

        def spy_dir(path):
            events.append(("dir", len(list(tmp_path.glob("*.json")))))
            real_dir(path)

        monkeypatch.setattr(cache_module, "_fsync_file", spy_file)
        monkeypatch.setattr(cache_module, "_fsync_dir", spy_dir)
        cache = TranslationCache(disk_dir=tmp_path)
        cache.put(program, "mips", MOBILE_SFI,
                  translate(program, "mips", MOBILE_SFI))
        assert events == [("file", 0), ("dir", 1)]

    def test_crash_before_fsync_leaves_no_committed_entry(
            self, tmp_path, program, monkeypatch):
        # Inject the crash between write and fsync: the data is torn
        # and the fsync "never returns".  Nothing may be committed —
        # no *.json, no leftover *.tmp visible as an entry.
        import os

        import repro.cache as cache_module

        def dying_fsync(fd):
            os.ftruncate(fd, 16)
            raise OSError("simulated power loss before fsync")

        monkeypatch.setattr(cache_module, "_fsync_file", dying_fsync)
        cache = TranslationCache(disk_dir=tmp_path)
        cache.put(program, "mips", MOBILE_SFI,
                  translate(program, "mips", MOBILE_SFI))
        monkeypatch.undo()
        assert not list(tmp_path.glob("*.json"))
        fresh = TranslationCache(disk_dir=tmp_path)
        assert fresh.get(program, "mips", MOBILE_SFI) is None
        assert fresh.stats().disk_rejects == 0  # clean miss, not a tear


class TestSingleFlight:
    """translate_once: stampedes on one uncached key translate once."""

    def _translated(self, program):
        return translate(program, "mips", MOBILE_SFI)

    def test_miss_produces_then_hit_skips_produce(self, program):
        cache = TranslationCache()
        calls = []

        def produce():
            calls.append(1)
            return self._translated(program)

        first = cache.translate_once(program, "mips", MOBILE_SFI, produce)
        second = cache.translate_once(program, "mips", MOBILE_SFI, produce)
        assert first is not None and second is first
        assert len(calls) == 1

    def test_thread_stampede_elects_one_leader(self, program):
        import threading
        import time as time_module

        cache = TranslationCache()
        calls = []
        results = []

        def produce():
            calls.append(1)
            time_module.sleep(0.05)  # hold the flight open
            return self._translated(program)

        def contender():
            results.append(cache.translate_once(
                program, "mips", MOBILE_SFI, produce))

        threads = [threading.Thread(target=contender) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(calls) == 1
        assert len(results) == 8 and all(r is not None for r in results)
        assert cache.stats().stores == 1
        assert cache.stats().single_flight_waits >= 1

    def test_failed_leader_crowns_a_waiter(self, program):
        import threading

        cache = TranslationCache()
        gate = threading.Event()
        outcomes = []

        def failing_then_working():
            if not gate.is_set():
                gate.set()
                raise RuntimeError("leader died mid-translation")
            return self._translated(program)

        def contender():
            try:
                outcomes.append(cache.translate_once(
                    program, "mips", MOBILE_SFI, failing_then_working))
            except RuntimeError as err:
                outcomes.append(err)

        threads = [threading.Thread(target=contender) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # The first leader raises; some waiter takes over and succeeds,
        # so at least one caller got a real translation.
        assert any(not isinstance(o, Exception) for o in outcomes)

    def test_foreign_flight_lock_polls_disk_tier(self, tmp_path, program):
        import threading

        # Process A (simulated): holds the on-disk flight lock.
        a = TranslationCache(disk_dir=tmp_path)
        key = cache_key(program, "mips", MOBILE_SFI)
        assert a._acquire_flight_file(key) is not None
        # Process B: stampedes on the same key; it must wait on the
        # lock, not translate.
        b = TranslationCache(disk_dir=tmp_path)
        produced = []
        result = []

        def b_produce():
            produced.append(1)
            return self._translated(program)

        waiter = threading.Thread(target=lambda: result.append(
            b.translate_once(program, "mips", MOBILE_SFI, b_produce)))
        waiter.start()
        # A finishes: entry lands on disk, lock released.
        a.put(program, "mips", MOBILE_SFI, self._translated(program))
        a._flight_path(key).unlink()
        waiter.join(timeout=30.0)
        assert not waiter.is_alive()
        assert result and result[0] is not None
        assert not produced  # B read A's entry, never translated
        assert b.stats().disk_hits >= 1
        assert b.stats().single_flight_waits >= 1

    def test_stale_foreign_lock_is_stolen(self, tmp_path, program,
                                          monkeypatch):
        import repro.cache as cache_module

        monkeypatch.setattr(cache_module, "FLIGHT_STALE_SECONDS", 0.05)
        # A crashed process left its flight lock behind; B must break
        # it after the staleness window and translate itself.
        a = TranslationCache(disk_dir=tmp_path)
        key = cache_key(program, "mips", MOBILE_SFI)
        assert a._acquire_flight_file(key) is not None

        b = TranslationCache(disk_dir=tmp_path)
        produced = []

        def b_produce():
            produced.append(1)
            return self._translated(program)

        result = b.translate_once(program, "mips", MOBILE_SFI, b_produce)
        assert result is not None
        assert produced == [1]
        # The steal cleaned up after itself: no lock file left behind.
        assert not list(tmp_path.glob("*.flight"))

    def test_no_disk_tier_still_single_flights_in_process(self, program):
        cache = TranslationCache()  # memory only
        calls = []
        result = cache.translate_once(
            program, "mips", MOBILE_SFI,
            lambda: (calls.append(1), self._translated(program))[1])
        assert result is not None and calls == [1]
