"""Shape assertions: the reproduction must match the paper's *qualitative*
results (who wins, roughly by how much, where the effects appear).

Absolute numbers differ — the substrate is a first-order simulator — but
each check below encodes a sentence from the paper's evaluation section.
These share the cached experiment runner, so the first test pays the
simulation cost and the rest are free.
"""

import pytest

from repro.evalharness import tables
from repro.evalharness.figures import figure1
from repro.evalharness.runner import ARCHS, RunKey, global_runner
from repro.workloads.suite import WORKLOAD_NAMES

pytestmark = [pytest.mark.slow, pytest.mark.shapes]


@pytest.fixture(scope="module")
def runner():
    return global_runner()


class TestTable1Shape:
    def test_sfi_mobile_within_35_percent_of_cc(self, runner):
        """Paper: 'within 21% as fast as ... vendor-supplied compiler'
        on average; we allow a wider band for the simulated substrate."""
        table = tables.table1(runner)
        for arch in ARCHS:
            average = table.ratios["average"][arch]
            assert 0.9 <= average <= 1.40, (arch, average)

    def test_every_cell_reasonable(self, runner):
        table = tables.table1(runner)
        for workload in WORKLOAD_NAMES:
            for arch in ARCHS:
                ratio = table.ratios[workload][arch]
                assert 0.8 <= ratio <= 1.7, (workload, arch, ratio)


class TestSFICost:
    def test_sfi_overhead_is_modest(self, runner):
        """Paper: 'on all platforms, there is a performance penalty of
        approximately 10%' for SFI."""
        for arch in ARCHS:
            for workload in WORKLOAD_NAMES:
                sfi = runner.run(RunKey(workload, arch, "mobile-sfi")).cycles
                nosfi = runner.run(
                    RunKey(workload, arch, "mobile-nosfi")).cycles
                overhead = sfi / nosfi - 1
                assert -0.01 <= overhead <= 0.30, (arch, workload, overhead)

    def test_scheduling_helps_sfi_code(self, runner):
        """Paper: translator scheduling recovers a substantial share of
        SFI's cost ('hide some of the software fault isolation overhead
        within pipeline interlock cycles').  We assert the strong form —
        scheduling speeds up SFI'd code materially on every scheduled
        RISC target — and the differential form (helps SFI *more* than
        no-SFI code) only directionally: our first-order pipeline model
        reproduces it on some workload/target pairs but not the majority
        (recorded as a known deviation in EXPERIMENTS.md)."""
        differential_wins = 0
        for arch in ("mips", "ppc"):  # the scheduled RISC targets
            gains = []
            for workload in WORKLOAD_NAMES:
                sfi_opt = runner.run(
                    RunKey(workload, arch, "mobile-sfi")).cycles
                sfi_noopt = runner.run(
                    RunKey(workload, arch, "mobile-sfi-noopt")).cycles
                nosfi_opt = runner.run(
                    RunKey(workload, arch, "mobile-nosfi")).cycles
                nosfi_noopt = runner.run(
                    RunKey(workload, arch, "mobile-nosfi-noopt")).cycles
                gains.append(sfi_noopt / sfi_opt)
                if sfi_noopt / sfi_opt >= nosfi_noopt / nosfi_opt:
                    differential_wins += 1
            average_gain = sum(gains) / len(gains)
            assert average_gain > 1.03, (arch, average_gain)
        assert differential_wins >= 1


class TestTable4Shape:
    def test_mobile_tracks_gcc(self, runner):
        """Paper: mobile code is 'virtually indistinguishable' from gcc
        native (both come from the same code generator)."""
        sfi_table, nosfi_table = tables.table4(runner)
        for arch in ARCHS:
            assert abs(nosfi_table.ratios["average"][arch] - 1.0) < 0.02, arch
            assert sfi_table.ratios["average"][arch] < 1.30, arch


class TestTable5Shape:
    def test_translator_optimizations_matter(self, runner):
        """Paper: unoptimized translation is measurably slower."""
        noopt, _ = tables.table5(runner)
        opt = tables.table1(runner)
        for arch in ARCHS:
            assert noopt.ratios["average"][arch] >= \
                opt.ratios["average"][arch]
        # And at least somewhere the effect is substantial (>5%).
        gaps = [
            noopt.ratios["average"][arch] - opt.ratios["average"][arch]
            for arch in ARCHS
        ]
        assert max(gaps) > 0.05


class TestTable6Shape:
    def test_cc_beats_gcc_where_it_should(self, runner):
        """Paper: cc ≥ gcc everywhere; biggest gap on the PPC (1.27),
        negligible on SPARC (1.01)."""
        table = tables.table6(runner)
        averages = table.ratios["average"]
        for arch in ARCHS:
            assert averages[arch] >= 0.99, arch
        assert averages["sparc"] == pytest.approx(1.0, abs=0.02)
        # cc's machine-dependent edge is substantial off-SPARC...
        for arch in ("mips", "ppc", "x86"):
            assert averages[arch] >= averages["sparc"] + 0.02, arch
        # ...and the reproduction understates the PPC gap relative to the
        # paper (XLC's global scheduling is modeled only partially; see
        # EXPERIMENTS.md), so we require direction, not magnitude.
        assert averages["ppc"] > averages["sparc"]


class TestTable2Shape:
    def test_fewer_registers_cost_more(self, runner):
        table = tables.table2(runner)
        averages = [table.ratios["average"][str(s)] for s in
                    (8, 10, 12, 14, 16)]
        # Monotone non-increasing overhead as the file grows, and the
        # 8-register file is measurably worse than the full file.
        assert averages[0] >= averages[-1]
        assert averages[0] - averages[-1] > 0.01
        for small, big in zip(averages, averages[1:]):
            assert small >= big - 0.03  # allow simulator noise


class TestFigure1Shape:
    def test_category_composition(self, runner):
        fig = figure1(runner)
        # PPC executes substantially more compare expansion than MIPS.
        ppc_cmp = sum(fig.expansion["ppc"][w]["cmp"] for w in WORKLOAD_NAMES)
        mips_cmp = sum(fig.expansion["mips"][w]["cmp"] for w in WORKLOAD_NAMES)
        assert ppc_cmp > mips_cmp
        # PPC executes fewer SFI instructions (indexed-store sequence).
        ppc_sfi = sum(fig.expansion["ppc"][w]["sfi"] for w in WORKLOAD_NAMES)
        mips_sfi = sum(fig.expansion["mips"][w]["sfi"] for w in WORKLOAD_NAMES)
        assert ppc_sfi < mips_sfi
        # Only MIPS has branch-nop overhead (PPC has no delay slots).
        ppc_bnop = sum(fig.expansion["ppc"][w]["bnop"] for w in WORKLOAD_NAMES)
        mips_bnop = sum(fig.expansion["mips"][w]["bnop"] for w in WORKLOAD_NAMES)
        assert ppc_bnop == 0
        assert mips_bnop > 0

    def test_expansion_totals_bounded(self, runner):
        fig = figure1(runner)
        for arch in ("mips", "ppc"):
            for workload in WORKLOAD_NAMES:
                total = fig.total(arch, workload)
                assert 0.0 < total < 1.2, (arch, workload, total)
