"""End-to-end language semantics: compile MiniC, run on the reference VM,
compare against hand-computed (or Python-computed) results.

These are the compiler's primary correctness tests — every operator,
control construct, and data-layout feature gets a behavioural check.
"""

import pytest

from tests.conftest import compile_run


def run_values(source, **options):
    _code, host = compile_run(source, **options)
    return host.output_values()


def expr_program(expr, decls=""):
    return f"{decls}\nint main() {{ emit_int({expr}); return 0; }}"


class TestIntegerOperators:
    @pytest.mark.parametrize("expr,expected", [
        ("7 + 3", 10), ("7 - 13", -6), ("6 * 7", 42),
        ("17 / 5", 3), ("-17 / 5", -3), ("17 % 5", 2), ("-17 % 5", -2),
        ("1 << 10", 1024), ("-8 >> 1", -4),
        ("0xF0 & 0x3C", 0x30), ("0xF0 | 0x0F", 0xFF), ("0xFF ^ 0x0F", 0xF0),
        ("~0", -1), ("-(5)", -5), ("!3", 0), ("!0", 1),
        ("5 > 3", 1), ("5 < 3", 0), ("5 >= 5", 1), ("5 <= 4", 0),
        ("5 == 5", 1), ("5 != 5", 0),
        ("1 ? 10 : 20", 10), ("0 ? 10 : 20", 20),
    ])
    def test_expression(self, expr, expected):
        assert run_values(expr_program(expr)) == [expected]

    def test_signed_overflow_wraps(self):
        assert run_values(expr_program("2147483647 + 1")) == [-2147483648]

    def test_unsigned_division(self):
        src = expr_program("(int)(u / 2u)", "uint u = 0x80000000;")
        assert run_values(src) == [0x40000000]

    def test_unsigned_comparison(self):
        src = expr_program("u > 0x7FFFFFFF", "uint u = 0x80000000;")
        assert run_values(src) == [1]

    def test_unsigned_shift_right(self):
        src = expr_program("(int)(u >> 31)", "uint u = 0x80000000;")
        assert run_values(src) == [1]

    def test_shift_amount_masked(self):
        assert run_values(expr_program("1 << 33")) == [2]


class TestShortCircuit:
    def test_and_skips_rhs(self):
        src = """
        int calls;
        int bump() { calls++; return 1; }
        int main() {
            calls = 0;
            int r = 0 && bump();
            emit_int(r); emit_int(calls);
            r = 2 && bump();
            emit_int(r); emit_int(calls);
            return 0;
        }
        """
        assert run_values(src) == [0, 0, 1, 1]

    def test_or_skips_rhs(self):
        src = """
        int calls;
        int bump() { calls++; return 0; }
        int main() {
            calls = 0;
            emit_int(3 || bump());
            emit_int(calls);
            emit_int(0 || bump());
            emit_int(calls);
            return 0;
        }
        """
        assert run_values(src) == [1, 0, 0, 1]


class TestControlFlow:
    def test_nested_loops_break_continue(self):
        src = """
        int main() {
            int total = 0;
            int i; int j;
            for (i = 0; i < 5; i++) {
                if (i == 3) continue;
                for (j = 0; j < 5; j++) {
                    if (j > i) break;
                    total += 10 * i + j;
                }
            }
            emit_int(total);
            return 0;
        }
        """
        total = 0
        for i in range(5):
            if i == 3:
                continue
            for j in range(5):
                if j > i:
                    break
                total += 10 * i + j
        assert run_values(src) == [total]

    def test_do_while_runs_once(self):
        src = """
        int main() {
            int n = 0;
            do { n++; } while (0);
            emit_int(n);
            return 0;
        }
        """
        assert run_values(src) == [1]

    def test_comma_and_empty_for(self):
        src = """
        int main() {
            int i = 0; int s = 0;
            for (;;) { s += i, i++; if (i == 4) break; }
            emit_int(s);
            return 0;
        }
        """
        assert run_values(src) == [0 + 1 + 2 + 3]

    def test_deep_recursion(self):
        src = """
        int depth(int n) { if (n == 0) return 0; return 1 + depth(n - 1); }
        int main() { emit_int(depth(200)); return 0; }
        """
        assert run_values(src) == [200]

    def test_mutual_recursion(self):
        src = """
        int is_odd(int n);
        int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
        int main() { emit_int(is_even(10)); emit_int(is_odd(7)); return 0; }
        """
        assert run_values(src) == [1, 1]


class TestDataLayout:
    def test_subword_store_load(self):
        src = """
        char c; short s;
        int main() {
            c = (char) 300;      /* truncates to 44 */
            s = (short) 70000;   /* truncates to 4464 */
            emit_int(c); emit_int(s);
            c = (char) -1; emit_int(c);
            return 0;
        }
        """
        assert run_values(src) == [44, 4464, -1]

    def test_struct_fields_and_padding(self):
        src = """
        struct Mixed { char tag; int value; double weight; };
        int main() {
            struct Mixed m;
            m.tag = 'x'; m.value = 77; m.weight = 2.5;
            emit_int(sizeof(struct Mixed));
            emit_int(m.tag); emit_int(m.value); emit_double(m.weight);
            return 0;
        }
        """
        assert run_values(src) == [16, 120, 77, 2.5]

    def test_array_of_structs(self):
        src = """
        struct Pt { int x; int y; };
        struct Pt pts[3];
        int main() {
            int i;
            for (i = 0; i < 3; i++) { pts[i].x = i; pts[i].y = i * i; }
            int s = 0;
            for (i = 0; i < 3; i++) s += pts[i].x + pts[i].y;
            emit_int(s);
            return 0;
        }
        """
        assert run_values(src) == [0 + 0 + 1 + 1 + 2 + 4]

    def test_2d_array(self):
        src = """
        int m[3][4];
        int main() {
            int i; int j;
            for (i = 0; i < 3; i++)
                for (j = 0; j < 4; j++)
                    m[i][j] = 10 * i + j;
            emit_int(m[2][3]); emit_int(m[0][0]); emit_int(m[1][2]);
            return 0;
        }
        """
        assert run_values(src) == [23, 0, 12]

    def test_pointer_walk(self):
        src = """
        int a[5] = {2, 3, 5, 7, 11};
        int main() {
            int *p = a;
            int *end = a + 5;
            int s = 0;
            while (p < end) { s += *p; p++; }
            emit_int(s);
            emit_int((int)(end - a));
            return 0;
        }
        """
        assert run_values(src) == [28, 5]

    def test_global_initializers(self):
        src = """
        int x = -7;
        uint u = 0xCAFEBABE;
        double d = 0.125;
        short sh = -2;
        char ch = 'A';
        int arr[4] = {1, -2, 3, -4};
        int main() {
            emit_int(x); emit_uint(u); emit_double(d);
            emit_int(sh); emit_int(ch);
            emit_int(arr[1] + arr[3]);
            return 0;
        }
        """
        assert run_values(src) == [-7, 0xCAFEBABE, 0.125, -2, 65, -6]

    def test_address_relocation_in_data(self):
        src = """
        int target = 99;
        int *ptr = &target;
        int main() { emit_int(*ptr); return 0; }
        """
        assert run_values(src) == [99]


class TestFloats:
    def test_double_arithmetic(self):
        src = """
        int main() {
            double a = 1.5; double b = 0.25;
            emit_double(a + b); emit_double(a - b);
            emit_double(a * b); emit_double(a / b);
            emit_double(-a);
            return 0;
        }
        """
        assert run_values(src) == [1.75, 1.25, 0.375, 6.0, -1.5]

    def test_float_rounds_to_single(self):
        src = """
        int main() {
            float f = 0.1f;
            double d = f;
            emit_int(d == 0.1);  /* 0: f32 rounding differs from f64 */
            return 0;
        }
        """
        assert run_values(src) == [0]

    def test_conversions(self):
        src = """
        int main() {
            emit_int((int) 3.99);
            emit_int((int) -3.99);
            emit_double((double) 7);
            double big = 4000000000.0;
            emit_uint((uint) big);
            return 0;
        }
        """
        assert run_values(src) == [3, -3, 7.0, 4000000000]

    def test_float_compare_branches(self):
        src = """
        int main() {
            double a = 0.5; double b = 0.75;
            if (a < b) emit_int(1); else emit_int(0);
            if (a == a) emit_int(2);
            if (a >= b) emit_int(3); else emit_int(4);
            if (a != b) emit_int(5);
            return 0;
        }
        """
        assert run_values(src) == [1, 2, 4, 5]


class TestFunctions:
    def test_many_arguments_spill_to_stack(self):
        src = """
        int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
            return a + 2*b + 3*c + 4*d + 5*e + 6*f + 7*g + 8*h;
        }
        int main() { emit_int(sum8(1, 2, 3, 4, 5, 6, 7, 8)); return 0; }
        """
        expected = sum((i + 1) * v for i, v in enumerate(range(1, 9)))
        assert run_values(src) == [expected]

    def test_mixed_int_fp_args(self):
        src = """
        double mix(int a, double x, int b, double y) {
            return a * x + b * y;
        }
        int main() { emit_double(mix(2, 1.5, 3, 0.5)); return 0; }
        """
        assert run_values(src) == [4.5]

    def test_function_pointer_table(self):
        src = """
        int add(int a, int b) { return a + b; }
        int sub(int a, int b) { return a - b; }
        int mul(int a, int b) { return a * b; }
        int (*ops[3])(int, int);
        int main() {
            ops[0] = add; ops[1] = sub; ops[2] = mul;
            int i;
            for (i = 0; i < 3; i++) emit_int(ops[i](10, 3));
            return 0;
        }
        """
        assert run_values(src) == [13, 7, 30]

    def test_recursion_with_doubles(self):
        src = """
        double power(double base, int n) {
            if (n == 0) return 1.0;
            return base * power(base, n - 1);
        }
        int main() { emit_double(power(2.0, 10)); return 0; }
        """
        assert run_values(src) == [1024.0]

    def test_exit_code_is_main_return(self):
        code, _host = compile_run("int main() { return 42; }")
        assert code == 42
