"""Unit tests for the MiniC lexer."""

import pytest

from repro.errors import LexError
from repro.frontend.lexer import tokenize


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source)[:-1]]


class TestTokens:
    def test_keywords_and_identifiers(self):
        assert kinds("int foo while whiles") == [
            ("kw", "int"), ("ident", "foo"), ("kw", "while"),
            ("ident", "whiles"),
        ]

    def test_unsigned_aliases_to_uint(self):
        assert kinds("unsigned")[0] == ("kw", "uint")
        assert kinds("uint")[0] == ("kw", "uint")

    def test_numbers(self):
        assert kinds("0 42 0x1F 0xdeadBEEF") == [
            ("int", 0), ("int", 42), ("int", 31), ("int", 0xDEADBEEF),
        ]

    def test_integer_suffixes(self):
        assert kinds("42u 42U 42L 42ul 0x10u") == [
            ("uint", 42), ("uint", 42), ("int", 42), ("uint", 42),
            ("uint", 16)]

    def test_floats(self):
        values = kinds("1.5 2. is not float; 1e3 2.5e-2 3.0f")
        assert ("float", 1.5) in values
        assert ("float", 1000.0) in values
        assert ("float", 0.025) in values
        assert ("float", 3.0) in values

    def test_char_literals(self):
        assert kinds(r"'a' '\n' '\0' '\x41' '\\'") == [
            ("char", 97), ("char", 10), ("char", 0), ("char", 65),
            ("char", 92),
        ]

    def test_string_literals(self):
        assert kinds(r'"hi\tthere\n"') == [("string", "hi\tthere\n")]

    def test_operators_maximal_munch(self):
        ops = [v for k, v in kinds("a<<=b>>c<=d->e++ +")]
        assert "<<=" in ops and ">>" in ops and "<=" in ops
        assert "->" in ops and "++" in ops

    def test_comments_stripped(self):
        src = """
        int a; // line comment with int b;
        /* block
           comment */ int c;
        # preprocessor-ish line skipped
        """
        names = [v for k, v in kinds(src) if k == "ident"]
        assert names == ["a", "c"]

    def test_locations(self):
        tokens = tokenize("int\n  foo")
        assert tokens[0].loc.line == 1
        assert tokens[1].loc.line == 2
        assert tokens[1].loc.col == 3


class TestLexErrors:
    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"never ends')

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("/* forever")

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("int a = `b`;")

    def test_bad_escape(self):
        with pytest.raises(LexError):
            tokenize(r"'\q'")


class TestEndOfInputRegressions:
    """`Lexer._peek()` returns "" at EOF and `"" in "uUlL"` is True in
    Python — these inputs previously hung or mis-tokenized."""

    def test_integer_at_end_of_input(self):
        assert kinds("42") == [("int", 42)]

    def test_hex_at_end_of_input(self):
        assert kinds("0xFF") == [("int", 255)]

    def test_suffixed_integer_at_end_of_input(self):
        assert kinds("42u") == [("uint", 42)]

    def test_float_not_inferred_at_eof(self):
        kind, value = kinds("7")[0]
        assert kind == "int" and value == 7

    def test_truncated_hex_escape_does_not_hang(self):
        with pytest.raises(LexError):
            tokenize("'\\x")
