"""The four SPEC92-analogue workloads: oracle validation everywhere.

These are the heaviest tests in the suite (each runs hundreds of
thousands of simulated instructions), and also the strongest: every
workload is checked against its independent pure-Python oracle on the
reference interpreter AND on all four translated targets with SFI.
"""

import pytest

from repro.native.profiles import MOBILE_SFI, NATIVE_CC
from repro.runtime.loader import load_for_interpretation
from repro.runtime.native_loader import run_on_target
from repro.translators import ARCHITECTURES
from repro.workloads import suite


@pytest.mark.parametrize("name", suite.WORKLOAD_NAMES)
def test_oracle_on_interpreter(name):
    program = suite.build(name)
    loaded = load_for_interpretation(program)
    loaded.run()
    assert suite.check_output(name, loaded.host.output_values())


@pytest.mark.slow
@pytest.mark.parametrize("arch", ARCHITECTURES)
@pytest.mark.parametrize("name", suite.WORKLOAD_NAMES)
def test_oracle_on_targets_with_sfi(name, arch):
    program = suite.build(name)
    _code, module = run_on_target(program, arch, MOBILE_SFI)
    assert suite.check_output(name, module.host.output_values())


@pytest.mark.slow
@pytest.mark.parametrize("name", suite.WORKLOAD_NAMES)
def test_oracle_under_cc_peepholes(name):
    """The cc profile's fused instructions must not change semantics."""
    for arch in ("ppc", "x86"):  # the targets with cc peepholes
        program = suite.build(name)
        _code, module = run_on_target(program, arch, NATIVE_CC)
        assert suite.check_output(name, module.host.output_values()), arch


@pytest.mark.parametrize("name", suite.WORKLOAD_NAMES)
def test_oracle_with_small_register_file(name):
    """Table 2's register-starved builds must still be correct."""
    program = suite.build(name, num_regs=8)
    loaded = load_for_interpretation(program)
    loaded.run()
    assert suite.check_output(name, loaded.host.output_values())


def test_workload_build_cache():
    assert suite.build("li") is suite.build("li")
    assert suite.build("li") is not suite.build("li", num_regs=8)


def test_expected_outputs_are_plausible():
    li = suite.WORKLOADS["li"].expected
    assert li[0] == 55 and li[1] == 362880  # fib(10), 9!
    compress = suite.WORKLOADS["compress"].expected
    assert compress[2] == 1  # round trip verified
    assert 0 < compress[0] < 1000  # actually compressed
    eqntott = suite.WORKLOADS["eqntott"].expected
    assert 0 < eqntott[1] < 256  # some outputs true, not all
    alvinn = suite.WORKLOADS["alvinn"].expected
    sse = alvinn[:3]
    assert sse[-1] < sse[0]  # training reduces error
