"""Encoding/decoding, object format, and assembler round-trip tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AsmError, EncodingError, ObjectFormatError
from repro.omnivm.asmparser import assemble
from repro.omnivm.encoding import (
    decode_instr,
    decode_program,
    encode_instr,
    encode_program,
)
from repro.omnivm.isa import INSTR_SIZE, SPECS, VMInstr
from repro.omnivm.objfile import DataReloc, ObjectModule


def _random_instr_strategy():
    spec = st.sampled_from(SPECS)

    @st.composite
    def build(draw):
        chosen = draw(spec)
        instr = VMInstr(chosen.name)
        for ch in chosen.fmt:
            if ch == "d":
                instr.rd = draw(st.integers(0, 15))
            elif ch == "s":
                instr.rs = draw(st.integers(0, 15))
            elif ch == "t":
                instr.rt = draw(st.integers(0, 15))
            elif ch == "D":
                instr.fd = draw(st.integers(0, 15))
            elif ch == "S":
                instr.fs = draw(st.integers(0, 15))
            elif ch == "T":
                instr.ft = draw(st.integers(0, 15))
            elif ch in ("i", "L"):
                instr.imm = draw(st.integers(-(2**31), 2**31 - 1))
            elif ch == "j":
                instr.imm2 = draw(st.integers(-(2**17), 2**17 - 1))
        return instr

    return build()


class TestEncoding:
    def test_fixed_width(self):
        blob = encode_instr(VMInstr("add", rd=1, rs=2, rt=3))
        assert len(blob) == INSTR_SIZE

    def test_simple_roundtrip(self):
        original = VMInstr("lw", rd=3, rs=15, imm=-44)
        decoded = decode_instr(encode_instr(original))
        assert decoded.op == "lw"
        assert decoded.rd == 3 and decoded.rs == 15 and decoded.imm == -44

    def test_branchi_imm2_roundtrip(self):
        original = VMInstr("blti", rs=4, imm2=-1000, imm=0x10000040)
        decoded = decode_instr(encode_instr(original))
        assert decoded.imm2 == -1000
        assert decoded.imm == 0x10000040

    @given(_random_instr_strategy())
    def test_roundtrip_property(self, instr):
        decoded = decode_instr(encode_instr(instr))
        assert decoded.op == instr.op
        for field in ("rd", "rs", "rt", "fd", "fs", "ft", "imm2"):
            spec = instr.spec
            # Only fields the format uses must round-trip.
            relevant = {
                "rd": "d" in spec.fmt or spec.kind in ("storex", "fstorex"),
                "rs": "s" in spec.fmt,
                "rt": "t" in spec.fmt,
                "fd": "D" in spec.fmt,
                "fs": "S" in spec.fmt,
                "ft": "T" in spec.fmt,
                "imm2": "j" in spec.fmt,
            }[field]
            if relevant:
                assert getattr(decoded, field) == getattr(instr, field)
        from repro.utils.bits import u32

        assert u32(decoded.imm) == u32(instr.imm)

    def test_rejects_unresolved_label(self):
        with pytest.raises(EncodingError):
            encode_instr(VMInstr("jal", label="somewhere"))

    def test_rejects_oversized_imm2(self):
        with pytest.raises(EncodingError):
            encode_instr(VMInstr("beqi", rs=1, imm2=1 << 20))

    def test_rejects_bad_opcode_number(self):
        blob = (0x3FF).to_bytes(4, "little") + b"\x00" * 4
        with pytest.raises(EncodingError):
            decode_instr(blob)

    def test_program_roundtrip(self):
        program = [
            VMInstr("li", rd=1, imm=42),
            VMInstr("addi", rd=2, rs=1, imm=-1),
            VMInstr("jr", rs=14),
        ]
        assert [i.op for i in decode_program(encode_program(program))] == [
            "li", "addi", "jr",
        ]

    def test_decode_rejects_ragged_text(self):
        with pytest.raises(EncodingError):
            decode_program(b"\x00" * 7)


class TestObjectFormat:
    def _sample(self):
        obj = ObjectModule("sample")
        obj.text = [
            VMInstr("li", rd=1, label="counter"),
            VMInstr("lw", rd=2, rs=1, imm=0),
            VMInstr("jal", label="helper"),
            VMInstr("jr", rs=14),
        ]
        obj.data = b"\x05\x00\x00\x00rest"
        obj.bss_size = 64
        obj.define("entry", "text", 0)
        obj.define("counter", "data", 0)
        obj.define("scratch", "bss", 0, is_global=False)
        obj.data_relocs.append(DataReloc(4, "entry"))
        return obj

    def test_roundtrip(self):
        obj = self._sample()
        restored = ObjectModule.from_bytes(obj.to_bytes())
        assert restored.name == "sample"
        assert [i.op for i in restored.text] == ["li", "lw", "jal", "jr"]
        assert restored.text[0].label == "counter"
        assert restored.text[2].label == "helper"
        assert restored.data == obj.data
        assert restored.bss_size == 64
        assert len(restored.symbols) == 3
        assert restored.symbols[2].is_global is False
        assert restored.data_relocs[0].symbol == "entry"

    def test_bad_magic_rejected(self):
        with pytest.raises(ObjectFormatError):
            ObjectModule.from_bytes(b"NOPE" + b"\x00" * 32)

    def test_undefined_symbols_reported(self):
        obj = self._sample()
        assert obj.undefined_symbols() == {"helper"}


class TestAssembler:
    def test_assembles_and_runs(self):
        source = """
            .text
            .globl main
        main:
            li   r1, 6
            li   r2, 7
            mul  r1, r1, r2
            hostcall 1          ; emit_int(r1)
            li   r1, 0
            jr   ra
        """
        from repro.omnivm.linker import link
        from repro.runtime.loader import run_module

        obj = assemble(source)
        code, host = run_module(link([obj]))
        assert code == 0
        assert host.output_values() == [42]

    def test_data_directives(self):
        source = """
            .data
            .globl table
        table:
            .word 1, 2, -3
            .byte 'A'
            .align 4
            .word @table
            .asciz "hi"
            .space 3
        """
        obj = assemble(source)
        assert obj.data[:12] == (1).to_bytes(4, "little") + \
            (2).to_bytes(4, "little") + (-3).to_bytes(4, "little", signed=True)
        assert obj.data[12] == ord("A")
        assert obj.data_relocs[0].offset == 16
        assert b"hi\x00" in obj.data

    def test_store_operand_order(self):
        obj = assemble("""
            .text
        f:
            sw r3, r15, 8
        """)
        instr = obj.text[0]
        assert instr.rt == 3 and instr.rs == 15 and instr.imm == 8

    def test_branch_immediate_form(self):
        obj = assemble("""
            .text
        loop:
            beqi r1, 0, loop
        """)
        assert obj.text[0].imm2 == 0 and obj.text[0].label == "loop"

    @pytest.mark.parametrize("bad", [
        "bogus r1, r2",
        ".text\nadd r1, r2",          # wrong operand count
        ".text\nadd r1, r2, r99",     # register out of range
        ".text\nbeqi r1, 400000, x",  # imm2 too wide
        ".data\n.unknown 4",
        ".data\nlw r1, r2, 0",        # instruction outside .text
    ])
    def test_rejects(self, bad):
        with pytest.raises(AsmError):
            assemble(bad)
