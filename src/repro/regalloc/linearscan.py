"""Linear-scan register allocation.

Allocates IR temps to OmniVM (or native-target) registers using the
classic Poletto–Sarkar linear scan over conservative live intervals, with
two register classes per bank:

* **caller-saved** registers hold temps that are not live across any call;
* **callee-saved** registers hold temps that are (the emitter
  saves/restores the ones actually used in the prologue/epilogue);
* temps that fit in neither class **spill** to frame slots; the emitter
  reloads them into reserved scratch registers at each use.

The allocator is parameterized by the available register lists, which is
how the paper's Table 2 experiment (OmniVM register file sizes of
8/10/12/14/16) is reproduced: smaller files shrink the pools, forcing
spills exactly as a real small register file would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.ir import Function, Temp
from repro.regalloc.liveness import Interval, LinearOrder, live_intervals


@dataclass(frozen=True)
class Location:
    """Where a temp lives: an integer register, FP register, or spill."""

    kind: str  # 'reg' | 'freg' | 'spill' | 'fspill'
    index: int

    def is_reg(self) -> bool:
        return self.kind in ("reg", "freg")


@dataclass
class Assignment:
    """Result of register allocation for one function."""

    locations: dict[Temp, Location] = field(default_factory=dict)
    spill_slots: int = 0
    fspill_slots: int = 0
    used_callee_saved: list[int] = field(default_factory=list)
    used_callee_saved_fp: list[int] = field(default_factory=list)
    order: LinearOrder | None = None

    def location(self, temp: Temp) -> Location:
        return self.locations[temp]


@dataclass(frozen=True)
class RegisterFile:
    """Allocatable registers, split by class."""

    caller_int: tuple[int, ...]
    callee_int: tuple[int, ...]
    caller_fp: tuple[int, ...]
    callee_fp: tuple[int, ...]


def omnivm_register_file(num_regs: int = 16) -> RegisterFile:
    """The allocatable OmniVM registers for a file of *num_regs*.

    Fixed roles regardless of file size: ``r15`` sp, ``r14`` ra, ``r5``/
    ``r6`` spill scratch, ``f14``/``f15`` FP spill scratch.  Arguments
    arrive in ``r1..r4`` / ``f1..f4`` (allocatable after the entry moves).
    Shrinking ``num_regs`` removes the highest-numbered allocatable
    registers first — callee-saved before caller-saved — mirroring how a
    compiler would cope with a smaller architected file.
    """
    if not 6 <= num_regs <= 16:
        raise ValueError("register file size must be in [6, 16]")
    caller = [0, 1, 2, 3, 4, 7]
    callee = [8, 9, 10, 11, 12, 13]
    budget = num_regs - 4  # sp, ra, and two spill scratch registers
    usable_caller = [r for r in caller if r < num_regs][:budget]
    remaining = budget - len(usable_caller)
    usable_callee = [r for r in callee if r < num_regs][:remaining]
    fp_caller = [0, 1, 2, 3, 4, 5, 6, 7]
    fp_callee = [8, 9, 10, 11, 12, 13]
    fp_budget = num_regs - 2  # two FP scratch
    usable_fp_caller = [r for r in fp_caller][: min(8, fp_budget)]
    usable_fp_callee = [r for r in fp_callee][: max(0, fp_budget - 8)]
    return RegisterFile(
        tuple(usable_caller),
        tuple(usable_callee),
        tuple(usable_fp_caller),
        tuple(usable_fp_callee),
    )


def _is_fp(temp: Temp) -> bool:
    return temp.ty in ("f32", "f64")


class _BankAllocator:
    """Linear scan for one register bank (int or FP)."""

    def __init__(self, caller: tuple[int, ...], callee: tuple[int, ...]):
        self.free_caller = sorted(caller)
        self.free_callee = sorted(callee)
        self.active: list[tuple[Interval, int, str]] = []  # (iv, reg, klass)
        self.used_callee: set[int] = set()
        self.spills = 0
        self.result: dict[Temp, Location] = {}

    def _expire(self, point: int) -> None:
        still_active = []
        for interval, reg, klass in self.active:
            if interval.end < point:
                (self.free_callee if klass == "callee"
                 else self.free_caller).append(reg)
            else:
                still_active.append((interval, reg, klass))
        self.free_caller.sort()
        self.free_callee.sort()
        self.active = still_active

    def allocate(self, interval: Interval, reg_kind: str, spill_kind: str) -> None:
        self._expire(interval.start)
        pools = (
            [("callee", self.free_callee)]
            if interval.crosses_call
            else [("caller", self.free_caller), ("callee", self.free_callee)]
        )
        for klass, pool in pools:
            if pool:
                reg = pool.pop(0)
                if klass == "callee":
                    self.used_callee.add(reg)
                self.active.append((interval, reg, klass))
                self.result[interval.temp] = Location(reg_kind, reg)
                return
        # No register free: spill the eligible active interval that ends
        # last (if it ends after ours, stealing its register wins).
        eligible = [
            (iv, reg, klass)
            for (iv, reg, klass) in self.active
            if klass == "callee" or not interval.crosses_call
        ]
        victim = max(eligible, key=lambda item: item[0].end, default=None)
        if victim is not None and victim[0].end > interval.end:
            victim_iv, reg, klass = victim
            self.active.remove(victim)
            self.result[victim_iv.temp] = Location(spill_kind, self.spills)
            self.spills += 1
            if klass == "callee":
                self.used_callee.add(reg)
            self.active.append((interval, reg, klass))
            self.result[interval.temp] = Location(reg_kind, reg)
        else:
            self.result[interval.temp] = Location(spill_kind, self.spills)
            self.spills += 1


def allocate(func: Function, regfile: RegisterFile) -> Assignment:
    """Allocate registers for *func*; returns the assignment map."""
    intervals, order = live_intervals(func)
    int_bank = _BankAllocator(regfile.caller_int, regfile.callee_int)
    fp_bank = _BankAllocator(regfile.caller_fp, regfile.callee_fp)
    for interval in intervals:
        if _is_fp(interval.temp):
            fp_bank.allocate(interval, "freg", "fspill")
        else:
            int_bank.allocate(interval, "reg", "spill")
    assignment = Assignment(order=order)
    assignment.locations.update(int_bank.result)
    assignment.locations.update(fp_bank.result)
    assignment.spill_slots = int_bank.spills
    assignment.fspill_slots = fp_bank.spills
    assignment.used_callee_saved = sorted(int_bank.used_callee)
    assignment.used_callee_saved_fp = sorted(fp_bank.used_callee)
    return assignment
