"""Liveness analysis and live intervals over the linearized IR.

The register allocator linearizes a function (blocks in layout order,
instructions numbered consecutively) and needs, for every temp, a single
conservative live interval ``[start, end]`` covering all of its defs and
uses, extended across loop back edges (a temp live into a loop header is
live through the whole loop body).  Classic backward dataflow provides
block-level live-in/live-out; intervals are then grown per instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import block_order_for_layout
from repro.ir.ir import BasicBlock, Function, Temp


@dataclass
class LinearOrder:
    """A fixed linearization of a function's instructions."""

    blocks: list[BasicBlock]
    #: label -> (first instruction number, last instruction number)
    block_span: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: flattened instructions with their numbers
    numbered: list[tuple[int, object]] = field(default_factory=list)


def linearize(func: Function) -> LinearOrder:
    # Numbering starts at 1: position 0 is reserved for parameter
    # definitions, which happen strictly before the first instruction
    # (critical for call-crossing detection when instruction 1 is a call).
    blocks = block_order_for_layout(func)
    order = LinearOrder(blocks)
    number = 1
    for block in blocks:
        start = number
        for instr in block.all_instrs():
            order.numbered.append((number, instr))
            number += 1
        order.block_span[block.label] = (start, max(start, number - 1))
    return order


def block_liveness(
    func: Function, order: LinearOrder
) -> tuple[dict[str, set[Temp]], dict[str, set[Temp]]]:
    """Compute live-in / live-out sets per block (backward dataflow)."""
    use: dict[str, set[Temp]] = {}
    defs: dict[str, set[Temp]] = {}
    for block in order.blocks:
        used: set[Temp] = set()
        defined: set[Temp] = set()
        for instr in block.all_instrs():
            for temp in instr.used_temps():
                if temp not in defined:
                    used.add(temp)
            if instr.dest is not None:
                defined.add(instr.dest)
        use[block.label] = used
        defs[block.label] = defined

    live_in: dict[str, set[Temp]] = {b.label: set() for b in order.blocks}
    live_out: dict[str, set[Temp]] = {b.label: set() for b in order.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(order.blocks):
            label = block.label
            out: set[Temp] = set()
            for succ in block.successors():
                out |= live_in.get(succ, set())
            new_in = use[label] | (out - defs[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True
    return live_in, live_out


@dataclass
class Interval:
    """Conservative live interval of one temp."""

    temp: Temp
    start: int
    end: int
    #: True if the interval is live across any call/icall/hostcall site,
    #: in which case it must get a callee-saved register or spill.
    crosses_call: bool = False

    def overlaps_point(self, point: int) -> bool:
        return self.start <= point <= self.end


def live_intervals(func: Function) -> tuple[list[Interval], LinearOrder]:
    """Build sorted live intervals for all temps in *func*.

    Function parameters receive intervals starting at 0.
    """
    order = linearize(func)
    live_in, live_out = block_liveness(func, order)

    start: dict[Temp, int] = {}
    end: dict[Temp, int] = {}

    def touch(temp: Temp, number: int) -> None:
        if temp not in start:
            start[temp] = number
            end[temp] = number
        else:
            start[temp] = min(start[temp], number)
            end[temp] = max(end[temp], number)

    for param in func.params:
        touch(param, 0)

    for block in order.blocks:
        span = order.block_span[block.label]
        for temp in live_in[block.label]:
            touch(temp, span[0])
        for temp in live_out[block.label]:
            touch(temp, span[1])

    for number, instr in order.numbered:
        for temp in instr.used_temps():
            touch(temp, number)
        if instr.dest is not None:
            touch(instr.dest, number)

    call_points = [
        number
        for number, instr in order.numbered
        if instr.op in ("call", "icall", "hostcall")
    ]

    intervals = []
    for temp in start:
        interval = Interval(temp, start[temp], end[temp])
        interval.crosses_call = any(
            start[temp] < point < end[temp] for point in call_points
        )
        intervals.append(interval)
    intervals.sort(key=lambda iv: (iv.start, iv.end, iv.temp.id))
    return intervals, order
