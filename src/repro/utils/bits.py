"""32-bit two's-complement arithmetic and IEEE float helpers.

Every simulated machine in this package (OmniVM and the four targets) is a
32-bit architecture.  Python integers are unbounded, so all arithmetic that
lands in a register must be normalized through these helpers.  The
convention throughout the package is that **register values are stored as
unsigned 32-bit integers** (0 <= v < 2**32); signed interpretation happens
at the instruction that needs it.
"""

from __future__ import annotations

import struct

MASK32 = 0xFFFFFFFF
MASK16 = 0xFFFF
MASK8 = 0xFF
SIGN32 = 0x80000000

INT32_MIN = -(2**31)
INT32_MAX = 2**31 - 1
UINT32_MAX = 2**32 - 1


def u32(value: int) -> int:
    """Truncate an arbitrary Python int to an unsigned 32-bit value."""
    return value & MASK32


def s32(value: int) -> int:
    """Interpret the low 32 bits of *value* as a signed integer."""
    value &= MASK32
    return value - 0x100000000 if value & SIGN32 else value


def u16(value: int) -> int:
    return value & MASK16


def s16(value: int) -> int:
    value &= MASK16
    return value - 0x10000 if value & 0x8000 else value


def u8(value: int) -> int:
    return value & MASK8


def s8(value: int) -> int:
    value &= MASK8
    return value - 0x100 if value & 0x80 else value


def sext(value: int, bits: int) -> int:
    """Sign-extend the low *bits* bits of *value* to a signed Python int."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def fits_signed(value: int, bits: int) -> bool:
    """True if *value*, read as a 32-bit encoding, fits in *bits* signed bits.

    The value is interpreted through :func:`s32` regardless of how the
    caller happens to hold it (unsigned register encoding or already
    signed), so e.g. ``0xFFFF8000`` and ``-0x8000`` are both in-range
    for ``bits=16``.
    """
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    return lo <= s32(value) <= hi


def fits_unsigned(value: int, bits: int) -> bool:
    return 0 <= value < (1 << bits)


def add32(a: int, b: int) -> int:
    return (a + b) & MASK32


def sub32(a: int, b: int) -> int:
    return (a - b) & MASK32


def mul32(a: int, b: int) -> int:
    return (a * b) & MASK32


def div32(a: int, b: int) -> int:
    """Signed 32-bit division truncating toward zero (C semantics)."""
    sa, sb = s32(a), s32(b)
    if sb == 0:
        raise ZeroDivisionError("integer division by zero")
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return u32(quotient)


def rem32(a: int, b: int) -> int:
    """Signed 32-bit remainder with C semantics (sign follows dividend)."""
    sa, sb = s32(a), s32(b)
    if sb == 0:
        raise ZeroDivisionError("integer modulo by zero")
    remainder = abs(sa) % abs(sb)
    if sa < 0:
        remainder = -remainder
    return u32(remainder)


def divu32(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("integer division by zero")
    return (a & MASK32) // (b & MASK32)


def remu32(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("integer modulo by zero")
    return (a & MASK32) % (b & MASK32)


def sll32(a: int, shift: int) -> int:
    return (a << (shift & 31)) & MASK32


def srl32(a: int, shift: int) -> int:
    return (a & MASK32) >> (shift & 31)


def sra32(a: int, shift: int) -> int:
    return u32(s32(a) >> (shift & 31))


def f32_to_bits(value: float) -> int:
    """Round a Python float to IEEE single precision and return its bits.

    Values beyond the f32 range overflow to the correctly-signed
    infinity, as IEEE round-to-nearest does.
    """
    try:
        return struct.unpack("<I", struct.pack("<f", value))[0]
    except OverflowError:
        return 0xFF800000 if value < 0 else 0x7F800000


def bits_to_f32(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits & MASK32))[0]


def f64_to_bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_f64(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & 0xFFFFFFFFFFFFFFFF))[0]


def round_f32(value: float) -> float:
    """Round a Python float (double) to the nearest representable f32
    (overflowing to signed infinity, as IEEE single arithmetic does)."""
    try:
        return struct.unpack("<f", struct.pack("<f", value))[0]
    except OverflowError:
        return float("-inf") if value < 0 else float("inf")


def align_up(value: int, alignment: int) -> int:
    """Round *value* up to the next multiple of *alignment* (a power of 2)."""
    return (value + alignment - 1) & ~(alignment - 1)


def align_down(value: int, alignment: int) -> int:
    return value & ~(alignment - 1)


def is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return log2 of a power of two; raises ValueError otherwise."""
    if not is_power_of_two(value):
        raise ValueError(f"{value:#x} is not a power of two")
    return value.bit_length() - 1
