"""Shared machinery for the superblock JIT tiers.

Two trace JITs live in this codebase: :mod:`repro.omnivm.jit` compiles
hot OmniVM block chains and :mod:`repro.targets.jit` compiles hot
translated-native block chains for the four target simulators.  Both
follow the same architecture — heat-counted entry dispatch, static
entry-directed/BTFN trace formation, Python source generation with
``compile()``/``exec``, guarded deopt side exits, per-site inline
memory caches keyed on ``Memory.perm_epoch`` — so the pieces that are
not ISA-specific are hoisted here:

* the source :class:`Emitter` and the instret bookkeeping of
  :class:`Acct`;
* the heat/trace-limit constants;
* the per-site inline memory-cache emission helpers and the assembly
  scaffolding (cache cells, entry guard, the ``_FLUSH`` placeholder
  expanded after inlined hostcalls);
* the fresh-namespace builder for ``exec``'d superblocks;
* :class:`SideExitPromotion`, the shared deopt-promotion policy: when a
  guarded side exit's counter crosses the JIT heat threshold, re-form a
  trace that covers the hot path instead of deopting forever.

Emitted source must stay a pure function of the instruction stream (and
the per-entry override table): no ``id()``, hashes, or dict iteration
order may leak into generated code.
"""

from __future__ import annotations

import struct

from repro.errors import (
    AccessViolation,
    FuelExhausted,
    VMRuntimeError,
    VMTrap,
)
from repro.omnivm import semantics
from repro.utils.bits import round_f32

_SIGN = 0x80000000
_WRAP = 0x100000000

#: Block-entry dispatch count at which a superblock is formed.
JIT_HEAT = 16
#: Formation limits: constituent blocks / instructions per superblock.
MAX_TRACE_BLOCKS = 32
MAX_TRACE_INSTRS = 512

#: Comparison operators by predicate name, and predicate inversion.
CMP = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}
CMP_INV = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt",
           "le": "gt", "gt": "le"}

#: Assembly-time placeholder for "invalidate every inline cache site".
FLUSH = "_FLUSHSITES_"

__all__ = [
    "JIT_HEAT",
    "MAX_TRACE_BLOCKS",
    "MAX_TRACE_INSTRS",
    "CMP",
    "CMP_INV",
    "FLUSH",
    "Emitter",
    "Acct",
    "SideExitPromotion",
    "base_exec_globals",
    "cache_cells",
    "emit_cvt",
    "emit_ext",
    "emit_load_refill",
    "emit_s32",
    "emit_store_refill",
]


def base_exec_globals() -> dict:
    """Names the generated source may reference; a fresh copy becomes
    the module namespace of each exec'd superblock.  The ``*_at`` /
    ``put_*`` struct helpers back the inlined memory fast paths: IEEE
    bit reinterpretation through them is byte-identical to the
    :mod:`repro.utils.bits` helpers, which are struct-based themselves.
    """
    return {
        "AccessViolation": AccessViolation,
        "FuelExhausted": FuelExhausted,
        "VMRuntimeError": VMRuntimeError,
        "VMTrap": VMTrap,
        "int_divide": semantics.int_divide,
        "fp_binop": semantics.fp_binop,
        "f_to_i32": semantics.f_to_i32,
        "f_to_u32": semantics.f_to_u32,
        "round_f32": round_f32,
        "u16_at": struct.Struct("<H").unpack_from,
        "u32_at": struct.Struct("<I").unpack_from,
        "f32_at": struct.Struct("<f").unpack_from,
        "f64_at": struct.Struct("<d").unpack_from,
        "put_u16": struct.Struct("<H").pack_into,
        "put_u32": struct.Struct("<I").pack_into,
        "put_f64": struct.Struct("<d").pack_into,
    }


class Emitter:
    """Accumulates generated statements at explicit nesting depths.

    A sub-emitter (``Emitter(parent)``) shares the parent's inline-cache
    site lists — only the line buffer is private — so nested arms
    allocate cache sites from the same sequence as the enclosing trace.
    """

    __slots__ = ("lines", "load_sites", "store_sites")

    def __init__(self, parent: "Emitter | None" = None):
        self.lines: list[str] = []
        if parent is None:
            self.load_sites: list[int] = []
            self.store_sites: list[int] = []
        else:
            self.load_sites = parent.load_sites
            self.store_sites = parent.store_sites

    def emit(self, line: str, depth: int = 0) -> None:
        self.lines.append("    " * depth + line)

    def load_site(self) -> int:
        sid = len(self.load_sites)
        self.load_sites.append(sid)
        return sid

    def store_site(self) -> int:
        sid = len(self.store_sites)
        self.store_sites.append(sid)
        return sid


class Acct:
    """Instret-offset bookkeeping for the generated source.

    Until the trace inlines a diamond, every commit site knows the
    retired count as a compile-time constant.  A diamond's arms retire
    different counts, so the first one switches the trace to *runtime*
    mode: a local ``_n`` holds the instructions retired up to the last
    join, and commits become ``_n + <constant>``.  (The native JIT never
    inlines diamonds, so its accounting stays constant throughout.)
    """

    __slots__ = ("runtime",)

    def __init__(self):
        self.runtime = False

    def expr(self, offset: int) -> str:
        if not self.runtime:
            return str(offset)
        return "_n" if offset == 0 else f"_n + {offset}"


def emit_s32(em, var, reg):
    """Read integer register *reg* into *var* as a signed value."""
    em.emit(f"{var} = regs[{reg}]")
    em.emit(f"if {var} & {_SIGN:#x}:")
    em.emit(f"    {var} -= {_WRAP:#x}", 1)


# ---------------------------------------------------------------------------
# per-site inline memory caches
# ---------------------------------------------------------------------------
# The generated code keeps a *per-site* inline cache for every static
# load and store in the trace: locals ``(_lb{s}, _ll{s}, _ld{s})`` for
# the segment a load site last hit and ``(_sb{s}, _sl{s}, _sd{s})`` for
# a store site — base, limit, and backing bytearray.  A hit costs two
# local-int compares and a struct access, no attribute lookups and no
# calls.  A miss takes the Memory accessor (which raises the exact
# documented AccessViolation) and refills that site's cache from
# ``memory._last``, which every successful slow-path access leaves
# pointing at the serving segment with the permission just exercised.
# One shared cache thrashes as soon as a loop touches two segments
# (table in data, buffer on the heap); per-site caches miss once each
# and then hit for the rest of the loop.  Only a hostcall can change
# segment permissions mid-trace, so every site is flushed after each
# inlined hostcall (patched in at assembly time via ``FLUSH`` so a
# hostcall early in a loop also drops sites emitted after it).


def emit_load_refill(em, sid, depth):
    em.emit("_sg = memory._last", depth)
    em.emit(f"_lb{sid} = _sg.base", depth)
    em.emit(f"_ll{sid} = _lb{sid} + _sg.size", depth)
    em.emit(f"_ld{sid} = _sg.data", depth)


def emit_store_refill(em, sid, depth):
    em.emit("_sg = memory._last", depth)
    em.emit(f"_sb{sid} = _sg.base", depth)
    em.emit(f"_sl{sid} = _sb{sid} + _sg.size", depth)
    em.emit(f"_sd{sid} = _sg.data", depth)


def cache_cells(em) -> tuple[list[str], str]:
    """The closure-cell names and the "invalidate every site" statement
    for the sites allocated through *em* (used by both assemblers)."""
    cells = []
    for s in em.load_sites:
        cells += [f"_lb{s}", f"_ll{s}", f"_ld{s}"]
    for s in em.store_sites:
        cells += [f"_sb{s}", f"_sl{s}", f"_sd{s}"]
    invalidate = " = ".join(
        [f"_lb{s} = _ll{s}" for s in em.load_sites]
        + [f"_sb{s} = _sl{s}" for s in em.store_sites]
    )
    return cells, invalidate


# ---------------------------------------------------------------------------
# shared straight-line emissions (operand field names are common to the
# OmniVM Instr and the native MInstr)
# ---------------------------------------------------------------------------

def emit_cvt(em, instr):
    op = instr.op
    rd, rs, fd, fs = instr.rd, instr.rs, instr.fd, instr.fs
    if op in ("cvtdw", "cvtsw"):
        emit_s32(em, "_a", rs)
        expr = "float(_a)"
        em.emit(f"fregs[{fd}] = "
                + (f"round_f32({expr})" if op == "cvtsw" else expr))
    elif op in ("cvtdwu", "cvtswu"):
        expr = f"float(regs[{rs}])"
        em.emit(f"fregs[{fd}] = "
                + (f"round_f32({expr})" if op == "cvtswu" else expr))
    elif op in ("cvtwd", "cvtws"):
        em.emit(f"regs[{rd}] = f_to_i32(fregs[{fs}])")
    elif op in ("cvtwud", "cvtwus"):
        em.emit(f"regs[{rd}] = f_to_u32(fregs[{fs}])")
    elif op == "cvtds":
        em.emit(f"fregs[{fd}] = fregs[{fs}]")
    elif op == "cvtsd":
        em.emit(f"fregs[{fd}] = round_f32(fregs[{fs}])")
    else:  # pragma: no cover
        raise VMRuntimeError(f"unknown conversion {op!r}")


def emit_ext(em, instr):
    op = instr.op
    rd, rs = instr.rd, instr.rs
    bits, sign, high = (
        (0xFF, 0x80, 0xFFFFFF00) if op.endswith("8")
        else (0xFFFF, 0x8000, 0xFFFF0000)
    )
    if op.startswith("z"):
        em.emit(f"regs[{rd}] = regs[{rs}] & {bits:#x}")
    else:
        em.emit(f"_a = regs[{rs}] & {bits:#x}")
        em.emit(f"regs[{rd}] = (_a | {high:#x}) if _a & {sign:#x} else _a")


# ---------------------------------------------------------------------------
# side-exit heat promotion
# ---------------------------------------------------------------------------

class SideExitPromotion:
    """Deopt-promotion policy shared by both JIT tiers.

    Every guarded side exit calls ``vm._note_exit(entry, site, taken,
    exit_loc)`` on its way back to the dispatcher.  When one site's
    counter crosses the VM's heat threshold the trace is re-formed so
    the hot path stops deopting:

    * if the exit target leads back to the trace entry (a cycle the
      static predictor laid out the wrong way), the branch's prediction
      is recorded in the per-entry **override table** and the entry's
      superblock is recompiled with the formerly-exiting direction on
      trace — the cycle now closes inside one frame;
    * otherwise a trace is **anchored at the exit target** immediately,
      bypassing the dispatch heat ramp, so the deopt lands on compiled
      code instead of warming up the threaded tier again.

    Loop-closure edges (branches to/from the trace entry) are never
    overridden: a loop *exit* legitimately fires once per superblock
    entry, and flipping it would destroy the loop trace.  A flip is
    **provisional**: the site's counter resets at promotion time, and
    if the flipped trace deopts just as hard (the branch is unstable,
    or the first crossing was a slow trickle from a minority direction
    rather than a real bias) the override is reverted and the site
    **pinned** to the static layout — predictions cannot flip-flop,
    and a wrong flip costs at most one more heat ramp plus two
    recompiles.

    The learned state — exit heat, overrides, pinned sites, and the
    override-compiled superblocks — forms the entry's **promotion
    profile**.  With a translation cache the profile object lives in
    the in-memory side table under a digest-derived key and is adopted
    *by reference* by every machine of the same translation, so the
    heat ramp, flips, and reverts are paid once per program, not once
    per machine; digest-filtered invalidation drops the profile with
    the translations.  Without a cache the profile is per-machine.

    Hosting classes provide ``_jit_heat``, ``_jit_deopts``, and the
    hooks ``_promotion_profitable``, ``_repromote_entry`` and
    ``_anchor_exit``.
    """

    #: Hard cap on overridden branches per trace entry.
    PROMOTE_LIMIT = 8

    @staticmethod
    def fresh_profile() -> dict:
        return {"exit_heat": {}, "overrides": {}, "promoted": set(),
                "pinned": set(), "fns": {}}

    def _init_promotion(self, profile: dict | None = None) -> None:
        if profile is None:
            profile = self.fresh_profile()
        self._jit_profile = profile
        self._exit_heat: dict[tuple, int] = profile["exit_heat"]
        self._trace_overrides: dict = profile["overrides"]
        self._promoted_sites: set[tuple] = profile["promoted"]
        self._pinned_sites: set[tuple] = profile["pinned"]
        self._promoted_fns: dict = profile["fns"]
        self._jit_promotions = 0
        self._jit_reverts = 0

    def _note_exit(self, entry, site, taken, exit_loc) -> None:
        self._jit_deopts += 1
        key = (entry, site)
        count = self._exit_heat.get(key, 0) + 1
        self._exit_heat[key] = count
        if count < self._jit_heat or key in self._pinned_sites:
            return
        if key in self._promoted_sites:
            # The flipped direction crossed the threshold too: revert
            # to the static layout and pin the site.
            self._pinned_sites.add(key)
            overrides = self._trace_overrides.get(entry)
            if overrides and site in overrides:
                del overrides[site]
                self._jit_reverts += 1
                self._repromote_entry(entry)
            return
        self._promoted_sites.add(key)
        self._exit_heat[key] = 0
        if self._promotion_profitable(entry, site, exit_loc):
            overrides = self._trace_overrides.setdefault(entry, {})
            if len(overrides) >= self.PROMOTE_LIMIT:
                self._pinned_sites.add(key)
                return
            overrides[site] = taken
            self._jit_promotions += 1
            self._repromote_entry(entry)
        else:
            self._pinned_sites.add(key)
            self._anchor_exit(exit_loc)

    # Hooks ----------------------------------------------------------------

    def _promotion_profitable(self, entry, site, exit_loc) -> bool:
        raise NotImplementedError

    def _repromote_entry(self, entry) -> None:
        raise NotImplementedError

    def _anchor_exit(self, exit_loc) -> None:
        raise NotImplementedError
