"""Dynamic linking of separately translated mobile modules.

The paper's deployment story is many mobile modules importing host APIs
*and each other*: millions of users share a few common library modules
with tiny per-user deltas, so the host must be able to translate a
library once and link it into many programs.  This module provides that
link-loader layer on top of the static OmniVM linker:

* a :class:`ModuleRegistry` holds named :class:`ModuleDef` entries —
  object modules that declare imports/exports — with epoch counters so a
  module can be *revoked* or *reloaded* in a running service;
* :func:`dynamic_link` resolves a root set's import closure, rejects
  cycles / missing / duplicate exports, lays the modules out at a
  canonical dependencies-first position in the code segment, and routes
  every cross-module call through an import **trampoline** (a single
  OmniVM ``j`` per imported function, placed after the importer's text);
* the resulting :class:`LinkedImage` *is* a
  :class:`~repro.omnivm.linker.LinkedProgram` — every existing execution
  engine (reference interpreter, threaded engines, all four native
  targets) runs it unmodified — but it additionally remembers the
  per-module layout, so verification can enforce the cross-module rule:
  **a module may only transfer control into another module through an
  exported symbol**;
* :func:`translate_image` translates each module as its own translation
  unit (content-addressed in the :class:`~repro.cache.TranslationCache`,
  so a shared library translates once no matter how many programs link
  it), SFI-verifies every unit under *that module's*
  :class:`~repro.sfi.policy.SandboxPolicy`, then splices the chunks,
  patching the trampoline fix-ups against the merged address map after
  checking each one targets an exported symbol.

Trampolines keep cross-module control transfer auditable and cheap: at
the OmniVM level a cross-module call is ``jal tramp`` (the return address
written to ``ra`` is an ordinary in-module address) followed by the
trampoline's ``j export``; at the native level the trampoline's jump is
the *only* instruction whose target crosses a translation-unit boundary,
emitted as a self-loop until the link-loader patches it — so an unpatched
or stolen chunk cannot escape its own code.
"""

from __future__ import annotations

import copy
import hashlib
import struct
import threading
from dataclasses import dataclass, field

from repro import metrics
from repro.errors import (
    CrossModuleViolation,
    DuplicateExportError,
    DynamicLinkError,
    LinkError,
    ModuleCycleError,
    ModuleRevokedError,
    UnresolvedImportError,
)
from repro.omnivm.isa import INSTR_SIZE, VMInstr
from repro.omnivm.linker import LinkedProgram
from repro.omnivm.memory import (
    CODE_BASE,
    DATA_BASE,
    DEFAULT_SEGMENT_SIZE,
    HEAP_BASE,
    PERM_EXEC,
    PERM_READ,
    PERM_WRITE,
    STACK_BASE,
    Memory,
)
from repro.omnivm.objfile import ObjectModule
from repro.sfi.policy import (
    DEFAULT_POLICY,
    SandboxPolicy,
    check_sentinel_clearance,
)
from repro.utils.bits import align_up, u32

#: Module text is placed on 64-instruction boundaries; the padding is
#: filled with ``trap`` so control falling off a module's end faults.
TEXT_ALIGN_INSTRS = 64
#: Each module's data+bss block starts on its own 4 KiB-aligned base, so
#: every module gets a private data segment in :func:`image_memory`.
DATA_ALIGN = 4096

#: Instruction kinds that transfer control via a symbolic label and
#: therefore go through a trampoline when the label is imported.
_CONTROL_KINDS = ("branch", "branchi", "jump", "call")

#: Synthetic symbol anchoring each per-module translation unit's entry.
_MODULE_START = "__module_start"


def object_digest(obj: ObjectModule) -> str:
    """Content hash identifying one registered object module."""
    return hashlib.sha256(obj.to_bytes()).hexdigest()


@dataclass
class ModuleDef:
    """One registered module: content, policy, and linkage interface."""

    name: str
    obj: ObjectModule
    policy: SandboxPolicy = DEFAULT_POLICY
    epoch: int = 1
    revoked: bool = False
    digest: str = ""
    #: program digests of every per-layout translation unit built from
    #: this definition (filled during linking; drained on revocation so
    #: the engine can drop exactly this module's cached chunks)
    chunk_digests: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.digest:
            self.digest = object_digest(self.obj)

    @property
    def exports(self) -> dict[str, SymbolSection]:
        return {
            s.name: s.section for s in self.obj.symbols if s.is_global
        }

    @property
    def imports(self) -> set[str]:
        return set(self.obj.imports) | self.obj.undefined_symbols()


SymbolSection = str  # 'text' | 'data' | 'bss'


class ModuleRegistry:
    """Named, versioned module definitions shared by an engine/service.

    Thread-safe: registration, revocation, and the snapshot
    :func:`dynamic_link` takes all serialize on one internal lock.
    """

    def __init__(self) -> None:
        self._modules: dict[str, ModuleDef] = {}
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._modules)

    def names(self) -> list[str]:
        with self._lock:
            return list(self._modules)

    def register(self, name: str, obj: ObjectModule,
                 policy: SandboxPolicy = DEFAULT_POLICY) -> ModuleDef:
        """Register (or reload) *name*.  Re-registering bumps the epoch,
        clearing any revocation; the caller is responsible for dropping
        the previous definition's cached chunks (see
        ``Engine.register_module``)."""
        with self._lock:
            previous = self._modules.get(name)
            epoch = previous.epoch + 1 if previous is not None else 1
            definition = ModuleDef(name, obj, policy, epoch=epoch)
            self._modules[name] = definition
            metrics.count("link.register")
            return definition

    def lookup(self, name: str) -> ModuleDef | None:
        """The current definition of *name* (revoked or not), or None."""
        with self._lock:
            return self._modules.get(name)

    def get(self, name: str) -> ModuleDef:
        """The live definition of *name*; raises on unknown or revoked."""
        with self._lock:
            definition = self._modules.get(name)
            if definition is None:
                raise DynamicLinkError(f"unknown module {name!r}")
            if definition.revoked:
                raise ModuleRevokedError(name, definition.epoch)
            return definition

    def revoke(self, name: str) -> ModuleDef:
        """Mark *name* revoked.  In-flight executions of images linked
        against it complete; new links raise
        :class:`~repro.errors.ModuleRevokedError`."""
        with self._lock:
            definition = self._modules.get(name)
            if definition is None:
                raise DynamicLinkError(f"unknown module {name!r}")
            definition.revoked = True
            metrics.count("link.revoke")
            return definition

    def exporters(self, symbol: str) -> list[ModuleDef]:
        """Every non-revoked module exporting *symbol*."""
        with self._lock:
            return [
                d for d in self._modules.values()
                if not d.revoked and symbol in d.exports
            ]

    def revoked_exporters(self, symbol: str) -> list[ModuleDef]:
        """Revoked modules exporting *symbol* (for error reporting)."""
        with self._lock:
            return [
                d for d in self._modules.values()
                if d.revoked and symbol in d.exports
            ]

    @property
    def lock(self) -> threading.RLock:
        return self._lock


@dataclass
class ModuleLayout:
    """Where one module landed inside a :class:`LinkedImage`."""

    name: str
    epoch: int
    digest: str
    policy: SandboxPolicy
    base_index: int  # absolute instruction index of the module's text
    text_len: int    # instructions, including the trampoline table
    tramp_len: int   # trailing trampoline instructions
    data_base: int   # absolute address of the module's data block
    data_len: int    # data + bss bytes
    exports: dict[str, int] = field(default_factory=dict)
    imports: dict[str, str] = field(default_factory=dict)  # symbol -> provider
    trampolines: dict[str, int] = field(default_factory=dict)  # symbol -> addr
    subprogram: LinkedProgram | None = None

    @property
    def code_lo(self) -> int:
        return CODE_BASE + self.base_index * INSTR_SIZE

    @property
    def code_hi(self) -> int:
        return self.code_lo + self.text_len * INSTR_SIZE

    def contains_code(self, address: int) -> bool:
        return self.code_lo <= address < self.code_hi


@dataclass
class LinkedImage(LinkedProgram):
    """A dynamically linked multi-module program.

    Structurally a :class:`~repro.omnivm.linker.LinkedProgram` (base 0,
    no extern targets) so every execution engine accepts it; the extra
    fields carry the per-module layout for verification, per-module
    translation, and revocation checks."""

    modules: list[ModuleLayout] = field(default_factory=list)
    #: absolute addresses of exported *text* symbols — the only legal
    #: cross-module control-transfer targets
    code_export_addrs: frozenset[int] = frozenset()
    #: (module name, epoch) pairs this image was linked against
    lineage: tuple[tuple[str, int], ...] = ()

    def module_for_address(self, address: int) -> ModuleLayout | None:
        for layout in self.modules:
            if layout.contains_code(address):
                return layout
        return None

    def layout_named(self, name: str) -> ModuleLayout:
        for layout in self.modules:
            if layout.name == name:
                return layout
        raise DynamicLinkError(f"image has no module {name!r}")

    # Called by repro.omnivm.verifier.verify_program via duck typing.
    def verify_cross_module(self) -> None:
        """Enforce the inter-module SFI rule: any control transfer or
        materialized code address crossing a module boundary must target
        an exported symbol."""
        text_hi = CODE_BASE + len(self.instrs) * INSTR_SIZE
        for layout in self.modules:
            lo, hi = layout.code_lo, layout.code_hi
            start = layout.base_index
            for offset in range(layout.text_len):
                instr = self.instrs[start + offset]
                kind = instr.spec.kind
                if kind in _CONTROL_KINDS:
                    target = u32(instr.imm)
                elif kind == "li":
                    target = u32(instr.imm)
                    if not CODE_BASE <= target < text_hi:
                        continue  # not a code address at all
                else:
                    continue
                if lo <= target < hi:
                    continue  # module-local
                if target not in self.code_export_addrs:
                    raise CrossModuleViolation(
                        f"module {layout.name!r} references foreign code "
                        f"address {target:#x} which is not an exported "
                        f"symbol",
                        module=layout.name, target=target,
                    )


def _resolve_closure(
    registry: ModuleRegistry, roots: list[str]
) -> tuple[dict[str, ModuleDef], dict[str, dict[str, str]]]:
    """Pull the import closure of *roots* out of the registry.

    Returns the closure (name -> definition, in discovery order) and
    each member's import resolution (name -> {symbol -> provider}).
    Raises the dynamic-link error family on unknown/revoked modules,
    unresolvable or ambiguous imports.
    """
    closure: dict[str, ModuleDef] = {}
    providers: dict[str, dict[str, str]] = {}
    worklist = list(roots)
    while worklist:
        name = worklist.pop(0)
        if name in closure:
            continue
        definition = registry.get(name)
        closure[name] = definition
        resolved: dict[str, str] = {}
        for symbol in sorted(definition.imports):
            exporters = registry.exporters(symbol)
            if not exporters:
                # Name the real cause when the only provider was revoked
                # rather than reporting a generic unresolved import.
                for revoked in registry.revoked_exporters(symbol):
                    raise ModuleRevokedError(revoked.name, revoked.epoch)
                raise UnresolvedImportError(symbol, importer=name)
            if len(exporters) > 1:
                raise DuplicateExportError(
                    symbol, tuple(sorted(d.name for d in exporters))
                )
            resolved[symbol] = exporters[0].name
            if exporters[0].name not in closure:
                worklist.append(exporters[0].name)
        providers[name] = resolved
    # Duplicate exports *within* the closure are an error even when the
    # symbol is never imported: the image has one flat namespace.
    seen: dict[str, str] = {}
    for name, definition in closure.items():
        for symbol in definition.exports:
            if symbol in seen and seen[symbol] != name:
                raise DuplicateExportError(symbol, (seen[symbol], name))
            seen[symbol] = name
    return closure, providers


def _topological_order(
    closure: dict[str, ModuleDef],
    providers: dict[str, dict[str, str]],
) -> list[str]:
    """Dependencies-first canonical order (stable across link requests:
    ready modules are placed in registry/discovery order), so a shared
    library occupies the same base in every image that links it and its
    translation unit is cacheable.  Cycles are rejected."""
    deps: dict[str, set[str]] = {
        name: {p for p in providers[name].values() if p != name}
        for name in closure
    }
    order: list[str] = []
    placed: set[str] = set()
    remaining = list(closure)  # discovery order
    while remaining:
        ready = [n for n in remaining if deps[n] <= placed]
        if not ready:
            raise ModuleCycleError(_find_cycle(deps, remaining))
        for name in ready:
            order.append(name)
            placed.add(name)
            remaining.remove(name)
    return order


def _find_cycle(deps: dict[str, set[str]], remaining: list[str]
                ) -> tuple[str, ...]:
    """Extract one dependency cycle among *remaining* for the error."""
    trail: list[str] = []
    seen: set[str] = set()
    node = remaining[0]
    while node not in seen:
        seen.add(node)
        trail.append(node)
        successors = [n for n in sorted(deps[node]) if n in remaining]
        if not successors:  # pragma: no cover - defensive
            return tuple(trail)
        node = successors[0]
    start = trail.index(node)
    return tuple(trail[start:])


def dynamic_link(
    registry: ModuleRegistry,
    roots: list[str],
    entry_symbol: str = "main",
    name: str | None = None,
) -> LinkedImage:
    """Link the import closure of *roots* into a :class:`LinkedImage`.

    Layout is canonical (dependencies first, 64-instruction text
    alignment, 4 KiB data alignment), so the translation unit of a
    module that many programs share is byte-identical across links and
    its native translation is served from the cache after the first.
    """
    with metrics.stage("link.dynamic"), registry.lock:
        image = _dynamic_link(registry, list(roots), entry_symbol, name)
    if metrics.active():
        metrics.count("link.images")
        metrics.count("link.modules", len(image.modules))
    return image


def _dynamic_link(registry: ModuleRegistry, roots: list[str],
                  entry_symbol: str, name: str | None) -> LinkedImage:
    if not roots:
        raise DynamicLinkError("dynamic_link needs at least one root module")
    closure, providers = _resolve_closure(registry, roots)
    order = _topological_order(closure, providers)

    image = LinkedImage(
        name or "+".join(roots),
        entry_symbol=entry_symbol,
        lineage=tuple((n, closure[n].epoch) for n in order),
    )

    # Pass 1: place text and data.
    layouts: dict[str, ModuleLayout] = {}
    instr_cursor = 0
    data_cursor = 0
    for module_name in order:
        definition = closure[module_name]
        obj = definition.obj
        tramp_syms = sorted({
            i.label for i in obj.text
            if i.label is not None
            and i.label in providers[module_name]
            and i.spec.kind in _CONTROL_KINDS
        })
        base_index = align_up(instr_cursor, TEXT_ALIGN_INSTRS)
        text_len = len(obj.text) + len(tramp_syms)
        data_len = len(obj.data) + obj.bss_size
        layout = ModuleLayout(
            name=module_name,
            epoch=definition.epoch,
            digest=definition.digest,
            policy=definition.policy,
            base_index=base_index,
            text_len=text_len,
            tramp_len=len(tramp_syms),
            data_base=DATA_BASE + data_cursor,
            data_len=data_len,
            imports=providers[module_name],
        )
        tramp_base = layout.code_lo + len(obj.text) * INSTR_SIZE
        layout.trampolines = {
            symbol: tramp_base + i * INSTR_SIZE
            for i, symbol in enumerate(tramp_syms)
        }
        layouts[module_name] = layout
        instr_cursor = base_index + text_len
        data_cursor += align_up(max(data_len, 0), DATA_ALIGN)
    if instr_cursor * INSTR_SIZE > DEFAULT_SEGMENT_SIZE:
        raise LinkError("linked image exceeds the code segment")
    # Stricter than the segment-size check: the segment's *last aligned
    # slot* is the return sentinel, so an image whose text merely fits
    # the segment can still shadow the halt address.
    check_sentinel_clearance(0, instr_cursor)
    if data_cursor > DEFAULT_SEGMENT_SIZE:
        raise LinkError("linked image exceeds the data segment")

    # Pass 2: absolute symbol tables.
    module_symbols: dict[str, dict[str, int]] = {}
    for module_name in order:
        obj = closure[module_name].obj
        layout = layouts[module_name]
        table: dict[str, int] = {}
        for sym in obj.symbols:
            if sym.section == "text":
                if sym.offset % INSTR_SIZE:
                    raise LinkError(f"misaligned text symbol {sym.name!r}")
                address = layout.code_lo + sym.offset
            elif sym.section == "data":
                address = layout.data_base + sym.offset
            elif sym.section == "bss":
                address = layout.data_base + len(obj.data) + sym.offset
            else:
                raise LinkError(
                    f"symbol {sym.name!r} in bad section {sym.section!r}"
                )
            if sym.name in table:
                raise LinkError(
                    f"duplicate symbol {sym.name!r} in module {module_name!r}"
                )
            table[sym.name] = u32(address)
            if sym.is_global:
                layout.exports[sym.name] = u32(address)
                image.symbols[sym.name] = u32(address)
            else:
                image.symbols[f"{sym.name}@{module_name}"] = u32(address)
        module_symbols[module_name] = table

    def resolve(module_name: str, symbol: str, control: bool) -> int:
        """Address a reference from *module_name* to *symbol* resolves
        to: local definition, local trampoline (control transfers to an
        import), or the provider's export directly (data references and
        materialized function pointers — the indirect-call map covers
        those at run time)."""
        local = module_symbols[module_name].get(symbol)
        if local is not None:
            return local
        layout = layouts[module_name]
        if control and symbol in layout.trampolines:
            return layout.trampolines[symbol]
        provider = providers[module_name].get(symbol)
        if provider is None:
            raise UnresolvedImportError(symbol, importer=module_name)
        return layouts[provider].exports[symbol]

    # Pass 3: text — resolve labels, append trampolines, pad with traps.
    for module_name in order:
        obj = closure[module_name].obj
        layout = layouts[module_name]
        while len(image.instrs) < layout.base_index:
            image.instrs.append(VMInstr("trap", imm=0xDEAD))
        for instr in obj.text:
            clone = VMInstr(instr.op, instr.rd, instr.rs, instr.rt,
                            instr.fd, instr.fs, instr.ft, instr.imm,
                            instr.imm2, None)
            if instr.label is not None:
                clone.imm = resolve(
                    module_name, instr.label,
                    control=instr.spec.kind in _CONTROL_KINDS,
                )
            image.instrs.append(clone)
        for symbol in sorted(layout.trampolines):
            provider = providers[module_name][symbol]
            image.instrs.append(
                VMInstr("j", imm=layouts[provider].exports[symbol])
            )

    # Pass 4: data — copy blocks, apply relocations.
    image.data_image = bytearray(data_cursor)
    for module_name in order:
        obj = closure[module_name].obj
        layout = layouts[module_name]
        base = layout.data_base - DATA_BASE
        image.data_image[base:base + len(obj.data)] = obj.data
        for reloc in obj.data_relocs:
            where = base + reloc.offset
            (addend,) = struct.unpack_from("<I", image.data_image, where)
            value = resolve(module_name, reloc.symbol, control=False)
            struct.pack_into("<I", image.data_image, where,
                             u32(value + addend))

    # Pass 5: function ranges (absolute indices; trampolines and padding
    # belong to no function).
    for module_name in order:
        obj = closure[module_name].obj
        layout = layouts[module_name]
        starts = sorted(
            (layout.base_index + sym.offset // INSTR_SIZE, sym.name)
            for sym in obj.symbols
            if sym.section == "text" and sym.is_global
        )
        text_end = layout.base_index + layout.text_len - layout.tramp_len
        for position, (start, sym_name) in enumerate(starts):
            end = (starts[position + 1][0]
                   if position + 1 < len(starts) else text_end)
            image.function_ranges[sym_name] = (start, end)

    # Pass 6: per-module translation units and the export map.
    export_addrs = set()
    for module_name in order:
        layout = layouts[module_name]
        for symbol, address in layout.exports.items():
            if layout.contains_code(address):
                export_addrs.add(address)
        image.modules.append(layout)
    image.code_export_addrs = frozenset(export_addrs)
    from repro.cache import program_digest

    image_hash = hashlib.sha256(b"linked-image\x00")
    image_hash.update(f"{image.entry_address}\x00".encode())
    for module_name in order:
        layout = layouts[module_name]
        if layout.text_len:
            layout.subprogram = _module_subprogram(image, layout, closure)
            digest = program_digest(layout.subprogram)
            # The subprogram is sealed from here on; pinning its digest
            # saves re-encoding it on every later cache probe.
            layout.subprogram.digest_hint = digest
            closure[module_name].chunk_digests.add(digest)
            image_hash.update(f"{module_name}\x00{digest}\x00".encode())
        else:
            data_lo = layout.data_base - DATA_BASE
            image_hash.update(f"{module_name}\x00data\x00".encode())
            image_hash.update(
                image.data_image[data_lo:data_lo + layout.data_len])
            image_hash.update(b"\x00")
    # The spliced image also leaves content-addressed residue — the
    # interpreter's predecode artifact and JIT superblocks live under
    # the *image* digest, not any module chunk's.  The digest is
    # composed from the per-module chunk digests already in hand (they
    # cover each module's text slice, data slice, placement, and
    # foreign targets) rather than re-encoding the spliced image,
    # which would tax every warm link.  Charge it to every closure
    # member so revoking (or re-registering) any one of them drops the
    # whole image's cached execution artifacts.
    image_digest = image_hash.hexdigest()
    image.digest_hint = image_digest
    for module_name in order:
        closure[module_name].chunk_digests.add(image_digest)
    return image


def _module_subprogram(image: LinkedImage, layout: ModuleLayout,
                       closure: dict[str, ModuleDef]) -> LinkedProgram:
    """One module's slice of the image as a standalone translation unit:
    absolute addresses (``base_index`` places it), local symbols and
    function ranges only, and the set of foreign control targets its
    trampolines (or stray direct branches) name."""
    start = layout.base_index
    instrs = image.instrs[start:start + layout.text_len]
    data_lo = layout.data_base - DATA_BASE
    extern: set[int] = set()
    for instr in instrs:
        if instr.spec.kind in _CONTROL_KINDS:
            target = u32(instr.imm)
            if not layout.contains_code(target):
                extern.add(target)
    symbols = {
        symbol: address
        for symbol, address in image.symbols.items()
        if layout.contains_code(address)
        or layout.data_base <= address < layout.data_base + layout.data_len
    }
    symbols[_MODULE_START] = layout.code_lo
    function_ranges = {
        name: (lo, hi)
        for name, (lo, hi) in image.function_ranges.items()
        if start <= lo < start + layout.text_len
    }
    return LinkedProgram(
        name=f"{image.name}:{layout.name}",
        instrs=instrs,
        data_image=bytearray(
            image.data_image[data_lo:data_lo + layout.data_len]
        ),
        symbols=symbols,
        function_ranges=function_ranges,
        entry_symbol=_MODULE_START,
        base_index=start,
        extern_addrs=frozenset(extern),
    )


def translate_image(
    image: LinkedImage,
    arch: str,
    options=None,
    cache=None,
    verify: bool = True,
):
    """Translate *image* per module and splice the chunks.

    Each module translates as its own unit — content-addressed in
    *cache*, so a library shared by many images translates once — and is
    SFI-verified under its own policy *before* splicing.  Splicing
    relocates native control targets, merges the indirect-entry maps,
    and patches every trampoline fix-up after checking that its target
    is an exported symbol of the providing module (the load-time half of
    cross-module SFI).
    """
    from repro.omnivm.verifier import verify_program
    from repro.sfi.verifier import verify_sfi
    from repro.translators import TranslatedModule, target_spec, translate

    with metrics.stage("link.translate"):
        out_instrs = []
        global_map: dict[int, int] = {}
        pending_fixups: list[tuple[int, str, list[tuple[int, int]]]] = []
        for layout in image.modules:
            subprogram = layout.subprogram
            if subprogram is None:
                continue
            # The chunk cache is keyed on (program, arch, options) only;
            # a module translated under a non-default sandbox policy
            # (e.g. the padded variant) emits different code, so it must
            # bypass the cache rather than collide with — or poison —
            # the default-policy entry.
            cacheable = cache is not None and layout.policy == DEFAULT_POLICY
            chunk = cache.get(subprogram, arch, options) \
                if cacheable else None
            if chunk is None:
                metrics.count("link.chunk_miss")
                if verify:
                    verify_program(subprogram)
                chunk = translate(subprogram, arch, options,
                                  policy=layout.policy)
                if verify:
                    verify_sfi(chunk, policy=layout.policy)
                if cacheable:
                    cache.put(subprogram, arch, options, chunk)
            else:
                metrics.count("link.chunk_hit")
            native_base = len(out_instrs)
            if native_base == 0 and not chunk.extern_fixups:
                # The canonical shared-library fast path: the first
                # module's chunk splices with zero relocation, so its
                # cached instruction objects are shared, not copied.
                out_instrs.extend(chunk.instrs)
            else:
                for instr in chunk.instrs:
                    clone = copy.copy(instr)
                    if clone.target >= 0:
                        clone.target += native_base
                    out_instrs.append(clone)
                if chunk.extern_fixups:
                    pending_fixups.append(
                        (native_base, layout.name, chunk.extern_fixups)
                    )
            for omni, native in chunk.omni_to_native.items():
                global_map[omni] = native + native_base

        # Patch trampoline targets against the merged map; every target
        # must be an exported symbol (load-time cross-module SFI).
        for native_base, module_name, fixups in pending_fixups:
            for native_index, omni_target in fixups:
                if omni_target not in image.code_export_addrs:
                    raise CrossModuleViolation(
                        f"module {module_name!r} trampoline targets "
                        f"non-exported address {omni_target:#x}",
                        module=module_name, target=omni_target,
                    )
                resolved = global_map.get(omni_target)
                if resolved is None:
                    raise CrossModuleViolation(
                        f"module {module_name!r} trampoline target "
                        f"{omni_target:#x} was not translated",
                        module=module_name, target=omni_target,
                    )
                patched = out_instrs[native_base + native_index]
                # Self-loops survived chunk relocation; aim them now.
                patched.target = resolved

        entry_native = global_map.get(image.entry_address)
        if entry_native is None:
            raise LinkError(
                f"entry symbol {image.entry_symbol!r} was not translated"
            )
        return TranslatedModule(
            spec=target_spec(arch),
            options=options or _default_options(),
            instrs=out_instrs,
            omni_to_native=global_map,
            entry_native=entry_native,
            program=image,
        )


def _default_options():
    from repro.translators import TranslationOptions

    return TranslationOptions()


def image_memory(
    image: LinkedImage,
    heap_size: int | None = None,
    stack_size: int = 1 << 20,
) -> Memory:
    """The multi-module address space: one shared code segment, one
    *private data segment per module* (wild pointers between modules'
    data blocks fault on the unmapped alignment holes), plus the usual
    heap and stack."""
    memory = Memory()
    memory.add_segment("code", CODE_BASE, DEFAULT_SEGMENT_SIZE,
                       PERM_READ | PERM_EXEC, image.text_image)
    for layout in image.modules:
        if layout.data_len <= 0:
            continue
        size = align_up(layout.data_len, DATA_ALIGN)
        offset = layout.data_base - DATA_BASE
        memory.add_segment(
            f"data:{layout.name}", layout.data_base, size,
            PERM_READ | PERM_WRITE,
            bytes(image.data_image[offset:offset + size]),
        )
    memory.add_segment("heap", HEAP_BASE,
                       heap_size or DEFAULT_SEGMENT_SIZE,
                       PERM_READ | PERM_WRITE)
    memory.add_segment("stack", STACK_BASE, stack_size,
                       PERM_READ | PERM_WRITE)
    return memory


__all__ = [
    "DATA_ALIGN",
    "TEXT_ALIGN_INSTRS",
    "LinkedImage",
    "ModuleDef",
    "ModuleLayout",
    "ModuleRegistry",
    "dynamic_link",
    "image_memory",
    "object_digest",
    "translate_image",
]
