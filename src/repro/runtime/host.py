"""The host application side of the Omniware runtime.

A *host* embeds the runtime, loads untrusted mobile modules, and exports a
vetted set of library functions to them (:mod:`repro.runtime.hostapi`).
This module implements those functions over an abstract
:class:`MachineAdapter`, so the same host services back the OmniVM
reference interpreter *and* every translated-native target simulator —
the module cannot tell the difference, which is the point of a
software-defined computer architecture.

Safety properties implemented here:

* **export control** — the host chooses which API entries each module may
  call; anything else raises :class:`~repro.errors.HostCallError` (the
  "calling unauthorized host functions" threat in the paper);
* **pointer vetting** — host functions that take module pointers
  (``emit_str``, ``host_send``...) access memory through the module's own
  segmented memory object, so they can never read or write host state;
* **deterministic services** — the clock counts retired instructions and
  the RNG is a fixed-seed LCG, keeping every benchmark bit-reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import HostCallError, VMRuntimeError
from repro.omnivm.memory import HEAP_BASE, Memory
from repro.runtime import hostapi
from repro.utils.bits import s32, u32


class MachineAdapter:
    """What the host needs from a machine to service a hostcall."""

    memory: Memory

    def get_int_arg(self, index: int) -> int:
        raise NotImplementedError

    def get_fp_arg(self, index: int) -> float:
        raise NotImplementedError

    def set_int_result(self, value: int) -> None:
        raise NotImplementedError

    def set_fp_result(self, value: float) -> None:
        raise NotImplementedError

    def halt(self, code: int) -> None:
        raise NotImplementedError

    def instret(self) -> int:
        raise NotImplementedError


@dataclass
class HeapAllocator:
    """A simple first-fit free-list allocator over the heap segment.

    This is the "memory management" library function set the paper's
    runtime exports to modules.
    """

    base: int = HEAP_BASE + 16  # never hand out the segment base
    limit: int = HEAP_BASE + (1 << 24)
    cursor: int = 0
    free_lists: dict[int, list[int]] = field(default_factory=dict)
    live: dict[int, int] = field(default_factory=dict)  # addr -> size

    def __post_init__(self) -> None:
        self.cursor = self.base

    @staticmethod
    def _round(size: int) -> int:
        size = max(size, 8)
        return 1 << (size - 1).bit_length()  # power-of-two size classes

    def alloc(self, size: int) -> int:
        if size < 0:
            raise VMRuntimeError(f"halloc of negative size {size}")
        bucket = self._round(size)
        free = self.free_lists.get(bucket)
        if free:
            address = free.pop()
        else:
            address = self.cursor
            if address + bucket > self.limit:
                return 0  # out of memory: NULL, as the C convention expects
            self.cursor += bucket
        self.live[address] = bucket
        return address

    def free(self, address: int) -> None:
        if address == 0:
            return
        bucket = self.live.pop(address, None)
        if bucket is None:
            raise VMRuntimeError(f"hfree of non-allocated address {address:#x}")
        self.free_lists.setdefault(bucket, []).append(address)


class Host:
    """Host services and export policy for one loaded module."""

    def __init__(self, exports: frozenset[str] | set[str] | None = None):
        self.exports = frozenset(
            exports if exports is not None else hostapi.DEFAULT_EXPORTS
        )
        self.heap = HeapAllocator()
        #: Everything the module emitted, as (kind, value) pairs.
        self.output: list[tuple[str, object]] = []
        self.exit_code: int | None = None
        self._rng_state = 0x12345678
        #: Messages "sent" through host_send (mail-filter example).
        self.sent: list[bytes] = []
        self.inbox: list[bytes] = []
        self._inbox_cursor = 0
        #: Pixels drawn through gfx_draw (document applet example).
        self.canvas: dict[tuple[int, int], int] = {}

    # -- observability helpers -------------------------------------------------

    def output_text(self) -> str:
        """Render the emit stream as text (what `stdout` would show)."""
        parts: list[str] = []
        for kind, value in self.output:
            if kind == "char":
                parts.append(chr(int(value) & 0xFF))
            elif kind == "str":
                parts.append(value.decode("latin-1") if isinstance(value, bytes)
                             else str(value))
            elif kind == "double":
                parts.append(f"{value:.6g}")
            else:
                parts.append(str(value))
        return "".join(parts)

    def output_values(self) -> list[object]:
        return [value for _kind, value in self.output]

    # -- the dispatcher -----------------------------------------------------------

    def hostcall(self, machine: MachineAdapter, index: int) -> None:
        spec = hostapi.HOST_FUNCTIONS_BY_INDEX.get(index)
        if spec is None:
            raise HostCallError(f"unknown host function index {index}")
        if spec.name not in self.exports:
            raise HostCallError(
                f"module is not authorized to call {spec.name!r}"
            )
        args: list[object] = []
        int_cursor = 0
        fp_cursor = 0
        for param in spec.params:
            if param == "double":
                args.append(machine.get_fp_arg(fp_cursor))
                fp_cursor += 1
            else:
                args.append(machine.get_int_arg(int_cursor))
                int_cursor += 1
        result = self._invoke(spec.name, machine, args)
        if spec.result == "double":
            machine.set_fp_result(float(result))
        elif spec.result != "void":
            machine.set_int_result(u32(int(result)))

    def _invoke(self, name: str, machine: MachineAdapter, args: list) -> object:
        memory = machine.memory
        if name == "exit":
            machine.halt(s32(args[0]))
            self.exit_code = s32(args[0])
            return 0
        if name == "emit_int":
            self.output.append(("int", s32(args[0])))
            return 0
        if name == "emit_uint":
            self.output.append(("uint", u32(args[0])))
            return 0
        if name == "emit_char":
            self.output.append(("char", args[0] & 0xFF))
            return 0
        if name == "emit_double":
            self.output.append(("double", float(args[0])))
            return 0
        if name == "emit_str":
            self.output.append(("str", memory.read_cstring(u32(args[0]))))
            return 0
        if name == "halloc":
            return self.heap.alloc(s32(args[0]))
        if name == "hfree":
            self.heap.free(u32(args[0]))
            return 0
        if name == "host_exp":
            try:
                return math.exp(args[0])
            except OverflowError:
                return math.inf
        if name == "host_log":
            return math.log(args[0]) if args[0] > 0 else -math.inf
        if name == "host_sqrt":
            return math.sqrt(args[0]) if args[0] >= 0 else 0.0
        if name == "host_pow":
            try:
                return math.pow(args[0], args[1])
            except (OverflowError, ValueError):
                return 0.0
        if name == "host_sin":
            return math.sin(args[0])
        if name == "host_cos":
            return math.cos(args[0])
        if name == "host_floor":
            return math.floor(args[0])
        if name == "host_clock":
            return machine.instret() & 0x7FFFFFFF
        if name == "host_rand":
            self._rng_state = u32(self._rng_state * 1103515245 + 12345)
            return (self._rng_state >> 16) & 0x7FFF
        if name == "host_srand":
            self._rng_state = u32(args[0]) or 0x12345678
            return 0
        if name == "host_send":
            payload = memory.read_bytes(u32(args[0]), s32(args[1]))
            self.sent.append(payload)
            return len(payload)
        if name == "host_recv":
            if self._inbox_cursor >= len(self.inbox):
                return -1 & 0xFFFFFFFF
            message = self.inbox[self._inbox_cursor]
            self._inbox_cursor += 1
            limit = s32(args[1])
            payload = message[:limit]
            memory.write_bytes(u32(args[0]), payload)
            return len(payload)
        if name == "gfx_draw":
            self.canvas[(s32(args[0]), s32(args[1]))] = s32(args[2])
            return 0
        if name == "gfx_clear":
            self.canvas.clear()
            return 0
        raise HostCallError(f"host function {name!r} has no implementation")
