"""Host API surface exported to mobile modules.

In Omniware, the host application exports a set of library functions
(memory management, I/O, graphics, ...) that dynamically loaded modules may
call.  Safety comes from the combination of SFI (the module cannot *jump*
anywhere but its own code segment or these vetted entry points) and the
host's permission table (the runtime refuses calls to entries the host did
not export to this module).

This module defines the *signatures* of the standard host calls.  The
implementations live in :mod:`repro.runtime.host`; the MiniC and MiniLisp
front ends import only the signatures, so there is no dependency cycle.

Signature kinds are strings: ``"int"``, ``"uint"``, ``"double"``, ``"ptr"``
and ``"void"`` (result only).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HostFunction:
    """Signature of one host API entry point."""

    index: int
    name: str
    params: tuple[str, ...]
    result: str

    @property
    def arg_count(self) -> int:
        return len(self.params)


_HOST_FUNCTIONS: list[HostFunction] = [
    HostFunction(0, "exit", ("int",), "void"),
    HostFunction(1, "emit_int", ("int",), "void"),
    HostFunction(2, "emit_char", ("int",), "void"),
    HostFunction(3, "emit_double", ("double",), "void"),
    HostFunction(4, "emit_str", ("ptr",), "void"),
    HostFunction(5, "halloc", ("int",), "ptr"),
    HostFunction(6, "hfree", ("ptr",), "void"),
    HostFunction(7, "host_exp", ("double",), "double"),
    HostFunction(8, "host_log", ("double",), "double"),
    HostFunction(9, "host_sqrt", ("double",), "double"),
    HostFunction(10, "host_pow", ("double", "double"), "double"),
    HostFunction(11, "emit_uint", ("uint",), "void"),
    HostFunction(12, "host_clock", (), "int"),
    HostFunction(13, "host_sin", ("double",), "double"),
    HostFunction(14, "host_cos", ("double",), "double"),
    HostFunction(15, "host_floor", ("double",), "double"),
    HostFunction(16, "host_rand", (), "int"),
    HostFunction(17, "host_srand", ("int",), "void"),
    HostFunction(18, "host_send", ("ptr", "int"), "int"),
    HostFunction(19, "host_recv", ("ptr", "int"), "int"),
    HostFunction(20, "gfx_draw", ("int", "int", "int"), "void"),
    HostFunction(21, "gfx_clear", (), "void"),
    # Not a real host call: `sethandler` compiles to the OmniVM `sethnd`
    # instruction (the virtual exception model).  It is declared here so
    # front ends pick up its signature; the IR builder intercepts it and
    # the runtime never dispatches it.
    HostFunction(22, "sethandler", ("ptr",), "void"),
]

HOST_FUNCTIONS: dict[str, HostFunction] = {f.name: f for f in _HOST_FUNCTIONS}
HOST_FUNCTIONS_BY_INDEX: dict[int, HostFunction] = {f.index: f for f in _HOST_FUNCTIONS}

#: Entries that every module may call unless the host says otherwise.
DEFAULT_EXPORTS: frozenset[str] = frozenset(
    name
    for name in HOST_FUNCTIONS
    if not name.startswith(("host_send", "host_recv", "gfx_"))
)


def lookup(name: str) -> HostFunction:
    """Return the signature for host call *name* (KeyError if unknown)."""
    return HOST_FUNCTIONS[name]
