"""The Omniware module loader.

Loading a mobile module is the sequence the paper describes:

1. **verify** the module (structural checks on the OmniVM code:
   valid opcodes, in-segment branch targets — :mod:`repro.omnivm.verifier`);
2. build the module's segmented **address space** and copy in the code and
   data images;
3. either hand the module to the **reference interpreter** (the semantic
   oracle), or run the **load-time translator** for the host's processor,
   which inlines SFI checks and performs its cheap machine-dependent
   optimizations;
4. attach the **host services** with the export policy the host chose.

The public entry points return ready-to-run machines with a uniform
``run()``/``host`` interface so examples, tests and the benchmark harness
can treat every execution engine identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import metrics
from repro.omnivm.interp import OmniVM
from repro.omnivm.linker import LinkedProgram
from repro.omnivm.memory import (
    Memory,
    standard_module_memory,
)
from repro.omnivm.threaded import ThreadedVM, predecode_program
from repro.omnivm.verifier import verify_program
from repro.runtime.host import Host, MachineAdapter
from repro.utils.bits import s32, u32

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache import TranslationCache

#: Execution engines the loaders accept (see ``engine=`` below).
#: ``"auto"`` picks the best tier for the executor: the trace-based
#: superblock JIT — :mod:`repro.omnivm.jit` on the reference
#: interpreter, :mod:`repro.targets.jit` on the four native targets —
#: layered over the threaded engine; ``"jit"`` requests it explicitly.
ENGINES = ("auto", "jit", "threaded", "legacy")


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ValueError(
            f"unknown execution engine {engine!r}; expected one of {ENGINES}"
        )


class _OmniVMAdapter(MachineAdapter):
    """Adapts the reference interpreter to the host-services interface."""

    def __init__(self, vm: OmniVM):
        self.vm = vm
        self.memory = vm.memory

    def get_int_arg(self, index: int) -> int:
        return self.vm.state.regs[1 + index]

    def get_fp_arg(self, index: int) -> float:
        return self.vm.state.fregs[1 + index]

    def set_int_result(self, value: int) -> None:
        self.vm.state.regs[1] = u32(value)

    def set_fp_result(self, value: float) -> None:
        self.vm.state.fregs[1] = value

    def halt(self, code: int) -> None:
        self.vm.state.halted = True
        self.vm.state.exit_code = s32(code)

    def instret(self) -> int:
        return self.vm.state.instret


@dataclass
class LoadedModule:
    """A module loaded for reference (interpreted) execution."""

    program: LinkedProgram
    memory: Memory
    vm: OmniVM
    host: Host

    def run(self, entry: str | None = None) -> int:
        with metrics.stage("execute"):
            return self.vm.run(entry)


def load_for_interpretation(
    program: LinkedProgram,
    host: Host | None = None,
    verify: bool = True,
    fuel: int = 200_000_000,
    segment_size: int | None = None,
    engine: str = "auto",
    cache: "TranslationCache | None" = None,
) -> LoadedModule:
    """Load *program* into a fresh address space under the reference VM.

    ``engine`` selects the execution loop: ``"auto"`` (default) and
    ``"jit"`` run the tiering VM of :mod:`repro.omnivm.jit` — the
    threaded engine plus trace-based superblock compilation for hot
    blocks; ``"threaded"`` runs the predecoded threaded-code engine of
    :mod:`repro.omnivm.threaded` alone (block-level fuel accounting,
    observably identical results); ``"legacy"`` runs the original
    per-instruction dispatch loop.  With a ``cache``, the predecode
    artifact and compiled superblocks are reused across loads of the
    same program content.
    """
    _check_engine(engine)
    if verify:
        verify_program(program)
    if getattr(program, "modules", None):
        # Multi-module image: per-module data segments.
        from repro.runtime.linker import image_memory

        memory = image_memory(program)
    elif segment_size is not None:
        memory = standard_module_memory(
            program.text_image, bytes(program.data_image),
            segment_size=segment_size,
        )
    else:
        memory = standard_module_memory(
            program.text_image, bytes(program.data_image)
        )
    host = host or Host()
    if engine != "legacy":
        threaded = None
        digest = None
        key = None
        if cache is not None:
            from repro.cache import program_digest

            digest = program_digest(program)
            key = ("predecode-omni", digest)
            threaded = cache.get_predecoded(key)
        if threaded is None:
            threaded = predecode_program(program)
            if cache is not None:
                cache.put_predecoded(key, threaded)
        if engine in ("auto", "jit"):
            from repro.omnivm.jit import JitVM

            vm: OmniVM = JitVM(program, memory, fuel=fuel,
                               threaded=threaded, cache=cache,
                               digest=digest)
        else:
            vm = ThreadedVM(program, memory, fuel=fuel, threaded=threaded)
    else:
        vm = OmniVM(program, memory, fuel=fuel)
    adapter = _OmniVMAdapter(vm)
    vm.hostcall = lambda _vm, index: host.hostcall(adapter, index)
    return LoadedModule(program, memory, vm, host)


def run_module(program: LinkedProgram, entry: str | None = None,
               host: Host | None = None,
               engine: str = "auto") -> tuple[int, Host]:
    """Convenience: load, run, and return (exit code, host)."""
    loaded = load_for_interpretation(program, host, engine=engine)
    code = loaded.run(entry)
    return code, loaded.host


#: Architecture names :func:`load_module` routes to the interpreter.
INTERPRETER_ARCHS = (None, "omnivm", "interp")


def load_module(
    program: LinkedProgram,
    arch: str | None = None,
    options=None,
    host: Host | None = None,
    verify: bool = True,
    fuel: int | None = None,
    segment_size: int | None = None,
    engine: str = "auto",
    cache: "TranslationCache | None" = None,
):
    """The one loader entry point: load *program* for *arch*.

    ``arch`` of ``None``/``"omnivm"``/``"interp"`` selects the reference
    interpreter (returning a :class:`LoadedModule`); any translator
    architecture name selects native execution (returning a
    :class:`~repro.runtime.native_loader.NativeModule`).  Both results
    expose the same ``run(entry)`` / ``host`` / ``memory`` interface, so
    call sites no longer special-case the interpreter.  *options* is
    ignored by the interpreter path; *fuel* of ``None`` applies each
    path's historical default (200M interpreted, 500M native).
    """
    if arch in INTERPRETER_ARCHS:
        return load_for_interpretation(
            program, host=host, verify=verify,
            fuel=200_000_000 if fuel is None else fuel,
            segment_size=segment_size, engine=engine, cache=cache,
        )
    from repro.runtime.native_loader import load_for_target

    return load_for_target(
        program, arch, options=options, host=host, verify=verify,
        fuel=500_000_000 if fuel is None else fuel,
        segment_size=segment_size, engine=engine, cache=cache,
    )
