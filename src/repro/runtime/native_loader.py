"""Loading mobile modules for translated-native execution.

The native-side counterpart of :mod:`repro.runtime.loader`: verify the
module, run the load-time translator for the chosen architecture, build
the address space, install the runtime's dedicated-register values (SFI
masks, global pointer, stack pointer), attach the host services, and
return a ready machine.

Also provides :func:`run_on_target`, the one-call API used by tests and
the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import metrics
from repro.omnivm.linker import LinkedProgram
from repro.omnivm.memory import Memory, standard_module_memory
from repro.omnivm.verifier import verify_program
from repro.runtime.host import Host, MachineAdapter
from repro.sfi.policy import DEFAULT_POLICY, SandboxPolicy
from repro.targets.base import TargetMachine
from repro.translators import TranslatedModule, TranslationOptions, translate
from repro.translators.base import initial_register_state
from repro.utils.bits import s32, u32

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache import TranslationCache


class _TargetAdapter(MachineAdapter):
    """Reads host-call arguments out of the target's mapped registers."""

    def __init__(self, machine: TargetMachine):
        self.machine = machine
        self.memory = machine.memory
        self._int_map = machine.spec.int_map
        self._fp_map = machine.spec.fp_map

    def get_int_arg(self, index: int) -> int:
        return self.machine.regs[self._int_map[1 + index]]

    def get_fp_arg(self, index: int) -> float:
        return self.machine.fregs[self._fp_map[1 + index]]

    def set_int_result(self, value: int) -> None:
        self.machine.regs[self._int_map[1]] = u32(value)

    def set_fp_result(self, value: float) -> None:
        self.machine.fregs[self._fp_map[1]] = value

    def halt(self, code: int) -> None:
        self.machine.halt(s32(code))

    def instret(self) -> int:
        return self.machine.instret


@dataclass
class NativeModule:
    """A module translated and loaded for one target architecture."""

    program: LinkedProgram
    translated: TranslatedModule
    machine: TargetMachine
    memory: Memory
    host: Host

    def run(self, entry: str | None = None) -> int:
        entry_native = self.translated.entry_native
        if entry is not None:
            from repro.omnivm.memory import CODE_BASE
            from repro.omnivm.isa import INSTR_SIZE

            start, _ = self.program.function_ranges[entry]
            entry_native = self.translated.omni_to_native[
                CODE_BASE + start * INSTR_SIZE
            ]
        with metrics.stage("execute"):
            return self.machine.run(entry_native)


def load_for_target(
    program: LinkedProgram,
    arch: str,
    options: TranslationOptions | None = None,
    host: Host | None = None,
    verify: bool = True,
    fuel: int = 500_000_000,
    memory: Memory | None = None,
    cache: "TranslationCache | None" = None,
    segment_size: int | None = None,
    engine: str = "auto",
    policy: SandboxPolicy | None = None,
) -> NativeModule:
    """Translate *program* for *arch* and prepare it for execution.

    ``policy`` overrides the sandbox policy for a single-program load
    (e.g. the padded variant for the padding ablation); translations
    under a non-default policy bypass the content-addressed cache,
    whose keys do not include the policy.  Multi-module images carry
    per-module policies in their layouts and ignore this parameter.

    With a :class:`~repro.cache.TranslationCache`, a content-addressed
    hit returns the previously verified translation and skips module
    verification, translation, and SFI verification entirely (the cached
    code was verified when it entered the cache).

    ``engine`` selects the simulator loop: ``"legacy"`` runs the
    original per-instruction loop; ``"threaded"`` runs the predecoded
    block-dispatch engine of :mod:`repro.targets.threaded` (same
    cycles, registers, and faults; fuel charged per block); ``"auto"``
    (default) and ``"jit"`` add the native superblock JIT tier of
    :mod:`repro.targets.jit` on top of the threaded engine.  Threaded
    predecode artifacts and compiled superblocks are reused through the
    cache's in-memory side table.
    """
    from repro.runtime.loader import _check_engine

    _check_engine(engine)
    if policy is not None and policy != DEFAULT_POLICY:
        # Cache keys (translation, predecode, JIT) don't carry the
        # policy; a policy-variant load must not collide with default
        # entries.
        cache = None
    is_image = bool(getattr(program, "modules", None))
    if is_image:
        # Multi-module image: verify the whole image (including the
        # cross-module export checks), then translate per module — each
        # unit is content-addressed in the cache and SFI-verified under
        # its own policy, so only the splice is paid per load.  The
        # spliced whole is deliberately *not* cached: its chunks are,
        # and those are what module revocation invalidates.
        from repro.runtime.linker import image_memory, translate_image

        if verify:
            verify_program(program)
        translated = translate_image(program, arch, options,
                                     cache=cache, verify=verify)
        if memory is None:
            memory = image_memory(program)
    else:
        def _produce() -> TranslatedModule:
            if verify:
                verify_program(program)
            produced = translate(program, arch, options, policy=policy)
            if verify:
                from repro.sfi.verifier import verify_sfi

                # Run the CFG verifier on every translation, not just
                # SFI ones: without an SFI sandbox claim it enforces
                # nothing, but it still recovers the CFG (catching
                # malformed translator output early) and feeds the
                # verify.sfi.* metrics uniformly.
                verify_sfi(produced, policy=policy or DEFAULT_POLICY)
            return produced

        if cache is not None:
            # Single-flight: a thundering herd of loads for the same
            # uncached content elects one translator; the rest wait on
            # its (verified) entry instead of duplicating the work.
            translated = cache.translate_once(program, arch, options,
                                              _produce)
        else:
            translated = _produce()
    if memory is None:
        if segment_size is not None:
            memory = standard_module_memory(
                program.text_image, bytes(program.data_image),
                segment_size=segment_size,
            )
        else:
            memory = standard_module_memory(
                program.text_image, bytes(program.data_image)
            )
    host = host or Host()
    if options is not None and options.native_profile == "cc" and \
            translated.spec.name == "ppc":
        # XLC's aggressive global instruction scheduling hides the 601's
        # multi-cycle compare latency (the paper singles this out as the
        # PPC cc compiler's main edge); model it as fully hidden.
        translated.spec.timing.cmp_latency = 1
    if engine != "legacy":
        from repro.cache import cache_key
        from repro.targets.threaded import (
            ThreadedTargetMachine,
            predecode_native,
        )

        threaded = None
        key = None
        if cache is not None:
            key = ("predecode-native",) + cache_key(program, arch, options)
            threaded = cache.get_predecoded(key)
        if threaded is None:
            threaded = predecode_native(translated.spec, translated.instrs)
            if cache is not None:
                cache.put_predecoded(key, threaded)
        if engine in ("auto", "jit"):
            from repro.targets.jit import JitTargetMachine

            jit_key = None
            if cache is not None:
                jit_key = ("jit-native",) + cache_key(program, arch,
                                                      options)
            machine: TargetMachine = JitTargetMachine(
                translated.spec,
                translated.instrs,
                memory,
                translated.omni_to_native,
                fuel=fuel,
                threaded=threaded,
                cache=cache,
                jit_key=jit_key,
            )
        else:
            machine = ThreadedTargetMachine(
                translated.spec,
                translated.instrs,
                memory,
                translated.omni_to_native,
                fuel=fuel,
                threaded=threaded,
            )
    else:
        machine = TargetMachine(
            translated.spec,
            translated.instrs,
            memory,
            translated.omni_to_native,
            fuel=fuel,
        )
    adapter = _TargetAdapter(machine)
    machine.hostcall = lambda _m, index: host.hostcall(adapter, index)
    initial_register_state(translated.spec, machine)
    return NativeModule(program, translated, machine, memory, host)


def run_on_target(
    program: LinkedProgram,
    arch: str,
    options: TranslationOptions | None = None,
    host: Host | None = None,
    cache: "TranslationCache | None" = None,
    engine: str = "auto",
    policy: SandboxPolicy | None = None,
) -> tuple[int, NativeModule]:
    """Translate, load, run; returns (exit code, loaded module)."""
    module = load_for_target(program, arch, options, host, cache=cache,
                             engine=engine, policy=policy)
    code = module.run()
    return code, module
