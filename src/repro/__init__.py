"""Omniware reproduction: efficient, language-independent mobile programs.

A from-scratch Python implementation of the system described in
Adl-Tabatabai, Langdale, Lucco & Wahbe, *Efficient and
Language-Independent Mobile Programs* (PLDI 1996): the OmniVM
software-defined computer architecture, compilers targeting it, software
fault isolation, load-time translators for four simulated processors,
and the runtime that hosts untrusted mobile modules.

Quick start::

    from repro import Engine

    engine = Engine(target="mips")              # SFI on, cache + metrics
    program = engine.compile('int main() { emit_int(42); return 0; }')
    code, module = engine.run(program)          # verify+translate+execute
    code, module = engine.run(program)          # warm: translation cached
    print(engine.stats_text())                  # per-stage timings etc.

The pre-Engine free functions still work and behave identically::

    from repro import compile_and_link, run_module, run_on_target, MOBILE_SFI

    program = compile_and_link(['int main() { emit_int(42); return 0; }'])
    code, host = run_module(program)            # reference interpreter
    code, native = run_on_target(program, "mips", MOBILE_SFI)  # translated

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced evaluation.
"""

from repro import metrics
from repro.cache import TranslationCache
from repro.compiler import CompileOptions, compile_and_link, compile_to_object
from repro.engine import Engine, RunConfig
from repro.errors import (
    AccessViolation,
    CompileError,
    CrossModuleViolation,
    DeadlineExceeded,
    DuplicateExportError,
    DynamicLinkError,
    HostCallError,
    ModuleCycleError,
    ModuleRevokedError,
    QuotaExceeded,
    ReproError,
    SandboxViolation,
    ServiceOverloaded,
    UnknownArchitectureError,
    UnresolvedImportError,
    VerifyError,
)
from repro.metrics import MetricsCollector
from repro.lang2.compiler import compile_minilisp
from repro.native.profiles import (
    MOBILE_NOSFI,
    MOBILE_SFI,
    NATIVE_CC,
    NATIVE_GCC,
    PROFILES,
)
from repro.omnivm.asmparser import assemble
from repro.omnivm.linker import LinkedProgram, link
from repro.omnivm.objfile import ObjectModule
from repro.runtime.host import Host
from repro.runtime.linker import (
    LinkedImage,
    ModuleRegistry,
    dynamic_link,
)
from repro.runtime.loader import (
    load_for_interpretation,
    load_module,
    run_module,
)
from repro.runtime.native_loader import load_for_target, run_on_target
from repro.service import (
    FaultInjector,
    ModuleHost,
    ModuleRequest,
    ModuleResponse,
    RequestQuota,
    RetryPolicy,
)
from repro.service_router import ShardedModuleHost
from repro.translators import ARCHITECTURES, TranslationOptions, translate

__version__ = "1.0.0"

__all__ = [
    "ARCHITECTURES",
    "AccessViolation",
    "CompileError",
    "CompileOptions",
    "CrossModuleViolation",
    "DeadlineExceeded",
    "DuplicateExportError",
    "DynamicLinkError",
    "Engine",
    "FaultInjector",
    "Host",
    "HostCallError",
    "LinkedImage",
    "LinkedProgram",
    "MOBILE_NOSFI",
    "MOBILE_SFI",
    "MetricsCollector",
    "ModuleCycleError",
    "ModuleHost",
    "ModuleRegistry",
    "ModuleRequest",
    "ModuleResponse",
    "ModuleRevokedError",
    "NATIVE_CC",
    "NATIVE_GCC",
    "ObjectModule",
    "PROFILES",
    "QuotaExceeded",
    "ReproError",
    "RequestQuota",
    "RetryPolicy",
    "RunConfig",
    "SandboxViolation",
    "ServiceOverloaded",
    "ShardedModuleHost",
    "TranslationCache",
    "TranslationOptions",
    "UnknownArchitectureError",
    "UnresolvedImportError",
    "VerifyError",
    "assemble",
    "compile_and_link",
    "compile_minilisp",
    "compile_to_object",
    "dynamic_link",
    "link",
    "load_for_interpretation",
    "load_for_target",
    "load_module",
    "metrics",
    "run_module",
    "run_on_target",
    "translate",
]
