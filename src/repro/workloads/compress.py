"""Workload ``compress`` — LZW compression (SPEC92 ``compress`` analogue).

SPEC92 compress is LZW with a hash-probed string table and bit-packed
output; its profile is integer hashing, table probing, shifting/masking
and byte I/O.  This analogue compresses a deterministic pseudo-text with
12-bit LZW (hash table with linear probing), decompresses the code
stream, verifies the round trip, and emits the code count, a checksum of
the code stream, and the verification flag.

A pure-Python oracle (:func:`expected_output`) implements the identical
algorithm so the MiniC build is checked end-to-end, not just for crashes.
"""

from __future__ import annotations

NAME = "compress"

TEXT_LEN = 1000
HASH_SIZE = 5003
MAX_CODES = 4096


def _make_text() -> bytes:
    """The deterministic pseudo-text both implementations compress."""
    seed = 0x1234
    phrase = b"the quick brown fox jumps over the lazy dog "
    out = bytearray()
    while len(out) < TEXT_LEN:
        seed = (seed * 1103515245 + 12345) & 0xFFFFFFFF
        pick = (seed >> 16) % 26
        out.extend(phrase)
        out.append(97 + pick)
    return bytes(out[:TEXT_LEN])


def _lzw_compress(data: bytes) -> list[int]:
    ht_key = [-1] * HASH_SIZE
    ht_code = [0] * HASH_SIZE
    next_code = 256
    codes: list[int] = []
    prefix = data[0]
    for ch in data[1:]:
        key = (prefix << 8) | ch
        h = (key * 2654435761 & 0xFFFFFFFF) % HASH_SIZE
        while ht_key[h] != -1 and ht_key[h] != key:
            h = (h + 1) % HASH_SIZE
        if ht_key[h] == key:
            prefix = ht_code[h]
            continue
        codes.append(prefix)
        if next_code < MAX_CODES:
            ht_key[h] = key
            ht_code[h] = next_code
            next_code += 1
        prefix = ch
    codes.append(prefix)
    return codes


def _lzw_decompress(codes: list[int]) -> bytes:
    table: list[bytes] = [bytes([i]) for i in range(256)] + [b""] * (
        MAX_CODES - 256
    )
    next_code = 256
    prev = codes[0]
    out = bytearray(table[prev])
    for code in codes[1:]:
        if code < next_code:
            entry = table[code]
        else:  # KwKwK case
            entry = table[prev] + table[prev][:1]
        out.extend(entry)
        if next_code < MAX_CODES:
            table[next_code] = table[prev] + entry[:1]
            next_code += 1
        prev = code
    return bytes(out)


def expected_output() -> list[object]:
    data = _make_text()
    codes = _lzw_compress(data)
    checksum = 0
    for index, code in enumerate(codes):
        checksum = (checksum + code * (index + 1)) & 0x7FFFFFFF
    ok = 1 if _lzw_decompress(codes) == data else 0
    return [len(codes), checksum, ok]


SOURCE = r"""
int TEXT_LEN;   /* set in main */
char text[2600];
int ht_key[5003];
int ht_code[5003];
int codes[2600];
int ncodes;

/* decompression string table: entries stored in a byte pool */
char pool[40000];
int entry_off[4096];
int entry_len[4096];
int pool_top;

void make_text(void) {
    uint seed = 0x1234;
    char *phrase = "the quick brown fox jumps over the lazy dog ";
    int plen = 0;
    while (phrase[plen]) plen++;
    int pos = 0;
    while (pos < TEXT_LEN) {
        seed = seed * 1103515245 + 12345;
        int pick = (int)((seed >> 16) % 26);
        int i;
        for (i = 0; i < plen && pos < TEXT_LEN; i++) {
            text[pos] = phrase[i];
            pos++;
        }
        if (pos < TEXT_LEN) {
            text[pos] = (char)(97 + pick);
            pos++;
        }
    }
}

void compress(void) {
    int i;
    for (i = 0; i < 5003; i++) ht_key[i] = -1;
    int next_code = 256;
    ncodes = 0;
    int prefix = text[0] & 255;
    for (i = 1; i < TEXT_LEN; i++) {
        int ch = text[i] & 255;
        int key = (prefix << 8) | ch;
        uint h = ((uint)key * 2654435761u) % 5003u;
        while (ht_key[h] != -1 && ht_key[h] != key) {
            h = (h + 1u) % 5003u;
        }
        if (ht_key[h] == key) {
            prefix = ht_code[h];
            continue;
        }
        codes[ncodes] = prefix;
        ncodes++;
        if (next_code < 4096) {
            ht_key[h] = key;
            ht_code[h] = next_code;
            next_code++;
        }
        prefix = ch;
    }
    codes[ncodes] = prefix;
    ncodes++;
}

int decompress_and_check(void) {
    int i;
    pool_top = 0;
    for (i = 0; i < 256; i++) {
        entry_off[i] = pool_top;
        entry_len[i] = 1;
        pool[pool_top] = (char)i;
        pool_top++;
    }
    int next_code = 256;
    int prev = codes[0];
    int pos = 0;
    /* first output */
    if ((text[pos] & 255) != (pool[entry_off[prev]] & 255)) return 0;
    pos++;
    int ci;
    for (ci = 1; ci < ncodes; ci++) {
        int code = codes[ci];
        int eoff; int elen;
        int kwk = 0;
        if (code < next_code) {
            eoff = entry_off[code];
            elen = entry_len[code];
        } else {
            /* KwKwK: entry = prev_string + first char of prev_string */
            eoff = entry_off[prev];
            elen = entry_len[prev] + 1;
            kwk = 1;
        }
        /* verify entry against the original text */
        for (i = 0; i < elen; i++) {
            int expect;
            if (kwk && i == elen - 1) expect = pool[entry_off[prev]] & 255;
            else expect = pool[eoff + i] & 255;
            if ((text[pos] & 255) != expect) return 0;
            pos++;
        }
        /* add prev_string + first char of current entry to the table */
        if (next_code < 4096) {
            int plen = entry_len[prev];
            entry_off[next_code] = pool_top;
            entry_len[next_code] = plen + 1;
            for (i = 0; i < plen; i++) {
                pool[pool_top] = pool[entry_off[prev] + i];
                pool_top++;
            }
            if (kwk) pool[pool_top] = pool[entry_off[prev]];
            else pool[pool_top] = pool[eoff];
            pool_top++;
            next_code++;
        }
        prev = code;
    }
    return pos == TEXT_LEN;
}

int main() {
    TEXT_LEN = 1000;
    make_text();
    compress();
    int checksum = 0;
    int i;
    for (i = 0; i < ncodes; i++) {
        checksum = (checksum + codes[i] * (i + 1)) & 0x7FFFFFFF;
    }
    int ok = decompress_and_check();
    emit_int(ncodes);
    emit_int(checksum);
    emit_int(ok);
    return 0;
}
"""
