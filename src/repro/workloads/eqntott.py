"""Workload ``eqntott`` — truth-table generation (SPEC92 ``eqntott`` analogue).

SPEC92 eqntott converts boolean equations to truth tables; its hot spot
is ``cmppt``, a comparison routine called through a function pointer by
quicksort — short, extremely branchy integer code.  The paper notes its
compare-against-constant branches drive the MIPS ``ldi`` and PPC ``cmp``
expansions.

This analogue evaluates a 10-variable boolean function over all 512
even-parity input vectors to build a (output, input) truth table, sorts
it with a recursive quicksort whose comparator is called through a
function pointer (exercising SFI's indirect-jump sandboxing on the hot
path), and emits the sorted table's checksum, the count of true outputs,
and the index of the first true row.
"""

from __future__ import annotations

NAME = "eqntott"

N_ROWS = 256


def _function(v: int) -> int:
    """The boolean function both implementations tabulate."""
    b = [(v >> i) & 1 for i in range(10)]
    t1 = b[0] & b[3] | b[1] & ~b[4] & 1
    t2 = (b[2] ^ b[5]) & (b[6] | b[7])
    t3 = b[8] & b[9] | b[0] & b[7]
    parity = 0
    for i in range(10):
        parity ^= b[i]
    return (t1 & t2 | t3 ^ parity) & 1


def expected_output() -> list[object]:
    rows = []
    for index in range(N_ROWS):
        v = (index * 2654435761) & 0x3FF  # scatter the input order
        out = _function(v)
        rows.append((out << 16) | v)
    # qsort by (output desc, input asc) — encoded in the comparator.
    def key(row: int) -> tuple[int, int]:
        return (-(row >> 16), row & 0xFFFF)

    rows.sort(key=key)
    checksum = 0
    trues = 0
    first_true = -1
    for index, row in enumerate(rows):
        checksum = (checksum + row * (index + 1)) & 0x7FFFFFFF
        if row >> 16:
            trues += 1
            if first_true < 0:
                first_true = index
    return [checksum, trues, first_true]


SOURCE = r"""
int rows[512];
int nrows;

int bit(int v, int i) { return (v >> i) & 1; }

int func(int v) {
    int t1 = (bit(v,0) & bit(v,3)) | (bit(v,1) & (~bit(v,4) & 1));
    int t2 = (bit(v,2) ^ bit(v,5)) & (bit(v,6) | bit(v,7));
    int t3 = (bit(v,8) & bit(v,9)) | (bit(v,0) & bit(v,7));
    int parity = 0;
    int i;
    for (i = 0; i < 10; i++) parity ^= bit(v, i);
    return ((t1 & t2) | (t3 ^ parity)) & 1;
}

/* cmppt-style comparator: output descending, then input ascending */
int cmppt(int a, int b) {
    int ao = a >> 16;
    int bo = b >> 16;
    if (ao > bo) return -1;
    if (ao < bo) return 1;
    int ai = a & 0xFFFF;
    int bi = b & 0xFFFF;
    if (ai < bi) return -1;
    if (ai > bi) return 1;
    return 0;
}

void qsort_rows(int lo, int hi, int (*cmp)(int, int)) {
    if (lo >= hi) return;
    int pivot = rows[(lo + hi) / 2];
    int i = lo;
    int j = hi;
    while (i <= j) {
        while (cmp(rows[i], pivot) < 0) i++;
        while (cmp(rows[j], pivot) > 0) j--;
        if (i <= j) {
            int tmp = rows[i];
            rows[i] = rows[j];
            rows[j] = tmp;
            i++;
            j--;
        }
    }
    qsort_rows(lo, j, cmp);
    qsort_rows(i, hi, cmp);
}

int main() {
    int index;
    nrows = 256;
    for (index = 0; index < nrows; index++) {
        int v = (index * (int)2654435761u) & 0x3FF;
        int out = func(v);
        rows[index] = (out << 16) | v;
    }
    qsort_rows(0, nrows - 1, cmppt);
    int checksum = 0;
    int trues = 0;
    int first_true = -1;
    for (index = 0; index < nrows; index++) {
        checksum = (checksum + rows[index] * (index + 1)) & 0x7FFFFFFF;
        if (rows[index] >> 16) {
            trues++;
            if (first_true < 0) first_true = index;
        }
    }
    emit_int(checksum);
    emit_int(trues);
    emit_int(first_true);
    return 0;
}
"""
