"""Workload ``li`` — a small Lisp interpreter (SPEC92 ``li`` analogue).

xlisp in SPEC92 is an interpreter: its execution profile is dominated by
pointer-chasing through cons cells, type-tag dispatch, association-list
environment lookups, and deep recursion.  This analogue implements an
eval/apply interpreter for a Lisp dialect with numbers, symbols, cons
cells, ``quote``/``if``/``lambda`` special forms, arithmetic builtins and
closures with alist environments — then runs ``(fib 10)``, ``(fact 9)``
and a list-length computation through it.

The heap is the host-provided allocator (``halloc``), so the workload
also exercises the runtime's memory-management exports.
"""

from __future__ import annotations

NAME = "li"

#: What the interpreter computes, via an independent Python oracle.
def expected_output() -> list[object]:
    def fib(n: int) -> int:
        return n if n < 2 else fib(n - 1) + fib(n - 2)

    def fact(n: int) -> int:
        return 1 if n <= 1 else n * fact(n - 1)

    return [fib(10), fact(9), 24]


SOURCE = r"""
/* A small Lisp: tags */
struct Obj {
    int tag;          /* 0=num 1=sym 2=cons 3=closure */
    int num;          /* number value or symbol id */
    struct Obj *a;    /* car / params / closure body */
    struct Obj *b;    /* cdr / closure env */
};

/* symbol ids */
int SYM_N; int SYM_FIB; int SYM_FACT; int SYM_IF; int SYM_QUOTE;
int SYM_LAMBDA; int SYM_ADD; int SYM_SUB; int SYM_MUL; int SYM_LT;
int SYM_LE;

struct Obj *mk(int tag, int num, struct Obj *a, struct Obj *b) {
    struct Obj *o = (struct Obj *) halloc(sizeof(struct Obj));
    o->tag = tag; o->num = num; o->a = a; o->b = b;
    return o;
}

struct Obj *num(int v) { return mk(0, v, 0, 0); }
struct Obj *sym(int id) { return mk(1, id, 0, 0); }
struct Obj *cons(struct Obj *a, struct Obj *b) { return mk(2, 0, a, b); }

/* list helpers */
struct Obj *list2(struct Obj *a, struct Obj *b) {
    return cons(a, cons(b, 0));
}
struct Obj *list3(struct Obj *a, struct Obj *b, struct Obj *c) {
    return cons(a, cons(b, cons(c, 0)));
}
struct Obj *list4(struct Obj *a, struct Obj *b, struct Obj *c,
                  struct Obj *d) {
    return cons(a, cons(b, cons(c, cons(d, 0))));
}

/* alist environment: ((sym . val) ...) */
struct Obj *lookup(struct Obj *env, int id) {
    while (env) {
        struct Obj *pair = env->a;
        if (pair->a->num == id) return pair->b;
        env = env->b;
    }
    trapfail();
    return 0;
}

void trapfail(void) { emit_int(-999); exit(1); }

struct Obj *eval(struct Obj *e, struct Obj *env);

struct Obj *apply(struct Obj *fn, struct Obj *arg) {
    /* closure: a = (param body), b = captured env */
    struct Obj *param = fn->a->a;
    struct Obj *body = fn->a->b->a;
    struct Obj *frame = cons(cons(param, arg), fn->b);
    return eval(body, frame);
}

struct Obj *eval(struct Obj *e, struct Obj *env) {
    if (e->tag == 0) return e;               /* number */
    if (e->tag == 1) return lookup(env, e->num);
    /* cons: special forms and applications */
    struct Obj *head = e->a;
    if (head->tag == 1) {
        int id = head->num;
        if (id == SYM_QUOTE) return e->b->a;
        if (id == SYM_IF) {
            struct Obj *c = eval(e->b->a, env);
            if (c->num != 0) return eval(e->b->b->a, env);
            return eval(e->b->b->b->a, env);
        }
        if (id == SYM_LAMBDA) {
            /* (lambda param body) -> closure capturing env */
            return mk(3, 0, cons(e->b->a, cons(e->b->b->a, 0)), env);
        }
        if (id == SYM_ADD || id == SYM_SUB || id == SYM_MUL ||
            id == SYM_LT || id == SYM_LE) {
            struct Obj *x = eval(e->b->a, env);
            struct Obj *y = eval(e->b->b->a, env);
            if (id == SYM_ADD) return num(x->num + y->num);
            if (id == SYM_SUB) return num(x->num - y->num);
            if (id == SYM_MUL) return num(x->num * y->num);
            if (id == SYM_LT) return num(x->num < y->num);
            return num(x->num <= y->num);
        }
    }
    /* application: (f arg) */
    struct Obj *fn = eval(head, env);
    struct Obj *arg = eval(e->b->a, env);
    if (fn->tag != 3) trapfail();
    return apply(fn, arg);
}

int list_length(struct Obj *l) {
    int n = 0;
    while (l) { n++; l = l->b; }
    return n;
}

int main() {
    SYM_N = 1; SYM_FIB = 2; SYM_FACT = 3;
    SYM_IF = 11; SYM_QUOTE = 12; SYM_LAMBDA = 13;
    SYM_ADD = 21; SYM_SUB = 22; SYM_MUL = 23; SYM_LT = 24; SYM_LE = 25;

    /* fib = (lambda n (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) */
    struct Obj *fib_body = list4(
        sym(SYM_IF),
        list3(sym(SYM_LT), sym(SYM_N), num(2)),
        sym(SYM_N),
        list3(sym(SYM_ADD),
              list2(sym(SYM_FIB),
                    list3(sym(SYM_SUB), sym(SYM_N), num(1))),
              list2(sym(SYM_FIB),
                    list3(sym(SYM_SUB), sym(SYM_N), num(2)))));
    struct Obj *fib_expr = list3(sym(SYM_LAMBDA), sym(SYM_N), fib_body);

    /* fact = (lambda n (if (<= n 1) 1 (* n (fact (- n 1))))) */
    struct Obj *fact_body = list4(
        sym(SYM_IF),
        list3(sym(SYM_LE), sym(SYM_N), num(1)),
        num(1),
        list3(sym(SYM_MUL), sym(SYM_N),
              list2(sym(SYM_FACT),
                    list3(sym(SYM_SUB), sym(SYM_N), num(1)))));
    struct Obj *fact_expr = list3(sym(SYM_LAMBDA), sym(SYM_N), fact_body);

    /* global environment with recursive bindings (cyclic env links) */
    struct Obj *genv = 0;
    struct Obj *fib_clo = eval(fib_expr, genv);
    struct Obj *fact_clo = eval(fact_expr, genv);
    genv = cons(cons(sym(SYM_FIB), fib_clo), genv);
    genv = cons(cons(sym(SYM_FACT), fact_clo), genv);
    fib_clo->b = genv;   /* tie the knot: closures see the global env */
    fact_clo->b = genv;

    emit_int(eval(list2(sym(SYM_FIB), num(10)), genv)->num);
    emit_int(eval(list2(sym(SYM_FACT), num(9)), genv)->num);

    /* build a 24-element list through the interpreter's cons cells */
    struct Obj *l = 0;
    int i;
    for (i = 0; i < 24; i++) l = cons(num(i), l);
    emit_int(list_length(l));
    return 0;
}
"""
