"""The benchmark suite: the four SPEC92 analogues, compiled on demand.

Provides cached compilation (per optimization level / register count) so
the evaluation harness and tests don't recompile per configuration, and
a uniform way to validate any run's output against the workload's
independent Python oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.compiler import CompileOptions, compile_and_link
from repro.omnivm.linker import LinkedProgram
from repro.workloads import alvinn, compress, eqntott, li


@dataclass(frozen=True)
class Workload:
    name: str
    source: str
    expected: tuple


def _freeze(values: list[object]) -> tuple:
    return tuple(values)


WORKLOADS: dict[str, Workload] = {
    module.NAME: Workload(module.NAME, module.SOURCE,
                          _freeze(module.expected_output()))
    for module in (li, compress, alvinn, eqntott)
}

WORKLOAD_NAMES = ("li", "compress", "alvinn", "eqntott")


@lru_cache(maxsize=64)
def build(name: str, opt_level: int = 2, num_regs: int = 16) -> LinkedProgram:
    """Compile one workload to a linked OmniVM module (cached)."""
    workload = WORKLOADS[name]
    options = CompileOptions(opt_level=opt_level, num_regs=num_regs,
                             module_name=name)
    return compile_and_link([workload.source], options)


def check_output(name: str, values: list[object]) -> bool:
    """Compare a run's emitted values against the Python oracle."""
    return tuple(values) == WORKLOADS[name].expected
