"""Workload ``alvinn`` — neural network training (SPEC92 ``alvinn`` analogue).

SPEC92 alvinn trains the ALVINN autonomous-driving network: dense
single-hidden-layer backpropagation, so the profile is long floating-
point multiply-accumulate loops — the workload whose x86 numbers the
paper uses to demonstrate FP-pipeline scheduling, and whose RISC numbers
benefit most from load latency hiding.

This analogue trains a 16-8-4 multilayer perceptron with a fast-sigmoid
activation (``0.5 + x / (2*(1+|x|))`` — pure FP arithmetic, so the MiniC
build and the Python oracle compute bit-identical IEEE doubles) on 10
deterministic patterns for 3 epochs and emits the per-epoch sum-squared
error and a weight checksum.
"""

from __future__ import annotations

NAME = "alvinn"

N_IN = 16
N_HID = 8
N_OUT = 4
N_PAT = 10
EPOCHS = 3
LEARNING_RATE = 0.3


def _lcg_stream():
    seed = 0xBEEF
    while True:
        seed = (seed * 1103515245 + 12345) & 0xFFFFFFFF
        yield (seed >> 16) & 0x7FFF


def expected_output() -> list[object]:
    rng = _lcg_stream()

    def rnd() -> float:
        return (next(rng) % 1000) / 1000.0 - 0.5

    w1 = [[rnd() for _ in range(N_HID)] for _ in range(N_IN)]
    b1 = [rnd() for _ in range(N_HID)]
    w2 = [[rnd() for _ in range(N_OUT)] for _ in range(N_HID)]
    b2 = [rnd() for _ in range(N_OUT)]
    patterns = []
    for _ in range(N_PAT):
        x = [(next(rng) % 1000) / 1000.0 for _ in range(N_IN)]
        total = sum(x)
        target = [0.0] * N_OUT
        target[int(total) % N_OUT] = 1.0
        patterns.append((x, target))

    def sigmoid(v: float) -> float:
        av = v if v >= 0.0 else -v
        return 0.5 + v / (2.0 * (1.0 + av))

    outputs: list[object] = []
    for _epoch in range(EPOCHS):
        sse = 0.0
        for x, target in patterns:
            hid = [0.0] * N_HID
            for j in range(N_HID):
                acc = b1[j]
                for i in range(N_IN):
                    acc += x[i] * w1[i][j]
                hid[j] = sigmoid(acc)
            out = [0.0] * N_OUT
            for k in range(N_OUT):
                acc = b2[k]
                for j in range(N_HID):
                    acc += hid[j] * w2[j][k]
                out[k] = sigmoid(acc)
            dout = [0.0] * N_OUT
            for k in range(N_OUT):
                err = target[k] - out[k]
                sse += err * err
                dout[k] = err * out[k] * (1.0 - out[k])
            dhid = [0.0] * N_HID
            for j in range(N_HID):
                acc = 0.0
                for k in range(N_OUT):
                    acc += dout[k] * w2[j][k]
                dhid[j] = acc * hid[j] * (1.0 - hid[j])
            for j in range(N_HID):
                for k in range(N_OUT):
                    w2[j][k] += LEARNING_RATE * dout[k] * hid[j]
            for k in range(N_OUT):
                b2[k] += LEARNING_RATE * dout[k]
            for i in range(N_IN):
                for j in range(N_HID):
                    w1[i][j] += LEARNING_RATE * dhid[j] * x[i]
            for j in range(N_HID):
                b1[j] += LEARNING_RATE * dhid[j]
        outputs.append(sse)
    checksum = 0.0
    for i in range(N_IN):
        for j in range(N_HID):
            checksum += w1[i][j]
    outputs.append(checksum)
    return outputs


SOURCE = r"""
double w1[16][8];
double b1[8];
double w2[8][4];
double b2[4];
double px[10][16];
double pt[10][4];
double hid[8];
double out[4];
double dout[4];
double dhid[8];

uint seed;

int lcg(void) {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 16) & 0x7FFF);
}

double rnd(void) {
    return (double)(lcg() % 1000) / 1000.0 - 0.5;
}

double sigmoid(double v) {
    double av = v;
    if (av < 0.0) av = -av;
    return 0.5 + v / (2.0 * (1.0 + av));
}

int main() {
    int i; int j; int k; int p; int e;
    seed = 0xBEEF;
    for (i = 0; i < 16; i++)
        for (j = 0; j < 8; j++)
            w1[i][j] = rnd();
    for (j = 0; j < 8; j++) b1[j] = rnd();
    for (j = 0; j < 8; j++)
        for (k = 0; k < 4; k++)
            w2[j][k] = rnd();
    for (k = 0; k < 4; k++) b2[k] = rnd();
    for (p = 0; p < 10; p++) {
        double total = 0.0;
        for (i = 0; i < 16; i++) {
            px[p][i] = (double)(lcg() % 1000) / 1000.0;
            total = total + px[p][i];
        }
        for (k = 0; k < 4; k++) pt[p][k] = 0.0;
        pt[p][(int)total % 4] = 1.0;
    }

    for (e = 0; e < 3; e++) {
        double sse = 0.0;
        for (p = 0; p < 10; p++) {
            for (j = 0; j < 8; j++) {
                double acc = b1[j];
                for (i = 0; i < 16; i++) acc += px[p][i] * w1[i][j];
                hid[j] = sigmoid(acc);
            }
            for (k = 0; k < 4; k++) {
                double acc = b2[k];
                for (j = 0; j < 8; j++) acc += hid[j] * w2[j][k];
                out[k] = sigmoid(acc);
            }
            for (k = 0; k < 4; k++) {
                double err = pt[p][k] - out[k];
                sse += err * err;
                dout[k] = err * out[k] * (1.0 - out[k]);
            }
            for (j = 0; j < 8; j++) {
                double acc = 0.0;
                for (k = 0; k < 4; k++) acc += dout[k] * w2[j][k];
                dhid[j] = acc * hid[j] * (1.0 - hid[j]);
            }
            for (j = 0; j < 8; j++)
                for (k = 0; k < 4; k++)
                    w2[j][k] += 0.3 * dout[k] * hid[j];
            for (k = 0; k < 4; k++) b2[k] += 0.3 * dout[k];
            for (i = 0; i < 16; i++)
                for (j = 0; j < 8; j++)
                    w1[i][j] += 0.3 * dhid[j] * px[p][i];
            for (j = 0; j < 8; j++) b1[j] += 0.3 * dhid[j];
        }
        emit_double(sse);
    }
    double checksum = 0.0;
    for (i = 0; i < 16; i++)
        for (j = 0; j < 8; j++)
            checksum += w1[i][j];
    emit_double(checksum);
    return 0;
}
"""
