"""Machine-dependent peepholes for the ``cc`` native-compiler profile.

The paper attributes the vendor ``cc`` compilers' edge over gcc (and over
translated OmniVM code) to machine-dependent optimization: "better code
selection and aggressive instruction scheduling", condition-code folding
on the PPC ("folding the setting of the condition codes into a prior
arithmetic instruction"), branch-and-decrement, and Pentium-specific
peepholes.  The ``cc`` profile models these with three transformations
applied after translation:

* **compare folding** (PPC, and x86's flags-setting ALU ops): a
  ``cmpi rs, 0`` whose register was just written by an ALU instruction
  is deleted — the ALU op's record form sets the condition register;
* **branch-and-decrement** (PPC): ``addi r, r, -1`` followed by a folded
  compare-vs-zero and branch models ``bdnz`` — the compare deletion above
  plus this pass removing the decrement when it immediately precedes the
  branch (folded into the branch-and-count instruction);
* **load folding** (x86): a load into a scratch register immediately
  consumed by the next ALU instruction becomes a memory-operand ALU
  instruction (the load is deleted; the ALU op keeps the load's cost via
  the memory-operand timing rule).

These run only for ``native_profile == "cc"``; mobile translation must
stay cheap, which is exactly the gap Tables 3 and 6 measure.
"""

from __future__ import annotations

from repro.targets.base import MInstr


_ALU_WRITERS = frozenset(
    "add addi sub and andi or ori xor xori sll slli srl srli sra srai".split()
)


def apply_cc_peepholes(module) -> int:
    """Apply the cc-profile peepholes in place; returns removed count."""
    spec = module.spec
    removed = 0
    if spec.name in ("ppc", "x86"):
        removed += _fold_compares(module)
    if spec.name == "ppc":
        removed += _fold_branch_decrement(module)
        removed += _fold_counted_loops(module)
    if spec.name == "x86":
        removed += _fold_loads(module)
        removed += _fold_twoop_moves(module)
    if spec.name == "mips":
        removed += _fill_slots_globally(module)
    return removed


def _protected_indexes(module) -> set[int]:
    """Native indexes that are control-flow targets must not shift."""
    protected = set(module.omni_to_native.values())
    for instr in module.instrs:
        if instr.target >= 0:
            protected.add(instr.target)
    return protected


def _delete(module, indexes: set[int]) -> None:
    """Delete instructions at *indexes*, remapping all control targets."""
    if not indexes:
        return
    old_to_new: dict[int, int] = {}
    new_instrs: list[MInstr] = []
    for old, instr in enumerate(module.instrs):
        old_to_new[old] = len(new_instrs)
        if old not in indexes:
            new_instrs.append(instr)
    old_to_new[len(module.instrs)] = len(new_instrs)
    for instr in new_instrs:
        if instr.target >= 0:
            instr.target = old_to_new[instr.target]
    module.omni_to_native = {
        addr: old_to_new[idx] for addr, idx in module.omni_to_native.items()
    }
    module.entry_native = old_to_new[module.entry_native]
    module.instrs = new_instrs


def _fold_compares(module) -> int:
    """Fold a cmpi-vs-zero right after an ALU write of the same register
    into that ALU instruction (PPC record form / x86 flags).  The compare
    is retagged ``fused``: it still sets the condition state in the
    functional simulator but issues at zero cost and does not retire."""
    protected = _protected_indexes(module)
    count = 0
    instrs = module.instrs
    for index in range(1, len(instrs)):
        instr = instrs[index]
        if instr.op != "cmpi" or instr.imm != 0 or index in protected:
            continue
        prev = instrs[index - 1]
        if prev.op in _ALU_WRITERS and prev.rd == instr.rs:
            instr.category = "fused"
            count += 1
    return count


def _fold_branch_decrement(module) -> int:
    """Model bdnz: delete a decrement immediately before a bcc that was
    already compare-folded against the same register."""
    protected = _protected_indexes(module)
    count = 0
    instrs = module.instrs
    for index in range(len(instrs) - 1):
        instr = instrs[index]
        nxt = instrs[index + 1]
        if (
            instr.op == "addi"
            and instr.imm == -1
            and instr.rd == instr.rs
            and nxt.op == "bcc"
            and index + 1 not in protected
            and index not in protected
        ):
            # The decrement folds into the branch-and-count instruction.
            # A functional simulator still needs its register effect, so
            # it is retagged as "fused": the executor performs it at zero
            # issue cost and does not count it as a retired instruction.
            instr.category = "fused"
            count += 1
    return count


def _fold_counted_loops(module) -> int:
    """PPC branch-and-count: an induction-variable update (addi r, r, ±1)
    followed by a compare of that register feeding a branch folds into
    the CTR machinery (the paper: "the PowerPC branch and count
    instruction can fold an induction variable decrement, test ... and
    branch into a single instruction").  The compare is retagged fused."""
    protected = _protected_indexes(module)
    count = 0
    instrs = module.instrs

    def defining_addi(compare_index: int, reg: int, hops: int = 2) -> bool:
        """Is the nearest in-block definition of *reg* a ±1 addi?  The
        front end routes induction updates through a copy (``addi t, i,
        1; mov i, t``), so up to two mov indirections are chased."""
        for back in range(1, 10):
            j = compare_index - back
            if j < 0 or j + 1 in protected:
                return False
            prev = instrs[j]
            if prev.is_branch():
                return False
            if reg in {r for k, r in prev.reg_writes() if k == "r"}:
                if prev.op == "addi" and prev.imm in (1, -1):
                    return True
                if prev.op == "mov" and hops > 0:
                    return defining_addi(j, prev.rs, hops - 1)
                return False
        return False

    for index, instr in enumerate(instrs):
        if instr.op != "bcc":
            continue
        # Find the compare feeding this branch (the scheduler may have
        # hoisted it several slots up to hide its latency).
        for back in range(1, 8):
            j = index - back
            if j < 0 or j + 1 in protected:
                break
            prev = instrs[j]
            if ("cc", 0) in prev.reg_writes():
                if (prev.op in ("cmp", "cmpi")
                        and prev.category != "fused"
                        and defining_addi(j, prev.rs)):
                    prev.category = "fused"
                    count += 1
                break
            if prev.is_branch():
                break
    return count


def _fill_slots_globally(module) -> int:
    """MIPS cc profile: vendor compilers perform global instruction
    scheduling and fill nearly every branch delay slot from across basic
    blocks; the mobile translator only fills locally.  Model: remaining
    delay-slot nops become fused (zero-cost)."""
    count = 0
    for instr in module.instrs:
        if instr.op == "nop" and instr.category == "bnop":
            instr.category = "fused"
            count += 1
    return count


def _fold_twoop_moves(module) -> int:
    """x86 cc profile: the vendor compiler's register targeting avoids
    most two-operand copy instructions (it allocates the destination of
    an operation into its first source).  Model: `mov` instructions the
    translator inserted for two-operand form, between two machine
    registers, become fused."""
    from repro.targets.x86 import SLOT_BASE

    count = 0
    for instr in module.instrs:
        if (
            instr.op == "mov"
            and instr.category == "twoop"
            and instr.rd < SLOT_BASE
            and instr.rs < SLOT_BASE
        ):
            instr.category = "fused"
            count += 1
    return count


def _fold_loads(module) -> int:
    """x86: fold `lw at, [..]` + ALU consuming `at` into a memory-operand
    ALU op (delete the load, move its address into the ALU op's rt slot —
    semantically modeled by keeping the load but charging it as folded)."""
    protected = _protected_indexes(module)
    count = 0
    instrs = module.instrs
    for index in range(len(instrs) - 1):
        instr = instrs[index]
        if instr.op != "lw" or index + 1 in protected:
            continue
        # The consumer may be adjacent, or one independent instruction
        # later (the translator's two-operand mov often sits between).
        for hop in (1, 2):
            if index + hop >= len(instrs) or index + hop in protected:
                break
            nxt = instrs[index + hop]
            if hop == 2:
                between = instrs[index + 1]
                touches = {r for k, r in between.reg_writes() if k == "r"}
                if instr.rd in touches or between.is_branch():
                    break
            if nxt.op in _ALU_WRITERS and instr.rd >= 0 and (
                nxt.rt == instr.rd and nxt.rd != instr.rd
            ):
                # The pair issues as one memory-operand instruction on
                # x86: the load is fused (zero issue cost).
                instr.category = "fused"
                count += 1
                break
    return count
