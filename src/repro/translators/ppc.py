"""OmniVM → PowerPC 601 translation.

Every conditional branch needs an explicit ``cmpw``/``cmpwi`` into the
condition register first (category ``cmp``) — the dominant expansion the
paper measures on the PPC.  Constants usually fit ``cmpwi``'s 16-bit
immediate (so ``eqntott``'s compare-vs-constant pattern costs ``cmp``
but not ``ldi``, unlike MIPS).  Indexed loads/stores map 1:1 and the SFI
sequence uses the indexed store through the segment-base register.
"""

from __future__ import annotations

from repro.translators.generic import GenericRISCTranslator
from repro.utils.bits import s32


class PpcTranslator(GenericRISCTranslator):
    """Expansion rules for the PowerPC 601."""

    def _compare(self, a_reg: int, b_reg: int | None, imm: int) -> None:
        if b_reg is not None:
            self.emit("cmp", rs=a_reg, rt=b_reg, category="cmp")
        elif self.spec.fits_imm(imm):
            self.emit("cmpi", rs=a_reg, imm=s32(imm), category="cmp")
        else:
            at = self.mat_extra_imm(imm)
            self.emit("cmp", rs=a_reg, rt=at, category="cmp")

    def emit_branch(self, pred: str, a_reg: int, b_reg: int | None,
                    imm: int, target_omni: int) -> None:
        self._compare(a_reg, b_reg, imm)
        self.emit("bcc", pred=pred, target=target_omni)

    def emit_setcc(self, dest: int, pred: str, a_reg: int,
                   b_reg: int | None, imm: int) -> None:
        self._compare(a_reg, b_reg, imm)
        self.emit("setcc", rd=dest, pred=pred, category="cmp")
