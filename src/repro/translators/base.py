"""Load-time translation from OmniVM to native target code.

This is the core mechanism of the paper: when a host loads a mobile
module, the translator for the host's processor macro-expands each OmniVM
instruction into one or more native instructions, inlining SFI sequences
for unsafe stores and indirect jumps, and running cheap machine-dependent
optimizations (local scheduling, delay-slot filling, a global pointer,
peepholes).  Translation is deliberately fast and local — all global
optimization already happened in the compiler.

The driver here is target-independent; each target subclass implements
``expand_instr`` with its own instruction selection.  Every inserted
instruction is tagged with an expansion category so the harness can
reproduce Figure 1's dynamic expansion breakdown:

``addr``  extra address-formation instructions (indexed mode on MIPS,
          large offsets);
``cmp``   extra compare instructions (condition-code targets, non-zero
          comparisons on MIPS);
``ldi``   extra instructions materializing 32-bit immediates/addresses;
``bnop``  unfilled branch delay slots;
``sfi``   software fault isolation sequences;
``twoop`` x86 two-operand copies;
``sched`` (none at translate time; reserved).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import metrics
from repro.errors import TranslationError
from repro.omnivm.isa import INSTR_SIZE, VMInstr
from repro.omnivm.linker import LinkedProgram
from repro.omnivm.memory import CODE_BASE, DATA_BASE, SANDBOX_BASE, SANDBOX_MASK
from repro.sfi.policy import DEFAULT_POLICY, RETURN_SENTINEL, SandboxPolicy
from repro.targets.base import MInstr, TargetSpec
from repro.translators.sched import finalize_block, list_schedule
from repro.utils.bits import s32, u32


@dataclass(frozen=True)
class TranslationOptions:
    """Configuration for one translation.

    ``sfi``            — inline software fault isolation (mobile default).
    ``schedule``       — local list scheduling + delay-slot filling
                         (Table 5 turns this off).
    ``peephole``       — cheap translator peepholes (FP compare-branch
                         fusion and friends; also part of Table 5's
                         "translator optimizations").
    ``global_pointer`` — use a reserved register pointing into the data
                         segment so nearby global addresses cost one
                         instruction (the paper's SPARC translator does
                         this; ``None`` = target default).
    ``native_profile`` — ``None`` for mobile translation, ``"gcc"`` or
                         ``"cc"`` for the native-compiler stand-ins
                         (see repro.native.profiles).
    """

    sfi: bool = True
    schedule: bool = True
    peephole: bool = True
    global_pointer: bool | None = None
    native_profile: str | None = None
    #: Extension beyond the paper's shipped system: sandbox *loads* too
    #: (the paper notes SFI "can also support efficient read protection"
    #: but Omniware did not incorporate it).  Costs another mask/rebase
    #: pair per unprotected load; measured by the ablation bench.
    sfi_reads: bool = False

    def gp_enabled(self, spec: TargetSpec) -> bool:
        if self.global_pointer is not None:
            return self.global_pointer
        if self.native_profile == "cc":
            return True  # vendor compilers use a global pointer everywhere
        # The paper's mobile translators implement gp only on SPARC (as
        # does our gcc stand-in, which models the same code generator the
        # mobile path came from).
        return spec.name == "sparc"


@dataclass
class TranslatedModule:
    """The output of load-time translation, ready to execute."""

    spec: TargetSpec
    options: TranslationOptions
    instrs: list[MInstr] = field(default_factory=list)
    #: legal indirect-entry points: OmniVM address -> native index
    omni_to_native: dict[int, int] = field(default_factory=dict)
    entry_native: int = 0
    program: LinkedProgram | None = None
    #: direct control transfers whose OmniVM target lies outside this
    #: translation unit (declared via ``program.extern_addrs``): pairs of
    #: (native instruction index, OmniVM byte address).  Until the
    #: dynamic link-loader patches them against the full image they are
    #: emitted as self-loops, so an unpatched chunk can never escape.
    extern_fixups: list[tuple[int, int]] = field(default_factory=list)

    def static_expansion(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for instr in self.instrs:
            counts[instr.category] = counts.get(instr.category, 0) + 1
        return counts


#: Value loaded into the global-pointer register at module start.
def gp_value(spec: TargetSpec) -> int:
    return DATA_BASE + (1 << (spec.imm_bits - 1)) - 8


class BaseTranslator:
    """Target-independent translation driver."""

    #: OmniVM branch predicate tables reused by target expanders.
    BR_PRED = {
        "beq": "eq", "bne": "ne", "blt": "lt", "ble": "le",
        "bgt": "gt", "bge": "ge", "bltu": "ltu", "bleu": "leu",
        "bgtu": "gtu", "bgeu": "geu",
    }

    def __init__(self, spec: TargetSpec,
                 options: TranslationOptions | None = None,
                 policy: SandboxPolicy = DEFAULT_POLICY):
        self.spec = spec
        self.options = options or TranslationOptions()
        self.policy = policy
        self.out: list[MInstr] = []
        self._omni_addr = 0

    # -- target register helpers -------------------------------------------------

    def r(self, omni_reg: int) -> int:
        return self.spec.int_map[omni_reg]

    def f(self, omni_reg: int) -> int:
        return self.spec.fp_map[omni_reg]

    @property
    def at(self) -> int:
        return self.spec.reserved["at"]

    # -- emission ------------------------------------------------------------------

    def emit(self, op: str, category: str = "base", **kw) -> MInstr:
        instr = MInstr(op, omni_addr=self._omni_addr, category=category, **kw)
        self.out.append(instr)
        return instr

    def mat_imm(self, reg: int, value: int, category_extra: str = "ldi") -> None:
        """Materialize a 32-bit constant into *reg* (target-specific cost).

        The first instruction is charged as ``base`` when it replaces the
        OmniVM ``li``; callers materializing *extra* constants (e.g.
        branch immediates on MIPS) pass their own category.
        """
        value = u32(value)
        spec = self.spec
        if spec.imm_bits >= 32:
            self.emit("li", rd=reg, imm=value, category="base"
                      if category_extra == "ldi" else category_extra)
            return
        if spec.fits_imm(value):
            self.emit("li", rd=reg, imm=s32(value), category="base"
                      if category_extra == "ldi" else category_extra)
            return
        # Global pointer shortcut for data-segment addresses.
        if self.options.gp_enabled(spec) and self._gp_reaches(value):
            self.emit("addi", rd=reg, rs=self.spec.reserved["gp"],
                      imm=s32(value - gp_value(spec)),
                      category="base" if category_extra == "ldi"
                      else category_extra)
            return
        self.emit("lui", rd=reg, imm=(value >> 16) & 0xFFFF,
                  category="base" if category_extra == "ldi"
                  else category_extra)
        if value & 0xFFFF:
            self.emit("ori", rd=reg, rs=reg, imm=value & 0xFFFF,
                      category="ldi")

    def _gp_reaches(self, value: int) -> bool:
        if self.spec.reserved.get("gp", -1) < 0:
            return False
        if not (DATA_BASE <= value < DATA_BASE + (1 << 24)):
            return False
        return self.spec.fits_imm(value - gp_value(self.spec))

    def mat_extra_imm(self, value: int) -> int:
        """Materialize an extra constant into the scratch register,
        charging every instruction to ``ldi`` (Figure 1 semantics:
        'additional instructions to load an immediate')."""
        value = u32(value)
        spec = self.spec
        if spec.imm_bits >= 32:
            self.emit("li", rd=self.at, imm=value, category="ldi")
            return self.at
        if spec.fits_imm(value):
            self.emit("li", rd=self.at, imm=s32(value), category="ldi")
            return self.at
        self.emit("lui", rd=self.at, imm=(value >> 16) & 0xFFFF,
                  category="ldi")
        if value & 0xFFFF:
            self.emit("ori", rd=self.at, rs=self.at, imm=value & 0xFFFF,
                      category="ldi")
        return self.at

    # -- the driver ------------------------------------------------------------------

    def translate(self, program: LinkedProgram) -> TranslatedModule:
        with metrics.stage("translate"):
            module = self._translate(program)
        if metrics.active():
            metrics.count("translate.calls")
            metrics.count("translate.omni_instrs", len(program.instrs))
            metrics.count("translate.native_instrs", len(module.instrs))
            for category, total in module.static_expansion().items():
                metrics.count(f"translate.static.{category}", total)
        return module

    def _translate(self, program: LinkedProgram) -> TranslatedModule:
        from repro.sfi import rewrite
        from repro.sfi.policy import check_sentinel_clearance

        base_index = getattr(program, "base_index", 0)
        # The translation unit must stop short of the return-sentinel
        # slot (the last aligned code address is reserved; see policy).
        check_sentinel_clearance(base_index, len(program.instrs))
        entry_points = self._entry_points(program)
        boundaries = self._block_boundaries(program)
        module = TranslatedModule(self.spec, self.options, program=program)
        # Padded policy variant: align every indirect-entry anchor to a
        # pad_align-instruction bundle (padding is meaningless without
        # the SFI machinery it hardens).
        pad = self.policy.pad_align if self.options.sfi else 0

        # Pass 1: expand, one OmniVM instruction at a time, collecting
        # native blocks for scheduling.  Control targets temporarily hold
        # OmniVM byte addresses.
        omni_start_index: dict[int, int] = {}
        block: list[MInstr] = []
        fused_skip = False
        # A module that installs a virtual exception handler observes the
        # register file at a faulting instruction: schedule with memory
        # operations pinned so that delivery is precise.
        precise = any(i.op == "sethnd" for i in program.instrs)

        def flush_block() -> None:
            nonlocal block
            if not block:
                return
            if self.options.schedule:
                block = list_schedule(block, self.spec, precise)
            block = finalize_block(block, self.spec, self.options.schedule,
                                   precise)
            module.instrs.extend(block)
            block = []

        for index, instr in enumerate(program.instrs):
            omni_addr = CODE_BASE + (base_index + index) * INSTR_SIZE
            if omni_addr in boundaries:
                flush_block()
                if pad:
                    # The block is empty post-flush, so the anchor's
                    # native index is exactly len(module.instrs): bring
                    # it to the next bundle boundary.  The nops sit
                    # *between* blocks — finalize_block keeps delay
                    # slots inside their block, so padding never lands
                    # in one.
                    module.instrs.extend(rewrite.bundle_padding(
                        self.spec, self.policy, len(module.instrs),
                        omni_addr))
            omni_start_index[omni_addr] = len(module.instrs) + len(block)
            if fused_skip:
                # Second instruction of a fused pair: nothing to emit, but
                # its address maps to the fused sequence's position.
                fused_skip = False
                continue
            self._omni_addr = omni_addr
            self.out = []
            next_instr = (
                program.instrs[index + 1]
                if index + 1 < len(program.instrs) else None
            )
            next_is_boundary = (omni_addr + INSTR_SIZE) in boundaries
            fused_skip = self.expand_instr(
                instr, omni_addr,
                next_instr if (self.options.peephole and not next_is_boundary)
                else None,
            )
            block.extend(self.out)
            if self.out and (self.out[-1].is_branch()
                             or self.out[-1].op in ("bcc", "fbcc")):
                flush_block()
        flush_block()

        # Pass 2: resolve control targets and build the indirect map.
        extern_addrs = getattr(program, "extern_addrs", frozenset())
        for addr in entry_points:
            if addr in omni_start_index:
                module.omni_to_native[addr] = omni_start_index[addr]
        for native_index, native in enumerate(module.instrs):
            if native.target >= 0:
                target_native = omni_start_index.get(native.target)
                if target_native is None:
                    if native.target in extern_addrs:
                        # Cross-module target: leave a self-loop and let
                        # the link-loader patch it after splicing.
                        module.extern_fixups.append(
                            (native_index, native.target)
                        )
                        native.target = native_index
                        continue
                    raise TranslationError(
                        f"control target {native.target:#x} not translated"
                    )
                native.target = target_native
        if self.options.native_profile == "cc":
            from repro.translators.peephole import apply_cc_peepholes

            apply_cc_peepholes(module)
        module.entry_native = module.omni_to_native[program.entry_address]
        return module

    def _entry_points(self, program: LinkedProgram) -> set[int]:
        """Legal indirect-control destinations: function entries, return
        points, every direct branch target, and every code address the
        program can *materialize* — text symbols (covers code addresses
        patched into data, e.g. function-pointer tables) and code-segment
        ``li`` immediates (covers jump-table labels the linker resolved
        into register loads) — so the map is a superset of what
        well-formed code needs.

        For a per-module translation unit (``program.base_index`` > 0 or
        ``extern_addrs`` non-empty) only addresses *inside* the unit
        become entry points; foreign branch/call targets are dropped here
        and resolved by the link-loader against the spliced image."""
        base_index = getattr(program, "base_index", 0)
        code_lo = CODE_BASE + base_index * INSTR_SIZE
        code_hi = code_lo + len(program.instrs) * INSTR_SIZE
        points: set[int] = set()

        def add_code_address(address: int) -> None:
            if code_lo <= address < code_hi and address % INSTR_SIZE == 0:
                points.add(address)

        for name, (start, _end) in program.function_ranges.items():
            add_code_address(CODE_BASE + start * INSTR_SIZE)
        for address in program.symbols.values():
            add_code_address(address)
        for index, instr in enumerate(program.instrs):
            kind = instr.spec.kind
            if kind in ("call", "icall"):
                add_code_address(code_lo + (index + 1) * INSTR_SIZE)
            if kind in ("branch", "branchi", "jump", "call"):
                add_code_address(u32(instr.imm))
            elif kind == "li":
                add_code_address(u32(instr.imm))
        add_code_address(program.entry_address)
        return points

    def _block_boundaries(self, program: LinkedProgram) -> set[int]:
        bounds = self._entry_points(program)
        return bounds

    # -- to be provided per target ------------------------------------------------

    def expand_instr(self, instr: VMInstr, omni_addr: int,
                     next_instr: VMInstr | None) -> bool:
        """Expand one OmniVM instruction into ``self.out``.

        Returns True if *next_instr* was fused into this expansion and
        must be skipped by the driver.
        """
        raise NotImplementedError


def initial_register_state(spec: TargetSpec, machine) -> None:
    """Install the runtime's dedicated-register values into a machine:
    SFI masks/bases, the global pointer, the stack pointer, and the
    return sentinel conventions.  Called by the native loader."""
    from repro.omnivm.memory import STACK_TOP

    reserved = spec.reserved
    if reserved.get("sfi_mask", -1) >= 0:
        machine.regs[reserved["sfi_mask"]] = SANDBOX_MASK
    if reserved.get("sfi_base", -1) >= 0:
        machine.regs[reserved["sfi_base"]] = SANDBOX_BASE
    if reserved.get("sfi_code_base", -1) >= 0:
        machine.regs[reserved["sfi_code_base"]] = CODE_BASE
    if reserved.get("sfi_code_mask", -1) >= 0:
        machine.regs[reserved["sfi_code_mask"]] = DEFAULT_POLICY.code_mask
    if reserved.get("gp", -1) >= 0:
        machine.regs[reserved["gp"]] = gp_value(spec)
    machine.regs[spec.int_map[15]] = STACK_TOP
    machine.regs[spec.reserved["ra"]] = RETURN_SENTINEL
