"""Shared instruction-selection logic for the RISC target translators.

MIPS, SPARC and PowerPC share most expansion logic; they differ in

* the **branch model** (MIPS compare-and-branch-vs-zero vs condition
  codes) — hooks ``emit_branch`` / ``emit_setcc``;
* **addressing** (indexed mode availability, immediate widths) — driven
  by the TargetSpec;
* the **SFI sequences** — :mod:`repro.sfi.rewrite`.

The x86 translator subclasses this and additionally rewrites three-
operand ALU forms into two-operand ones.
"""

from __future__ import annotations

from repro.errors import TranslationError
from repro.omnivm.isa import VMInstr
from repro.sfi.rewrite import sandbox_jump_target, sandbox_store_address
from repro.translators.base import BaseTranslator
from repro.utils.bits import s32, u32

#: OmniVM ALU opcodes that map straight onto the union vocabulary.
_DIRECT_ALU = {
    "add": "add", "sub": "sub", "mul": "mul", "div": "div",
    "divu": "divu", "rem": "rem", "remu": "remu", "and": "and",
    "or": "or", "xor": "xor", "sll": "sll", "srl": "srl", "sra": "sra",
}
_DIRECT_ALUI = {
    "addi": ("addi", "add"), "andi": ("andi", "and"),
    "ori": ("ori", "or"), "xori": ("xori", "xor"),
    "slli": ("slli", "sll"), "srli": ("srli", "srl"),
    "srai": ("srai", "sra"), "muli": (None, "mul"),
}

_SET_PRED = {
    "seq": "eq", "sne": "ne", "slt": "lt", "sle": "le", "sgt": "gt",
    "sge": "ge", "sltu": "ltu", "sleu": "leu", "sgtu": "gtu",
    "sgeu": "geu",
}

_FCMP_PRED = {"fceq": "eq", "fclt": "lt", "fcle": "le"}

_NEG_PRED = {
    "eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt", "le": "gt",
    "gt": "le", "ltu": "geu", "geu": "ltu", "leu": "gtu", "gtu": "leu",
}

_LOAD_OPS = {"lb", "lbu", "lh", "lhu", "lw"}
_STORE_OPS = {"sb", "sh", "sw"}
_FLOAD_OPS = {"lfs", "lfd"}
_FSTORE_OPS = {"sfs", "sfd"}


class GenericRISCTranslator(BaseTranslator):
    """Instruction selection shared by the MIPS/SPARC/PPC translators."""

    # ---- per-target hooks -------------------------------------------------

    def emit_branch(self, pred: str, a_reg: int, b_reg: int | None,
                    imm: int, target_omni: int) -> None:
        """Emit a conditional branch ``a pred b`` (b_reg or imm)."""
        raise NotImplementedError

    def emit_setcc(self, dest: int, pred: str, a_reg: int,
                   b_reg: int | None, imm: int) -> None:
        """Emit a compare-to-register sequence."""
        raise NotImplementedError

    def emit_fp_setcc(self, dest: int, pred: str, fs: int, ft: int,
                      single: bool) -> None:
        suffix = "s" if single else ""
        self.emit("fcmp" + suffix, fs=fs, ft=ft)
        self.emit("setcc", rd=dest, pred=pred, category="cmp")

    # ---- main expansion ---------------------------------------------------------

    def expand_instr(self, instr: VMInstr, omni_addr: int,
                     next_instr: VMInstr | None) -> bool:
        op = instr.op
        spec = self.spec
        kind = instr.spec.kind

        if op in _DIRECT_ALU:
            self.alu_rr(_DIRECT_ALU[op], self.r(instr.rd), self.r(instr.rs),
                        self.r(instr.rt))
            return False
        if op in _SET_PRED:
            self.emit_setcc(self.r(instr.rd), _SET_PRED[op],
                            self.r(instr.rs), self.r(instr.rt), 0)
            return False
        if op.endswith("i") and op[:-1] in _SET_PRED:
            self.expand_setcc_imm(instr)
            return False
        if kind == "alui":
            self.expand_alui(instr)
            return False
        if op == "li":
            self.mat_imm(self.r(instr.rd), instr.imm)
            return False
        if op == "mov":
            self.emit("mov", rd=self.r(instr.rd), rs=self.r(instr.rs))
            return False
        if kind in ("load", "loadx", "fload", "floadx"):
            self.expand_load(instr)
            return False
        if kind in ("store", "storex", "fstore", "fstorex"):
            self.expand_store(instr)
            return False
        if kind == "falu":
            self.expand_falu(instr)
            return False
        if kind == "fcmp":
            return self.expand_fcmp(instr, next_instr)
        if kind == "cvt":
            self.emit(op, rd=self.r(instr.rd) if "d" in instr.spec.fmt else -1,
                      rs=self.r(instr.rs) if "s" in instr.spec.fmt else -1,
                      fd=self.f(instr.fd) if "D" in instr.spec.fmt else -1,
                      fs=self.f(instr.fs) if "S" in instr.spec.fmt else -1)
            return False
        if kind == "ext":
            self.emit(op, rd=self.r(instr.rd), rs=self.r(instr.rs))
            return False
        if kind == "branch":
            pred = self.BR_PRED[op]
            self.emit_branch(pred, self.r(instr.rs), self.r(instr.rt), 0,
                             u32(instr.imm))
            return False
        if kind == "branchi":
            pred = self.BR_PRED[op[:-1]]
            self.emit_branch(pred, self.r(instr.rs), None, instr.imm2,
                             u32(instr.imm))
            return False
        if op == "j":
            self.emit("j", target=u32(instr.imm))
            return False
        if op == "jal":
            self.emit("jal", target=u32(instr.imm), imm=omni_addr + 8)
            return False
        if op in ("jr", "jalr"):
            self.expand_indirect(instr, omni_addr)
            return False
        if op == "hostcall":
            self.emit("hostcall", imm=instr.imm)
            return False
        if op == "trap":
            self.emit("trap", imm=instr.imm)
            return False
        if op == "nop":
            self.emit("nop")
            return False
        if op == "sethnd":
            self.emit("sethnd", rs=self.r(instr.rs))
            return False
        raise TranslationError(f"cannot translate {instr}")  # pragma: no cover

    # ---- pieces -------------------------------------------------------------------

    def alu_rr(self, op: str, rd: int, rs: int, rt: int) -> None:
        self.emit(op, rd=rd, rs=rs, rt=rt)

    def alu_ri(self, op: str, rd: int, rs: int, imm: int) -> None:
        self.emit(op, rd=rd, rs=rs, imm=imm)

    def expand_alui(self, instr: VMInstr) -> None:
        imm_name, reg_name = _DIRECT_ALUI[instr.op]
        rd, rs = self.r(instr.rd), self.r(instr.rs)
        imm = instr.imm
        if instr.op in ("slli", "srli", "srai"):
            self.alu_ri(imm_name, rd, rs, imm & 31)
            return
        if imm_name is not None and (
            self.spec.fits_imm(imm)
            or (instr.op in ("andi", "ori", "xori")
                and 0 <= u32(imm) < (1 << self.spec.imm_bits))
        ):
            self.alu_ri(imm_name, rd, rs, s32(imm))
            return
        at = self.mat_extra_imm(imm)
        self.alu_rr(reg_name, rd, rs, at)

    def expand_setcc_imm(self, instr: VMInstr) -> None:
        pred = _SET_PRED[instr.op[:-1]]
        self.emit_setcc(self.r(instr.rd), pred, self.r(instr.rs), None,
                        instr.imm)

    # addressing ----------------------------------------------------------------

    def expand_load(self, instr: VMInstr) -> None:
        spec = self.spec
        op = instr.op
        is_fp = op.startswith("lf")
        indexed = op.endswith("x")
        dest_kw = ({"fd": self.f(instr.fd)} if is_fp
                   else {"rd": self.r(instr.rd)})
        base = self.r(instr.rs)
        if self.options.sfi and self.options.sfi_reads:
            self._expand_sandboxed_load(instr, is_fp, indexed, dest_kw, base)
            return
        if indexed:
            index = self.r(instr.rt)
            if spec.has_indexed_mem:
                self.emit(op, rs=base, rt=index, **dest_kw)
            else:
                self.emit("add", rd=self.at, rs=base, rt=index,
                          category="addr")
                self.emit(op[:-1], rs=self.at, imm=0, **dest_kw)
            return
        offset = instr.imm
        if spec.fits_imm(offset):
            self.emit(op, rs=base, imm=s32(offset), **dest_kw)
            return
        # Large offset: form the high part in the scratch register.
        self.emit("lui", rd=self.at, imm=(u32(offset) >> 16) & 0xFFFF,
                  category="addr")
        self.emit("add", rd=self.at, rs=self.at, rt=base, category="addr")
        low = s32(u32(offset) & 0xFFFF if u32(offset) & 0x8000 == 0
                  else (u32(offset) & 0xFFFF) - 0x10000)
        self.emit(op, rs=self.at, imm=low, **dest_kw)

    def _expand_sandboxed_load(self, instr: VMInstr, is_fp: bool,
                               indexed: bool, dest_kw: dict,
                               base: int) -> None:
        """Read protection (extension): sandbox load addresses exactly
        like store addresses.  sp-relative small offsets stay exempt."""
        offset = 0 if indexed else instr.imm
        index = self.r(instr.rt) if indexed else None
        plain_op = instr.op[:-1] if indexed else instr.op
        indexed_op = instr.op if indexed else instr.op + "x"
        sp_safe = (not indexed and instr.rs == 15
                   and -32768 <= offset <= 32767)
        if sp_safe:
            self.emit(plain_op, rs=base, imm=s32(offset), **dest_kw)
            return
        if not indexed and offset and not self.spec.fits_imm(offset):
            at = self.mat_extra_imm(offset)
            self.emit("add", rd=self.at, rs=base, rt=at, category="addr")
            base, offset = self.at, 0
        prefix, new_base, new_off, new_index = sandbox_store_address(
            self.spec, self.policy, base, offset, index, self._omni_addr
        )
        self.out.extend(prefix)
        if new_index is not None:
            self.emit(indexed_op, rs=new_base, rt=new_index, **dest_kw)
        else:
            self.emit(plain_op, rs=new_base, imm=new_off, **dest_kw)

    def expand_store(self, instr: VMInstr) -> None:
        spec = self.spec
        op = instr.op
        is_fp = op.startswith("sf")
        indexed = op.endswith("x")
        value_kw = ({"ft": self.f(instr.ft)} if is_fp
                    else {"rt": self.r(instr.rt)})
        base = self.r(instr.rs)
        index = self.r(instr.rd) if indexed else None
        offset = 0 if indexed else instr.imm
        plain_op = op[:-1] if indexed else op
        indexed_op = op if indexed else op + "x"

        # Stack-pointer-relative stores with small offsets are provably
        # safe (Wahbe et al.'s dedicated-register optimization): sp is
        # kept inside the sandbox by construction — the verifier rejects
        # modules that modify sp other than by small constants — and the
        # unmapped guard zones around the stack contain small-offset
        # excursions.  These stores need no sandboxing sequence.
        sp_safe = (
            not indexed
            and instr.rs == 15  # OmniVM sp
            and -32768 <= offset <= 32767
        )
        if self.options.sfi and not sp_safe:
            # Fold unfittable offsets into the base first.
            if not indexed and offset and not spec.fits_imm(offset):
                at = self.mat_extra_imm(offset)
                self.emit("add", rd=self.at, rs=base, rt=at, category="addr")
                base, offset = self.at, 0
            prefix, new_base, new_off, new_index = sandbox_store_address(
                spec, self.policy, base, offset, index, self._omni_addr
            )
            self.out.extend(prefix)
            if new_index is not None:
                if is_fp:
                    self.emit(indexed_op, rs=new_base, rd=new_index,
                              **value_kw)
                else:
                    self.emit(indexed_op, rs=new_base, rd=new_index,
                              **value_kw)
            else:
                self.emit(plain_op, rs=new_base, imm=new_off, **value_kw)
            return
        # No SFI: same addressing logic as loads.
        if indexed:
            if spec.has_indexed_mem:
                self.emit(indexed_op, rs=base, rd=index, **value_kw)
            else:
                self.emit("add", rd=self.at, rs=base, rt=index,
                          category="addr")
                self.emit(plain_op, rs=self.at, imm=0, **value_kw)
            return
        if spec.fits_imm(offset):
            self.emit(plain_op, rs=base, imm=s32(offset), **value_kw)
            return
        self.emit("lui", rd=self.at, imm=(u32(offset) >> 16) & 0xFFFF,
                  category="addr")
        self.emit("add", rd=self.at, rs=self.at, rt=base, category="addr")
        low = s32(u32(offset) & 0xFFFF if u32(offset) & 0x8000 == 0
                  else (u32(offset) & 0xFFFF) - 0x10000)
        self.emit(plain_op, rs=self.at, imm=low, **value_kw)

    # FP --------------------------------------------------------------------------

    def expand_falu(self, instr: VMInstr) -> None:
        fmt = instr.spec.fmt
        kwargs = {"fd": self.f(instr.fd), "fs": self.f(instr.fs)}
        if "T" in fmt:
            kwargs["ft"] = self.f(instr.ft)
        self.emit(instr.op, **kwargs)

    def expand_fcmp(self, instr: VMInstr, next_instr: VMInstr | None) -> bool:
        """FP compare to register; fuses with an immediately following
        branch-on-zero of the same register (peephole).

        The fused form still writes the compare result to ``rd`` — the
        destination is architecturally live after the branch — but the
        branch itself reuses the FP condition code instead of
        re-comparing ``rd`` against zero, which is where the fusion wins.
        """
        base = instr.op[:-1]
        single = instr.op.endswith("s")
        pred = _FCMP_PRED[base]
        if (
            next_instr is not None
            and next_instr.op in ("bnei", "beqi")
            and next_instr.rs == instr.rd
            and next_instr.imm2 == 0
        ):
            branch_pred = pred if next_instr.op == "bnei" else _NEG_PRED[pred]
            self.emit_fp_setcc(self.r(instr.rd), pred, self.f(instr.fs),
                               self.f(instr.ft), single)
            self.emit("fbcc", pred=branch_pred, target=u32(next_instr.imm))
            return True
        self.emit_fp_setcc(self.r(instr.rd), pred, self.f(instr.fs),
                           self.f(instr.ft), single)
        return False

    # control ---------------------------------------------------------------------

    def expand_indirect(self, instr: VMInstr, omni_addr: int) -> None:
        target = self.r(instr.rs)
        if self.options.sfi:
            prefix, target = sandbox_jump_target(
                self.spec, self.policy, target, omni_addr
            )
            self.out.extend(prefix)
        if instr.op == "jr":
            self.emit("jr", rs=target)
        else:
            self.emit("jalr", rs=target, imm=omni_addr + 8)
