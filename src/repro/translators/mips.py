"""OmniVM → MIPS translation.

MIPS's branch model: ``beq``/``bne`` compare two registers; the ordered
comparisons only exist against zero (``bltz``...).  General OmniVM
compare-and-branch therefore expands to ``slt`` + ``bne`` (category
``cmp``), and immediate comparisons must first load the constant
(category ``ldi``) unless it fits ``slti`` — precisely the expansion
behaviour Figure 1 reports for ``eqntott``/``compress``.
"""

from __future__ import annotations

from repro.translators.generic import GenericRISCTranslator
from repro.utils.bits import s32

ZERO = 0  # $zero

_ZERO_BRANCH = {"lt": "bltz", "le": "blez", "gt": "bgtz", "ge": "bgez"}


class MipsTranslator(GenericRISCTranslator):
    """Expansion rules for the MIPS R4400."""

    def emit_branch(self, pred: str, a_reg: int, b_reg: int | None,
                    imm: int, target_omni: int) -> None:
        at = self.at
        if b_reg is not None:
            if pred == "eq":
                self.emit("beq", rs=a_reg, rt=b_reg, target=target_omni)
            elif pred == "ne":
                self.emit("bne", rs=a_reg, rt=b_reg, target=target_omni)
            else:
                self._ordered_branch(pred, a_reg, b_reg, target_omni)
            return
        # Immediate comparisons.
        imm = s32(imm)
        if imm == 0:
            if pred == "eq":
                self.emit("beq", rs=a_reg, rt=ZERO, target=target_omni)
                return
            if pred == "ne":
                self.emit("bne", rs=a_reg, rt=ZERO, target=target_omni)
                return
            if pred in _ZERO_BRANCH:
                self.emit(_ZERO_BRANCH[pred], rs=a_reg, target=target_omni)
                return
            # Unsigned against zero: ltu never / geu always / leu==eq /
            # gtu==ne.
            if pred == "leu":
                self.emit("beq", rs=a_reg, rt=ZERO, target=target_omni)
                return
            if pred == "gtu":
                self.emit("bne", rs=a_reg, rt=ZERO, target=target_omni)
                return
            if pred == "geu":
                self.emit("j", target=target_omni)
                return
            if pred == "ltu":
                return  # never taken: no instruction at all
        if pred in ("eq", "ne"):
            self.mat_extra_imm(imm)
            self.emit("beq" if pred == "eq" else "bne", rs=a_reg, rt=at,
                      target=target_omni)
            return
        # Ordered immediate: use slti/sltiu where the constant fits.
        folded = self._slti_branch(pred, a_reg, imm, target_omni)
        if folded:
            return
        self.mat_extra_imm(imm)
        self._ordered_branch(pred, a_reg, at, target_omni)

    def _slti_branch(self, pred: str, a_reg: int, imm: int,
                     target_omni: int) -> bool:
        """a <pred> imm via slti/sltiu + branch-on-zero; True on success."""
        at = self.at
        unsigned = pred.endswith("u")
        base = pred[:-1] if unsigned else pred
        slt_imm = "sltiu" if unsigned else "slti"
        fits = self.spec.fits_imm
        if base in ("lt", "ge") and fits(imm):
            self.emit(slt_imm, rd=at, rs=a_reg, imm=imm, category="cmp")
            self.emit("bne" if base == "lt" else "beq", rs=at, rt=ZERO,
                      target=target_omni)
            return True
        if base in ("le", "gt") and fits(imm + 1) and (
            imm != 0x7FFFFFFF if not unsigned else imm != -1
        ):
            self.emit(slt_imm, rd=at, rs=a_reg, imm=imm + 1, category="cmp")
            self.emit("bne" if base == "le" else "beq", rs=at, rt=ZERO,
                      target=target_omni)
            return True
        return False

    def _ordered_branch(self, pred: str, a_reg: int, b_reg: int,
                        target_omni: int) -> None:
        at = self.at
        unsigned = pred.endswith("u")
        base = pred[:-1] if unsigned else pred
        slt = "sltu" if unsigned else "slt"
        if base == "lt":
            self.emit(slt, rd=at, rs=a_reg, rt=b_reg, category="cmp")
            branch = "bne"
        elif base == "ge":
            self.emit(slt, rd=at, rs=a_reg, rt=b_reg, category="cmp")
            branch = "beq"
        elif base == "gt":
            self.emit(slt, rd=at, rs=b_reg, rt=a_reg, category="cmp")
            branch = "bne"
        else:  # le
            self.emit(slt, rd=at, rs=b_reg, rt=a_reg, category="cmp")
            branch = "beq"
        self.emit(branch, rs=at, rt=ZERO, target=target_omni)

    def emit_setcc(self, dest: int, pred: str, a_reg: int,
                   b_reg: int | None, imm: int) -> None:
        at = self.at
        unsigned = pred.endswith("u")
        base = pred[:-1] if unsigned else pred
        slt = "sltu" if unsigned else "slt"
        slt_imm = "sltiu" if unsigned else "slti"
        if b_reg is None:
            imm = s32(imm)
            if base in ("eq", "ne") and 0 <= imm < (1 << 16):
                self.emit("xori", rd=dest, rs=a_reg, imm=imm)
                if base == "eq":
                    self.emit("sltiu", rd=dest, rs=dest, imm=1,
                              category="cmp")
                else:
                    self.emit("sltu", rd=dest, rs=ZERO, rt=dest,
                              category="cmp")
                return
            if base == "lt" and self.spec.fits_imm(imm):
                self.emit(slt_imm, rd=dest, rs=a_reg, imm=imm)
                return
            if base == "ge" and self.spec.fits_imm(imm):
                self.emit(slt_imm, rd=dest, rs=a_reg, imm=imm)
                self.emit("xori", rd=dest, rs=dest, imm=1, category="cmp")
                return
            b_reg = self.mat_extra_imm(imm)
        if base == "eq":
            self.emit("xor", rd=dest, rs=a_reg, rt=b_reg)
            self.emit("sltiu", rd=dest, rs=dest, imm=1, category="cmp")
        elif base == "ne":
            self.emit("xor", rd=dest, rs=a_reg, rt=b_reg)
            self.emit("sltu", rd=dest, rs=ZERO, rt=dest, category="cmp")
        elif base == "lt":
            self.emit(slt, rd=dest, rs=a_reg, rt=b_reg)
        elif base == "gt":
            self.emit(slt, rd=dest, rs=b_reg, rt=a_reg)
        elif base == "ge":
            self.emit(slt, rd=dest, rs=a_reg, rt=b_reg)
            self.emit("xori", rd=dest, rs=dest, imm=1, category="cmp")
        else:  # le
            self.emit(slt, rd=dest, rs=b_reg, rt=a_reg)
            self.emit("xori", rd=dest, rs=dest, imm=1, category="cmp")
