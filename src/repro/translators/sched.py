"""Local instruction scheduling and delay-slot filling.

The paper's translators perform *local* (basic-block) list scheduling —
"based on the algorithm described in [45]" (Wall's Mahler) — and report
in Table 5 that it recovers a large part of the SFI overhead by hiding
the sandboxing instructions in pipeline interlock slots.  This module
implements:

* a dependence-DAG **list scheduler** with latency-weighted critical-path
  priorities (memory operations keep program order against stores; the
  SFI sequences reorder freely around independent work, which is exactly
  the "scheduling hides SFI" effect);
* a **delay-slot filler** for MIPS/SPARC: the instruction immediately
  preceding a control transfer moves into its slot when independent;
  otherwise a ``nop`` (category ``bnop``) fills it.

Both run on straight-line runs of native instructions between block
boundaries, after translation and before execution.
"""

from __future__ import annotations

from repro.targets.base import MInstr, TargetSpec


def _mem_kind(instr: MInstr) -> str:
    if instr.is_store():
        return "store"
    if instr.is_load():
        return "load"
    if instr.op in ("hostcall", "trap"):
        return "barrier"
    return ""


def build_dependences(
    block: list[MInstr], precise: bool = False
) -> list[list[int]]:
    """Return successor lists: edges i -> j mean j must follow i.

    With *precise* set, every load and store is a full scheduling
    barrier.  Memory operations are the instructions that can raise an
    access violation, and a program that installs a virtual exception
    handler (``sethnd``) observes the register file at the faulting
    instruction — so no effect may be moved across one in either
    direction.  Programs without a handler cannot observe the
    imprecision (a propagated violation terminates the run), and keep
    the full scheduling freedom that hides the SFI sequences.
    """
    n = len(block)
    succs: list[list[int]] = [[] for _ in range(n)]
    last_write: dict[tuple[str, int], int] = {}
    last_reads: dict[tuple[str, int], list[int]] = {}
    last_store = -1
    open_loads: list[int] = []  # loads issued since the last store/barrier
    last_barrier = -1
    for j, instr in enumerate(block):
        preds: set[int] = set()
        for key in instr.reg_reads():
            if key in last_write:
                preds.add(last_write[key])
        for key in instr.reg_writes():
            if key in last_write:
                preds.add(last_write[key])  # WAW
            for reader in last_reads.get(key, ()):
                preds.add(reader)  # WAR
        kind = _mem_kind(instr)
        if precise and kind in ("load", "store"):
            kind = "barrier"
        if kind == "load":
            if last_store >= 0:
                preds.add(last_store)
        elif kind == "store":
            # A store must follow EVERY load issued since the previous
            # store, not just the most recent memory op — an earlier
            # load may alias the stored address.
            preds.update(open_loads)
            if last_store >= 0:
                preds.add(last_store)
        elif kind == "barrier":
            preds.update(range(j))
        if last_barrier >= 0:
            preds.add(last_barrier)
        for p in preds:
            if p != j:
                succs[p].append(j)
        for key in instr.reg_reads():
            last_reads.setdefault(key, []).append(j)
        for key in instr.reg_writes():
            last_write[key] = j
            last_reads[key] = []
        if kind == "store":
            last_store = j
            open_loads.clear()
        elif kind == "load":
            open_loads.append(j)
        elif kind == "barrier":
            last_barrier = j
            last_store = j
            open_loads.clear()
    return succs


def list_schedule(
    block: list[MInstr], spec: TargetSpec, precise: bool = False
) -> list[MInstr]:
    """Reorder *block* to reduce stalls; the final instruction stays last
    if it is a control transfer.  *precise* pins memory operations (see
    :func:`build_dependences`)."""
    if len(block) < 2:
        return block
    tail: list[MInstr] = []
    body = block
    if block[-1].is_branch() or block[-1].op in ("bcc", "fbcc"):
        body = block[:-1]
        tail = [block[-1]]
        if not body:
            return block
    succs = build_dependences(block, precise)
    n = len(body)
    indegree = [0] * n
    for i in range(n):
        for j in succs[i]:
            if j < n:
                indegree[j] += 1
    # Critical-path heights (latency-weighted).
    height = [0] * n
    for i in range(n - 1, -1, -1):
        latency = spec.timing.result_latency(body[i])
        best = 0
        for j in succs[i]:
            if j < n:
                best = max(best, height[j])
        height[i] = latency + best
    ready = [i for i in range(n) if indegree[i] == 0]
    # Operand availability times per register.
    available: dict[tuple[str, int], int] = {}
    clock = 0
    scheduled: list[int] = []
    in_ready = set(ready)
    while ready:
        # Pick the ready instruction that can issue earliest; break ties
        # by critical-path height, then original order (determinism).
        def start_time(i: int) -> int:
            t = clock
            for key in body[i].reg_reads():
                t = max(t, available.get(key, 0))
            return t

        ready.sort(key=lambda i: (start_time(i), -height[i], i))
        chosen = ready.pop(0)
        in_ready.discard(chosen)
        clock = max(clock + 1, start_time(chosen) + 1)
        latency = spec.timing.result_latency(body[chosen])
        for key in body[chosen].reg_writes():
            available[key] = clock + latency - 1
        scheduled.append(chosen)
        for j in succs[chosen]:
            if j < n and j not in in_ready and j not in scheduled:
                indegree[j] -= 1
                if indegree[j] == 0:
                    ready.append(j)
                    in_ready.add(j)
    if len(scheduled) != n:  # cycle safety net: keep original order
        return block
    result = [body[i] for i in scheduled]
    # The branch (if any) must still respect its dependences: it already
    # depended on everything it reads, and nothing was removed, so
    # appending it last is safe.
    result.extend(tail)
    return result


def finalize_block(
    block: list[MInstr], spec: TargetSpec, schedule: bool,
    precise: bool = False,
) -> list[MInstr]:
    """Append the delay slot for a block ending in a control transfer.

    A block produced by the translator contains at most one control
    transfer, and only as its final instruction.  When *schedule* is on,
    the immediately preceding independent instruction moves into the
    slot; otherwise (or when nothing is movable) a ``nop`` with category
    ``bnop`` fills it.
    """
    if not spec.delay_slots or not block:
        return block
    last = block[-1]
    if not (last.is_branch() or last.op in ("bcc", "fbcc")):
        return block
    filler: MInstr | None = None
    link_reg = spec.reserved.get("ra", -1)
    if precise and len(block) >= 2 and _mem_kind(block[-2]):
        # A faulting op must not slide past the branch (handler programs
        # observe state at the fault point); fill with a nop instead.
        return block + [MInstr("nop", omni_addr=last.omni_addr,
                               category="bnop")]
    if schedule and len(block) >= 2 and _can_fill(block[-2], last, link_reg):
        filler = block[-2]
        block = block[:-2] + [last, filler]
        return block
    return block + [MInstr("nop", omni_addr=last.omni_addr,
                           category="bnop")]


def _can_fill(candidate: MInstr, branch: MInstr, link_reg: int) -> bool:
    """May *candidate* move into *branch*'s delay slot?"""
    if candidate.is_branch() or candidate.op in (
        "bcc", "fbcc", "hostcall", "trap", "nop", "jal", "jalr", "jr", "j",
    ):
        return False
    written = set(candidate.reg_writes())
    if any(read in written for read in branch.reg_reads()):
        return False
    # Calls write the link register BEFORE the delay slot executes, so a
    # candidate that reads or writes it must not move into the slot
    # (the classic $ra-in-jal-delay-slot hazard).
    if branch.op in ("jal", "jalr") and link_reg >= 0:
        touched = set(candidate.reg_reads()) | written
        if ("r", link_reg) in touched:
            return False
    # cc state: a cc-writing candidate cannot slide past a cc-reading
    # branch (checked above via reg sets, which include ("cc", 0)).
    return True
