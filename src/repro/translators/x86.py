"""OmniVM → x86 (Pentium) translation.

Two mechanical differences from the RISC targets:

* x86 ALU instructions are **two-operand** (``dst op= src``): the
  translator inserts a ``mov`` when the OmniVM destination differs from
  its first source (category ``twoop``), exploiting commutativity where
  possible;
* there are **no dedicated SFI registers** — the sandbox masks are 32-bit
  immediates, and ``ebp`` serves as the single address scratch.

Immediates are full 32-bit, so x86 never pays ``ldi`` expansion, and its
``cmp`` instructions take immediates directly — x86's compact translated
code is why its mobile ratios in Table 3 track native so closely despite
the tiny register file.
"""

from __future__ import annotations

from repro.translators.generic import GenericRISCTranslator
from repro.utils.bits import s32

_COMMUTATIVE = {"add", "mul", "and", "or", "xor"}


class X86Translator(GenericRISCTranslator):
    """Expansion rules for the Pentium-class x86 model."""

    def alu_rr(self, op: str, rd: int, rs: int, rt: int) -> None:
        if rd == rs:
            self.emit(op, rd=rd, rs=rd, rt=rt)
            return
        if rd == rt:
            if op in _COMMUTATIVE:
                self.emit(op, rd=rd, rs=rd, rt=rs)
                return
            at = self.at
            self.emit("mov", rd=at, rs=rt, category="twoop")
            self.emit("mov", rd=rd, rs=rs, category="twoop")
            self.emit(op, rd=rd, rs=rd, rt=at)
            return
        self.emit("mov", rd=rd, rs=rs, category="twoop")
        self.emit(op, rd=rd, rs=rd, rt=rt)

    def alu_ri(self, op: str, rd: int, rs: int, imm: int) -> None:
        if rd != rs:
            self.emit("mov", rd=rd, rs=rs, category="twoop")
        self.emit(op, rd=rd, rs=rd, imm=imm)

    def _compare(self, a_reg: int, b_reg: int | None, imm: int) -> None:
        if b_reg is not None:
            self.emit("cmp", rs=a_reg, rt=b_reg, category="cmp")
        else:
            self.emit("cmpi", rs=a_reg, imm=s32(imm), category="cmp")

    def emit_branch(self, pred: str, a_reg: int, b_reg: int | None,
                    imm: int, target_omni: int) -> None:
        self._compare(a_reg, b_reg, imm)
        self.emit("bcc", pred=pred, target=target_omni)

    def emit_setcc(self, dest: int, pred: str, a_reg: int,
                   b_reg: int | None, imm: int) -> None:
        self._compare(a_reg, b_reg, imm)
        self.emit("setcc", rd=dest, pred=pred, category="cmp")
