"""OmniVM → SPARC translation.

SPARC is also a condition-code machine (``subcc`` + ``bcc``), but with
only 13-bit immediates — more constants spill into ``sethi``/``or``
pairs (category ``ldi``).  What keeps SPARC competitive (the paper's
best SFI ratio, 1.05) is the **global pointer**: the translator
addresses globals near ``%g5`` with a single add, and resolved-at-link
symbols mean the gp never needs saving/restoring across calls.
"""

from __future__ import annotations

from repro.translators.generic import GenericRISCTranslator
from repro.utils.bits import s32


class SparcTranslator(GenericRISCTranslator):
    """Expansion rules for SPARC."""

    def _compare(self, a_reg: int, b_reg: int | None, imm: int) -> None:
        if b_reg is not None:
            self.emit("cmp", rs=a_reg, rt=b_reg, category="cmp")
        elif self.spec.fits_imm(imm):
            self.emit("cmpi", rs=a_reg, imm=s32(imm), category="cmp")
        else:
            at = self.mat_extra_imm(imm)
            self.emit("cmp", rs=a_reg, rt=at, category="cmp")

    def emit_branch(self, pred: str, a_reg: int, b_reg: int | None,
                    imm: int, target_omni: int) -> None:
        self._compare(a_reg, b_reg, imm)
        self.emit("bcc", pred=pred, target=target_omni)

    def emit_setcc(self, dest: int, pred: str, a_reg: int,
                   b_reg: int | None, imm: int) -> None:
        self._compare(a_reg, b_reg, imm)
        self.emit("setcc", rd=dest, pred=pred, category="cmp")
