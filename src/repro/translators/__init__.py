"""Translator registry: architecture name -> (spec factory, translator)."""

from __future__ import annotations

from repro.errors import UnknownArchitectureError
from repro.targets import mips as mips_target
from repro.targets import ppc as ppc_target
from repro.targets import sparc as sparc_target
from repro.targets import x86 as x86_target
from repro.targets.base import TargetSpec
from repro.translators.base import (
    BaseTranslator,
    TranslatedModule,
    TranslationOptions,
)
from repro.translators.mips import MipsTranslator
from repro.translators.ppc import PpcTranslator
from repro.translators.sparc import SparcTranslator
from repro.translators.x86 import X86Translator

ARCHITECTURES = ("mips", "sparc", "ppc", "x86")

_REGISTRY = {
    "mips": (mips_target.spec, MipsTranslator),
    "sparc": (sparc_target.spec, SparcTranslator),
    "ppc": (ppc_target.spec, PpcTranslator),
    "x86": (x86_target.spec, X86Translator),
}


def _lookup(arch: str):
    """Single point of registry resolution: every unknown-architecture
    report in the package comes from here."""
    try:
        return _REGISTRY[arch]
    except (KeyError, TypeError):
        raise UnknownArchitectureError(arch, ARCHITECTURES) from None


def target_spec(arch: str) -> TargetSpec:
    """Fresh TargetSpec for *arch*.

    Raises :class:`~repro.errors.UnknownArchitectureError` (a
    :class:`KeyError` subclass) on unknown names.
    """
    return _lookup(arch)[0]()


def make_translator(arch: str,
                    options: TranslationOptions | None = None,
                    policy=None) -> BaseTranslator:
    spec_factory, translator_cls = _lookup(arch)
    if policy is None:
        return translator_cls(spec_factory(), options)
    return translator_cls(spec_factory(), options, policy)


def translate(program, arch: str,
              options: TranslationOptions | None = None,
              policy=None) -> TranslatedModule:
    """Translate a linked OmniVM program for *arch*.

    *policy* optionally overrides the sandbox policy the emitted SFI
    sequences are checked against (per-module policies in dynamic
    links); ``None`` keeps each translator's default."""
    return make_translator(arch, options, policy).translate(program)


__all__ = [
    "ARCHITECTURES",
    "BaseTranslator",
    "TranslatedModule",
    "TranslationOptions",
    "make_translator",
    "target_spec",
    "translate",
]
