"""Lowering from the MiniC AST to the three-address IR.

Design notes:

* Register values are always 32-bit (``i32``/``u32``) or float
  (``f32``/``f64``).  Sub-word integer types exist only as *memory* types:
  loads extend, stores truncate, and explicit casts to ``char``/``short``
  emit ``sext8``/``zext16``-style cast instructions.
* Scalar locals whose address is never taken live in virtual registers;
  everything else (arrays, structs, address-taken scalars) gets a stack
  slot and explicit address arithmetic.
* Data layout — field offsets, array scaling — is fully lowered here, so
  the optimizer sees plain adds/multiplies.  This mirrors the paper's
  argument for defining data formats in the virtual machine: the compiler,
  not the translator, owns layout and can optimize the address code.
"""

from __future__ import annotations

import struct as _struct

from repro.errors import CompileError
from repro.frontend import ast
from repro.frontend.sema import Symbol
from repro.frontend.types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    decay,
    usual_arithmetic_conversion,
)
from repro.ir.ir import (
    BasicBlock,
    Const,
    Function,
    GlobalData,
    GlobalRef,
    Instr,
    Module,
    Operand,
    Temp,
)
from repro.utils.bits import s32, u32

_CMP_OP = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
_BIN_OP = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
           "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr"}


def ir_type_of(ty: Type) -> str:
    """IR *register* type for a MiniC type (sub-word ints widen)."""
    ty = decay(ty)
    if isinstance(ty, IntType):
        return "i32" if ty.signed else "u32"
    if isinstance(ty, FloatType):
        return "f32" if ty.size == 4 else "f64"
    if isinstance(ty, PointerType):
        return "u32"
    if isinstance(ty, FunctionType):
        return "u32"
    raise CompileError(f"no register type for {ty}")


def mem_type_of(ty: Type) -> str:
    """IR *memory* type (what load/store use) for a MiniC scalar type."""
    ty = decay(ty)
    if isinstance(ty, IntType):
        return {1: "i8", 2: "i16", 4: "i32"}[ty.size] if ty.signed else \
            {1: "u8", 2: "u16", 4: "u32"}[ty.size]
    if isinstance(ty, FloatType):
        return "f32" if ty.size == 4 else "f64"
    if isinstance(ty, (PointerType, FunctionType)):
        return "u32"
    raise CompileError(f"no memory type for {ty}")


class IRBuilder:
    """Builds one IR :class:`Module` from one analyzed translation unit."""

    def __init__(self, module_name: str = "module",
                 structs: dict[str, StructType] | None = None):
        self.structs: dict[str, StructType] = structs or {}
        self.module = Module(module_name)
        self.func: Function | None = None
        self.block: BasicBlock | None = None
        self._label_counter = 0
        self._string_counter = 0
        self._string_pool: dict[str, str] = {}
        # Symbol -> Temp (register locals) or ("slot", index).
        self.symbol_homes: dict[int, object] = {}
        self._loop_stack: list[tuple[str, str]] = []  # (continue, break)

    # -- low-level emission helpers ------------------------------------------

    def new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f".L{self._label_counter}_{hint}"

    def start_block(self, label: str) -> BasicBlock:
        assert self.func is not None
        block = BasicBlock(label)
        self.func.blocks.append(block)
        self.block = block
        return block

    def emit(self, instr: Instr) -> Instr:
        assert self.block is not None, "emission outside a block"
        if self.block.terminator is not None:
            # Unreachable code (e.g. statements after return): emit into a
            # fresh dead block that unreachable-code removal deletes.
            self.start_block(self.new_label("dead"))
        if instr.is_terminator():
            self.block.terminator = instr
        else:
            self.block.instrs.append(instr)
        return instr

    def temp(self, ty: str) -> Temp:
        assert self.func is not None
        return self.func.new_temp(ty)

    def emit_bin(self, subop: str, a: Operand, b: Operand, ty: str) -> Temp:
        dest = self.temp(ty)
        self.emit(Instr("bin", dest, [a, b], subop=subop))
        return dest

    def emit_copy(self, dest: Temp, src: Operand) -> None:
        self.emit(Instr("copy", dest, [src]))

    def emit_jump(self, target: str) -> None:
        self.emit(Instr("jump", targets=[target]))

    def emit_branch(self, pred: str, a: Operand, b: Operand, cmp_ty: str,
                    if_true: str, if_false: str) -> None:
        self.emit(Instr("br", args=[a, b], subop=pred, cmp_ty=cmp_ty,
                        targets=[if_true, if_false]))

    # -- conversions ------------------------------------------------------------

    def convert(self, value: Operand, to_ty: str) -> Operand:
        """Convert a register value between IR register types."""
        from_ty = value.ty
        if from_ty == to_ty:
            return value
        if isinstance(value, Const):
            return self._convert_const(value, to_ty)
        int_kinds = ("i32", "u32")
        if from_ty in int_kinds and to_ty in int_kinds:
            # Same bits, different signedness: re-type without code.
            dest = self.temp(to_ty)
            self.emit(Instr("cast", dest, [value], subop="bitcast"))
            return dest
        dest = self.temp(to_ty)
        if from_ty in int_kinds and to_ty in ("f32", "f64"):
            subop = "i2f" if from_ty == "i32" else "u2f"
        elif from_ty in ("f32", "f64") and to_ty in int_kinds:
            subop = "f2i"
        elif from_ty == "f32" and to_ty == "f64":
            subop = "fext"
        elif from_ty == "f64" and to_ty == "f32":
            subop = "ftrunc"
        else:
            raise CompileError(f"cannot convert {from_ty} to {to_ty}")
        self.emit(Instr("cast", dest, [value], subop=subop))
        return dest

    def _convert_const(self, value: Const, to_ty: str) -> Const:
        if to_ty in ("i32", "u32"):
            if value.ty in ("f32", "f64"):
                as_int = int(value.value)
            else:
                as_int = int(value.value)
            as_int = s32(as_int) if to_ty == "i32" else u32(as_int)
            return Const(as_int, to_ty)
        if to_ty == "f32":
            packed = _struct.unpack("<f", _struct.pack("<f", float(value.value)))[0]
            return Const(packed, "f32")
        return Const(float(value.value), "f64")

    def narrow_cast(self, value: Operand, target: IntType) -> Operand:
        """Explicit cast to a sub-word integer type (C truncation)."""
        if target.size == 4:
            return self.convert(value, "i32" if target.signed else "u32")
        value = self.convert(value, "i32" if target.signed else "u32")
        subop = f"{'sext' if target.signed else 'zext'}{target.size * 8}"
        dest = self.temp("i32" if target.signed else "u32")
        self.emit(Instr("cast", dest, [value], subop=subop))
        return dest

    # -- module level ------------------------------------------------------------

    def build(self, unit: ast.TranslationUnit) -> Module:
        for decl in unit.decls:
            if isinstance(decl, ast.GlobalVar) and not decl.is_extern:
                self._build_global(decl)
        for decl in unit.decls:
            if isinstance(decl, ast.FunctionDef) and decl.body is not None:
                self._build_function(decl)
        return self.module

    def _build_global(self, decl: ast.GlobalVar) -> None:
        ty = decl.decl_type
        size = max(ty.size, 1)
        align = max(ty.align, 1)
        image = bytearray()
        relocs: list[tuple[int, str]] = []
        if decl.init_string is not None:
            data = decl.init_string.encode("latin-1") + b"\x00"
            image.extend(data[:size])
        elif decl.init_list is not None:
            assert isinstance(ty, ArrayType)
            element = ty.element
            for index, item in enumerate(decl.init_list):
                offset = index * element.size
                encoded, reloc = _encode_scalar_init(item, element)
                while len(image) < offset:
                    image.append(0)
                image.extend(encoded)
                if reloc is not None:
                    relocs.append((offset, reloc))
        elif decl.init is not None:
            encoded, reloc = _encode_scalar_init(decl.init, ty)
            image.extend(encoded)
            if reloc is not None:
                relocs.append((0, reloc))
        self.module.globals.append(
            GlobalData(decl.name, size, align, bytes(image), relocs)
        )

    def intern_string(self, text: str) -> GlobalRef:
        if text in self._string_pool:
            return GlobalRef(self._string_pool[text])
        name = f".str{self._string_counter}"
        self._string_counter += 1
        self._string_pool[text] = name
        data = text.encode("latin-1") + b"\x00"
        self.module.globals.append(
            GlobalData(name, len(data), 1, data, readonly=True)
        )
        return GlobalRef(name)

    # -- functions -----------------------------------------------------------------

    def _build_function(self, decl: ast.FunctionDef) -> None:
        func_type = decl.func_type
        assert isinstance(func_type, FunctionType)
        func = Function(decl.name, return_ty=(
            "void" if func_type.return_type.is_void()
            else ir_type_of(func_type.return_type)
        ))
        self.func = func
        self.module.functions.append(func)
        self.start_block("entry")
        for symbol, param_ty in zip(decl.param_symbols, func_type.params):
            assert isinstance(symbol, Symbol)
            temp = func.new_temp(ir_type_of(param_ty))
            func.params.append(temp)
            if symbol.address_taken:
                slot = func.add_slot(symbol.name, 4, 4)
                self.symbol_homes[id(symbol)] = ("slot", slot, param_ty)
                addr = self.temp("u32")
                self.emit(Instr("frameaddr", addr, slot=slot))
                self.emit(Instr("store", args=[addr, temp],
                                mem_ty=mem_type_of(param_ty)))
            else:
                self.symbol_homes[id(symbol)] = temp
        self._build_block(decl.body)
        # Fall off the end: implicit return.
        if self.block is not None and self.block.terminator is None:
            if func.return_ty == "void":
                self.emit(Instr("ret"))
            else:
                zero = Const(0.0 if func.return_ty in ("f32", "f64") else 0,
                             func.return_ty)
                self.emit(Instr("ret", args=[zero]))
        self.func = None
        self.block = None

    # -- statements -------------------------------------------------------------------

    def _build_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self._build_stmt(stmt)

    def _build_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._build_block(stmt)
        elif isinstance(stmt, ast.DeclGroup):
            for decl in stmt.decls:
                self._build_decl(decl)
        elif isinstance(stmt, ast.DeclStmt):
            self._build_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._build_if(stmt)
        elif isinstance(stmt, ast.While):
            self._build_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._build_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._build_for(stmt)
        elif isinstance(stmt, ast.Break):
            self.emit_jump(self._loop_stack[-1][1])
        elif isinstance(stmt, ast.Continue):
            self.emit_jump(self._loop_stack[-1][0])
        elif isinstance(stmt, ast.Return):
            self._build_return(stmt)
        else:  # pragma: no cover
            raise CompileError(f"cannot lower {type(stmt).__name__}", stmt.loc)

    def _build_decl(self, stmt: ast.DeclStmt) -> None:
        symbol = stmt.symbol
        assert isinstance(symbol, Symbol)
        ty = stmt.decl_type
        needs_slot = symbol.address_taken or ty.is_array() or ty.is_struct()
        if needs_slot:
            slot = self.func.add_slot(symbol.name, max(ty.size, 1), max(ty.align, 4))
            self.symbol_homes[id(symbol)] = ("slot", slot, ty)
            if stmt.init is not None:
                addr = self.temp("u32")
                self.emit(Instr("frameaddr", addr, slot=slot))
                value = self.lower_expr(stmt.init)
                value = self._coerce_for_store(value, ty)
                self.emit(Instr("store", args=[addr, value],
                                mem_ty=mem_type_of(ty)))
            elif stmt.init_list is not None:
                assert isinstance(ty, ArrayType)
                base = self.temp("u32")
                self.emit(Instr("frameaddr", base, slot=slot))
                element = ty.element
                for index, item in enumerate(stmt.init_list):
                    value = self.lower_expr(item)
                    value = self._coerce_for_store(value, element)
                    addr = self.emit_bin(
                        "add", base, Const(index * element.size, "u32"), "u32"
                    )
                    self.emit(Instr("store", args=[addr, value],
                                    mem_ty=mem_type_of(element)))
        else:
            temp = self.temp(ir_type_of(ty))
            self.symbol_homes[id(symbol)] = temp
            if stmt.init is not None:
                value = self.lower_expr(stmt.init)
                value = self._coerce_for_store(value, ty)
                self.emit_copy(temp, value)
            else:
                zero = Const(0.0 if temp.ty in ("f32", "f64") else 0, temp.ty)
                self.emit_copy(temp, zero)

    def _build_if(self, stmt: ast.If) -> None:
        then_label = self.new_label("then")
        end_label = self.new_label("endif")
        else_label = self.new_label("else") if stmt.otherwise else end_label
        self.lower_condition(stmt.cond, then_label, else_label)
        self.start_block(then_label)
        self._build_stmt(stmt.then)
        if self.block.terminator is None:
            self.emit_jump(end_label)
        if stmt.otherwise is not None:
            self.start_block(else_label)
            self._build_stmt(stmt.otherwise)
            if self.block.terminator is None:
                self.emit_jump(end_label)
        self.start_block(end_label)

    def _build_while(self, stmt: ast.While) -> None:
        head = self.new_label("while")
        body = self.new_label("body")
        end = self.new_label("endwhile")
        self.emit_jump(head)
        self.start_block(head)
        self.lower_condition(stmt.cond, body, end)
        self.start_block(body)
        self._loop_stack.append((head, end))
        self._build_stmt(stmt.body)
        self._loop_stack.pop()
        if self.block.terminator is None:
            self.emit_jump(head)
        self.start_block(end)

    def _build_do_while(self, stmt: ast.DoWhile) -> None:
        body = self.new_label("dobody")
        cond = self.new_label("docond")
        end = self.new_label("enddo")
        self.emit_jump(body)
        self.start_block(body)
        self._loop_stack.append((cond, end))
        self._build_stmt(stmt.body)
        self._loop_stack.pop()
        if self.block.terminator is None:
            self.emit_jump(cond)
        self.start_block(cond)
        self.lower_condition(stmt.cond, body, end)
        self.start_block(end)

    def _build_for(self, stmt: ast.For) -> None:
        head = self.new_label("for")
        body = self.new_label("forbody")
        step = self.new_label("forstep")
        end = self.new_label("endfor")
        if stmt.init is not None:
            self._build_stmt(stmt.init)
        self.emit_jump(head)
        self.start_block(head)
        if stmt.cond is not None:
            self.lower_condition(stmt.cond, body, end)
        else:
            self.emit_jump(body)
        self.start_block(body)
        self._loop_stack.append((step, end))
        self._build_stmt(stmt.body)
        self._loop_stack.pop()
        if self.block.terminator is None:
            self.emit_jump(step)
        self.start_block(step)
        if stmt.step is not None:
            self.lower_expr(stmt.step)
        self.emit_jump(head)
        self.start_block(end)

    def _build_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            self.emit(Instr("ret"))
            return
        value = self.lower_expr(stmt.value)
        value = self.convert(value, self.func.return_ty)
        self.emit(Instr("ret", args=[value]))

    # -- conditions (short-circuit) -------------------------------------------------

    def lower_condition(self, expr: ast.Expr, if_true: str, if_false: str) -> None:
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            mid = self.new_label("and")
            self.lower_condition(expr.left, mid, if_false)
            self.start_block(mid)
            self.lower_condition(expr.right, if_true, if_false)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            mid = self.new_label("or")
            self.lower_condition(expr.left, if_true, mid)
            self.start_block(mid)
            self.lower_condition(expr.right, if_true, if_false)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.lower_condition(expr.operand, if_false, if_true)
            return
        if isinstance(expr, ast.Binary) and expr.op in _CMP_OP:
            left_ty = decay(expr.left.ty)
            right_ty = decay(expr.right.ty)
            cmp_ty = self._comparison_type(left_ty, right_ty)
            a = self.convert(self.lower_expr(expr.left), cmp_ty)
            b = self.convert(self.lower_expr(expr.right), cmp_ty)
            self.emit_branch(_CMP_OP[expr.op], a, b, cmp_ty, if_true, if_false)
            return
        value = self.lower_expr(expr)
        zero = Const(0.0 if value.ty in ("f32", "f64") else 0, value.ty)
        self.emit_branch("ne", value, zero, value.ty, if_true, if_false)

    def _comparison_type(self, left: Type, right: Type) -> str:
        if left.is_pointer() or right.is_pointer():
            return "u32"
        common = usual_arithmetic_conversion(left, right)
        return ir_type_of(common)

    # -- expressions -----------------------------------------------------------------

    def lower_expr(self, expr: ast.Expr) -> Operand:
        if isinstance(expr, ast.IntLiteral):
            if expr.unsigned:
                return Const(u32(expr.value), "u32")
            return Const(s32(expr.value), "i32")
        if isinstance(expr, ast.CharLiteral):
            return Const(expr.value, "i32")
        if isinstance(expr, ast.FloatLiteral):
            return Const(expr.value, "f64")
        if isinstance(expr, ast.StringLiteral):
            return self.intern_string(expr.value)
        if isinstance(expr, ast.Identifier):
            return self._lower_identifier(expr)
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Postfix):
            return self._lower_incdec(expr.operand, expr.op, prefix=False)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._lower_assign(expr)
        if isinstance(expr, ast.Conditional):
            return self._lower_conditional(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        if isinstance(expr, ast.Index):
            return self._load_lvalue(expr)
        if isinstance(expr, ast.Member):
            return self._load_lvalue(expr)
        if isinstance(expr, ast.Cast):
            return self._lower_cast(expr)
        if isinstance(expr, ast.SizeOf):
            ty = expr.target_type if expr.target_type is not None else expr.operand.ty
            return Const(ty.size, "u32")
        raise CompileError(f"cannot lower {type(expr).__name__}", expr.loc)

    def _home_of(self, symbol: Symbol):
        return self.symbol_homes.get(id(symbol))

    def _resolve(self, ty: Type) -> Type:
        """Replace a forward-referenced (incomplete) struct type with its
        completed layout; recurses through pointers and arrays."""
        if isinstance(ty, StructType):
            return self.structs.get(ty.name, ty)
        if isinstance(ty, PointerType):
            return PointerType(self._resolve(ty.pointee))
        if isinstance(ty, ArrayType):
            return ArrayType(self._resolve(ty.element), ty.count)
        return ty

    def _lower_identifier(self, expr: ast.Identifier) -> Operand:
        symbol = expr.symbol
        assert isinstance(symbol, Symbol)
        if symbol.kind in ("func", "host"):
            return GlobalRef(symbol.name)
        if symbol.kind == "global":
            if symbol.ty.is_array() or symbol.ty.is_struct():
                return GlobalRef(symbol.name)
            dest = self.temp(ir_type_of(symbol.ty))
            self.emit(Instr("load", dest, [GlobalRef(symbol.name)],
                            mem_ty=mem_type_of(symbol.ty)))
            return dest
        home = self._home_of(symbol)
        if isinstance(home, Temp):
            return home
        assert home is not None, f"no home for {symbol.name}"
        _, slot, ty = home
        addr = self.temp("u32")
        self.emit(Instr("frameaddr", addr, slot=slot))
        if ty.is_array() or ty.is_struct():
            return addr
        dest = self.temp(ir_type_of(ty))
        self.emit(Instr("load", dest, [addr], mem_ty=mem_type_of(ty)))
        return dest

    # -- lvalues ------------------------------------------------------------------

    def lower_address(self, expr: ast.Expr) -> tuple[Operand, Type]:
        """Compute the address of an lvalue; returns (address, object type)."""
        if isinstance(expr, ast.Identifier):
            symbol = expr.symbol
            assert isinstance(symbol, Symbol)
            if symbol.kind == "global":
                return GlobalRef(symbol.name), symbol.ty
            if symbol.kind in ("func", "host"):
                return GlobalRef(symbol.name), symbol.ty
            home = self._home_of(symbol)
            if isinstance(home, Temp):
                raise CompileError(
                    f"internal: register local {symbol.name!r} has no address",
                    expr.loc,
                )
            _, slot, ty = home
            addr = self.temp("u32")
            self.emit(Instr("frameaddr", addr, slot=slot))
            return addr, ty
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointer = self.lower_expr(expr.operand)
            pointee = decay(expr.operand.ty).pointee  # type: ignore[union-attr]
            return pointer, pointee
        if isinstance(expr, ast.Index):
            base_ty = decay(expr.base.ty)
            assert isinstance(base_ty, PointerType)
            element = self._resolve(base_ty.pointee)
            base = self.lower_expr(expr.base)
            index = self.convert(self.lower_expr(expr.index), "i32")
            scaled = self._scale(index, element.size)
            addr = self.emit_bin("add", self.convert(base, "u32"),
                                 self.convert(scaled, "u32"), "u32")
            return addr, element
        if isinstance(expr, ast.Member):
            if expr.arrow:
                base = self.lower_expr(expr.base)
                struct_ty = decay(expr.base.ty).pointee  # type: ignore[union-attr]
            else:
                base, struct_ty = self.lower_address(expr.base)
            struct_ty = self._resolve(struct_ty)
            assert isinstance(struct_ty, StructType)
            field = struct_ty.field_named(expr.name)
            if field.offset == 0:
                return self.convert(base, "u32"), field.type
            addr = self.emit_bin("add", self.convert(base, "u32"),
                                 Const(field.offset, "u32"), "u32")
            return addr, field.type
        raise CompileError(
            f"expression is not an lvalue: {type(expr).__name__}", expr.loc
        )

    def _scale(self, index: Operand, size: int) -> Operand:
        if size == 1:
            return index
        if isinstance(index, Const):
            return Const(s32(int(index.value) * size), index.ty)
        return self.emit_bin("mul", index, Const(size, index.ty), index.ty)

    def _load_lvalue(self, expr: ast.Expr) -> Operand:
        addr, ty = self.lower_address(expr)
        if ty.is_array() or ty.is_struct():
            return self.convert(addr, "u32")  # decay to address
        dest = self.temp(ir_type_of(ty))
        self.emit(Instr("load", dest, [self.convert(addr, "u32")],
                        mem_ty=mem_type_of(ty)))
        return dest

    def _coerce_for_store(self, value: Operand, target: Type) -> Operand:
        target = decay(target)
        return self.convert(value, ir_type_of(target))

    # -- operators -----------------------------------------------------------------

    def _lower_unary(self, expr: ast.Unary) -> Operand:
        if expr.op == "&":
            if isinstance(expr.operand, ast.Identifier):
                symbol = expr.operand.symbol
                assert isinstance(symbol, Symbol)
                if symbol.kind in ("func", "host"):
                    return GlobalRef(symbol.name)
            addr, _ = self.lower_address(expr.operand)
            return self.convert(addr, "u32")
        if expr.op == "*":
            return self._load_lvalue(expr)
        if expr.op in ("++", "--"):
            return self._lower_incdec(expr.operand, expr.op, prefix=True)
        operand = self.lower_expr(expr.operand)
        if expr.op == "-":
            ty = operand.ty
            zero = Const(0.0 if ty in ("f32", "f64") else 0, ty)
            return self.emit_bin("sub", zero, operand, ty)
        if expr.op == "~":
            value = self.convert(operand, ir_type_of(decay(expr.operand.ty)))
            return self.emit_bin("xor", value, Const(-1, value.ty), value.ty)
        if expr.op == "!":
            dest = self.temp("i32")
            zero = Const(0.0 if operand.ty in ("f32", "f64") else 0, operand.ty)
            self.emit(Instr("cmp", dest, [operand, zero], subop="eq",
                            cmp_ty=operand.ty))
            return dest
        raise CompileError(f"cannot lower unary {expr.op!r}", expr.loc)

    def _lower_incdec(self, target: ast.Expr, op: str, prefix: bool) -> Operand:
        delta_op = "add" if op == "++" else "sub"
        target_ty = decay(target.ty)
        step = (self._resolve(target_ty.pointee).size
                if target_ty.is_pointer() else 1)  # type: ignore[union-attr]
        if isinstance(target, ast.Identifier) and isinstance(
            self._home_of(target.symbol), Temp
        ):
            home = self._home_of(target.symbol)
            old = home
            if not prefix:
                old = self.temp(home.ty)
                self.emit_copy(old, home)
            if home.ty in ("f32", "f64"):
                delta = Const(float(step), home.ty)
            else:
                delta = Const(step, home.ty)
            new = self.emit_bin(delta_op, home, delta, home.ty)
            self.emit_copy(home, new)
            return home if prefix else old
        addr, obj_ty = self.lower_address(target)
        addr = self.convert(addr, "u32")
        reg_ty = ir_type_of(obj_ty)
        old = self.temp(reg_ty)
        self.emit(Instr("load", old, [addr], mem_ty=mem_type_of(obj_ty)))
        delta = Const(float(step) if reg_ty in ("f32", "f64") else step, reg_ty)
        new = self.emit_bin(delta_op, old, delta, reg_ty)
        self.emit(Instr("store", args=[addr, new], mem_ty=mem_type_of(obj_ty)))
        return new if prefix else old

    def _lower_binary(self, expr: ast.Binary) -> Operand:
        op = expr.op
        if op == ",":
            self.lower_expr(expr.left)
            return self.lower_expr(expr.right)
        if op in ("&&", "||"):
            return self._lower_logical(expr)
        if op in _CMP_OP:
            left_ty = decay(expr.left.ty)
            right_ty = decay(expr.right.ty)
            cmp_ty = self._comparison_type(left_ty, right_ty)
            a = self.convert(self.lower_expr(expr.left), cmp_ty)
            b = self.convert(self.lower_expr(expr.right), cmp_ty)
            dest = self.temp("i32")
            self.emit(Instr("cmp", dest, [a, b], subop=_CMP_OP[op], cmp_ty=cmp_ty))
            return dest
        left_ty = decay(expr.left.ty)
        right_ty = decay(expr.right.ty)
        # Pointer arithmetic.
        if op in ("+", "-") and left_ty.is_pointer() and right_ty.is_integer():
            base = self.convert(self.lower_expr(expr.left), "u32")
            index = self.convert(self.lower_expr(expr.right), "i32")
            scaled = self.convert(
                self._scale(index, self._resolve(left_ty.pointee).size), "u32")
            return self.emit_bin(_BIN_OP[op], base, scaled, "u32")
        if op == "+" and right_ty.is_pointer() and left_ty.is_integer():
            base = self.convert(self.lower_expr(expr.right), "u32")
            index = self.convert(self.lower_expr(expr.left), "i32")
            scaled = self.convert(
                self._scale(index, self._resolve(right_ty.pointee).size), "u32")
            return self.emit_bin("add", base, scaled, "u32")
        if op == "-" and left_ty.is_pointer() and right_ty.is_pointer():
            a = self.convert(self.lower_expr(expr.left), "u32")
            b = self.convert(self.lower_expr(expr.right), "u32")
            diff = self.emit_bin("sub", a, b, "u32")
            size = self._resolve(left_ty.pointee).size
            diff = self.convert(diff, "i32")
            if size == 1:
                return diff
            return self.emit_bin("div", diff, Const(size, "i32"), "i32")
        if op in ("<<", ">>"):
            value = self.convert(self.lower_expr(expr.left),
                                 ir_type_of(left_ty))
            amount = self.convert(self.lower_expr(expr.right), "i32")
            subop = "shl" if op == "<<" else "shr"
            return self.emit_bin(subop, value, amount, value.ty)
        common = ir_type_of(usual_arithmetic_conversion(left_ty, right_ty))
        a = self.convert(self.lower_expr(expr.left), common)
        b = self.convert(self.lower_expr(expr.right), common)
        return self.emit_bin(_BIN_OP[op], a, b, common)

    def _lower_logical(self, expr: ast.Binary) -> Operand:
        result = self.temp("i32")
        true_label = self.new_label("ltrue")
        false_label = self.new_label("lfalse")
        end_label = self.new_label("lend")
        self.lower_condition(expr, true_label, false_label)
        self.start_block(true_label)
        self.emit_copy(result, Const(1, "i32"))
        self.emit_jump(end_label)
        self.start_block(false_label)
        self.emit_copy(result, Const(0, "i32"))
        self.emit_jump(end_label)
        self.start_block(end_label)
        return result

    def _lower_assign(self, expr: ast.Assign) -> Operand:
        target = expr.target
        target_ty = decay(target.ty)
        # Register-resident scalar local.
        if isinstance(target, ast.Identifier) and isinstance(
            self._home_of(target.symbol), Temp
        ):
            home = self._home_of(target.symbol)
            if expr.op == "=":
                value = self._coerce_for_store(self.lower_expr(expr.value), target.ty)
                self.emit_copy(home, value)
                return home
            new = self._compound_value(expr, home, target_ty)
            self.emit_copy(home, new)
            return home
        addr, obj_ty = self.lower_address(target)
        addr = self.convert(addr, "u32")
        if expr.op == "=":
            value = self._coerce_for_store(self.lower_expr(expr.value), obj_ty)
            self.emit(Instr("store", args=[addr, value], mem_ty=mem_type_of(obj_ty)))
            return value
        old = self.temp(ir_type_of(obj_ty))
        self.emit(Instr("load", old, [addr], mem_ty=mem_type_of(obj_ty)))
        new = self._compound_value(expr, old, target_ty)
        new = self._coerce_for_store(new, obj_ty)
        self.emit(Instr("store", args=[addr, new], mem_ty=mem_type_of(obj_ty)))
        return new

    def _compound_value(self, expr: ast.Assign, old: Operand, target_ty: Type) -> Operand:
        binop = expr.op[:-1]
        value_ty = decay(expr.value.ty)
        if target_ty.is_pointer() and binop in ("+", "-"):
            index = self.convert(self.lower_expr(expr.value), "i32")
            scaled = self.convert(
                self._scale(index, self._resolve(target_ty.pointee).size),
                "u32",  # type: ignore[union-attr]
            )
            return self.emit_bin(_BIN_OP[binop], self.convert(old, "u32"),
                                 scaled, "u32")
        if binop in ("<<", ">>"):
            amount = self.convert(self.lower_expr(expr.value), "i32")
            ty = ir_type_of(target_ty)
            return self.emit_bin("shl" if binop == "<<" else "shr",
                                 self.convert(old, ty), amount, ty)
        common = ir_type_of(usual_arithmetic_conversion(target_ty, value_ty)) \
            if value_ty.is_arithmetic() and target_ty.is_arithmetic() \
            else ir_type_of(target_ty)
        a = self.convert(old, common)
        b = self.convert(self.lower_expr(expr.value), common)
        result = self.emit_bin(_BIN_OP[binop], a, b, common)
        return self.convert(result, ir_type_of(target_ty))

    def _lower_conditional(self, expr: ast.Conditional) -> Operand:
        result_ty = ir_type_of(decay(expr.ty))
        result = self.temp(result_ty)
        then_label = self.new_label("cthen")
        else_label = self.new_label("celse")
        end_label = self.new_label("cend")
        self.lower_condition(expr.cond, then_label, else_label)
        self.start_block(then_label)
        self.emit_copy(result, self.convert(self.lower_expr(expr.then), result_ty))
        self.emit_jump(end_label)
        self.start_block(else_label)
        self.emit_copy(result,
                       self.convert(self.lower_expr(expr.otherwise), result_ty))
        self.emit_jump(end_label)
        self.start_block(end_label)
        return result

    def _lower_call(self, expr: ast.Call) -> Operand:
        func_expr = expr.func
        # Unwrap explicit deref of function pointers: (*fp)(...)
        while isinstance(func_expr, ast.Unary) and func_expr.op == "*":
            func_expr = func_expr.operand
        callee_ty = decay(func_expr.ty)
        if callee_ty.is_pointer() and callee_ty.pointee.is_function():  # type: ignore[union-attr]
            func_type = callee_ty.pointee  # type: ignore[union-attr]
        else:
            func_type = func_expr.ty
        assert isinstance(func_type, FunctionType)
        args: list[Operand] = []
        for i, arg in enumerate(expr.args):
            value = self.lower_expr(arg)
            if i < len(func_type.params):
                value = self._coerce_for_store(value, func_type.params[i])
            args.append(value)
        dest = None
        if not func_type.return_type.is_void():
            dest = self.temp(ir_type_of(func_type.return_type))
        if isinstance(func_expr, ast.Identifier):
            symbol = func_expr.symbol
            assert isinstance(symbol, Symbol)
            if symbol.kind == "host":
                if symbol.name == "sethandler":
                    # Virtual exception model: becomes the `sethnd`
                    # OmniVM instruction, not a host call.
                    self.emit(Instr("sethnd", None, args))
                    return Const(0, "i32")
                self.emit(Instr("hostcall", dest, args, name=symbol.name))
                return dest if dest is not None else Const(0, "i32")
            if symbol.kind == "func":
                self.emit(Instr("call", dest, args, name=symbol.name))
                return dest if dest is not None else Const(0, "i32")
        pointer = self.convert(self.lower_expr(func_expr), "u32")
        self.emit(Instr("icall", dest, [pointer] + args))
        return dest if dest is not None else Const(0, "i32")

    def _lower_cast(self, expr: ast.Cast) -> Operand:
        value = self.lower_expr(expr.operand)
        target = decay(expr.target_type)
        if target.is_void():
            return Const(0, "i32")
        if isinstance(target, IntType) and target.size < 4:
            return self.narrow_cast(value, target)
        return self.convert(value, ir_type_of(target))


def _encode_scalar_init(expr: ast.Expr, ty: Type) -> tuple[bytes, str | None]:
    """Encode a constant global initializer; returns (bytes, reloc symbol)."""
    from repro.frontend.parser import _eval_const_int

    target = decay(ty)
    if isinstance(expr, ast.StringLiteral):
        # char *p = "..." — handled by the caller as a pooled string would
        # be better, but global string pointers are encoded as inline data
        # plus a reloc by the driver; keep it simple: not supported here.
        raise CompileError("string-pointer global initializers are not supported; "
                           "use a char array", expr.loc)
    if isinstance(expr, ast.Identifier) and isinstance(expr.symbol, object):
        symbol = expr.symbol
        if symbol is not None and getattr(symbol, "kind", "") in ("func", "global"):
            return _struct.pack("<I", 0), symbol.name
    if isinstance(expr, ast.Unary) and expr.op == "&":
        inner = expr.operand
        if isinstance(inner, ast.Identifier) and inner.symbol is not None:
            return _struct.pack("<I", 0), inner.symbol.name
        raise CompileError("unsupported address initializer", expr.loc)
    if isinstance(expr, ast.FloatLiteral) or (
        isinstance(target, FloatType)
    ):
        value = _const_float(expr)
        if isinstance(target, FloatType) and target.size == 4:
            return _struct.pack("<f", value), None
        if isinstance(target, FloatType):
            return _struct.pack("<d", value), None
        return _struct.pack("<i", int(value)), None
    value = _eval_const_int(expr)
    if value is None:
        if isinstance(expr, ast.Unary) and expr.op == "-" and isinstance(
            expr.operand, ast.FloatLiteral
        ):
            fvalue = -expr.operand.value
            if isinstance(target, FloatType) and target.size == 4:
                return _struct.pack("<f", fvalue), None
            return _struct.pack("<d", fvalue), None
        raise CompileError("global initializer must be a constant", expr.loc)
    if isinstance(target, IntType):
        size = target.size
        fmt = {1: "<b", 2: "<h", 4: "<i"}[size] if target.signed else \
            {1: "<B", 2: "<H", 4: "<I"}[size]
        mask = (1 << (size * 8)) - 1
        raw = value & mask
        if target.signed and raw >= (1 << (size * 8 - 1)):
            raw -= 1 << (size * 8)
        return _struct.pack(fmt, raw), None
    if isinstance(target, FloatType):
        fmt = "<f" if target.size == 4 else "<d"
        return _struct.pack(fmt, float(value)), None
    if target.is_pointer():
        return _struct.pack("<I", u32(value)), None
    raise CompileError(f"cannot initialize {ty} with a constant", expr.loc)


def _const_float(expr: ast.Expr) -> float:
    from repro.frontend.parser import _eval_const_int

    if isinstance(expr, ast.FloatLiteral):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-":
        return -_const_float(expr.operand)
    value = _eval_const_int(expr)
    if value is None:
        raise CompileError("global float initializer must be constant", expr.loc)
    return float(value)


def build_module(
    unit: ast.TranslationUnit,
    name: str = "module",
    structs: dict[str, StructType] | None = None,
) -> Module:
    """Lower an analyzed translation unit to an IR module."""
    return IRBuilder(name, structs).build(unit)
