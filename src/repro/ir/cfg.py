"""Control-flow graph analyses over the IR.

Provides predecessor maps, reverse postorder, iterative dominators, and
natural-loop detection.  These are consumed by the optimizer (LICM needs
loops; DCE and liveness need orderings) and by the register allocator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.ir import BasicBlock, Function


def successors(func: Function) -> dict[str, list[str]]:
    return {b.label: b.successors() for b in func.blocks}


def predecessors(func: Function) -> dict[str, list[str]]:
    preds: dict[str, list[str]] = {b.label: [] for b in func.blocks}
    for block in func.blocks:
        for succ in block.successors():
            preds[succ].append(block.label)
    return preds


def reverse_postorder(func: Function) -> list[str]:
    """Labels in reverse postorder from the entry (unreachable blocks are
    excluded — callers that mutate the function should run
    :func:`remove_unreachable` first)."""
    succ = successors(func)
    visited: set[str] = set()
    order: list[str] = []

    entry = func.entry.label
    # Iterative DFS to avoid recursion limits on long CFGs.
    stack: list[tuple[str, int]] = [(entry, 0)]
    visited.add(entry)
    while stack:
        label, index = stack[-1]
        succs = succ[label]
        if index < len(succs):
            stack[-1] = (label, index + 1)
            child = succs[index]
            if child not in visited:
                visited.add(child)
                stack.append((child, 0))
        else:
            order.append(label)
            stack.pop()
    order.reverse()
    return order


def remove_unreachable(func: Function) -> int:
    """Delete blocks not reachable from the entry; returns removed count."""
    reachable = set(reverse_postorder(func))
    before = len(func.blocks)
    func.blocks = [b for b in func.blocks if b.label in reachable]
    return before - len(func.blocks)


def dominators(func: Function) -> dict[str, set[str]]:
    """Classic iterative dominator sets (adequate for these CFG sizes)."""
    order = reverse_postorder(func)
    preds = predecessors(func)
    entry = func.entry.label
    all_labels = set(order)
    dom: dict[str, set[str]] = {label: set(all_labels) for label in order}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for label in order:
            if label == entry:
                continue
            pred_doms = [dom[p] for p in preds[label] if p in dom]
            new = set.intersection(*pred_doms) if pred_doms else set()
            new.add(label)
            if new != dom[label]:
                dom[label] = new
                changed = True
    return dom


@dataclass
class Loop:
    """A natural loop: header plus the set of member block labels."""

    header: str
    body: set[str] = field(default_factory=set)  # includes the header

    def __contains__(self, label: str) -> bool:
        return label in self.body


def natural_loops(func: Function) -> list[Loop]:
    """Find natural loops from back edges (edges ``t -> h`` where ``h``
    dominates ``t``).  Loops sharing a header are merged.  The returned
    list is sorted innermost-first (by body size) so LICM can process
    inner loops before outer ones."""
    dom = dominators(func)
    succ = successors(func)
    preds = predecessors(func)
    loops: dict[str, Loop] = {}
    for tail_label in dom:
        for head in succ.get(tail_label, []):
            if head in dom.get(tail_label, set()):
                loop = loops.setdefault(head, Loop(head, {head}))
                # Walk predecessors from the tail to collect the body.
                stack = [tail_label]
                while stack:
                    node = stack.pop()
                    if node in loop.body:
                        continue
                    loop.body.add(node)
                    stack.extend(p for p in preds.get(node, []))
    result = list(loops.values())
    result.sort(key=lambda lp: len(lp.body))
    return result


def loop_exits(func: Function, loop: Loop) -> list[tuple[str, str]]:
    """Edges leaving the loop, as (from_label, to_label) pairs."""
    exits: list[tuple[str, str]] = []
    block_map = func.block_map()
    for label in loop.body:
        for succ_label in block_map[label].successors():
            if succ_label not in loop.body:
                exits.append((label, succ_label))
    return exits


def block_order_for_layout(func: Function) -> list[BasicBlock]:
    """Blocks in reverse postorder, for final code layout (keeps fallthrough
    chains mostly intact and deterministic)."""
    block_map = func.block_map()
    return [block_map[label] for label in reverse_postorder(func)]
