"""Human-readable IR dumps (debugging aid and golden-test substrate)."""

from __future__ import annotations

from repro.ir.ir import Function, Module


def function_to_text(func: Function) -> str:
    """Render one function; stable across runs for use in tests."""
    return str(func)


def module_to_text(module: Module) -> str:
    return str(module)


def summarize(module: Module) -> dict[str, dict[str, int]]:
    """Per-function instruction-count summary keyed by opcode, used by
    optimizer tests to assert 'pass X removed all the Y instructions'."""
    summary: dict[str, dict[str, int]] = {}
    for func in module.functions:
        counts: dict[str, int] = {}
        for block in func.blocks:
            for instr in block.all_instrs():
                key = f"{instr.op}.{instr.subop}" if instr.subop else instr.op
                counts[key] = counts.get(key, 0) + 1
        summary[func.name] = counts
    return summary
