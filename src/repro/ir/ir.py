"""Three-address intermediate representation.

The IR sits between the language front ends (MiniC, MiniLisp) and the two
back ends (the OmniVM code generator and the direct-to-native backends used
as the paper's `cc`/`gcc` stand-ins).  It is a conventional CFG of basic
blocks holding three-address instructions over an unbounded set of typed
virtual registers (*temps*).  It is deliberately **not** SSA: temps may be
redefined, and the optimizer uses classic dataflow (liveness, reaching
definitions within loops) instead of phi nodes.  This matches the 1990s
compilers the paper used and keeps every pass easy to audit.

IR types are short strings: ``i8 u8 i16 u16 i32 u32 f32 f64`` (``void``
for calls without results).  Pointers are ``u32`` addresses — the front end
has already lowered data layout to explicit address arithmetic, which is
exactly the property the paper highlights (OmniVM lets the *compiler* define
layout so address arithmetic is exposed to optimization).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IRError

INT_TYPES = {"i8", "u8", "i16", "u16", "i32", "u32"}
FLOAT_TYPES = {"f32", "f64"}
ALL_TYPES = INT_TYPES | FLOAT_TYPES | {"void"}

TYPE_SIZE = {"i8": 1, "u8": 1, "i16": 2, "u16": 2, "i32": 4, "u32": 4,
             "f32": 4, "f64": 8}

#: Binary opcodes.  Shift/div/rem/compare signedness comes from the type.
BINARY_OPS = {"add", "sub", "mul", "div", "rem", "and", "or", "xor",
              "shl", "shr"}

#: Comparison predicates (signedness from the operand type).
CMP_PREDS = {"eq", "ne", "lt", "le", "gt", "ge"}

#: Predicate negation, used when inverting branches.
NEGATED_PRED = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt",
                "le": "gt", "gt": "le"}

#: Predicate with swapped operands (a pred b  ==  b SWAPPED[pred] a).
SWAPPED_PRED = {"eq": "eq", "ne": "ne", "lt": "gt", "gt": "lt",
                "le": "ge", "ge": "le"}


def is_signed(ty: str) -> bool:
    return ty in ("i8", "i16", "i32")


def is_float(ty: str) -> bool:
    return ty in FLOAT_TYPES


# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Temp:
    """A virtual register."""

    id: int
    ty: str

    def __str__(self) -> str:
        return f"%t{self.id}:{self.ty}"


@dataclass(frozen=True)
class Const:
    """A literal constant operand.  Integers are stored as Python ints in
    signed canonical form; floats as Python floats."""

    value: int | float
    ty: str

    def __str__(self) -> str:
        return f"{self.value}:{self.ty}"


@dataclass(frozen=True)
class GlobalRef:
    """The link-time address of a global variable or function."""

    name: str

    ty: str = "u32"

    def __str__(self) -> str:
        return f"@{self.name}"


Operand = Temp | Const | GlobalRef


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------


@dataclass
class Instr:
    """One three-address instruction.

    ``op`` selects the kind:

    ============  =========================================================
    op            meaning / fields used
    ============  =========================================================
    ``copy``      dest = args[0]
    ``bin``       dest = args[0] <subop> args[1]  (type = dest.ty)
    ``cmp``       dest:i32 = (args[0] <pred:subop> args[1]), cmp_ty attr
    ``cast``      dest = convert(args[0]) from args[0].ty to dest.ty
    ``load``      dest = mem[args[0]], memory type ``mem_ty``
    ``store``     mem[args[0]] = args[1], memory type ``mem_ty``
    ``frameaddr`` dest:u32 = address of stack slot ``slot``
    ``call``      dest? = call name(args)  (direct)
    ``icall``     dest? = call through pointer args[0] with args[1:]
    ``hostcall``  dest? = host API call ``name``
    ============  =========================================================

    Terminators (stored in :attr:`BasicBlock.terminator`):

    ============  =========================================================
    ``jump``      to targets[0]
    ``br``        if args[0] <pred:subop> args[1] (cmp_ty) then targets[0]
                  else targets[1]
    ``ret``       return args[0] if present
    ============  =========================================================
    """

    op: str
    dest: Temp | None = None
    args: list[Operand] = field(default_factory=list)
    subop: str = ""
    mem_ty: str = ""
    cmp_ty: str = ""
    name: str = ""
    slot: int = -1
    targets: list[str] = field(default_factory=list)

    def is_terminator(self) -> bool:
        return self.op in ("jump", "br", "ret")

    def has_side_effects(self) -> bool:
        """True if the instruction cannot be removed even when dead."""
        return self.op in ("store", "call", "icall", "hostcall", "jump", "br", "ret")

    def may_trap(self) -> bool:
        """True if executing the instruction may raise (div by zero,
        access violation); such instructions must not be hoisted past
        guards or speculated."""
        if self.op in ("load",):
            return True
        if self.op == "bin" and self.subop in ("div", "rem"):
            return True
        return False

    def uses(self) -> list[Operand]:
        return list(self.args)

    def used_temps(self) -> list[Temp]:
        return [a for a in self.args if isinstance(a, Temp)]

    def replace_uses(self, mapping: dict[Temp, Operand]) -> None:
        self.args = [mapping.get(a, a) if isinstance(a, Temp) else a
                     for a in self.args]

    def __str__(self) -> str:
        parts: list[str] = []
        if self.dest is not None:
            parts.append(f"{self.dest} = ")
        parts.append(self.op)
        if self.subop:
            parts.append(f".{self.subop}")
        if self.mem_ty:
            parts.append(f".{self.mem_ty}")
        if self.cmp_ty:
            parts.append(f"[{self.cmp_ty}]")
        if self.name:
            parts.append(f" @{self.name}")
        if self.slot >= 0:
            parts.append(f" slot{self.slot}")
        if self.args:
            parts.append(" " + ", ".join(str(a) for a in self.args))
        if self.targets:
            parts.append(" -> " + ", ".join(self.targets))
        return "".join(parts)


# ---------------------------------------------------------------------------
# Blocks, functions, modules
# ---------------------------------------------------------------------------


@dataclass
class BasicBlock:
    label: str
    instrs: list[Instr] = field(default_factory=list)
    terminator: Instr | None = None

    def successors(self) -> list[str]:
        if self.terminator is None:
            return []
        return list(self.terminator.targets)

    def all_instrs(self) -> list[Instr]:
        if self.terminator is None:
            return list(self.instrs)
        return self.instrs + [self.terminator]

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"  {i}" for i in self.instrs)
        if self.terminator is not None:
            lines.append(f"  {self.terminator}")
        return "\n".join(lines)


@dataclass
class StackSlot:
    """A frame-allocated object (address-taken local, array, struct)."""

    name: str
    size: int
    align: int = 4


@dataclass
class Function:
    name: str
    params: list[Temp] = field(default_factory=list)
    return_ty: str = "void"
    blocks: list[BasicBlock] = field(default_factory=list)
    stack_slots: list[StackSlot] = field(default_factory=list)
    next_temp: int = 0
    is_variadic: bool = False

    def new_temp(self, ty: str) -> Temp:
        temp = Temp(self.next_temp, ty)
        self.next_temp += 1
        return temp

    def block(self, label: str) -> BasicBlock:
        for b in self.blocks:
            if b.label == label:
                return b
        raise IRError(f"no block {label!r} in function {self.name!r}")

    def block_map(self) -> dict[str, BasicBlock]:
        return {b.label: b for b in self.blocks}

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name!r} has no blocks")
        return self.blocks[0]

    def add_slot(self, name: str, size: int, align: int = 4) -> int:
        self.stack_slots.append(StackSlot(name, size, align))
        return len(self.stack_slots) - 1

    def instruction_count(self) -> int:
        return sum(len(b.all_instrs()) for b in self.blocks)

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        header = f"func @{self.name}({params}) -> {self.return_ty}"
        slots = "".join(
            f"\n  slot{i} {s.name}: {s.size} bytes align {s.align}"
            for i, s in enumerate(self.stack_slots)
        )
        body = "\n".join(str(b) for b in self.blocks)
        return f"{header} {{{slots}\n{body}\n}}"


@dataclass
class GlobalData:
    """A global variable: raw initial image plus address relocations.

    ``relocs`` is a list of ``(offset, symbol)`` pairs: the 4-byte word at
    *offset* must be patched with the final address of *symbol* (plus
    whatever addend is already stored in the image).
    """

    name: str
    size: int
    align: int = 4
    image: bytes = b""
    relocs: list[tuple[int, str]] = field(default_factory=list)
    readonly: bool = False

    def __post_init__(self) -> None:
        if len(self.image) > self.size:
            raise IRError(
                f"global {self.name!r}: image larger than declared size"
            )


@dataclass
class Module:
    """A compilation unit: functions plus global data."""

    name: str = "module"
    functions: list[Function] = field(default_factory=list)
    globals: list[GlobalData] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for f in self.functions:
            if f.name == name:
                return f
        raise IRError(f"no function {name!r} in module {self.name!r}")

    def has_function(self, name: str) -> bool:
        return any(f.name == name for f in self.functions)

    def global_named(self, name: str) -> GlobalData:
        for g in self.globals:
            if g.name == name:
                return g
        raise IRError(f"no global {name!r} in module {self.name!r}")

    def __str__(self) -> str:
        parts = [f"module {self.name}"]
        parts.extend(
            f"global @{g.name}: {g.size} bytes align {g.align}"
            for g in self.globals
        )
        parts.extend(str(f) for f in self.functions)
        return "\n\n".join(parts)


def verify_function(func: Function) -> None:
    """Sanity-check structural invariants; raises :class:`IRError`."""
    labels = set()
    for block in func.blocks:
        if block.label in labels:
            raise IRError(f"duplicate block label {block.label!r}")
        labels.add(block.label)
    for block in func.blocks:
        if block.terminator is None:
            raise IRError(f"block {block.label!r} lacks a terminator")
        if not block.terminator.is_terminator():
            raise IRError(
                f"block {block.label!r} terminator is {block.terminator.op!r}"
            )
        for target in block.terminator.targets:
            if target not in labels:
                raise IRError(
                    f"block {block.label!r} jumps to unknown label {target!r}"
                )
        for instr in block.instrs:
            if instr.is_terminator():
                raise IRError(
                    f"terminator {instr.op!r} in the middle of {block.label!r}"
                )
            if instr.op == "frameaddr" and not (
                0 <= instr.slot < len(func.stack_slots)
            ):
                raise IRError(f"frameaddr references bad slot {instr.slot}")


def verify_module(module: Module) -> None:
    for func in module.functions:
        verify_function(func)
