"""Recursive-descent parser for MiniC.

Grammar summary (C subset):

* top level: struct declarations, global variables (with scalar / brace /
  string initializers), function definitions and prototypes, ``extern``.
* types: ``void char short int uint float double``, ``struct NAME``,
  pointers, sized arrays, and the restricted function-pointer declarator
  ``ret (*name)(params)``.
* statements: blocks, declarations, ``if/else``, ``while``, ``do/while``,
  ``for``, ``break``, ``continue``, ``return``, expression statements.
* expressions: full C operator precedence including assignment operators,
  ``?:``, casts, ``sizeof``, pointer/array/member access and calls.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend.lexer import Token, tokenize
from repro.frontend.types import (
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    SHORT,
    UINT,
    VOID,
    ArrayType,
    FunctionType,
    PointerType,
    StructType,
    Type,
    layout_struct,
)

_TYPE_KEYWORDS = {"void", "char", "short", "int", "uint", "float", "double", "struct"}

# Binary operator precedence (higher binds tighter).
_BINOP_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    """Parses a token stream into a :class:`repro.frontend.ast.TranslationUnit`."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0
        # Struct tag -> StructType, shared with sema via the returned AST.
        self.struct_types: dict[str, StructType] = {}

    # -- token plumbing ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def _expect_op(self, text: str) -> Token:
        token = self._peek()
        if not token.is_op(text):
            raise ParseError(f"expected {text!r}, found {token}", token.loc)
        return self._next()

    def _expect_kw(self, text: str) -> Token:
        token = self._peek()
        if not token.is_kw(text):
            raise ParseError(f"expected {text!r}, found {token}", token.loc)
        return self._next()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind != "ident":
            raise ParseError(f"expected identifier, found {token}", token.loc)
        return self._next()

    def _accept_op(self, text: str) -> bool:
        if self._peek().is_op(text):
            self._next()
            return True
        return False

    def _accept_kw(self, text: str) -> bool:
        if self._peek().is_kw(text):
            self._next()
            return True
        return False

    # -- types ---------------------------------------------------------------

    def _at_type(self) -> bool:
        token = self._peek()
        return token.kind == "kw" and token.value in _TYPE_KEYWORDS

    def _parse_base_type(self) -> Type:
        token = self._peek()
        if token.kind != "kw":
            raise ParseError(f"expected type, found {token}", token.loc)
        keyword = token.value
        if keyword == "struct":
            self._next()
            name_tok = self._expect_ident()
            tag = name_tok.value
            if tag not in self.struct_types:
                # Forward reference: create an incomplete struct type.
                self.struct_types[tag] = StructType(str(tag))
            return self.struct_types[str(tag)]
        mapping = {
            "void": VOID,
            "char": CHAR,
            "short": SHORT,
            "int": INT,
            "float": FLOAT,
            "double": DOUBLE,
        }
        if keyword == "uint":
            self._next()
            self._accept_kw("int")  # `unsigned int`
            return UINT
        if keyword in mapping:
            self._next()
            return mapping[str(keyword)]
        raise ParseError(f"expected type, found {token}", token.loc)

    def _parse_pointers(self, base: Type) -> Type:
        ty = base
        while self._accept_op("*"):
            ty = PointerType(ty)
        return ty

    def _parse_type(self) -> Type:
        """Parse a full type for casts/sizeof: base + pointers (no name),
        including abstract function-pointer types ``ret (*)(params)``."""
        ty = self._parse_pointers(self._parse_base_type())
        if self._peek().is_op("(") and self._peek(1).is_op("*"):
            self._next()  # (
            self._next()  # *
            self._expect_op(")")
            params, variadic = self._parse_param_types()
            return PointerType(FunctionType(ty, tuple(params), variadic))
        return ty

    def _parse_array_suffix(self, ty: Type) -> Type:
        """Parse zero or more `[N]` suffixes; sizes are constant exprs."""
        dims: list[int] = []
        while self._accept_op("["):
            if self._peek().is_op("]"):
                # Unsized: completed later from the initializer.
                dims.append(-1)
            else:
                size_expr = self.parse_expression()
                dims.append(self._const_int(size_expr))
            self._expect_op("]")
        for dim in reversed(dims):
            ty = ArrayType(ty, dim)
        return ty

    def _const_int(self, expr: ast.Expr) -> int:
        """Evaluate a compile-time integer constant expression."""
        value = _eval_const_int(expr)
        if value is None:
            raise ParseError("expected constant integer expression", expr.loc)
        return value

    # -- top level ------------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(self._peek().loc)
        while self._peek().kind != "eof":
            unit.decls.extend(self._parse_top_level())
        return unit

    def _parse_top_level(self) -> list[ast.Node]:
        loc = self._peek().loc
        is_extern = self._accept_kw("extern")
        self._accept_kw("static")  # accepted, ignored (single-namespace link)
        self._accept_kw("const")
        if self._peek().is_kw("struct") and self._peek(1).kind == "ident" and self._peek(2).is_op("{"):
            return [self._parse_struct_decl()]
        base = self._parse_base_type()
        if self._accept_op(";"):
            return []  # e.g. `struct Foo;` forward declaration alone
        decls: list[ast.Node] = []
        while True:
            decls.append(self._parse_declarator(base, loc, is_extern, top_level=True))
            if isinstance(decls[-1], ast.FunctionDef) and decls[-1].body is not None:
                return decls
            if self._accept_op(","):
                continue
            self._expect_op(";")
            return decls

    def _parse_struct_decl(self) -> ast.StructDecl:
        loc = self._expect_kw("struct").loc
        tag = str(self._expect_ident().value)
        self._expect_op("{")
        members: list[tuple[str, Type]] = []
        while not self._accept_op("}"):
            member_base = self._parse_base_type()
            while True:
                member_type = self._parse_pointers(member_base)
                member_name = str(self._expect_ident().value)
                member_type = self._parse_array_suffix(member_type)
                members.append((member_name, member_type))
                if not self._accept_op(","):
                    break
            self._expect_op(";")
        self._expect_op(";")
        struct_type = layout_struct(tag, members)
        self.struct_types[tag] = struct_type
        return ast.StructDecl(loc, tag, members)

    def _parse_declarator(
        self, base: Type, loc, is_extern: bool, top_level: bool
    ) -> ast.Node:
        ty = self._parse_pointers(base)
        # Restricted function-pointer declarator: ret (*name)(params) and
        # arrays of function pointers: ret (*name[N])(params).
        if self._peek().is_op("(") and self._peek(1).is_op("*"):
            self._next()  # (
            self._next()  # *
            name = str(self._expect_ident().value)
            array_count = -2  # -2 = not an array
            if self._accept_op("["):
                array_count = self._const_int(self.parse_expression())
                self._expect_op("]")
            self._expect_op(")")
            params, variadic = self._parse_param_types()
            fp_type: Type = PointerType(FunctionType(ty, tuple(params), variadic))
            if array_count != -2:
                fp_type = ArrayType(fp_type, array_count)
            init = None
            if self._accept_op("="):
                init = self.parse_assignment()
            return ast.GlobalVar(loc, name, fp_type, init, is_extern=is_extern)
        name = str(self._expect_ident().value)
        if self._peek().is_op("("):
            return self._parse_function_rest(ty, name, loc)
        ty = self._parse_array_suffix(ty)
        init: ast.Expr | None = None
        init_list: list[ast.Expr] | None = None
        init_string: str | None = None
        if self._accept_op("="):
            if self._peek().is_op("{"):
                init_list = self._parse_init_list()
            elif self._peek().kind == "string" and isinstance(ty, ArrayType):
                init_string = str(self._next().value)
            else:
                init = self.parse_assignment()
        ty = _complete_array(ty, init_list, init_string)
        return ast.GlobalVar(loc, name, ty, init, init_list, init_string, is_extern)

    def _parse_init_list(self) -> list[ast.Expr]:
        self._expect_op("{")
        items: list[ast.Expr] = []
        if not self._peek().is_op("}"):
            while True:
                if self._peek().is_op("{"):
                    items.extend(self._parse_init_list())  # flattened nesting
                else:
                    items.append(self.parse_assignment())
                if not self._accept_op(","):
                    break
                if self._peek().is_op("}"):
                    break  # trailing comma
        self._expect_op("}")
        return items

    def _parse_param_types(self) -> tuple[list[Type], bool]:
        self._expect_op("(")
        params: list[Type] = []
        variadic = False
        if not self._peek().is_op(")"):
            if self._peek().is_kw("void") and self._peek(1).is_op(")"):
                self._next()
            else:
                while True:
                    if self._accept_op("..."):
                        variadic = True
                        break
                    param_type = self._parse_pointers(self._parse_base_type())
                    if self._peek().kind == "ident":
                        self._next()
                    param_type = self._decay_param(param_type)
                    params.append(param_type)
                    if not self._accept_op(","):
                        break
        self._expect_op(")")
        return params, variadic

    def _decay_param(self, ty: Type) -> Type:
        # `int a[]` / `int a[N]` parameters decay to pointers.
        while self._accept_op("["):
            if not self._peek().is_op("]"):
                self.parse_expression()
            self._expect_op("]")
            ty = PointerType(ty)
        return ty

    def _parse_function_rest(self, return_type: Type, name: str, loc) -> ast.FunctionDef:
        self._expect_op("(")
        params: list[Type] = []
        param_names: list[str] = []
        variadic = False
        if not self._peek().is_op(")"):
            if self._peek().is_kw("void") and self._peek(1).is_op(")"):
                self._next()
            else:
                while True:
                    if self._accept_op("..."):
                        variadic = True
                        break
                    param_base = self._parse_base_type()
                    param_type = self._parse_pointers(param_base)
                    # Function-pointer parameter: ret (*name)(params)
                    if self._peek().is_op("(") and self._peek(1).is_op("*"):
                        self._next()
                        self._next()
                        param_name = str(self._expect_ident().value)
                        self._expect_op(")")
                        inner, inner_var = self._parse_param_types()
                        param_type = PointerType(
                            FunctionType(param_type, tuple(inner), inner_var)
                        )
                    else:
                        if self._peek().kind == "ident":
                            param_name = str(self._next().value)
                        else:
                            # Unnamed parameter (prototype style).
                            param_name = f"__anon{len(params)}"
                        param_type = self._decay_param(param_type)
                    params.append(param_type)
                    param_names.append(param_name)
                    if not self._accept_op(","):
                        break
        self._expect_op(")")
        func_type = FunctionType(return_type, tuple(params), variadic)
        if self._peek().is_op("{"):
            body = self.parse_block()
            return ast.FunctionDef(loc, name, func_type, param_names, body)
        return ast.FunctionDef(loc, name, func_type, param_names, None)

    # -- statements ------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        loc = self._expect_op("{").loc
        statements: list[ast.Stmt] = []
        while not self._accept_op("}"):
            statements.append(self.parse_statement())
        return ast.Block(loc, statements)

    def parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.is_op("{"):
            return self.parse_block()
        if token.is_kw("if"):
            return self._parse_if()
        if token.is_kw("while"):
            return self._parse_while()
        if token.is_kw("do"):
            return self._parse_do_while()
        if token.is_kw("for"):
            return self._parse_for()
        if token.is_kw("break"):
            self._next()
            self._expect_op(";")
            return ast.Break(token.loc)
        if token.is_kw("continue"):
            self._next()
            self._expect_op(";")
            return ast.Continue(token.loc)
        if token.is_kw("return"):
            self._next()
            value = None if self._peek().is_op(";") else self.parse_expression()
            self._expect_op(";")
            return ast.Return(token.loc, value)
        if self._at_type() and not (
            token.is_kw("struct") and not self._peek(1).kind == "ident"
        ):
            return self._parse_local_decl()
        if token.is_op(";"):
            self._next()
            return ast.Block(token.loc, [])
        expr = self.parse_expression()
        self._expect_op(";")
        return ast.ExprStmt(token.loc, expr)

    def _parse_local_decl(self) -> ast.Stmt:
        loc = self._peek().loc
        self._accept_kw("const")
        base = self._parse_base_type()
        decls: list[ast.Stmt] = []
        while True:
            ty = self._parse_pointers(base)
            if self._peek().is_op("(") and self._peek(1).is_op("*"):
                self._next()
                self._next()
                name = str(self._expect_ident().value)
                self._expect_op(")")
                params, variadic = self._parse_param_types()
                ty = PointerType(FunctionType(ty, tuple(params), variadic))
                init = self.parse_assignment() if self._accept_op("=") else None
                decls.append(ast.DeclStmt(loc, name, ty, init))
            else:
                name = str(self._expect_ident().value)
                ty = self._parse_array_suffix(ty)
                init: ast.Expr | None = None
                init_list: list[ast.Expr] | None = None
                if self._accept_op("="):
                    if self._peek().is_op("{"):
                        init_list = self._parse_init_list()
                    else:
                        init = self.parse_assignment()
                ty = _complete_array(ty, init_list, None)
                stmt = ast.DeclStmt(loc, name, ty, init)
                stmt.init_list = init_list
                decls.append(stmt)
            if not self._accept_op(","):
                break
        self._expect_op(";")
        if len(decls) == 1:
            return decls[0]
        return ast.DeclGroup(loc, decls)

    def _parse_if(self) -> ast.If:
        loc = self._expect_kw("if").loc
        self._expect_op("(")
        cond = self.parse_expression()
        self._expect_op(")")
        then = self.parse_statement()
        otherwise = self.parse_statement() if self._accept_kw("else") else None
        return ast.If(loc, cond, then, otherwise)

    def _parse_while(self) -> ast.While:
        loc = self._expect_kw("while").loc
        self._expect_op("(")
        cond = self.parse_expression()
        self._expect_op(")")
        return ast.While(loc, cond, self.parse_statement())

    def _parse_do_while(self) -> ast.DoWhile:
        loc = self._expect_kw("do").loc
        body = self.parse_statement()
        self._expect_kw("while")
        self._expect_op("(")
        cond = self.parse_expression()
        self._expect_op(")")
        self._expect_op(";")
        return ast.DoWhile(loc, body, cond)

    def _parse_for(self) -> ast.For:
        loc = self._expect_kw("for").loc
        self._expect_op("(")
        init: ast.Stmt | None = None
        if not self._peek().is_op(";"):
            if self._at_type():
                init = self._parse_local_decl()
            else:
                init = ast.ExprStmt(self._peek().loc, self.parse_expression())
                self._expect_op(";")
        else:
            self._next()
        cond = None if self._peek().is_op(";") else self.parse_expression()
        self._expect_op(";")
        step = None if self._peek().is_op(")") else self.parse_expression()
        self._expect_op(")")
        return ast.For(loc, init, cond, step, self.parse_statement())

    # -- expressions -----------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        expr = self.parse_assignment()
        while self._peek().is_op(","):
            # Comma expressions are rare; model as a Binary with op ','.
            loc = self._next().loc
            right = self.parse_assignment()
            expr = ast.Binary(loc, ",", expr, right)
        return expr

    def parse_assignment(self) -> ast.Expr:
        left = self._parse_conditional()
        token = self._peek()
        if token.kind == "op" and token.value in _ASSIGN_OPS:
            self._next()
            right = self.parse_assignment()
            return ast.Assign(token.loc, str(token.value), left, right)
        return left

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self._peek().is_op("?"):
            loc = self._next().loc
            then = self.parse_expression()
            self._expect_op(":")
            otherwise = self.parse_assignment()
            return ast.Conditional(loc, cond, then, otherwise)
        return cond

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind != "op":
                return left
            precedence = _BINOP_PRECEDENCE.get(str(token.value), 0)
            if precedence < min_precedence or precedence == 0:
                return left
            self._next()
            right = self._parse_binary(precedence + 1)
            left = ast.Binary(token.loc, str(token.value), left, right)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "op" and token.value in ("-", "+", "!", "~", "*", "&"):
            self._next()
            operand = self._parse_unary()
            if token.value == "+":
                return operand
            return ast.Unary(token.loc, str(token.value), operand)
        if token.is_op("++") or token.is_op("--"):
            self._next()
            return ast.Unary(token.loc, str(token.value), self._parse_unary())
        if token.is_kw("sizeof"):
            self._next()
            if self._peek().is_op("(") and self._is_type_ahead(1):
                self._expect_op("(")
                ty = self._parse_type()
                ty = self._parse_array_suffix(ty)
                self._expect_op(")")
                return ast.SizeOf(token.loc, ty, None)
            operand = self._parse_unary()
            return ast.SizeOf(token.loc, None, operand)
        if token.is_op("(") and self._is_type_ahead(1):
            self._next()
            ty = self._parse_type()
            self._expect_op(")")
            operand = self._parse_unary()
            return ast.Cast(token.loc, ty, operand)
        return self._parse_postfix()

    def _is_type_ahead(self, offset: int) -> bool:
        token = self._peek(offset)
        return token.kind == "kw" and token.value in _TYPE_KEYWORDS

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_op("("):
                self._next()
                args: list[ast.Expr] = []
                if not self._peek().is_op(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self._accept_op(","):
                            break
                self._expect_op(")")
                expr = ast.Call(token.loc, expr, args)
            elif token.is_op("["):
                self._next()
                index = self.parse_expression()
                self._expect_op("]")
                expr = ast.Index(token.loc, expr, index)
            elif token.is_op("."):
                self._next()
                name = str(self._expect_ident().value)
                expr = ast.Member(token.loc, expr, name, arrow=False)
            elif token.is_op("->"):
                self._next()
                name = str(self._expect_ident().value)
                expr = ast.Member(token.loc, expr, name, arrow=True)
            elif token.is_op("++") or token.is_op("--"):
                self._next()
                expr = ast.Postfix(token.loc, str(token.value), expr)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._next()
        if token.kind == "int":
            return ast.IntLiteral(token.loc, int(token.value))
        if token.kind == "uint":
            return ast.IntLiteral(token.loc, int(token.value), unsigned=True)
        if token.kind == "float":
            return ast.FloatLiteral(token.loc, float(token.value))
        if token.kind == "char":
            return ast.CharLiteral(token.loc, int(token.value))
        if token.kind == "string":
            return ast.StringLiteral(token.loc, str(token.value))
        if token.kind == "ident":
            return ast.Identifier(token.loc, str(token.value))
        if token.is_op("("):
            expr = self.parse_expression()
            self._expect_op(")")
            return expr
        raise ParseError(f"unexpected token {token}", token.loc)


def _complete_array(
    ty: Type, init_list: list[ast.Expr] | None, init_string: str | None
) -> Type:
    """Fill in the size of an unsized array from its initializer."""
    if isinstance(ty, ArrayType) and ty.count == -1:
        if init_string is not None:
            return ArrayType(ty.element, len(init_string) + 1)
        if init_list is not None:
            return ArrayType(ty.element, len(init_list))
        raise ParseError("unsized array requires an initializer", SourceLocationDefault())
    return ty


def SourceLocationDefault():
    from repro.errors import SourceLocation

    return SourceLocation()


def _eval_const_int(expr: ast.Expr) -> int | None:
    """Best-effort constant folding for array dimensions."""
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.CharLiteral):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _eval_const_int(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, ast.Binary):
        left = _eval_const_int(expr.left)
        right = _eval_const_int(expr.right)
        if left is None or right is None:
            return None
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a // b if b else None,
            "%": lambda a, b: a % b if b else None,
            "<<": lambda a, b: a << b,
            ">>": lambda a, b: a >> b,
            "&": lambda a, b: a & b,
            "|": lambda a, b: a | b,
            "^": lambda a, b: a ^ b,
        }
        fn = ops.get(expr.op)
        return None if fn is None else fn(left, right)
    return None


def parse(source: str, filename: str = "<input>") -> ast.TranslationUnit:
    """Parse MiniC *source* into an AST."""
    return Parser(tokenize(source, filename)).parse_translation_unit()
