"""Lexer for MiniC, the C-subset source language used by the reproduction.

MiniC plays the role of the paper's gcc/lcc front ends: a realistic,
optimizing compiler that targets OmniVM.  The lexer produces a flat list of
:class:`Token` objects; the parser consumes them with one-token lookahead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import metrics
from repro.errors import LexError, SourceLocation

KEYWORDS = {
    "int",
    "uint",
    "char",
    "short",
    "float",
    "double",
    "void",
    "if",
    "else",
    "while",
    "for",
    "do",
    "break",
    "continue",
    "return",
    "sizeof",
    "struct",
    "extern",
    "static",
    "const",
}

# Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "<<=",
    ">>=",
    "...",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "++",
    "--",
    "->",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "<",
    ">",
    "!",
    "~",
    "&",
    "|",
    "^",
    "?",
    ":",
    ";",
    ",",
    ".",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
]

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "v": "\v",
}


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of: ``"kw"``, ``"ident"``, ``"int"``, ``"float"``,
    ``"char"``, ``"string"``, ``"op"``, ``"eof"``.  ``value`` holds the
    decoded payload (int/float for literals, str otherwise).
    """

    kind: str
    value: object
    loc: SourceLocation

    def is_op(self, text: str) -> bool:
        return self.kind == "op" and self.value == text

    def is_kw(self, text: str) -> bool:
        return self.kind == "kw" and self.value == text

    def __str__(self) -> str:
        return f"{self.kind}:{self.value!r}"


class Lexer:
    """Tokenizes MiniC source text."""

    def __init__(self, source: str, filename: str = "<input>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.filename, self.line, self.col)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._loc()
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", start)
            elif ch == "#":
                # Preprocessor lines are not supported; skip them so small
                # snippets with `#include` headers still lex.
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _lex_number(self) -> Token:
        loc = self._loc()
        start = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.source[start : self.pos]
            unsigned = self._skip_int_suffix()
            return Token("uint" if unsigned else "int", int(text, 16), loc)
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.pos]
        if self._peek() and self._peek() in "fF":
            self._advance()
            return Token("float", float(text), loc)
        if is_float:
            return Token("float", float(text), loc)
        unsigned = self._skip_int_suffix()
        return Token("uint" if unsigned else "int", int(text, 10), loc)

    def _skip_int_suffix(self) -> bool:
        """Consume C integer suffixes (u/U/l/L combinations); returns True
        if an unsigned suffix was present."""
        unsigned = False
        # NB: _peek() returns "" at end of input, and `"" in "uUlL"` is
        # True — the emptiness guard is load-bearing.
        while self._peek() and self._peek() in "uUlL":
            if self._peek() in "uU":
                unsigned = True
            self._advance()
        return unsigned

    def _lex_char_escape(self, quote: str) -> str:
        ch = self._peek()
        if ch == "":
            raise LexError(f"unterminated {quote} literal", self._loc())
        if ch != "\\":
            self._advance()
            return ch
        self._advance()
        esc = self._peek()
        if esc == "x":
            self._advance()
            digits = ""
            # The emptiness guard matters: at EOF _peek() is "" and
            # `"" in "0123..."` is True, which would loop forever.
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                digits += self._peek()
                self._advance()
            if not digits:
                raise LexError("bad hex escape", self._loc())
            return chr(int(digits, 16) & 0xFF)
        if esc in _ESCAPES:
            self._advance()
            return _ESCAPES[esc]
        raise LexError(f"unknown escape sequence \\{esc}", self._loc())

    def _lex_string(self) -> Token:
        loc = self._loc()
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise LexError("unterminated string literal", loc)
            if ch == '"':
                self._advance()
                break
            chars.append(self._lex_char_escape('"'))
        return Token("string", "".join(chars), loc)

    def _lex_char(self) -> Token:
        loc = self._loc()
        self._advance()  # opening quote
        ch = self._lex_char_escape("'")
        if self._peek() != "'":
            raise LexError("unterminated character literal", loc)
        self._advance()
        return Token("char", ord(ch), loc)

    def next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        if self.pos >= len(self.source):
            return Token("eof", None, self._loc())
        loc = self._loc()
        ch = self._peek()
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number()
        if ch.isalpha() or ch == "_":
            start = self.pos
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
            text = self.source[start : self.pos]
            if text == "unsigned":
                # `unsigned`/`unsigned int` are accepted as aliases of uint.
                return Token("kw", "uint", loc)
            if text in KEYWORDS:
                return Token("kw", text, loc)
            return Token("ident", text, loc)
        if ch == '"':
            return self._lex_string()
        if ch == "'":
            return self._lex_char()
        for op in OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token("op", op, loc)
        raise LexError(f"unexpected character {ch!r}", loc)

    def tokenize(self) -> list[Token]:
        """Lex the whole input, returning tokens ending with one ``eof``."""
        tokens: list[Token] = []
        while True:
            token = self.next_token()
            tokens.append(token)
            if token.kind == "eof":
                return tokens


def tokenize(source: str, filename: str = "<input>") -> list[Token]:
    """Convenience wrapper: lex *source* into a token list."""
    tokens = Lexer(source, filename).tokenize()
    if metrics.active():
        metrics.count("frontend.tokens", len(tokens))
    return tokens
