"""MiniC type system.

Types are immutable and interned where convenient.  The machine model is
ILP32: ``int``, ``uint`` and pointers are 4 bytes; ``char`` is signed 8-bit;
``short`` is signed 16-bit; ``float``/``double`` are IEEE 32/64-bit.

Struct types carry their field layout (computed with natural alignment), so
the front end can lower member access to explicit address arithmetic — the
paper stresses that OmniVM leaves data layout to the compiler precisely so
that address arithmetic is exposed to machine-independent optimization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TypeError_
from repro.utils.bits import align_up


class Type:
    """Base class for MiniC types.

    Subclasses provide ``size`` and ``align`` (bytes).  They are declared
    here only for type checkers; concrete values live on the subclasses,
    several of which compute them as properties.
    """

    if False:  # pragma: no cover - annotations for tooling only
        size: int
        align: int

    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    def is_arithmetic(self) -> bool:
        return self.is_integer() or self.is_float()

    def is_scalar(self) -> bool:
        return self.is_arithmetic() or self.is_pointer()


@dataclass(frozen=True)
class VoidType(Type):
    size: int = 0
    align: int = 1

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    """Integer type: width in bytes and signedness."""

    size: int
    signed: bool

    @property
    def align(self) -> int:  # type: ignore[override]
        return self.size

    def __str__(self) -> str:
        names = {(1, True): "char", (2, True): "short", (4, True): "int", (4, False): "uint"}
        return names.get((self.size, self.signed), f"i{self.size * 8}{'s' if self.signed else 'u'}")


@dataclass(frozen=True)
class FloatType(Type):
    size: int  # 4 or 8

    @property
    def align(self) -> int:  # type: ignore[override]
        return self.size

    def __str__(self) -> str:
        return "float" if self.size == 4 else "double"


@dataclass(frozen=True)
class PointerType(Type):
    pointee: Type
    size: int = 4

    @property
    def align(self) -> int:  # type: ignore[override]
        return 4

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type
    count: int

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.element.size * self.count

    @property
    def align(self) -> int:  # type: ignore[override]
        return self.element.align

    def __str__(self) -> str:
        return f"{self.element}[{self.count}]"


@dataclass(frozen=True)
class StructField:
    name: str
    type: Type
    offset: int


@dataclass(frozen=True, eq=False)
class StructType(Type):
    """A struct type.

    Equality and hashing are **by tag name**: a forward-referenced
    (incomplete) ``struct Node`` is the same type as the completed one,
    which is what C's type system says and what self-referential structs
    require.  Layout queries on an incomplete struct raise via
    ``field_named``.
    """

    name: str
    fields: tuple[StructField, ...] = field(default=())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StructType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("struct", self.name))

    @property
    def size(self) -> int:  # type: ignore[override]
        if not self.fields:
            return 0
        last = self.fields[-1]
        return align_up(last.offset + last.type.size, self.align)

    @property
    def align(self) -> int:  # type: ignore[override]
        return max((f.type.align for f in self.fields), default=1)

    def field_named(self, name: str) -> StructField:
        for f in self.fields:
            if f.name == name:
                return f
        raise TypeError_(f"struct {self.name} has no field {name!r}")

    def has_field(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)

    def __str__(self) -> str:
        return f"struct {self.name}"


@dataclass(frozen=True)
class FunctionType(Type):
    return_type: Type
    params: tuple[Type, ...]
    variadic: bool = False
    size: int = 0

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        if self.variadic:
            params = params + ", ..." if params else "..."
        return f"{self.return_type}({params})"


# Singletons for the primitive types.
VOID = VoidType()
CHAR = IntType(1, True)
UCHAR = IntType(1, False)
SHORT = IntType(2, True)
USHORT = IntType(2, False)
INT = IntType(4, True)
UINT = IntType(4, False)
FLOAT = FloatType(4)
DOUBLE = FloatType(8)


def layout_struct(name: str, members: list[tuple[str, Type]]) -> StructType:
    """Compute natural-alignment layout for a struct definition."""
    fields: list[StructField] = []
    offset = 0
    seen: set[str] = set()
    for member_name, member_type in members:
        if member_name in seen:
            raise TypeError_(f"duplicate field {member_name!r} in struct {name}")
        if member_type.size == 0:
            raise TypeError_(f"field {member_name!r} has incomplete type {member_type}")
        seen.add(member_name)
        offset = align_up(offset, member_type.align)
        fields.append(StructField(member_name, member_type, offset))
        offset += member_type.size
    return StructType(name, tuple(fields))


def decay(ty: Type) -> Type:
    """Array-to-pointer decay (C semantics for rvalue contexts)."""
    if isinstance(ty, ArrayType):
        return PointerType(ty.element)
    if isinstance(ty, FunctionType):
        return PointerType(ty)
    return ty


def promote(ty: Type) -> Type:
    """Integer promotion: char/short promote to int."""
    if isinstance(ty, IntType) and ty.size < 4:
        return INT
    return ty


def usual_arithmetic_conversion(a: Type, b: Type) -> Type:
    """The common type of two arithmetic operands (simplified C rules)."""
    if not (a.is_arithmetic() and b.is_arithmetic()):
        raise TypeError_(f"cannot combine {a} and {b} arithmetically")
    if DOUBLE in (a, b):
        return DOUBLE
    if FLOAT in (a, b):
        return FLOAT
    a, b = promote(a), promote(b)
    assert isinstance(a, IntType) and isinstance(b, IntType)
    if not a.signed or not b.signed:
        return UINT
    return INT


def types_compatible(a: Type, b: Type) -> bool:
    """Loose compatibility for assignment: exact match, arith-to-arith,
    pointer/pointer with void* escape hatch, or pointer/int-literal-zero
    (the latter is handled by the caller)."""
    if a == b:
        return True
    if a.is_arithmetic() and b.is_arithmetic():
        return True
    if a.is_pointer() and b.is_pointer():
        ap = a.pointee  # type: ignore[union-attr]
        bp = b.pointee  # type: ignore[union-attr]
        return ap == bp or ap.is_void() or bp.is_void()
    return False
