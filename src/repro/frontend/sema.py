"""Semantic analysis for MiniC.

Resolves names, computes the type of every expression, checks assignment /
call / operator validity, marks lvalues and address-taken locals, and
completes struct types that the parser left as forward references.

After :func:`analyze` runs, every :class:`~repro.frontend.ast.Expr` has a
``ty`` attribute and every :class:`~repro.frontend.ast.Identifier` has a
``symbol``; the IR builder relies on both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TypeError_
from repro.frontend import ast
from repro.frontend.types import (
    CHAR,
    DOUBLE,
    INT,
    UINT,
    VOID,
    ArrayType,
    FunctionType,
    PointerType,
    StructType,
    Type,
    decay,
    promote,
    types_compatible,
    usual_arithmetic_conversion,
)
from repro.runtime import hostapi

_HOSTKIND_TO_TYPE = {
    "int": INT,
    "uint": UINT,
    "double": DOUBLE,
    "ptr": PointerType(VOID),
    "void": VOID,
}


@dataclass
class Symbol:
    """A named entity: global, local, parameter, function or host builtin."""

    name: str
    ty: Type
    kind: str  # 'global' | 'local' | 'param' | 'func' | 'host'
    address_taken: bool = False
    defined: bool = False
    # Unique id for locals so shadowed names stay distinct in the IR builder.
    uid: int = 0


@dataclass
class Scope:
    parent: "Scope | None" = None
    symbols: dict[str, Symbol] = field(default_factory=dict)

    def define(self, symbol: Symbol) -> None:
        if symbol.name in self.symbols:
            existing = self.symbols[symbol.name]
            # Allow re-declaration of functions/globals with identical type.
            if existing.kind in ("func", "global") and existing.ty == symbol.ty:
                return
            raise TypeError_(f"redefinition of {symbol.name!r}")
        self.symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Symbol | None:
        scope: Scope | None = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class SemanticAnalyzer:
    """Type checker / name resolver for one translation unit."""

    def __init__(self, struct_types: dict[str, StructType] | None = None):
        self.globals = Scope()
        self.structs: dict[str, StructType] = dict(struct_types or {})
        self.current_function: ast.FunctionDef | None = None
        self.loop_depth = 0
        self._next_uid = 1
        self._declare_host_builtins()

    # -- setup ----------------------------------------------------------------

    def _declare_host_builtins(self) -> None:
        for hf in hostapi.HOST_FUNCTIONS.values():
            params = tuple(_HOSTKIND_TO_TYPE[p] for p in hf.params)
            result = _HOSTKIND_TO_TYPE[hf.result]
            sym = Symbol(hf.name, FunctionType(result, params), "host", defined=True)
            self.globals.define(sym)

    def _fresh_uid(self) -> int:
        uid = self._next_uid
        self._next_uid += 1
        return uid

    # -- type resolution --------------------------------------------------------

    def resolve_type(self, ty: Type) -> Type:
        """Replace forward-referenced struct types with completed layouts."""
        if isinstance(ty, StructType):
            completed = self.structs.get(ty.name)
            if completed is None:
                return ty
            return completed
        if isinstance(ty, PointerType):
            return PointerType(self.resolve_type(ty.pointee))
        if isinstance(ty, ArrayType):
            return ArrayType(self.resolve_type(ty.element), ty.count)
        if isinstance(ty, FunctionType):
            return FunctionType(
                self.resolve_type(ty.return_type),
                tuple(self.resolve_type(p) for p in ty.params),
                ty.variadic,
            )
        return ty

    # -- top level ---------------------------------------------------------------

    def analyze(self, unit: ast.TranslationUnit) -> ast.TranslationUnit:
        for decl in unit.decls:
            if isinstance(decl, ast.StructDecl):
                pass  # layout already computed by the parser
            elif isinstance(decl, ast.GlobalVar):
                self._analyze_global(decl)
            elif isinstance(decl, ast.FunctionDef):
                self._declare_function(decl)
        for decl in unit.decls:
            if isinstance(decl, ast.FunctionDef) and decl.body is not None:
                self._analyze_function(decl)
        return unit

    def _analyze_global(self, decl: ast.GlobalVar) -> None:
        decl.decl_type = self.resolve_type(decl.decl_type)
        if decl.decl_type.is_void():
            raise TypeError_(f"global {decl.name!r} has void type", decl.loc)
        symbol = Symbol(decl.name, decl.decl_type, "global", defined=not decl.is_extern)
        self.globals.define(symbol)
        decl.symbol = self.globals.lookup(decl.name)
        scope = self.globals
        if decl.init is not None:
            self._check_expr(decl.init, scope)
            self._check_assignable(decl.decl_type, decl.init, decl.loc)
        if decl.init_list is not None:
            if not isinstance(decl.decl_type, (ArrayType, StructType)):
                raise TypeError_(
                    f"brace initializer on non-aggregate {decl.name!r}", decl.loc
                )
            for item in decl.init_list:
                self._check_expr(item, scope)

    def _declare_function(self, decl: ast.FunctionDef) -> None:
        decl.func_type = self.resolve_type(decl.func_type)
        symbol = Symbol(decl.name, decl.func_type, "func", defined=decl.body is not None)
        existing = self.globals.lookup(decl.name)
        if existing is not None and existing.kind == "func":
            if existing.ty != decl.func_type:
                raise TypeError_(
                    f"conflicting declaration of {decl.name!r}", decl.loc
                )
            if decl.body is not None:
                existing.defined = True
            decl.symbol = existing
            return
        self.globals.define(symbol)
        decl.symbol = symbol

    def _analyze_function(self, decl: ast.FunctionDef) -> None:
        self.current_function = decl
        func_type = decl.func_type
        assert isinstance(func_type, FunctionType)
        scope = Scope(self.globals)
        decl.param_symbols = []
        for name, ty in zip(decl.param_names, func_type.params):
            ty = self.resolve_type(ty)
            symbol = Symbol(name, ty, "param", defined=True, uid=self._fresh_uid())
            scope.define(symbol)
            decl.param_symbols.append(symbol)
        self._check_block(decl.body, scope)
        self.current_function = None

    # -- statements ----------------------------------------------------------------

    def _check_block(self, block: ast.Block, scope: Scope) -> None:
        inner = Scope(scope)
        for stmt in block.statements:
            self._check_stmt(stmt, inner)

    def _check_stmt(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, ast.DeclGroup):
            for decl in stmt.decls:
                self._check_decl_stmt(decl, scope)
        elif isinstance(stmt, ast.DeclStmt):
            self._check_decl_stmt(stmt, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self._check_scalar(self._check_expr(stmt.cond, scope), stmt.loc)
            self._check_stmt(stmt.then, scope)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise, scope)
        elif isinstance(stmt, ast.While):
            self._check_scalar(self._check_expr(stmt.cond, scope), stmt.loc)
            self._in_loop(stmt.body, scope)
        elif isinstance(stmt, ast.DoWhile):
            self._in_loop(stmt.body, scope)
            self._check_scalar(self._check_expr(stmt.cond, scope), stmt.loc)
        elif isinstance(stmt, ast.For):
            inner = Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._check_scalar(self._check_expr(stmt.cond, inner), stmt.loc)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner)
            self._in_loop(stmt.body, inner)
        elif isinstance(stmt, ast.Break):
            if self.loop_depth == 0:
                raise TypeError_("break outside of loop", stmt.loc)
        elif isinstance(stmt, ast.Continue):
            if self.loop_depth == 0:
                raise TypeError_("continue outside of loop", stmt.loc)
        elif isinstance(stmt, ast.Return):
            self._check_return(stmt, scope)
        else:  # pragma: no cover - parser produces no other nodes
            raise TypeError_(f"unknown statement {type(stmt).__name__}", stmt.loc)

    def _in_loop(self, body: ast.Stmt, scope: Scope) -> None:
        self.loop_depth += 1
        try:
            self._check_stmt(body, scope)
        finally:
            self.loop_depth -= 1

    def _check_decl_stmt(self, stmt: ast.DeclStmt, scope: Scope) -> None:
        stmt.decl_type = self.resolve_type(stmt.decl_type)
        if stmt.decl_type.is_void():
            raise TypeError_(f"variable {stmt.name!r} has void type", stmt.loc)
        symbol = Symbol(stmt.name, stmt.decl_type, "local", defined=True,
                        uid=self._fresh_uid())
        scope.define(symbol)
        stmt.symbol = symbol
        if stmt.init is not None:
            self._check_expr(stmt.init, scope)
            self._check_assignable(stmt.decl_type, stmt.init, stmt.loc)
        if stmt.init_list is not None:
            if not isinstance(stmt.decl_type, ArrayType):
                raise TypeError_("brace initializer on non-array local", stmt.loc)
            for item in stmt.init_list:
                self._check_expr(item, scope)

    def _check_return(self, stmt: ast.Return, scope: Scope) -> None:
        assert self.current_function is not None
        func_type = self.current_function.func_type
        assert isinstance(func_type, FunctionType)
        if stmt.value is None:
            if not func_type.return_type.is_void():
                raise TypeError_("non-void function must return a value", stmt.loc)
            return
        if func_type.return_type.is_void():
            raise TypeError_("void function cannot return a value", stmt.loc)
        self._check_expr(stmt.value, scope)
        self._check_assignable(func_type.return_type, stmt.value, stmt.loc)

    # -- expressions -------------------------------------------------------------

    def _check_scalar(self, ty: Type, loc) -> None:
        if not decay(ty).is_scalar():
            raise TypeError_(f"expected scalar condition, got {ty}", loc)

    def _check_assignable(self, target: Type, value: ast.Expr, loc) -> None:
        value_ty = decay(value.ty)
        if types_compatible(target, value_ty):
            return
        # Integer literal zero converts to any pointer (NULL).
        if target.is_pointer() and isinstance(value, ast.IntLiteral) and value.value == 0:
            return
        if target.is_pointer() and value_ty.is_integer():
            # Permit int->pointer with a warning-free pass (common in the
            # systems code these workloads model); an explicit cast is
            # idiomatic but not required.
            return
        if target.is_integer() and value_ty.is_pointer():
            return
        raise TypeError_(f"cannot assign {value_ty} to {target}", loc)

    def _require_lvalue(self, expr: ast.Expr, loc) -> None:
        if not expr.is_lvalue:
            raise TypeError_("expression is not assignable", loc)

    def _check_expr(self, expr: ast.Expr, scope: Scope) -> Type:
        ty = self._check_expr_inner(expr, scope)
        expr.ty = ty
        return ty

    def _check_expr_inner(self, expr: ast.Expr, scope: Scope) -> Type:
        if isinstance(expr, ast.IntLiteral):
            return UINT if expr.unsigned else INT
        if isinstance(expr, ast.CharLiteral):
            return INT
        if isinstance(expr, ast.FloatLiteral):
            return DOUBLE
        if isinstance(expr, ast.StringLiteral):
            expr.is_lvalue = False
            return PointerType(CHAR)
        if isinstance(expr, ast.Identifier):
            return self._check_identifier(expr, scope)
        if isinstance(expr, ast.Unary):
            return self._check_unary(expr, scope)
        if isinstance(expr, ast.Postfix):
            operand_ty = self._check_expr(expr.operand, scope)
            self._require_lvalue(expr.operand, expr.loc)
            if not decay(operand_ty).is_scalar():
                raise TypeError_(f"cannot {expr.op} a {operand_ty}", expr.loc)
            return decay(operand_ty)
        if isinstance(expr, ast.Binary):
            return self._check_binary(expr, scope)
        if isinstance(expr, ast.Assign):
            return self._check_assign(expr, scope)
        if isinstance(expr, ast.Conditional):
            return self._check_conditional(expr, scope)
        if isinstance(expr, ast.Call):
            return self._check_call(expr, scope)
        if isinstance(expr, ast.Index):
            return self._check_index(expr, scope)
        if isinstance(expr, ast.Member):
            return self._check_member(expr, scope)
        if isinstance(expr, ast.Cast):
            expr.target_type = self.resolve_type(expr.target_type)
            self._check_expr(expr.operand, scope)
            return expr.target_type
        if isinstance(expr, ast.SizeOf):
            if expr.target_type is not None:
                expr.target_type = self.resolve_type(expr.target_type)
            else:
                self._check_expr(expr.operand, scope)
            return UINT
        raise TypeError_(f"unknown expression {type(expr).__name__}", expr.loc)

    def _check_identifier(self, expr: ast.Identifier, scope: Scope) -> Type:
        symbol = scope.lookup(expr.name)
        if symbol is None:
            raise TypeError_(f"use of undeclared identifier {expr.name!r}", expr.loc)
        expr.symbol = symbol
        if symbol.kind in ("func", "host"):
            expr.is_lvalue = False
            return symbol.ty
        expr.is_lvalue = not symbol.ty.is_array()  # arrays are not assignable
        return symbol.ty

    def _check_unary(self, expr: ast.Unary, scope: Scope) -> Type:
        if expr.op == "&":
            operand_ty = self._check_expr(expr.operand, scope)
            if isinstance(expr.operand, ast.Identifier):
                symbol = expr.operand.symbol
                if isinstance(symbol, Symbol):
                    if symbol.kind in ("func", "host"):
                        return PointerType(symbol.ty)
                    symbol.address_taken = True
            elif not expr.operand.is_lvalue:
                raise TypeError_("cannot take address of rvalue", expr.loc)
            if operand_ty.is_array():
                return PointerType(operand_ty.element)  # type: ignore[union-attr]
            return PointerType(operand_ty)
        operand_ty = decay(self._check_expr(expr.operand, scope))
        if expr.op == "*":
            if not operand_ty.is_pointer():
                raise TypeError_(f"cannot dereference {operand_ty}", expr.loc)
            pointee = operand_ty.pointee  # type: ignore[union-attr]
            if pointee.is_void():
                raise TypeError_("cannot dereference void*", expr.loc)
            expr.is_lvalue = not pointee.is_function()
            return pointee
        if expr.op in ("++", "--"):
            self._require_lvalue(expr.operand, expr.loc)
            if not operand_ty.is_scalar():
                raise TypeError_(f"cannot {expr.op} a {operand_ty}", expr.loc)
            return operand_ty
        if expr.op == "-":
            if not operand_ty.is_arithmetic():
                raise TypeError_(f"cannot negate {operand_ty}", expr.loc)
            return promote(operand_ty)
        if expr.op == "~":
            if not operand_ty.is_integer():
                raise TypeError_(f"cannot complement {operand_ty}", expr.loc)
            return promote(operand_ty)
        if expr.op == "!":
            self._check_scalar(operand_ty, expr.loc)
            return INT
        raise TypeError_(f"unknown unary operator {expr.op!r}", expr.loc)

    def _check_binary(self, expr: ast.Binary, scope: Scope) -> Type:
        left = decay(self._check_expr(expr.left, scope))
        right = decay(self._check_expr(expr.right, scope))
        op = expr.op
        if op == ",":
            return right
        if op in ("&&", "||"):
            self._check_scalar(left, expr.loc)
            self._check_scalar(right, expr.loc)
            return INT
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if left.is_pointer() and right.is_pointer():
                return INT
            if left.is_pointer() and right.is_integer():
                return INT
            if left.is_integer() and right.is_pointer():
                return INT
            usual_arithmetic_conversion(left, right)  # validates
            return INT
        if op in ("+", "-"):
            if left.is_pointer() and right.is_integer():
                return left
            if op == "+" and left.is_integer() and right.is_pointer():
                return right
            if op == "-" and left.is_pointer() and right.is_pointer():
                return INT  # ptrdiff
            return usual_arithmetic_conversion(left, right)
        if op in ("*", "/"):
            return usual_arithmetic_conversion(left, right)
        if op in ("%", "&", "|", "^", "<<", ">>"):
            if not (left.is_integer() and right.is_integer()):
                raise TypeError_(f"operator {op!r} requires integers", expr.loc)
            if op in ("<<", ">>"):
                return promote(left)
            return usual_arithmetic_conversion(left, right)
        raise TypeError_(f"unknown binary operator {op!r}", expr.loc)

    def _check_assign(self, expr: ast.Assign, scope: Scope) -> Type:
        target_ty = self._check_expr(expr.target, scope)
        self._require_lvalue(expr.target, expr.loc)
        self._check_expr(expr.value, scope)
        if expr.op == "=":
            self._check_assignable(target_ty, expr.value, expr.loc)
        else:
            binop = expr.op[:-1]
            value_ty = decay(expr.value.ty)
            if target_ty.is_pointer() and binop in ("+", "-") and value_ty.is_integer():
                pass  # pointer += int
            elif binop in ("%", "&", "|", "^", "<<", ">>"):
                if not (decay(target_ty).is_integer() and value_ty.is_integer()):
                    raise TypeError_(
                        f"operator {expr.op!r} requires integer operands",
                        expr.loc,
                    )
            elif not (decay(target_ty).is_arithmetic() and value_ty.is_arithmetic()):
                raise TypeError_(f"invalid compound assignment {expr.op}", expr.loc)
        return decay(target_ty)

    def _check_conditional(self, expr: ast.Conditional, scope: Scope) -> Type:
        self._check_scalar(self._check_expr(expr.cond, scope), expr.loc)
        then_ty = decay(self._check_expr(expr.then, scope))
        else_ty = decay(self._check_expr(expr.otherwise, scope))
        if then_ty == else_ty:
            return then_ty
        if then_ty.is_arithmetic() and else_ty.is_arithmetic():
            return usual_arithmetic_conversion(then_ty, else_ty)
        if then_ty.is_pointer() and else_ty.is_pointer():
            return then_ty
        if then_ty.is_pointer() and else_ty.is_integer():
            return then_ty
        if then_ty.is_integer() and else_ty.is_pointer():
            return else_ty
        raise TypeError_(f"incompatible ?: arms {then_ty} / {else_ty}", expr.loc)

    def _check_call(self, expr: ast.Call, scope: Scope) -> Type:
        callee_ty = self._check_expr(expr.func, scope)
        if callee_ty.is_pointer() and callee_ty.pointee.is_function():  # type: ignore[union-attr]
            func_type = callee_ty.pointee  # type: ignore[union-attr]
        elif callee_ty.is_function():
            func_type = callee_ty
        else:
            raise TypeError_(f"called object is not a function ({callee_ty})", expr.loc)
        assert isinstance(func_type, FunctionType)
        if not func_type.variadic and len(expr.args) != len(func_type.params):
            raise TypeError_(
                f"call expects {len(func_type.params)} args, got {len(expr.args)}",
                expr.loc,
            )
        if func_type.variadic and len(expr.args) < len(func_type.params):
            raise TypeError_("too few arguments to variadic call", expr.loc)
        for i, arg in enumerate(expr.args):
            self._check_expr(arg, scope)
            if i < len(func_type.params):
                self._check_assignable(func_type.params[i], arg, expr.loc)
        return func_type.return_type

    def _check_index(self, expr: ast.Index, scope: Scope) -> Type:
        base_ty = self._check_expr(expr.base, scope)
        index_ty = decay(self._check_expr(expr.index, scope))
        if not index_ty.is_integer():
            raise TypeError_(f"array index must be integer, got {index_ty}", expr.loc)
        base_ty = decay(base_ty)
        if not base_ty.is_pointer():
            raise TypeError_(f"cannot index {base_ty}", expr.loc)
        element = base_ty.pointee  # type: ignore[union-attr]
        expr.is_lvalue = not element.is_array()
        return element

    def _check_member(self, expr: ast.Member, scope: Scope) -> Type:
        base_ty = self._check_expr(expr.base, scope)
        if expr.arrow:
            base_ty = decay(base_ty)
            if not base_ty.is_pointer():
                raise TypeError_(f"-> on non-pointer {base_ty}", expr.loc)
            base_ty = base_ty.pointee  # type: ignore[union-attr]
        struct_ty = self.resolve_type(base_ty)
        if not isinstance(struct_ty, StructType):
            raise TypeError_(f"member access on non-struct {base_ty}", expr.loc)
        if not struct_ty.has_field(expr.name):
            raise TypeError_(
                f"struct {struct_ty.name} has no field {expr.name!r}", expr.loc
            )
        field_info = struct_ty.field_named(expr.name)
        expr.is_lvalue = not field_info.type.is_array()
        return field_info.type


def analyze(
    unit: ast.TranslationUnit, struct_types: dict[str, StructType] | None = None
) -> ast.TranslationUnit:
    """Run semantic analysis on *unit* in place and return it."""
    return SemanticAnalyzer(struct_types).analyze(unit)
