"""Abstract syntax tree for MiniC.

Nodes are plain dataclasses.  The parser builds them untyped; semantic
analysis (:mod:`repro.frontend.sema`) decorates expression nodes with a
``ty`` attribute and lvalue information, which the IR builder consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SourceLocation
from repro.frontend.types import Type


@dataclass
class Node:
    loc: SourceLocation


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions.  ``ty`` is filled in by sema."""

    ty: Type | None = field(default=None, init=False)
    is_lvalue: bool = field(default=False, init=False)


@dataclass
class IntLiteral(Expr):
    value: int
    unsigned: bool = False


@dataclass
class FloatLiteral(Expr):
    value: float
    is_single: bool = False  # True for `1.0f`


@dataclass
class CharLiteral(Expr):
    value: int


@dataclass
class StringLiteral(Expr):
    value: str


@dataclass
class Identifier(Expr):
    name: str
    # Filled by sema: the Symbol this name resolves to.
    symbol: object | None = field(default=None, init=False)


@dataclass
class Unary(Expr):
    """Prefix unary: op in {'-', '!', '~', '*', '&', '++', '--'}."""

    op: str
    operand: Expr


@dataclass
class Postfix(Expr):
    """Postfix ++ / --."""

    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    """Binary arithmetic/comparison/logical operation."""

    op: str
    left: Expr
    right: Expr


@dataclass
class Assign(Expr):
    """Assignment; ``op`` is '=' or a compound form like '+='."""

    op: str
    target: Expr
    value: Expr


@dataclass
class Conditional(Expr):
    """Ternary ?: expression."""

    cond: Expr
    then: Expr
    otherwise: Expr


@dataclass
class Call(Expr):
    func: Expr
    args: list[Expr]


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Member(Expr):
    """Struct member access; ``arrow`` distinguishes ``->`` from ``.``."""

    base: Expr
    name: str
    arrow: bool


@dataclass
class Cast(Expr):
    target_type: Type
    operand: Expr


@dataclass
class SizeOf(Expr):
    """sizeof(type) or sizeof expr; sema resolves to an IntLiteral-like."""

    target_type: Type | None
    operand: Expr | None


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class DeclStmt(Stmt):
    """Local variable declaration with optional initializer."""

    name: str
    decl_type: Type
    init: Expr | None
    init_list: list[Expr] | None = None  # array initializer { ... }
    symbol: object | None = field(default=None, init=False)


@dataclass
class DeclGroup(Stmt):
    """Several comma-separated declarations in one statement
    (``int a = 1, b = 2;``).  Unlike a Block, introduces no scope."""

    decls: list["DeclStmt"]


@dataclass
class Block(Stmt):
    statements: list[Stmt]


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    otherwise: Stmt | None


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class For(Stmt):
    init: Stmt | None
    cond: Expr | None
    step: Expr | None
    body: Stmt


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Expr | None


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------


@dataclass
class FunctionDef(Node):
    name: str
    func_type: Type  # FunctionType
    param_names: list[str]
    body: Block | None  # None for prototypes / extern declarations
    symbol: object | None = field(default=None, init=False)
    param_symbols: list[object] = field(default_factory=list, init=False)


@dataclass
class GlobalVar(Node):
    name: str
    decl_type: Type
    init: Expr | None
    init_list: list[Expr] | None = None
    init_string: str | None = None  # char arr[] = "..." initializer
    is_extern: bool = False
    symbol: object | None = field(default=None, init=False)


@dataclass
class StructDecl(Node):
    name: str
    # Members as (name, type) pairs; layout happens in sema/types.
    members: list[tuple[str, Type]]


@dataclass
class TranslationUnit(Node):
    """A whole source file: ordered list of top-level declarations."""

    decls: list[Node] = field(default_factory=list)
