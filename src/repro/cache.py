"""Content-addressed translation cache.

The paper's load-time translator is fast, but a host that loads the same
mobile module twice (the common case for a popular applet) should not
pay verification + translation twice.  This module provides a
:class:`TranslationCache` keyed by ``(linked-program digest, arch,
TranslationOptions)``:

* the **program digest** is content-addressed: SHA-256 over the encoded
  text image, the data image, the entry address and the function-range
  table — everything translation output depends on.  Two structurally
  identical programs hit the same entry no matter how they were built;
* the **options digest** covers every field of
  :class:`~repro.translators.base.TranslationOptions`, so e.g. an
  SFI-off translation can never satisfy an SFI-on request;
* entries are held in an **in-memory LRU** (bounded by ``capacity``)
  with optional **on-disk persistence** (one JSON file per entry under
  ``disk_dir``) that survives process restarts;
* hit / miss / eviction / store counters are exported through
  :meth:`TranslationCache.stats` and mirrored into
  :mod:`repro.metrics` counters (``cache.hit`` / ``cache.miss`` / ...)
  when a collector is active.

A cache hit returns the previously verified translation, so the loader
skips *both* module verification and SFI verification — the translated
code was checked when it entered the cache and its content hash pins the
exact input it was produced from.

Durability guarantees (the service layer leans on all three):

* **atomic, durable disk writes** — entries are written to a temporary
  file in the cache directory, ``fsync``\\ ed, :func:`os.replace`\\ d
  into place, and the directory is ``fsync``\\ ed, so a reader never
  observes a truncated entry, an interrupted writer leaves no
  half-entry behind (a later store repairs any stale temp file's slot),
  and a crash *after* the store returns cannot roll a committed entry
  back to a truncated one;
* **integrity-checked disk reads** — every entry carries a SHA-256 over
  its serialized instruction payload; a corrupted or tampered entry
  fails the check, is deleted, and reads as a miss
  (``cache.disk_reject``), so nothing unverified ever executes;
* **disk-aware invalidation** — ``invalidate(program=...)`` /
  ``(arch=...)`` matches persisted entries (each payload stores its own
  key) as well as resident ones, so an entry evicted from the LRU cannot
  be resurrected after its program was invalidated.

All public methods are safe to call from multiple threads: one internal
:class:`threading.RLock` serializes mutation of the LRU, the counters,
and the disk directory (see :class:`repro.service.ModuleHost`).

**Single-flight translation** (:meth:`TranslationCache.translate_once`):
when a thundering herd of requests misses on the same uncached key, one
caller (the *leader*) translates while the rest wait and then read the
leader's result — in-process via a per-key event, and across processes
sharing a ``disk_dir`` via an exclusive ``*.flight`` lock file plus
polling of the disk tier.  A crashed leader's stale flight lock is
broken after :data:`FLIGHT_STALE_SECONDS`, so single-flight degrades to
duplicate work, never to a deadlock.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, fields
from pathlib import Path

from repro import metrics
from repro.omnivm.linker import LinkedProgram
from repro.targets.base import MInstr
from repro.translators import target_spec
from repro.translators.base import TranslatedModule, TranslationOptions

#: Bump when the on-disk entry layout changes; mismatched files are
#: treated as misses and rewritten.  Format 2 added the mandatory
#: ``instr_sha256`` integrity digest; format 3 added ``extern_fixups``
#: (covered by the digest) for per-module dynamic-link chunks.
DISK_FORMAT = 3

#: A cross-process flight lock older than this is presumed abandoned
#: (its owner crashed mid-translation) and is broken by the next leader.
#: Translations are milliseconds; seconds of silence means a dead owner.
FLIGHT_STALE_SECONDS = 5.0

#: Poll period while waiting on another process's in-flight translation.
_FLIGHT_POLL_SECONDS = 0.002


def _fsync_file(fd: int) -> None:
    """Flush one file's data to stable storage (hook: the crash-injection
    tests monkeypatch this to simulate a crash before the fsync)."""
    os.fsync(fd)


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry (the rename itself) to stable storage."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


#: MInstr fields persisted to disk (caches/latencies are recomputed).
_MINSTR_FIELDS = (
    "op", "rd", "rs", "rt", "fd", "fs", "ft",
    "imm", "target", "pred", "annul", "omni_addr", "category",
)


def program_digest(program: LinkedProgram) -> str:
    """Content hash of everything translation output depends on.

    A program that carries a precomputed ``digest_hint`` (set by the
    dynamic linker on the sealed per-module translation units it
    builds) short-circuits the hash: linking re-digests each shared
    chunk once, not once per cache probe."""
    hint = getattr(program, "digest_hint", None)
    if hint is not None:
        return hint
    digest = hashlib.sha256()
    digest.update(program.text_image)
    digest.update(b"\x00data\x00")
    digest.update(bytes(program.data_image))
    digest.update(f"\x00entry\x00{program.entry_address}".encode())
    for name, (start, end) in sorted(program.function_ranges.items()):
        digest.update(f"\x00fn\x00{name}\x00{start}\x00{end}".encode())
    # Dynamic-link translation units: the placement and the set of
    # foreign targets change the emitted code, so they key the entry.
    # Whole programs (base 0, no externs) keep their historical digest.
    base_index = getattr(program, "base_index", 0)
    extern_addrs = getattr(program, "extern_addrs", frozenset())
    if base_index:
        digest.update(f"\x00base\x00{base_index}".encode())
    if extern_addrs:
        digest.update(
            ("\x00extern\x00"
             + ",".join(str(a) for a in sorted(extern_addrs))).encode()
        )
    return digest.hexdigest()


def options_digest(options: TranslationOptions | None) -> str:
    """Stable, field-complete digest of a TranslationOptions value."""
    options = options or TranslationOptions()
    payload = {f.name: getattr(options, f.name)
               for f in fields(TranslationOptions)}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cache_key(program: LinkedProgram, arch: str,
              options: TranslationOptions | None) -> tuple[str, str, str]:
    return (program_digest(program), arch, options_digest(options))


@dataclass
class CacheStats:
    """Counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0
    disk_hits: int = 0
    invalidations: int = 0
    #: disk entries rejected as unreadable, stale-format, or failing the
    #: integrity digest (each read as a miss, never executed)
    disk_rejects: int = 0
    #: predecode side-table traffic (threaded-engine artifacts; memory
    #: only, never persisted — closures do not serialize)
    predecode_hits: int = 0
    predecode_misses: int = 0
    #: callers that waited on another caller's in-flight translation of
    #: the same key instead of translating it again (stampede control)
    single_flight_waits: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "disk_hits": self.disk_hits,
            "invalidations": self.invalidations,
            "disk_rejects": self.disk_rejects,
            "predecode_hits": self.predecode_hits,
            "predecode_misses": self.predecode_misses,
            "single_flight_waits": self.single_flight_waits,
        }


class TranslationCache:
    """LRU cache of verified :class:`TranslatedModule` values.

    ``capacity`` bounds the in-memory entry count (least recently used
    entries are evicted first); ``disk_dir`` (optional) enables
    persistence — evicted or restart-lost entries are reloaded from disk
    on the next request and re-enter the LRU.

    Instances are thread-safe: every public method takes the internal
    reentrant lock, so a :class:`repro.service.ModuleHost` worker pool
    can share one cache without lost updates or torn counters.
    """

    def __init__(self, capacity: int = 64,
                 disk_dir: str | Path | None = None):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self._entries: OrderedDict[tuple[str, str, str], TranslatedModule] = (
            OrderedDict()
        )
        # Predecoded threaded-engine artifacts (repro.omnivm.threaded /
        # repro.targets.threaded).  Held beside the translation LRU, same
        # capacity bound, but memory-only: the artifacts are closure
        # tables and cannot be persisted.  Keys are tagged tuples whose
        # second element is the program digest (see loaders), so
        # invalidation can match them.
        self._predecoded: OrderedDict[tuple, object] = OrderedDict()
        self._stats = CacheStats()
        self._lock = threading.RLock()
        # Single-flight coordination: key -> Event set when the leader's
        # translation lands (or fails).  Guarded by its own lock so a
        # translating leader never holds the cache lock.
        self._flights: dict[tuple[str, str, str], threading.Event] = {}
        self._flight_lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- lookup ---------------------------------------------------------------

    def get(self, program: LinkedProgram, arch: str,
            options: TranslationOptions | None = None
            ) -> TranslatedModule | None:
        """Return the cached translation for this exact (program, arch,
        options) content, or None on a miss."""
        key = cache_key(program, arch, options)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._stats.hits += 1
                metrics.count("cache.hit")
                return entry
            entry = self._disk_load(key)
            if entry is not None:
                self._insert(key, entry)
                self._stats.hits += 1
                self._stats.disk_hits += 1
                metrics.count("cache.hit")
                metrics.count("cache.disk_hit")
                return entry
            self._stats.misses += 1
            metrics.count("cache.miss")
            return None

    def put(self, program: LinkedProgram, arch: str,
            options: TranslationOptions | None,
            translated: TranslatedModule) -> None:
        """Insert a (verified) translation."""
        key = cache_key(program, arch, options)
        with self._lock:
            self._insert(key, translated)
            self._stats.stores += 1
            metrics.count("cache.store")
            self._disk_store(key, translated)

    def _insert(self, key: tuple[str, str, str],
                translated: TranslatedModule) -> None:
        self._entries[key] = translated
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._stats.evictions += 1
            metrics.count("cache.eviction")

    # -- single-flight translation --------------------------------------------

    def translate_once(self, program: LinkedProgram, arch: str,
                       options: TranslationOptions | None,
                       produce, timeout: float = 30.0) -> TranslatedModule:
        """Return the cached translation for the key, or run *produce*
        exactly once per stampede to create it.

        Concurrent callers missing on the same key elect one leader;
        the rest wait (``cache.single_flight_wait``) and then read the
        leader's stored entry.  If the leader fails, a waiter is crowned
        and retries — every caller eventually returns a translation or
        raises its own error, never a stale one.  Across processes
        sharing a ``disk_dir``, an exclusive flight-lock file makes the
        first process the leader and the others poll the disk tier.
        *produce* must return a **verified** :class:`TranslatedModule`
        (the cache's usual admission contract).
        """
        key = cache_key(program, arch, options)
        deadline = time.monotonic() + timeout
        while True:
            cached = self.get(program, arch, options)
            if cached is not None:
                return cached
            with self._flight_lock:
                event = self._flights.get(key)
                leader = event is None
                if leader:
                    event = self._flights[key] = threading.Event()
            if not leader:
                with self._lock:
                    self._stats.single_flight_waits += 1
                metrics.count("cache.single_flight_wait")
                event.wait(max(0.0, deadline - time.monotonic()))
                if time.monotonic() >= deadline:
                    # Leader wedged: give up on waiting and translate
                    # ourselves rather than stall the request forever.
                    return produce()
                continue  # re-probe: leader stored it (or failed)
            try:
                flight_file = self._acquire_flight_file(key)
                if flight_file is None and self.disk_dir is not None:
                    # Another *process* is translating this key: poll
                    # the shared disk tier until its entry lands or the
                    # owner goes stale.
                    entry = self._await_foreign_flight(key)
                    if entry is not None:
                        return entry
                    flight_file = self._acquire_flight_file(key,
                                                            steal=True)
                try:
                    translated = produce()
                    self.put(program, arch, options, translated)
                    return translated
                finally:
                    if flight_file is not None:
                        try:
                            flight_file.unlink()
                        except OSError:
                            pass
            finally:
                with self._flight_lock:
                    self._flights.pop(key, None)
                event.set()

    def _flight_path(self, key: tuple[str, str, str]) -> Path | None:
        path = self._disk_path(key)
        if path is None:
            return None
        return path.with_suffix(".flight")

    def _acquire_flight_file(self, key: tuple[str, str, str],
                             steal: bool = False) -> Path | None:
        """Try to take the cross-process flight lock for *key*; returns
        the lock path when acquired, None when another process holds a
        fresh lock (or there is no disk tier to coordinate through)."""
        path = self._flight_path(key)
        if path is None:
            return None
        if steal:
            try:
                path.unlink()
            except OSError:
                pass
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.write(fd, str(os.getpid()).encode())
            os.close(fd)
            return path
        except FileExistsError:
            return None
        except OSError:
            # Unwritable disk tier: fall back to in-process-only
            # single-flight (persistence is always best-effort).
            return path if steal else None

    def _await_foreign_flight(self, key: tuple[str, str, str]
                              ) -> TranslatedModule | None:
        """Poll the disk tier while another process translates *key*;
        returns its entry, or None when the owner's lock went stale."""
        path = self._flight_path(key)
        metrics.count("cache.single_flight_wait")
        with self._lock:
            self._stats.single_flight_waits += 1
        while True:
            with self._lock:
                entry = self._disk_load(key)
                if entry is not None:
                    self._insert(key, entry)
                    self._stats.disk_hits += 1
                    return entry
            try:
                age = time.time() - path.stat().st_mtime
            except OSError:
                age = None  # lock released without an entry: owner failed
            if age is None or age > FLIGHT_STALE_SECONDS:
                return None
            time.sleep(_FLIGHT_POLL_SECONDS)

    # -- predecode side table -------------------------------------------------

    def get_predecoded(self, key: tuple) -> object | None:
        """Return the cached threaded-engine artifact for *key*, or None.

        Keys are tagged tuples built by the loaders:
        ``("predecode-omni", program_digest)`` for interpreter programs
        and ``("predecode-native", program_digest, arch, options_digest)``
        for translated modules.
        """
        with self._lock:
            artifact = self._predecoded.get(key)
            if artifact is not None:
                self._predecoded.move_to_end(key)
                self._stats.predecode_hits += 1
                metrics.count("cache.predecode_hit")
                return artifact
            self._stats.predecode_misses += 1
            metrics.count("cache.predecode_miss")
            return None

    def probe_predecoded(self, key: tuple) -> object | None:
        """Like :meth:`get_predecoded` but without touching the hit/miss
        statistics.  The JIT tier probes the side table speculatively —
        once per block on first dispatch and once per compile — and that
        traffic would swamp the predecode counters the loaders rely on.
        """
        with self._lock:
            artifact = self._predecoded.get(key)
            if artifact is not None:
                self._predecoded.move_to_end(key)
            return artifact

    def put_predecoded(self, key: tuple, artifact: object) -> None:
        """Insert a threaded-engine artifact (memory only; its eviction
        is silent — translation ``stats().evictions`` stays untouched)."""
        with self._lock:
            self._predecoded[key] = artifact
            self._predecoded.move_to_end(key)
            while len(self._predecoded) > self.capacity:
                self._predecoded.popitem(last=False)

    # -- invalidation ---------------------------------------------------------

    def invalidate(self, program: LinkedProgram | None = None,
                   arch: str | None = None,
                   digest: str | None = None) -> int:
        """Drop entries matching *program* and/or *arch* (both None =
        everything).  Removes matching disk entries too — including
        entries the LRU already evicted but disk still holds (each
        payload stores its own key, which is matched against the
        filter), so an invalidated translation can never be resurrected
        by a later :meth:`get`.  Disk-only removals are counted in
        ``stats().invalidations``; the return value is the number of
        in-memory entries dropped.

        *digest* filters by a raw program digest directly — the module
        registry uses this to revoke a module's per-layout translation
        chunks without reconstructing the translation units."""
        if program is not None:
            digest = program_digest(program)
        with self._lock:
            doomed = [
                key for key in self._entries
                if (digest is None or key[0] == digest)
                and (arch is None or key[1] == arch)
            ]
            for key in doomed:
                del self._entries[key]
                self._disk_remove(key)
            # Predecoded artifacts derive from the same translation
            # inputs, so they go with it (key[1] is the program digest,
            # key[2] — when present — the arch).
            for key in [
                k for k in self._predecoded
                if (digest is None or k[1] == digest)
                and (arch is None or len(k) < 3 or k[2] == arch)
            ]:
                del self._predecoded[key]
            self._stats.invalidations += len(doomed)
            self._stats.invalidations += self._disk_invalidate(digest, arch)
            return len(doomed)

    def _disk_invalidate(self, digest: str | None, arch: str | None) -> int:
        """Remove persisted entries matching the filter whose keys are
        no longer resident (evicted or written by another process).
        Returns the number of files removed."""
        if self.disk_dir is None or not self.disk_dir.is_dir():
            return 0
        removed = 0
        for path in self.disk_dir.glob("*.json"):
            if digest is None and arch is None:
                matches = True
            else:
                try:
                    key = json.loads(path.read_text()).get("key")
                except (OSError, ValueError):
                    # Unreadable entries match every filter: they can
                    # only ever read as misses, so invalidation may
                    # reclaim them.
                    key = None
                matches = (
                    key is None
                    or not isinstance(key, list) or len(key) != 3
                    or ((digest is None or key[0] == digest)
                        and (arch is None or key[1] == arch))
                )
            if matches:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def clear(self) -> int:
        """Drop every entry (memory and disk)."""
        return self.invalidate()

    # -- introspection --------------------------------------------------------

    def stats(self) -> CacheStats:
        return self._stats

    @property
    def lock(self) -> threading.RLock:
        """The internal lock (exposed for multi-step atomic sections)."""
        return self._lock

    # -- disk persistence -----------------------------------------------------

    def _disk_path(self, key: tuple[str, str, str]) -> Path | None:
        if self.disk_dir is None:
            return None
        name = hashlib.sha256("|".join(key).encode()).hexdigest()[:32]
        return self.disk_dir / f"{name}.json"

    @staticmethod
    def _instr_digest(instrs_json: str) -> str:
        return hashlib.sha256(instrs_json.encode()).hexdigest()

    def _disk_store(self, key: tuple[str, str, str],
                    translated: TranslatedModule) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        instrs_json = json.dumps([
            {name: getattr(instr, name) for name in _MINSTR_FIELDS}
            for instr in translated.instrs
        ])
        fixups_json = json.dumps(
            [list(pair) for pair in translated.extern_fixups]
        )
        payload = {
            "format": DISK_FORMAT,
            "key": list(key),
            "arch": key[1],
            "options": json.loads(key[2]),
            "entry_native": translated.entry_native,
            "omni_to_native": {
                str(omni): native
                for omni, native in translated.omni_to_native.items()
            },
            "extern_fixups": json.loads(fixups_json),
            "instr_sha256": self._instr_digest(
                instrs_json + "|" + fixups_json
            ),
            "instrs": json.loads(instrs_json),
        }
        # Write-fsync-rename-fsync: a concurrent reader sees either the
        # old entry or the complete new one, never a truncated file; an
        # interrupted writer leaves at most a stale *.tmp the next store
        # replaces; and because the data is fsynced *before* the rename
        # (and the directory after it), a machine crash cannot surface a
        # committed entry with truncated contents — without the fsync,
        # the rename could reach the journal before the data blocks,
        # persisting an entry the SHA-256 check would later reject.
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
            try:
                os.write(fd, json.dumps(payload).encode())
                _fsync_file(fd)
            finally:
                os.close(fd)
            os.replace(tmp, path)
            _fsync_dir(path.parent)
        except OSError:
            # persistence is best-effort; the LRU still has it
            try:
                tmp.unlink()
            except OSError:
                pass

    def _disk_load(self, key: tuple[str, str, str]
                   ) -> TranslatedModule | None:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            if (payload.get("format") != DISK_FORMAT
                    or payload.get("key") != list(key)):
                raise ValueError("stale format or foreign key")
            instrs_json = json.dumps(payload["instrs"])
            fixups_json = json.dumps(payload["extern_fixups"])
            if payload.get("instr_sha256") != self._instr_digest(
                instrs_json + "|" + fixups_json
            ):
                raise ValueError("integrity digest mismatch")
            arch = key[1]  # already verified equal to the payload key
            options = TranslationOptions(**payload["options"])
            module = TranslatedModule(
                spec=target_spec(arch),
                options=options,
                instrs=[MInstr(**fields_) for fields_ in payload["instrs"]],
                omni_to_native={
                    int(omni): native
                    for omni, native in payload["omni_to_native"].items()
                },
                entry_native=payload["entry_native"],
                extern_fixups=[
                    (int(idx), int(addr))
                    for idx, addr in payload["extern_fixups"]
                ],
            )
        except (OSError, ValueError, TypeError, KeyError):
            # Truncated, tampered, stale-format, or otherwise unusable:
            # reject it (never execute it), delete it so the slot reads
            # clean, and let the caller re-translate and repair.
            self._stats.disk_rejects += 1
            metrics.count("cache.disk_reject")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return module

    def _disk_remove(self, key: tuple[str, str, str]) -> None:
        path = self._disk_path(key)
        if path is not None and path.exists():
            try:
                path.unlink()
            except OSError:
                pass


__all__ = [
    "CacheStats",
    "TranslationCache",
    "cache_key",
    "options_digest",
    "program_digest",
]
