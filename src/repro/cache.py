"""Content-addressed translation cache.

The paper's load-time translator is fast, but a host that loads the same
mobile module twice (the common case for a popular applet) should not
pay verification + translation twice.  This module provides a
:class:`TranslationCache` keyed by ``(linked-program digest, arch,
TranslationOptions)``:

* the **program digest** is content-addressed: SHA-256 over the encoded
  text image, the data image, the entry address and the function-range
  table — everything translation output depends on.  Two structurally
  identical programs hit the same entry no matter how they were built;
* the **options digest** covers every field of
  :class:`~repro.translators.base.TranslationOptions`, so e.g. an
  SFI-off translation can never satisfy an SFI-on request;
* entries are held in an **in-memory LRU** (bounded by ``capacity``)
  with optional **on-disk persistence** (one JSON file per entry under
  ``disk_dir``) that survives process restarts;
* hit / miss / eviction / store counters are exported through
  :meth:`TranslationCache.stats` and mirrored into
  :mod:`repro.metrics` counters (``cache.hit`` / ``cache.miss`` / ...)
  when a collector is active.

A cache hit returns the previously verified translation, so the loader
skips *both* module verification and SFI verification — the translated
code was checked when it entered the cache and its content hash pins the
exact input it was produced from.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass, fields
from pathlib import Path

from repro import metrics
from repro.omnivm.linker import LinkedProgram
from repro.targets.base import MInstr
from repro.translators import target_spec
from repro.translators.base import TranslatedModule, TranslationOptions

#: Bump when the on-disk entry layout changes; mismatched files are
#: treated as misses and rewritten.
DISK_FORMAT = 1

#: MInstr fields persisted to disk (caches/latencies are recomputed).
_MINSTR_FIELDS = (
    "op", "rd", "rs", "rt", "fd", "fs", "ft",
    "imm", "target", "pred", "annul", "omni_addr", "category",
)


def program_digest(program: LinkedProgram) -> str:
    """Content hash of everything translation output depends on."""
    digest = hashlib.sha256()
    digest.update(program.text_image)
    digest.update(b"\x00data\x00")
    digest.update(bytes(program.data_image))
    digest.update(f"\x00entry\x00{program.entry_address}".encode())
    for name, (start, end) in sorted(program.function_ranges.items()):
        digest.update(f"\x00fn\x00{name}\x00{start}\x00{end}".encode())
    return digest.hexdigest()


def options_digest(options: TranslationOptions | None) -> str:
    """Stable, field-complete digest of a TranslationOptions value."""
    options = options or TranslationOptions()
    payload = {f.name: getattr(options, f.name)
               for f in fields(TranslationOptions)}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cache_key(program: LinkedProgram, arch: str,
              options: TranslationOptions | None) -> tuple[str, str, str]:
    return (program_digest(program), arch, options_digest(options))


@dataclass
class CacheStats:
    """Counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0
    disk_hits: int = 0
    invalidations: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "disk_hits": self.disk_hits,
            "invalidations": self.invalidations,
        }


class TranslationCache:
    """LRU cache of verified :class:`TranslatedModule` values.

    ``capacity`` bounds the in-memory entry count (least recently used
    entries are evicted first); ``disk_dir`` (optional) enables
    persistence — evicted or restart-lost entries are reloaded from disk
    on the next request and re-enter the LRU.
    """

    def __init__(self, capacity: int = 64,
                 disk_dir: str | Path | None = None):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self._entries: OrderedDict[tuple[str, str, str], TranslatedModule] = (
            OrderedDict()
        )
        self._stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookup ---------------------------------------------------------------

    def get(self, program: LinkedProgram, arch: str,
            options: TranslationOptions | None = None
            ) -> TranslatedModule | None:
        """Return the cached translation for this exact (program, arch,
        options) content, or None on a miss."""
        key = cache_key(program, arch, options)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self._stats.hits += 1
            metrics.count("cache.hit")
            return entry
        entry = self._disk_load(key)
        if entry is not None:
            self._insert(key, entry)
            self._stats.hits += 1
            self._stats.disk_hits += 1
            metrics.count("cache.hit")
            metrics.count("cache.disk_hit")
            return entry
        self._stats.misses += 1
        metrics.count("cache.miss")
        return None

    def put(self, program: LinkedProgram, arch: str,
            options: TranslationOptions | None,
            translated: TranslatedModule) -> None:
        """Insert a (verified) translation."""
        key = cache_key(program, arch, options)
        self._insert(key, translated)
        self._stats.stores += 1
        metrics.count("cache.store")
        self._disk_store(key, translated)

    def _insert(self, key: tuple[str, str, str],
                translated: TranslatedModule) -> None:
        self._entries[key] = translated
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._stats.evictions += 1
            metrics.count("cache.eviction")

    # -- invalidation ---------------------------------------------------------

    def invalidate(self, program: LinkedProgram | None = None,
                   arch: str | None = None) -> int:
        """Drop entries matching *program* and/or *arch* (both None =
        everything).  Removes matching disk entries too.  Returns the
        number of in-memory entries dropped."""
        digest = program_digest(program) if program is not None else None
        doomed = [
            key for key in self._entries
            if (digest is None or key[0] == digest)
            and (arch is None or key[1] == arch)
        ]
        for key in doomed:
            del self._entries[key]
            self._disk_remove(key)
        self._stats.invalidations += len(doomed)
        if digest is None and arch is None and self.disk_dir is not None:
            for path in self.disk_dir.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass
        return len(doomed)

    def clear(self) -> int:
        """Drop every entry (memory and disk)."""
        return self.invalidate()

    # -- introspection --------------------------------------------------------

    def stats(self) -> CacheStats:
        return self._stats

    # -- disk persistence -----------------------------------------------------

    def _disk_path(self, key: tuple[str, str, str]) -> Path | None:
        if self.disk_dir is None:
            return None
        name = hashlib.sha256("|".join(key).encode()).hexdigest()[:32]
        return self.disk_dir / f"{name}.json"

    def _disk_store(self, key: tuple[str, str, str],
                    translated: TranslatedModule) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        payload = {
            "format": DISK_FORMAT,
            "key": list(key),
            "arch": key[1],
            "options": json.loads(key[2]),
            "entry_native": translated.entry_native,
            "omni_to_native": {
                str(omni): native
                for omni, native in translated.omni_to_native.items()
            },
            "instrs": [
                {name: getattr(instr, name) for name in _MINSTR_FIELDS}
                for instr in translated.instrs
            ],
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(payload))
        except OSError:
            pass  # persistence is best-effort; the LRU still has it

    def _disk_load(self, key: tuple[str, str, str]
                   ) -> TranslatedModule | None:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if (payload.get("format") != DISK_FORMAT
                or payload.get("key") != list(key)):
            return None
        arch = payload["arch"]
        options = TranslationOptions(**payload["options"])
        module = TranslatedModule(
            spec=target_spec(arch),
            options=options,
            instrs=[MInstr(**fields_) for fields_ in payload["instrs"]],
            omni_to_native={
                int(omni): native
                for omni, native in payload["omni_to_native"].items()
            },
            entry_native=payload["entry_native"],
        )
        return module

    def _disk_remove(self, key: tuple[str, str, str]) -> None:
        path = self._disk_path(key)
        if path is not None and path.exists():
            try:
                path.unlink()
            except OSError:
                pass


__all__ = [
    "CacheStats",
    "TranslationCache",
    "cache_key",
    "options_digest",
    "program_digest",
]
