"""Sharded module-hosting service: a router over worker processes.

The threaded :class:`~repro.service.ModuleHost` scales until the
interpreter loops saturate the GIL — simulation is pure Python, so
worker *threads* time-slice one core.  :class:`ShardedModuleHost` keeps
the exact same request/response surface but fans requests out to N
worker **processes** (:mod:`repro.service_worker`), each running a full
threaded host around its own engine:

* **consistent-hash sharding** — requests are routed by module content
  digest over a 64-points-per-shard hash ring, so repeat loads of one
  module always land on the same worker and hit that worker's private
  in-memory :class:`~repro.cache.TranslationCache`.  Adding/removing a
  shard remaps only ~1/N of the key space (the ring property), which
  keeps the other shards' caches hot across resizes.
* **shared cold tier** — every worker layers its memory cache over the
  same on-disk cache directory; its atomic, fsynced, integrity-checked
  writes make cross-process sharing safe, and the cache's single-flight
  protocol (in-process events plus on-disk flight locks) means a
  thundering herd on one uncached module translates exactly once even
  across processes.
* **bit-for-bit governance parity** — deadlines, quotas, retry with
  jittered backoff, interpreter fallback, and overload rejection all
  run *inside* the worker's ordinary :class:`ModuleHost`; the router
  adds only transport.  Typed control-plane errors cross the pipe via
  :func:`repro.errors.serialize_error` and re-raise as the same
  classes.
* **crash containment** — a worker process dying (segfault, kill, OOM)
  fails only its in-flight requests, each with a retryable
  ``TransientFault`` response; the router respawns the shard, replays
  the module-registry operation log into it, and keeps serving.
* **aggregated observability** — ``host.stats`` merges every shard's
  counters, bounded latency windows, and queue high-water marks into
  one :class:`ServiceStats`-shaped view (same counter names, same
  ``to_dict`` schema), live while running and frozen at ``stop()``.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import multiprocessing
import threading

from repro.cache import program_digest
from repro.engine import Engine
from repro.errors import ReproError, ServiceOverloaded, deserialize_error
from repro.omnivm.linker import LinkedProgram
from repro.omnivm.objfile import ObjectModule
from repro.sfi.policy import DEFAULT_POLICY, SandboxPolicy
from repro.service import (
    FaultInjector,
    ModuleRequest,
    ModuleResponse,
    PendingRequest,
    RetryPolicy,
    ServiceStats,
    _percentiles,
)
from repro.service_worker import WorkerConfig, worker_main

__all__ = ["ShardedModuleHost", "ShardedStats"]


# -- consistent hashing -------------------------------------------------------

#: Virtual points per shard on the hash ring.  Enough that the key
#: space splits near-evenly across small shard counts; few enough that
#: building the ring is microseconds.
RING_REPLICAS = 64


def _ring_hash(text: str) -> int:
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


class _HashRing:
    """A consistent-hash ring mapping string keys to shard indices."""

    def __init__(self, shard_count: int, replicas: int = RING_REPLICAS):
        points = sorted(
            (_ring_hash(f"shard-{shard}-point-{replica}"), shard)
            for shard in range(shard_count)
            for replica in range(replicas)
        )
        self._hashes = [point for point, _ in points]
        self._shards = [shard for _, shard in points]

    def lookup(self, key: str) -> int:
        index = bisect.bisect(self._hashes, _ring_hash(key))
        return self._shards[index % len(self._shards)]


def shard_key(request: ModuleRequest) -> str:
    """The routing key for *request*: a stable content identity.

    Routing by *content* (not request id) is what makes sharding a
    cache-affinity mechanism — every load of the same module lands on
    the shard whose memory cache already holds its translation."""
    if request.modules:
        return "modules|" + "|".join(request.modules)
    program = request.program
    if isinstance(program, LinkedProgram):
        return program_digest(program)
    if isinstance(program, str):
        return hashlib.sha256(program.encode()).hexdigest()
    return request.request_id


# -- control-plane futures ----------------------------------------------------


class _CtlFuture:
    """One outstanding control message (register/revoke/stats/shutdown)."""

    __slots__ = ("_done", "ok", "payload")

    def __init__(self):
        self._done = threading.Event()
        self.ok = False
        self.payload = None

    def resolve(self, ok: bool, payload) -> None:
        self.ok = ok
        self.payload = payload
        self._done.set()

    def wait(self, timeout: float | None):
        if not self._done.wait(timeout):
            raise TimeoutError("worker control operation timed out")
        if not self.ok:
            raise deserialize_error(self.payload)
        return self.payload


# -- aggregated stats ---------------------------------------------------------


class ShardedStats:
    """A :class:`~repro.service.ServiceStats`-shaped aggregate view.

    Counters, bounded latency windows, and completion totals are summed
    across every worker's snapshot plus the router's own stats (which
    hold router-side events: overload rejections, worker restarts, and
    the error counts of crash-failed requests); queue high-water is the
    max over shards.  Live while the host runs (each access polls the
    workers); frozen from the final drain snapshots after ``stop()``.
    """

    def __init__(self, host: "ShardedModuleHost"):
        self._host = host

    def _merged(self) -> dict:
        local = self._host._router_stats.snapshot()
        merged = {
            "counters": dict(local["counters"]),
            "latencies": list(local["latencies"]),
            "completed": local["completed"],
            "queue_high_water": local["queue_high_water"],
            "shards": 0,
            "cache": {},
        }
        for snapshot in self._host._shard_snapshots():
            merged["shards"] += 1
            for name, value in snapshot["counters"].items():
                merged["counters"][name] = (
                    merged["counters"].get(name, 0) + value
                )
            merged["latencies"].extend(snapshot["latencies"])
            merged["completed"] += snapshot["completed"]
            merged["queue_high_water"] = max(
                merged["queue_high_water"], snapshot["queue_high_water"]
            )
            for name, value in snapshot.get("cache", {}).items():
                merged["cache"][name] = (
                    merged["cache"].get(name, 0) + value
                )
        return merged

    @property
    def counters(self) -> dict[str, int]:
        return self._merged()["counters"]

    @property
    def queue_high_water(self) -> int:
        return self._merged()["queue_high_water"]

    def latency_percentiles(self) -> dict[str, float]:
        return _percentiles(sorted(self._merged()["latencies"]))

    def to_dict(self) -> dict:
        merged = self._merged()
        return {
            "counters": dict(sorted(merged["counters"].items())),
            "queue_high_water": merged["queue_high_water"],
            "completed_requests": merged["completed"],
            "latency_seconds": _percentiles(sorted(merged["latencies"])),
            "shards": merged["shards"],
            "cache": dict(sorted(merged["cache"].items())),
        }


# -- shard bookkeeping --------------------------------------------------------


class _Shard:
    """Router-side state for one worker process."""

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.conn = None
        self.receiver: threading.Thread | None = None
        self.generation = 0
        self.lock = threading.Lock()
        self.not_full = threading.Condition(self.lock)
        self.inflight: dict[str, PendingRequest] = {}


class ShardedModuleHost:
    """A front-end router over N worker-process shards.

    Drop-in for :class:`~repro.service.ModuleHost`: same ``submit`` /
    ``run`` / ``run_batch`` / ``register_module`` / ``revoke_module`` /
    ``stats`` surface, same typed errors, same counter names.
    Construct via ``engine.serve(processes=N)``.

    Parameters mirror the threaded host where they overlap; ``workers``
    is the *thread* count inside each shard, so total concurrency is
    ``processes * workers``.  The prototype *engine* contributes the
    target, profile, compile options, execution engine, and (critically)
    the disk cache directory every shard shares as its cold tier; the
    engine object itself never crosses the process boundary — each
    worker builds its own from the shipped :class:`WorkerConfig`.
    """

    #: Per-shard cap on router-accepted, not-yet-responded requests.
    #: Mirrors the threaded host's admission bound of ``queue_depth``
    #: queued plus ``workers`` executing.
    def _capacity(self) -> int:
        return self._queue_depth + self._workers

    def __init__(
        self,
        engine: Engine | None = None,
        processes: int = 2,
        workers: int = 2,
        queue_depth: int = 32,
        retry: RetryPolicy | None = None,
        faults: FaultInjector | None = None,
        default_deadline: float | None = None,
        watchdog_interval: float = 0.002,
        ctl_timeout: float = 30.0,
    ):
        if processes < 1:
            raise ValueError("ShardedModuleHost needs at least one process")
        if workers < 1:
            raise ValueError("each shard needs at least one worker thread")
        if queue_depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.engine = engine or Engine()
        self.processes = processes
        self._workers = workers
        self._queue_depth = queue_depth
        self.retry = retry or RetryPolicy()
        self.faults = faults
        self.default_deadline = default_deadline
        self._watchdog_interval = watchdog_interval
        self._ctl_timeout = ctl_timeout
        self._ring = _HashRing(processes)
        self._shards = [_Shard(index) for index in range(processes)]
        self._ctl: dict[str, _CtlFuture] = {}
        self._ctl_lock = threading.Lock()
        self._ctl_ids = itertools.count(1)
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._started = False
        self._stopping = False
        # Module-registry operation log, replayed into respawned shards
        # so a crash never forgets registrations (or revocations).
        self._registry_log: list[tuple] = []
        self._registry_lock = threading.Lock()
        self._router_stats = ServiceStats(self.engine.metrics)
        self._final_snapshots: list[dict] | None = None
        self.stats = ShardedStats(self)
        # Fork shares the parent's memory page cache and skips module
        # re-import; fall back to spawn where fork is unavailable.
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )

    # -- worker config --------------------------------------------------------

    def _worker_config(self, index: int) -> WorkerConfig:
        cache = self.engine.cache
        return WorkerConfig(
            shard_index=index,
            shard_count=self.processes,
            target=self.engine.target,
            profile=self.engine.profile,
            compile_options=self.engine.compile_options,
            execution_engine=self.engine.execution_engine,
            disk_cache_dir=(
                str(cache.disk_dir)
                if cache is not None and cache.disk_dir is not None
                else None
            ),
            cache_capacity=cache.capacity if cache is not None else 64,
            threads=self._workers,
            queue_depth=self._queue_depth,
            retry=self.retry,
            default_deadline=self.default_deadline,
            watchdog_interval=self._watchdog_interval,
            fault_spec=(self.faults.snapshot()
                        if self.faults is not None else None),
        )

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ShardedModuleHost":
        with self._lock:
            if self._started:
                return self
            self._started = True
            self._stopping = False
            self._seed_registry_log()
            for shard in self._shards:
                self._spawn(shard)
        return self

    def _seed_registry_log(self) -> None:
        """Modules registered on the engine before ``start()`` become
        the head of the op log, so workers begin with the same registry
        view the threaded host would have."""
        with self._registry_lock:
            if self._registry_log:
                return
            for name in self.engine.registry.names():
                definition = self.engine.registry.lookup(name)
                if definition is None:
                    continue
                self._registry_log.append(
                    ("register", name,
                     ("obj", definition.obj.to_bytes()), definition.policy)
                )
                if definition.revoked:
                    self._registry_log.append(("revoke", name))

    def _spawn(self, shard: _Shard) -> None:
        """Start (or restart) one worker process and its receiver."""
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(self._worker_config(shard.index), child_conn),
            name=f"modulehost-shard-{shard.index}",
            daemon=True,
        )
        process.start()
        # Close the router's copy of the child end immediately: the
        # worker then holds the only write end, so its death — even
        # SIGKILL — surfaces as EOF on our receiver.  (Shards spawn
        # sequentially, so no other fork can inherit this end.)
        child_conn.close()
        shard.process = process
        shard.conn = parent_conn
        shard.generation += 1
        generation = shard.generation
        replay = list(self._registry_log)
        shard.receiver = threading.Thread(
            target=self._receive_loop,
            args=(shard, parent_conn, generation),
            name=f"modulehost-router-recv-{shard.index}",
            daemon=True,
        )
        shard.receiver.start()
        for op in replay:
            self._ctl_send(shard, op[0], *op[1:])

    def stop(self) -> None:
        """Drain every shard, collect final stats, reap the workers."""
        with self._lock:
            if not self._started:
                return
            self._started = False
            self._stopping = True
        snapshots: list[dict] = []
        futures = []
        for shard in self._shards:
            if shard.conn is None:
                continue
            try:
                futures.append(self._ctl_send(shard, "shutdown"))
            except OSError:
                futures.append(None)
        for future in futures:
            if future is None:
                continue
            try:
                snapshots.append(future.wait(self._ctl_timeout))
            except (ReproError, TimeoutError):
                pass
        for shard in self._shards:
            process = shard.process
            if process is None:
                continue
            process.join(timeout=self._ctl_timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
            if shard.conn is not None:
                try:
                    shard.conn.close()
                except OSError:
                    pass
            shard.conn = None
            shard.process = None
        self._final_snapshots = snapshots

    def __enter__(self) -> "ShardedModuleHost":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- receive / crash handling ---------------------------------------------

    def _receive_loop(self, shard: _Shard, conn, generation: int) -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "response":
                response: ModuleResponse = message[1]
                with shard.lock:
                    pending = shard.inflight.pop(response.request_id, None)
                    shard.not_full.notify()
                if pending is not None:
                    pending._resolve(response)
            elif kind == "ctl_ok":
                self._resolve_ctl(message[1], True, message[2])
            elif kind == "ctl_err":
                self._resolve_ctl(message[1], False, message[2])
        self._shard_down(shard, generation)

    def _resolve_ctl(self, token: str, ok: bool, payload) -> None:
        with self._ctl_lock:
            future = self._ctl.pop(token, None)
        if future is not None:
            future.resolve(ok, payload)

    def _shard_down(self, shard: _Shard, generation: int) -> None:
        """The shard's pipe hit EOF: crash, or normal shutdown."""
        with self._lock:
            if self._stopping or not self._started:
                return
            if shard.generation != generation:
                return  # a newer incarnation already took over
            self._router_stats.count("worker_restart")
            with shard.lock:
                orphans = list(shard.inflight.values())
                shard.inflight.clear()
                shard.not_full.notify_all()
            if shard.process is not None:
                shard.process.join(timeout=1.0)
            self._spawn(shard)
        # Resolve outside the locks: callbacks may resubmit.
        for pending in orphans:
            self._router_stats.count("error")
            pending._resolve(ModuleResponse(
                request_id=pending.request.request_id,
                ok=False,
                error="TransientFault",
                error_message=(
                    f"worker process for shard {shard.index} died with "
                    f"the request in flight; safe to retry"
                ),
            ))

    # -- control plane --------------------------------------------------------

    def _ctl_send(self, shard: _Shard, kind: str, *payload) -> _CtlFuture:
        token = f"ctl-{next(self._ctl_ids)}"
        future = _CtlFuture()
        with self._ctl_lock:
            self._ctl[token] = future
        try:
            shard.conn.send((kind, token) + payload)
        except (OSError, ValueError):
            with self._ctl_lock:
                self._ctl.pop(token, None)
            raise
        return future

    def _broadcast(self, kind: str, *payload) -> None:
        self.start()
        futures = []
        with self._lock:
            for shard in self._shards:
                futures.append(self._ctl_send(shard, kind, *payload))
        first_error: ReproError | None = None
        for future in futures:
            try:
                future.wait(self._ctl_timeout)
            except ReproError as err:
                first_error = first_error or err
        if first_error is not None:
            raise first_error

    def register_module(self, name: str, module: "ObjectModule | str",
                        policy: SandboxPolicy = DEFAULT_POLICY) -> None:
        """Register (or hot-reload) *name* in every shard's registry.

        Source text crosses the pipe as text (each worker compiles it —
        the registered object must exist in the worker's process);
        object modules cross as their canonical byte encoding.  A
        failure in any shard re-raises as the worker's typed error."""
        if isinstance(module, ObjectModule):
            payload = ("obj", module.to_bytes())
        else:
            payload = ("src", module)
        with self._registry_lock:
            self._registry_log.append(("register", name, payload, policy))
        self._broadcast("register", name, payload, policy)

    def revoke_module(self, name: str) -> None:
        """Revoke *name* in every shard; unknown names raise the same
        :class:`~repro.errors.DynamicLinkError` the threaded host
        raises, re-raised from the workers' serialized errors."""
        with self._registry_lock:
            self._registry_log.append(("revoke", name))
        self._broadcast("revoke", name)

    def _shard_snapshots(self) -> list[dict]:
        """Per-shard stats snapshots: live polls while running, the
        frozen drain snapshots after ``stop()``."""
        if self._final_snapshots is not None:
            return list(self._final_snapshots)
        with self._lock:
            if not self._started:
                return []
            futures = []
            for shard in self._shards:
                try:
                    futures.append(self._ctl_send(shard, "stats"))
                except OSError:
                    pass
        snapshots = []
        for future in futures:
            try:
                snapshots.append(future.wait(self._ctl_timeout))
            except (ReproError, TimeoutError):
                pass
        return snapshots

    # -- submission -----------------------------------------------------------

    def submit(self, request: ModuleRequest,
               block: bool = False) -> PendingRequest:
        """Route *request* to its shard; returns a
        :class:`~repro.service.PendingRequest`.

        Admission control matches the threaded host: each shard accepts
        ``queue_depth + workers`` outstanding requests; beyond that a
        non-blocking submit raises
        :class:`~repro.errors.ServiceOverloaded` (and counts
        ``service.rejected``), while ``block=True`` applies
        backpressure."""
        self.start()
        if not request.request_id:
            request.request_id = f"req-{next(self._ids)}"
        shard = self._shards[self._ring.lookup(shard_key(request))]
        pending = PendingRequest(request)
        capacity = self._capacity()
        with shard.lock:
            if len(shard.inflight) >= capacity:
                if not block:
                    self._router_stats.count("rejected")
                    raise ServiceOverloaded(
                        f"shard {shard.index} at capacity ({capacity} "
                        f"outstanding); request {request.request_id!r} "
                        f"rejected"
                    )
                while len(shard.inflight) >= capacity:
                    shard.not_full.wait()
            shard.inflight[request.request_id] = pending
            self._router_stats.observe_queue_depth(len(shard.inflight))
            conn = shard.conn
        try:
            conn.send(("request", request))
        except (OSError, ValueError, AttributeError):
            # The shard died between routing and send.  Its receiver
            # respawns it and fails the in-flight set, but this request
            # may have been added after the receiver drained the set —
            # resolve it here (idempotently: pop wins exactly once) so
            # it can never hang.
            with shard.lock:
                still = shard.inflight.pop(request.request_id, None)
                shard.not_full.notify()
            if still is not None:
                self._router_stats.count("error")
                still._resolve(ModuleResponse(
                    request_id=request.request_id,
                    ok=False,
                    error="TransientFault",
                    error_message=(
                        f"worker process for shard {shard.index} died "
                        f"before accepting the request; safe to retry"
                    ),
                ))
        return pending

    def run(self, request: ModuleRequest,
            timeout: float | None = None) -> ModuleResponse:
        """Submit (with backpressure) and wait for the response."""
        return self.submit(request, block=True).result(timeout)

    def run_batch(self, requests: list[ModuleRequest],
                  timeout: float | None = None) -> list[ModuleResponse]:
        """Submit every request (with backpressure) and collect the
        responses in request order."""
        pending = [self.submit(request, block=True) for request in requests]
        return [p.result(timeout) for p in pending]

    # -- introspection --------------------------------------------------------

    def shard_of(self, request: ModuleRequest) -> int:
        """Which shard *request* routes to (stable for fixed N)."""
        return self._ring.lookup(shard_key(request))

    def alive(self) -> list[bool]:
        """Liveness of each shard's worker process."""
        return [shard.process is not None and shard.process.is_alive()
                for shard in self._shards]
