"""Concurrent module-hosting service: deadlines, quotas, degradation.

The paper's premise is a *host* that safely runs many untrusted mobile
modules at once; everything below :class:`~repro.engine.Engine` executes
exactly one module per call.  This module adds the host-side runtime:
a :class:`ModuleHost` that accepts concurrent translate/run requests and
governs each one.

Request lifecycle::

    submit -> bounded queue -> worker thread
        compile (if source text)
        translate+load for the requested target
            |- transient fault?   retry with exponential backoff
            |- still failing?     fall back to the reference interpreter
        execute under watchdog
            |- wall-clock deadline -> DeadlineExceeded
            |- fuel quota          -> FuelExhausted
            |- output-byte quota   -> QuotaExceeded
    -> ModuleResponse (never an unhandled exception for module faults)

Governance mechanisms:

* **worker pool + bounded queue** — ``workers`` threads drain one
  :class:`queue.Queue` of at most ``queue_depth`` requests; a full
  queue rejects with :class:`~repro.errors.ServiceOverloaded` instead
  of accepting unbounded work (callers that want backpressure pass
  ``block=True``).  The shared
  :class:`~repro.cache.TranslationCache` is thread-safe, so all
  workers serve warm loads from one cache.
* **deadlines** — a watchdog thread tracks every running machine; when
  a request's wall-clock deadline expires it cuts the machine's fuel,
  so the simulator stops at its next instruction boundary and the
  resulting :class:`~repro.errors.FuelExhausted` is converted into a
  typed :class:`~repro.errors.DeadlineExceeded`.  A runaway module
  therefore times out without stalling the other workers.
* **quotas** — per-request :class:`RequestQuota`: ``fuel`` (dynamic
  instructions), ``segment_size`` (module address-space size), and
  ``max_output_bytes`` (enforced inside the host-call boundary by
  :class:`CappedHost`, so a module cannot flood the host).
* **retry with exponential backoff** — transient failures
  (:class:`~repro.errors.TransientFault`, e.g. an injected translator
  fault; corrupted disk-cache entries self-heal as misses) are retried
  per :class:`RetryPolicy` before any fallback.
* **graceful degradation** — when translation for the requested target
  keeps failing, the request runs on the reference interpreter instead
  of failing (``service.fallback``); module-level faults (traps,
  violations) become typed error responses, never worker crashes.
* **fault injection** — :class:`FaultInjector` lets tests force
  translator crashes, transient faults, cache corruption, and slow
  modules deterministically.

Observability: every request is counted (``service.request`` /
``service.ok`` / ``service.error`` / ``service.fallback`` /
``service.retry`` / ``service.timeout`` / ``service.rejected``) both in
:meth:`ModuleHost.stats` and in any active :mod:`repro.metrics`
collector; per-request latencies aggregate into p50/p90/p99, and the
queue's high-water depth is tracked.

Quick start::

    from repro import Engine
    from repro.service import ModuleRequest

    engine = Engine(target="mips")
    with engine.serve(workers=4) as host:
        response = host.run(ModuleRequest(
            program="int main() { emit_int(42); return 0; }",
            deadline_seconds=2.0,
        ))
    assert response.ok and response.output == "42"
"""

from __future__ import annotations

import itertools
import queue
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro import metrics
from repro.engine import INTERPRETER, Engine, RunConfig
from repro.errors import (
    CrossModuleViolation,
    DeadlineExceeded,
    DuplicateExportError,
    DynamicLinkError,
    FuelExhausted,
    ModuleCycleError,
    ModuleRevokedError,
    QuotaExceeded,
    ReproError,
    ServiceOverloaded,
    TransientFault,
    UnresolvedImportError,
)
from repro.omnivm.linker import LinkedProgram
from repro.omnivm.objfile import ObjectModule
from repro.runtime.host import Host
from repro.sfi.policy import DEFAULT_POLICY, SandboxPolicy
from repro.translators.base import TranslationOptions

__all__ = [
    "CappedHost",
    "FaultInjector",
    "ModuleHost",
    "ModuleRequest",
    "ModuleResponse",
    "PendingRequest",
    "RequestQuota",
    "RetryPolicy",
    "ServiceStats",
]


# -- request / response types -------------------------------------------------


@dataclass(frozen=True)
class RequestQuota:
    """Per-request resource caps.

    ``fuel`` bounds dynamic instructions (the existing simulator
    mechanism); ``segment_size`` shrinks the module address space;
    ``max_output_bytes`` caps what the module may emit through host
    calls (None = service default, enforced by :class:`CappedHost`).
    """

    fuel: int = 50_000_000
    segment_size: int | None = None
    max_output_bytes: int | None = 1 << 20


@dataclass
class ModuleRequest:
    """One unit of hosted work: a module (or source text) to execute.

    Either *program* (a linked module or MiniC source) or *modules*
    (root module names to dynamically link out of the host's registry —
    see :meth:`ModuleHost.register_module`) must be set, not both.
    Link failures come back as typed error responses
    (``UnresolvedImportError``, ``ModuleRevokedError``,
    ``ModuleCycleError``, ...) with per-kind service counters.
    """

    program: LinkedProgram | str | None = None
    target: str | None = None  # None = the engine's default target
    options: TranslationOptions | str | None = None
    entry: str | None = None
    deadline_seconds: float | None = None
    quota: RequestQuota = field(default_factory=RequestQuota)
    request_id: str = ""
    modules: tuple[str, ...] | list[str] | None = None


@dataclass
class ModuleResponse:
    """The outcome of one request (module faults included — a response
    with ``ok=False`` and a typed ``error``, never a worker crash)."""

    request_id: str
    ok: bool
    exit_code: int | None = None
    output: str = ""
    arch: str = INTERPRETER
    fallback: bool = False
    retries: int = 0
    error: str | None = None
    error_message: str | None = None
    latency_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "ok": self.ok,
            "exit_code": self.exit_code,
            "output": self.output,
            "arch": self.arch,
            "fallback": self.fallback,
            "retries": self.retries,
            "error": self.error,
            "error_message": self.error_message,
            "latency_seconds": self.latency_seconds,
        }


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter for transient
    translate/load failures.

    Without jitter, concurrent requests hitting the same transient
    fault would all sleep the identical schedule and retry in lockstep
    — a synchronized thundering herd re-arriving at whatever broke.
    ``jitter`` shaves up to that fraction off each delay, derived
    deterministically from ``jitter_seed`` and the caller-supplied key
    (the request id), so two requests desynchronize while any single
    request's schedule is reproducible."""

    max_attempts: int = 3
    backoff_seconds: float = 0.005
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 0.1
    jitter: float = 0.5
    jitter_seed: int = 0

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retry *attempt* (1-based), jittered by *key*."""
        base = min(
            self.backoff_seconds * self.backoff_factor ** (attempt - 1),
            self.max_backoff_seconds,
        )
        if not self.jitter:
            return base
        rng = random.Random(f"{self.jitter_seed}|{key}|{attempt}")
        return base * (1.0 - self.jitter * rng.random())


# -- output quota enforcement -------------------------------------------------

#: Accounted size of one emitted value, by output kind.
_KIND_BYTES = {"char": 1, "double": 8, "int": 4, "uint": 4}


def _entry_bytes(kind: str, value: object) -> int:
    if kind == "str":
        return len(value) if isinstance(value, (bytes, str)) else 4
    return _KIND_BYTES.get(kind, 4)


class CappedHost(Host):
    """A :class:`~repro.runtime.host.Host` that enforces the
    output-byte quota at the host-call boundary: the module is stopped
    (typed :class:`~repro.errors.QuotaExceeded`) the moment its
    cumulative emitted bytes exceed the cap, not after the fact."""

    def __init__(self, max_output_bytes: int | None = None, **kwargs):
        super().__init__(**kwargs)
        self.max_output_bytes = max_output_bytes
        self.output_bytes = 0
        self._accounted = 0

    def hostcall(self, machine, index: int) -> None:
        super().hostcall(machine, index)
        while self._accounted < len(self.output):
            kind, value = self.output[self._accounted]
            self._accounted += 1
            self.output_bytes += _entry_bytes(kind, value)
        if (self.max_output_bytes is not None
                and self.output_bytes > self.max_output_bytes):
            raise QuotaExceeded(
                f"module emitted {self.output_bytes} bytes "
                f"(cap {self.max_output_bytes})",
                quota="output_bytes", limit=self.max_output_bytes,
            )


# -- fault injection ----------------------------------------------------------


class FaultInjector:
    """Deterministic fault injection for tests and benchmarks.

    The service calls :meth:`on_translate` before every translate/load
    attempt and :meth:`on_execute` before every module run; armed
    faults fire in arming order and then disarm (``count=-1`` arms a
    permanent fault).  All methods are thread-safe.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._translate_faults: list[dict] = []
        self._delay_seconds = 0.0
        self.fired = 0

    # -- arming ---------------------------------------------------------------

    def fail_translations(self, count: int = 1, arch: str | None = None,
                          transient: bool = True) -> None:
        """Arm *count* translation failures (``-1`` = every attempt)
        for *arch* (None = any target).  ``transient=True`` raises
        :class:`~repro.errors.TransientFault` (retryable);
        ``transient=False`` raises a translator crash
        (:class:`~repro.errors.TranslationError`) that skips straight
        to interpreter fallback."""
        with self._lock:
            self._translate_faults.append(
                {"count": count, "arch": arch, "transient": transient}
            )

    def delay_execution(self, seconds: float) -> None:
        """Make every hosted module 'slow': sleep *seconds* inside the
        execution window so deadline enforcement is exercised."""
        with self._lock:
            self._delay_seconds = seconds

    def corrupt_disk_entries(self, cache) -> int:
        """Flip one byte in every persisted cache entry (simulating
        external corruption); returns the number of files corrupted.
        The durable cache must reject each on its integrity digest."""
        if cache.disk_dir is None:
            return 0
        corrupted = 0
        for path in cache.disk_dir.glob("*.json"):
            blob = bytearray(path.read_bytes())
            if not blob:
                continue
            blob[len(blob) // 2] ^= 0x5A
            path.write_bytes(bytes(blob))
            corrupted += 1
        return corrupted

    def reset(self) -> None:
        with self._lock:
            self._translate_faults.clear()
            self._delay_seconds = 0.0

    # -- cross-process shipping -----------------------------------------------

    def snapshot(self) -> dict:
        """The armed faults as a picklable spec.  The sharded service
        snapshots its injector when worker processes spawn, so faults
        armed before ``start()`` fire inside every worker exactly as
        they would in the threaded host."""
        with self._lock:
            return {
                "translate_faults": [dict(f)
                                     for f in self._translate_faults],
                "delay_seconds": self._delay_seconds,
            }

    def arm(self, spec: dict) -> None:
        """Arm the faults a :meth:`snapshot` captured (worker side)."""
        with self._lock:
            self._translate_faults.extend(
                dict(f) for f in spec.get("translate_faults", ())
            )
            self._delay_seconds = max(
                self._delay_seconds, spec.get("delay_seconds", 0.0)
            )

    # -- hooks (called by the service) ----------------------------------------

    def on_translate(self, arch: str) -> None:
        with self._lock:
            for fault in self._translate_faults:
                if fault["arch"] is not None and fault["arch"] != arch:
                    continue
                if fault["count"] == 0:
                    continue
                if fault["count"] > 0:
                    fault["count"] -= 1
                self.fired += 1
                if fault["transient"]:
                    raise TransientFault(
                        f"injected transient translator fault ({arch})"
                    )
                from repro.errors import TranslationError

                raise TranslationError(
                    f"injected translator crash ({arch})"
                )

    def on_execute(self, request: ModuleRequest) -> None:
        with self._lock:
            delay = self._delay_seconds
        if delay > 0.0:
            time.sleep(delay)


# -- service statistics -------------------------------------------------------


#: Default bound on retained latency samples (a sliding window).  A
#: long-lived host once accumulated one float per request forever; the
#: window keeps percentile memory O(1) while reflecting recent traffic.
LATENCY_WINDOW = 4096


class ServiceStats:
    """Thread-safe aggregate of service counters, request latencies,
    and the queue-depth high-water mark.

    Counters are mirrored as ``service.*`` into every active
    :mod:`repro.metrics` collector and into *collector* (normally the
    owning engine's) even when it is not globally installed — service
    bookkeeping happens outside the engine's collecting sections.

    Latency samples are bounded: a ring buffer keeps the most recent
    ``latency_window`` observations, so percentiles describe current
    behaviour and a host serving millions of requests does not leak one
    float per request.  ``completed_requests`` still counts them all."""

    def __init__(self, collector: metrics.MetricsCollector | None = None,
                 latency_window: int = LATENCY_WINDOW):
        if latency_window < 1:
            raise ValueError("latency window must be >= 1")
        self._lock = threading.Lock()
        self._collector = collector
        self.counters: dict[str, int] = {}
        self.latencies: deque[float] = deque(maxlen=latency_window)
        self.completed = 0
        self.queue_high_water = 0

    def count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount
        qualified = f"service.{name}"
        metrics.count(qualified, amount)
        if self._collector is not None and self._collector not in \
                metrics._ACTIVE:
            self._collector.count(qualified, amount)

    def observe_latency(self, seconds: float) -> None:
        with self._lock:
            self.latencies.append(seconds)
            self.completed += 1

    def observe_queue_depth(self, depth: int) -> None:
        with self._lock:
            if depth > self.queue_high_water:
                self.queue_high_water = depth

    def latency_percentiles(self) -> dict[str, float]:
        with self._lock:
            samples = sorted(self.latencies)
        return _percentiles(samples)

    def snapshot(self) -> dict:
        """Raw mergeable state (the sharded router aggregates these
        across worker processes — percentiles cannot be merged, samples
        can)."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "latencies": list(self.latencies),
                "completed": self.completed,
                "queue_high_water": self.queue_high_water,
            }

    def to_dict(self) -> dict:
        with self._lock:
            counters = dict(sorted(self.counters.items()))
            high_water = self.queue_high_water
            requests = self.completed
        payload = {
            "counters": counters,
            "queue_high_water": high_water,
            "completed_requests": requests,
        }
        payload["latency_seconds"] = self.latency_percentiles()
        return payload


def _percentiles(samples: list[float]) -> dict[str, float]:
    """p50/p90/p99 of pre-sorted samples (empty -> zeros)."""
    if not samples:
        return {"p50": 0.0, "p90": 0.0, "p99": 0.0}

    def pct(p: float) -> float:
        index = min(len(samples) - 1, int(round(p * (len(samples) - 1))))
        return samples[index]

    return {"p50": pct(0.50), "p90": pct(0.90), "p99": pct(0.99)}


# -- deadline watchdog --------------------------------------------------------


class _DeadlineGuard:
    """One running machine with a wall-clock deadline."""

    __slots__ = ("machine", "deadline_at", "expired")

    def __init__(self, machine, deadline_at: float):
        self.machine = machine
        self.deadline_at = deadline_at
        self.expired = False


class _Watchdog:
    """Scans active executions and cuts fuel on expired deadlines.

    Cutting ``machine.fuel`` below the retired-instruction count makes
    the existing fuel check fire at the next check boundary — no new
    state in the hot simulator loops, and a module that never makes
    another host call still stops.  Under the legacy engines that
    boundary is the next instruction; under the threaded engines it is
    the next basic-block boundary (at most one block of straight-line
    code late), which is still bounded: blocks cannot span branches, so
    a runaway loop hits a boundary every iteration."""

    def __init__(self, interval: float = 0.002):
        self.interval = interval
        self._lock = threading.Lock()
        self._guards: set[_DeadlineGuard] = set()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="modulehost-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def watch(self, machine, deadline_seconds: float) -> _DeadlineGuard:
        return self.watch_until(machine,
                                time.monotonic() + deadline_seconds)

    def watch_until(self, machine, deadline_at: float) -> _DeadlineGuard:
        """Watch with an absolute :func:`time.monotonic` deadline — the
        service uses this so retry backoffs spent before execution count
        against the same wall-clock budget."""
        guard = _DeadlineGuard(machine, deadline_at)
        with self._lock:
            self._guards.add(guard)
        return guard

    def unwatch(self, guard: _DeadlineGuard) -> None:
        with self._lock:
            self._guards.discard(guard)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            now = time.monotonic()
            with self._lock:
                expired = [g for g in self._guards
                           if not g.expired and now >= g.deadline_at]
            for guard in expired:
                guard.expired = True
                guard.machine.fuel = -1  # next fuel check raises


# -- future-style handle ------------------------------------------------------


class PendingRequest:
    """Handle for a submitted request; :meth:`result` blocks until the
    worker pool produces the :class:`ModuleResponse`."""

    def __init__(self, request: ModuleRequest):
        self.request = request
        self._done = threading.Event()
        self._response: ModuleResponse | None = None
        self._callbacks: list = []
        self._cb_lock = threading.Lock()

    def _resolve(self, response: ModuleResponse) -> None:
        self._response = response
        with self._cb_lock:
            self._done.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(response)

    def on_done(self, callback) -> None:
        """Invoke *callback(response)* when the response arrives (now,
        if it already has).  The sharded worker uses this to stream
        responses back over its pipe without a thread per request."""
        with self._cb_lock:
            if not self._done.is_set():
                self._callbacks.append(callback)
                return
        callback(self._response)

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> ModuleResponse:
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.request.request_id!r} still running"
            )
        assert self._response is not None
        return self._response


# -- the service --------------------------------------------------------------

#: Sentinel shutting one worker down.
_SHUTDOWN = object()

#: Dynamic-link failure kinds the service counts individually (on top of
#: the generic ``service.error``), so operators can tell a revoked
#: dependency from a genuinely missing one at a glance.
_LINK_FAILURE_COUNTERS = {
    CrossModuleViolation: "cross_module_violation",
    DuplicateExportError: "link_duplicate_export",
    ModuleCycleError: "link_cycle",
    ModuleRevokedError: "module_revoked",
    UnresolvedImportError: "link_unresolved_import",
}


class ModuleHost:
    """A concurrent execution service for mobile modules.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.Engine` to serve with (None = a fresh
        default engine).  Its translation cache is shared by all
        workers (the cache is internally locked).
    workers:
        Worker-thread count (each runs interp/target simulation).
    queue_depth:
        Bound on queued-but-unstarted requests; a full queue rejects
        non-blocking submits with
        :class:`~repro.errors.ServiceOverloaded`.
    retry:
        :class:`RetryPolicy` for transient translate/load failures.
    faults:
        Optional :class:`FaultInjector` consulted before every
        translate attempt and every execution.
    default_deadline:
        Deadline (seconds) applied when a request does not set one
        (None = no deadline).
    watchdog_interval:
        Deadline-scan period of the watchdog thread.
    """

    def __init__(
        self,
        engine: Engine | None = None,
        workers: int = 4,
        queue_depth: int = 32,
        retry: RetryPolicy | None = None,
        faults: FaultInjector | None = None,
        default_deadline: float | None = None,
        watchdog_interval: float = 0.002,
    ):
        if workers < 1:
            raise ValueError("ModuleHost needs at least one worker")
        if queue_depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.engine = engine or Engine()
        self.workers = workers
        self.retry = retry or RetryPolicy()
        self.faults = faults
        self.default_deadline = default_deadline
        self.stats = ServiceStats(self.engine.metrics)
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self._watchdog = _Watchdog(watchdog_interval)
        self._threads: list[threading.Thread] = []
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._started = False

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ModuleHost":
        with self._lock:
            if self._started:
                return self
            self._started = True
            self._watchdog.start()
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"modulehost-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        return self

    def stop(self) -> None:
        """Drain queued requests, then stop the workers and watchdog."""
        with self._lock:
            if not self._started:
                return
            self._started = False
            threads, self._threads = self._threads, []
        for _ in threads:
            self._queue.put(_SHUTDOWN)
        for thread in threads:
            thread.join()
        self._watchdog.stop()

    def __enter__(self) -> "ModuleHost":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- submission -----------------------------------------------------------

    def submit(self, request: ModuleRequest,
               block: bool = False) -> PendingRequest:
        """Enqueue *request*; returns a :class:`PendingRequest`.

        A full queue raises :class:`~repro.errors.ServiceOverloaded`
        when ``block`` is False (the degradation policy: shed load
        early and visibly); ``block=True`` applies backpressure
        instead."""
        self.start()
        if not request.request_id:
            request.request_id = f"req-{next(self._ids)}"
        pending = PendingRequest(request)
        try:
            self._queue.put((request, pending), block=block)
        except queue.Full:
            self.stats.count("rejected")
            raise ServiceOverloaded(
                f"request queue full ({self._queue.maxsize} deep); "
                f"request {request.request_id!r} rejected"
            ) from None
        self.stats.observe_queue_depth(self._queue.qsize())
        return pending

    def run(self, request: ModuleRequest,
            timeout: float | None = None) -> ModuleResponse:
        """Submit (with backpressure) and wait for the response."""
        return self.submit(request, block=True).result(timeout)

    def run_batch(self, requests: list[ModuleRequest],
                  timeout: float | None = None) -> list[ModuleResponse]:
        """Submit every request (with backpressure) and collect the
        responses in request order."""
        pending = [self.submit(request, block=True) for request in requests]
        return [p.result(timeout) for p in pending]

    # -- module management ----------------------------------------------------

    def register_module(self, name: str, module: "ObjectModule | str",
                        policy: SandboxPolicy = DEFAULT_POLICY):
        """Register (or hot-reload) a named module in the engine's
        registry; subsequent ``modules=``-style requests link against
        it.  Reloading invalidates only that module's cached translation
        chunks — other modules keep their warm translations."""
        definition = self.engine.register_module(name, module, policy)
        self.stats.count("module_register")
        return definition

    def revoke_module(self, name: str):
        """Revoke *name*: requests whose link closure needs it fail with
        a typed ``ModuleRevokedError`` response; in-flight executions of
        images already linked against it run to completion."""
        definition = self.engine.revoke_module(name)
        self.stats.count("module_revoke")
        return definition

    # -- workers --------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                self._queue.task_done()
                return
            request, pending = item
            try:
                response = self._execute(request)
            except BaseException as err:  # defensive: never kill a worker
                response = ModuleResponse(
                    request_id=request.request_id, ok=False,
                    error=type(err).__name__, error_message=str(err),
                )
                self.stats.count("error")
            finally:
                self._queue.task_done()
            pending._resolve(response)

    def _execute(self, request: ModuleRequest) -> ModuleResponse:
        start = time.perf_counter()
        self.stats.count("request")
        engine = self.engine
        response = ModuleResponse(request_id=request.request_id, ok=False)
        # One wall-clock budget for the whole request: retry backoffs
        # and execution spend from the same deadline, so a request can
        # never come back with DeadlineExceeded *later* than its
        # deadline promised because backoff sleeps ran off the clock.
        deadline = (request.deadline_seconds
                    if request.deadline_seconds is not None
                    else self.default_deadline)
        deadline_at = (time.monotonic() + deadline
                       if deadline is not None else None)
        try:
            if request.modules:
                if request.program is not None:
                    raise DynamicLinkError(
                        "a request takes program= or modules=, not both"
                    )
                program: LinkedProgram = engine.link_modules(
                    list(request.modules), entry=request.entry or "main"
                )
            elif request.program is None:
                raise DynamicLinkError(
                    "a request needs program= or modules="
                )
            else:
                program = request.program
                if not isinstance(program, LinkedProgram):
                    program = engine.compile(program)
            arch = engine._resolve_target(request.target)
            module = None
            host = CappedHost(request.quota.max_output_bytes)
            if arch != INTERPRETER:
                try:
                    module = self._load_with_retry(
                        program, arch, request, host, response,
                        deadline_at)
                except (DeadlineExceeded, QuotaExceeded):
                    raise
                except ReproError:
                    # Graceful degradation: serve the request on the
                    # reference interpreter rather than failing it.
                    self.stats.count("fallback")
                    response.fallback = True
                    arch = INTERPRETER
                    host = CappedHost(request.quota.max_output_bytes)
            response.arch = arch
            if module is None:
                module = engine.load(
                    program, arch, request.options,
                    config=RunConfig(
                        host=host,
                        fuel=request.quota.fuel,
                        segment_size=request.quota.segment_size,
                    ),
                )
            response.exit_code = self._run_with_deadline(
                module, request, deadline, deadline_at)
            response.ok = True
            response.output = host.output_text()
            self.stats.count("ok")
        except DeadlineExceeded as err:
            self.stats.count("timeout")
            self.stats.count("error")
            response.error = type(err).__name__
            response.error_message = str(err)
        except QuotaExceeded as err:
            self.stats.count("quota_exceeded")
            self.stats.count("error")
            response.error = type(err).__name__
            response.error_message = str(err)
        except ReproError as err:
            counter = _LINK_FAILURE_COUNTERS.get(type(err))
            if counter is not None:
                self.stats.count(counter)
            self.stats.count("error")
            response.error = type(err).__name__
            response.error_message = str(err)
        response.latency_seconds = time.perf_counter() - start
        self.stats.observe_latency(response.latency_seconds)
        return response

    def _load_with_retry(self, program: LinkedProgram, arch: str,
                         request: ModuleRequest, host: Host,
                         response: ModuleResponse,
                         deadline_at: float | None = None):
        """Translate+load for *arch*, retrying transient faults with
        jittered exponential backoff; the attempt count is recorded on
        *response* (it survives a subsequent interpreter fallback).

        Every backoff sleep is clamped to the request's remaining
        wall-clock budget, and a retry with no budget left fails fast
        as :class:`~repro.errors.DeadlineExceeded` instead of sleeping
        past the deadline."""
        while True:
            try:
                if self.faults is not None:
                    self.faults.on_translate(arch)
                return self.engine.load(
                    program, arch, request.options,
                    config=RunConfig(
                        host=host,
                        fuel=request.quota.fuel,
                        segment_size=request.quota.segment_size,
                    ),
                )
            except TransientFault:
                response.retries += 1
                if response.retries >= self.retry.max_attempts:
                    raise
                delay = self.retry.delay(response.retries,
                                         key=request.request_id)
                if deadline_at is not None:
                    remaining = deadline_at - time.monotonic()
                    if remaining <= 0.0:
                        raise DeadlineExceeded(
                            f"request {request.request_id!r} exhausted "
                            f"its deadline during retry backoff "
                            f"(attempt {response.retries})",
                            deadline_seconds=request.deadline_seconds,
                        ) from None
                    delay = min(delay, remaining)
                self.stats.count("retry")
                time.sleep(delay)

    def _run_with_deadline(self, module, request: ModuleRequest,
                           deadline: float | None,
                           deadline_at: float | None) -> int:
        machine = getattr(module, "machine", None) or module.vm
        guard = None
        if deadline_at is not None:
            if deadline_at - time.monotonic() <= 0.0:
                # Budget already spent (e.g. on retry backoffs): fail
                # fast rather than start an execution we must kill.
                raise DeadlineExceeded(
                    f"request {request.request_id!r} exceeded its "
                    f"{deadline:.3f}s deadline before execution",
                    deadline_seconds=deadline,
                )
            guard = self._watchdog.watch_until(machine, deadline_at)
        try:
            if self.faults is not None:
                self.faults.on_execute(request)
            return module.run(request.entry)
        except FuelExhausted:
            if guard is not None and guard.expired:
                raise DeadlineExceeded(
                    f"request {request.request_id!r} exceeded its "
                    f"{deadline:.3f}s deadline", deadline_seconds=deadline,
                ) from None
            raise
        finally:
            if guard is not None:
                self._watchdog.unwatch(guard)
