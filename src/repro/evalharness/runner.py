"""Experiment runner: builds, translates, executes, and caches results.

Every cell of every table in the paper's evaluation is a ratio of two
deterministic simulated executions, so results are cached aggressively:

* in memory for the lifetime of the process (pytest runs all benchmarks
  in one process);
* optionally on disk (``.bench_cache.json`` at the repository root),
  keyed by a hash of the package sources + workload + configuration, so
  editing any compiler/translator source invalidates stale numbers.

Every run's output is checked against the workload's independent Python
oracle — a configuration that produces wrong output can never contribute
a performance number.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro import metrics
from repro.cache import TranslationCache
from repro.native import profiles
from repro.runtime.loader import load_module
from repro.workloads import suite

ARCHS = ("mips", "sparc", "ppc", "x86")


@dataclass(frozen=True)
class RunKey:
    workload: str
    arch: str  # "omnivm" for the reference interpreter
    profile: str  # name in repro.native.profiles.PROFILES ("interp" for VM)
    num_regs: int = 16


@dataclass
class RunResult:
    key: RunKey
    cycles: int
    instret: int
    omni_instret: int
    categories: dict[str, int] = field(default_factory=dict)
    #: measured per-stage wall seconds (verify.module, translate,
    #: verify.sfi, execute, ...) from the metrics layer
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: selected pipeline counters (translate.native_instrs,
    #: verify.sfi.stores_checked, execute.sfi.dynamic, ...)
    pipeline_counters: dict[str, int] = field(default_factory=dict)

    @property
    def static_expansion_ratio(self) -> float | None:
        omni = self.pipeline_counters.get("translate.omni_instrs", 0)
        native = self.pipeline_counters.get("translate.native_instrs", 0)
        return (native / omni) if omni else None

    @property
    def dynamic_expansion_ratio(self) -> float | None:
        return (self.instret / self.omni_instret) if self.omni_instret \
            else None

    def to_json(self) -> dict:
        return {
            "workload": self.key.workload,
            "arch": self.key.arch,
            "profile": self.key.profile,
            "num_regs": self.key.num_regs,
            "cycles": self.cycles,
            "instret": self.instret,
            "omni_instret": self.omni_instret,
            "categories": self.categories,
            "stage_seconds": self.stage_seconds,
            "pipeline_counters": self.pipeline_counters,
        }

    @classmethod
    def from_json(cls, data: dict) -> "RunResult":
        key = RunKey(data["workload"], data["arch"], data["profile"],
                     data["num_regs"])
        return cls(key, data["cycles"], data["instret"],
                   data["omni_instret"], data["categories"],
                   data.get("stage_seconds", {}),
                   data.get("pipeline_counters", {}))


def _package_hash() -> str:
    """Hash of the package sources: cache invalidation on any code edit."""
    root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


class Runner:
    """Runs experiment configurations with two-level caching."""

    def __init__(self, cache_path: str | os.PathLike | None = None):
        self._memory: dict[RunKey, RunResult] = {}
        self._disk: dict[str, dict] = {}
        #: shared content-addressed translation cache: one workload
        #: translated once per (arch, options) across the whole sweep
        self.translation_cache = TranslationCache(capacity=128)
        if cache_path is None:
            env = os.environ.get("REPRO_CACHE", "")
            if env == "off":
                self.cache_path = None
            else:
                self.cache_path = Path(env) if env else (
                    Path(__file__).resolve().parents[3] / ".bench_cache.json"
                )
        else:
            self.cache_path = Path(cache_path)
        self._stamp = _package_hash()
        self._load_disk()

    # -- disk cache -----------------------------------------------------------

    def _load_disk(self) -> None:
        if self.cache_path is None or not self.cache_path.exists():
            return
        try:
            payload = json.loads(self.cache_path.read_text())
        except (ValueError, OSError):
            return
        if payload.get("stamp") != self._stamp:
            return  # sources changed: everything stale
        self._disk = payload.get("results", {})

    def _save_disk(self) -> None:
        if self.cache_path is None:
            return
        payload = {"stamp": self._stamp, "results": self._disk}
        try:
            self.cache_path.write_text(json.dumps(payload))
        except OSError:
            pass

    @staticmethod
    def _disk_key(key: RunKey) -> str:
        return f"{key.workload}|{key.arch}|{key.profile}|{key.num_regs}"

    # -- execution ----------------------------------------------------------------

    def run(self, key: RunKey) -> RunResult:
        cached = self._memory.get(key)
        if cached is not None:
            return cached
        disk_key = self._disk_key(key)
        if disk_key in self._disk:
            result = RunResult.from_json(self._disk[disk_key])
            self._memory[key] = result
            return result
        result = self._execute(key)
        self._memory[key] = result
        self._disk[disk_key] = result.to_json()
        self._save_disk()
        return result

    #: counters worth persisting per run (small, schema-stable subset)
    _PIPELINE_COUNTERS = (
        "translate.omni_instrs",
        "translate.native_instrs",
        "translate.static.sfi",
        "verify.sfi.stores_checked",
        "verify.sfi.ijumps_checked",
        "execute.sfi.dynamic",
        "cache.hit",
        "cache.miss",
    )

    def _execute(self, key: RunKey) -> RunResult:
        program = suite.build(key.workload, num_regs=key.num_regs)
        omni = self.omni_instret(key.workload, key.num_regs)
        if key.arch == "omnivm":
            with metrics.collect() as collector:
                loaded = load_module(program)
                loaded.run()
            if not suite.check_output(key.workload, loaded.host.output_values()):
                raise AssertionError(
                    f"{key}: interpreter output mismatch"
                )
            count = loaded.vm.state.instret
            return RunResult(key, count, count, count,
                             stage_seconds=dict(collector.stage_seconds))
        options = profiles.PROFILES[key.profile]
        with metrics.collect() as collector:
            module = load_module(program, key.arch, options,
                                 cache=self.translation_cache)
            module.run()
        if not suite.check_output(key.workload, module.host.output_values()):
            raise AssertionError(
                f"{key}: translated output mismatch: "
                f"{module.host.output_values()[:5]}"
            )
        machine = module.machine
        return RunResult(
            key,
            machine.cycles,
            machine.instret,
            omni,
            dict(machine.category_counts),
            stage_seconds=dict(collector.stage_seconds),
            pipeline_counters={
                name: collector.counters[name]
                for name in self._PIPELINE_COUNTERS
                if name in collector.counters
            },
        )

    def omni_instret(self, workload: str, num_regs: int = 16) -> int:
        """Dynamic OmniVM instruction count (Figure 1 denominator)."""
        key = RunKey(workload, "omnivm", "interp", num_regs)
        cached = self._memory.get(key)
        if cached is not None:
            return cached.instret
        disk_key = self._disk_key(key)
        if disk_key in self._disk:
            result = RunResult.from_json(self._disk[disk_key])
            self._memory[key] = result
            return result.instret
        program = suite.build(workload, num_regs=num_regs)
        loaded = load_module(program)
        loaded.run()
        if not suite.check_output(workload, loaded.host.output_values()):
            raise AssertionError(f"{workload}: interpreter output mismatch")
        count = loaded.vm.state.instret
        result = RunResult(key, count, count, count)
        self._memory[key] = result
        self._disk[disk_key] = result.to_json()
        self._save_disk()
        return result.instret

    # -- measured pipeline telemetry ----------------------------------------------

    def pipeline_report(self) -> dict:
        """Aggregate measured per-stage seconds and pipeline counters
        over every result this runner holds, plus translation-cache
        counters — the measured numbers tables/figures can report
        instead of re-deriving them."""
        stage_seconds: dict[str, float] = {}
        counters: dict[str, int] = {}
        for result in self._memory.values():
            for name, seconds in result.stage_seconds.items():
                stage_seconds[name] = stage_seconds.get(name, 0.0) + seconds
            for name, amount in result.pipeline_counters.items():
                counters[name] = counters.get(name, 0) + amount
        return {
            "stage_seconds": stage_seconds,
            "pipeline_counters": counters,
            "translation_cache": self.translation_cache.stats().to_dict(),
        }

    # -- ratios ------------------------------------------------------------------

    def cycle_ratio(self, workload: str, arch: str, profile: str,
                    baseline_profile: str, num_regs: int = 16,
                    baseline_regs: int = 16) -> float:
        subject = self.run(RunKey(workload, arch, profile, num_regs))
        baseline = self.run(RunKey(workload, arch, baseline_profile,
                                   baseline_regs))
        return subject.cycles / baseline.cycles


#: Process-wide runner (shared by tables, benchmarks, tests).
_GLOBAL: Runner | None = None


def global_runner() -> Runner:
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = Runner()
    return _GLOBAL
