"""Reproduction of the paper's Tables 1–6.

Each ``tableN()`` function returns a :class:`TableResult` holding the
measured ratio matrix plus the paper's published numbers for side-by-side
comparison, and renders in the paper's layout (programs down, targets
across, average row at the bottom).  Absolute agreement is not expected —
the substrate is a first-order simulator, not the authors' 1995 hardware
— but the *shapes* (who wins, by roughly what factor) are asserted by the
test suite via :func:`repro.evalharness.shapes.check_*`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evalharness.runner import ARCHS, Runner, global_runner
from repro.workloads.suite import WORKLOAD_NAMES

#: The paper's published numbers (for the report columns).
PAPER_TABLE1 = {  # SFI vs native cc
    "li": {"mips": 1.10, "sparc": 1.05, "ppc": 1.18, "x86": 1.11},
    "compress": {"mips": 1.04, "sparc": 1.02, "ppc": 1.23, "x86": 1.02},
    "alvinn": {"mips": 1.20, "sparc": 1.07, "ppc": 1.08, "x86": 1.25},
    "eqntott": {"mips": 1.20, "sparc": 1.04, "ppc": 1.35, "x86": 1.06},
}

PAPER_TABLE2 = {8: 1.11, 10: 1.11, 12: 1.08, 14: 1.06, 16: 1.05}

PAPER_TABLE3_NOSFI = {  # no-SFI vs native cc
    "li": {"mips": 0.91, "sparc": 1.02, "ppc": 1.08, "x86": 1.10},
    "compress": {"mips": 0.96, "sparc": 1.01, "ppc": 1.18, "x86": 1.02},
    "alvinn": {"mips": 1.09, "sparc": 1.03, "ppc": 0.97, "x86": 1.22},
    "eqntott": {"mips": 1.18, "sparc": 0.99, "ppc": 1.35, "x86": 1.04},
}

PAPER_TABLE4_SFI = {  # SFI vs native gcc
    "li": {"mips": 1.11, "sparc": 1.05, "ppc": 1.04, "x86": 1.09},
    "compress": {"mips": 0.78, "sparc": 1.02, "ppc": 1.08, "x86": 1.01},
    "alvinn": {"mips": 1.12, "sparc": 1.08, "ppc": 1.36, "x86": 1.09},
    "eqntott": {"mips": 1.04, "sparc": 1.03, "ppc": 0.66, "x86": 1.05},
}

PAPER_TABLE5_SFI = {  # SFI, no translator optimizations, vs native cc
    "li": {"mips": 1.18, "sparc": 1.11, "ppc": 1.35, "x86": 1.18},
    "compress": {"mips": 1.04, "sparc": 1.18, "ppc": 1.28, "x86": 1.09},
    "alvinn": {"mips": 1.37, "sparc": 1.21, "ppc": 1.32, "x86": 1.79},
    "eqntott": {"mips": 1.08, "sparc": 1.24, "ppc": 1.35, "x86": 1.22},
}

PAPER_TABLE6 = {  # native gcc vs native cc
    "li": {"mips": 0.98, "sparc": 1.01, "ppc": 1.14, "x86": 1.13},
    "average": {"mips": 1.14, "sparc": 1.01, "ppc": 1.27, "x86": 1.16},
}


@dataclass
class TableResult:
    """A measured table: ratios[workload][arch] (plus 'average' row)."""

    title: str
    columns: tuple[str, ...]
    ratios: dict[str, dict[str, float]] = field(default_factory=dict)
    paper: dict[str, dict[str, float]] = field(default_factory=dict)

    def add_average(self) -> None:
        avg: dict[str, float] = {}
        for col in self.columns:
            values = [row[col] for name, row in self.ratios.items()
                      if name != "average" and col in row]
            avg[col] = sum(values) / len(values)
        self.ratios["average"] = avg

    def render(self) -> str:
        lines = [self.title, ""]
        header = f"{'program':<10}" + "".join(f"{c:>9}" for c in self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        for name, row in self.ratios.items():
            cells = "".join(
                f"{row[c]:>9.2f}" if c in row else f"{'-':>9}"
                for c in self.columns
            )
            lines.append(f"{name:<10}{cells}")
        if self.paper:
            lines.append("")
            lines.append("paper reported:")
            for name, row in self.paper.items():
                cells = "".join(
                    f"{row[c]:>9.2f}" if c in row else f"{'-':>9}"
                    for c in self.columns
                )
                lines.append(f"{name:<10}{cells}")
        return "\n".join(lines)


def _ratio_table(title: str, profile: str, baseline: str,
                 paper: dict | None = None,
                 runner: Runner | None = None) -> TableResult:
    runner = runner or global_runner()
    table = TableResult(title, ARCHS, paper=paper or {})
    for workload in WORKLOAD_NAMES:
        table.ratios[workload] = {
            arch: runner.cycle_ratio(workload, arch, profile, baseline)
            for arch in ARCHS
        }
    table.add_average()
    return table


def table1(runner: Runner | None = None) -> TableResult:
    """Table 1: execution time of translated code with SFI, relative to
    native code produced by the vendor cc."""
    return _ratio_table(
        "Table 1: mobile code with SFI, relative to native cc",
        "mobile-sfi", "native-cc", PAPER_TABLE1, runner,
    )


def table2(runner: Runner | None = None) -> TableResult:
    """Table 2: average overhead vs native SPARC cc as the OmniVM register
    file size varies."""
    runner = runner or global_runner()
    sizes = (8, 10, 12, 14, 16)
    table = TableResult(
        "Table 2: SPARC overhead by OmniVM register file size",
        tuple(str(s) for s in sizes),
        paper={"average": {str(s): v for s, v in PAPER_TABLE2.items()}},
    )
    for workload in WORKLOAD_NAMES:
        row = {}
        for size in sizes:
            row[str(size)] = runner.cycle_ratio(
                workload, "sparc", "mobile-sfi", "native-cc",
                num_regs=size, baseline_regs=16,
            )
        table.ratios[workload] = row
    table.add_average()
    return table


def table3(runner: Runner | None = None) -> tuple[TableResult, TableResult]:
    """Table 3: mobile vs native cc, with and without SFI."""
    sfi = _ratio_table(
        "Table 3 (SFI): mobile code vs native cc",
        "mobile-sfi", "native-cc", PAPER_TABLE1, runner,
    )
    nosfi = _ratio_table(
        "Table 3 (no SFI): mobile code vs native cc",
        "mobile-nosfi", "native-cc", PAPER_TABLE3_NOSFI, runner,
    )
    return sfi, nosfi


def table4(runner: Runner | None = None) -> tuple[TableResult, TableResult]:
    """Table 4: mobile vs native gcc, with and without SFI."""
    sfi = _ratio_table(
        "Table 4 (SFI): mobile code vs native gcc",
        "mobile-sfi", "native-gcc", PAPER_TABLE4_SFI, runner,
    )
    nosfi = _ratio_table(
        "Table 4 (no SFI): mobile code vs native gcc",
        "mobile-nosfi", "native-gcc", None, runner,
    )
    return sfi, nosfi


def table5(runner: Runner | None = None) -> tuple[TableResult, TableResult]:
    """Table 5: mobile code translated *without* translator optimizations,
    vs native cc."""
    sfi = _ratio_table(
        "Table 5 (SFI): unoptimized translation vs native cc",
        "mobile-sfi-noopt", "native-cc", PAPER_TABLE5_SFI, runner,
    )
    nosfi = _ratio_table(
        "Table 5 (no SFI): unoptimized translation vs native cc",
        "mobile-nosfi-noopt", "native-cc", None, runner,
    )
    return sfi, nosfi


def table6(runner: Runner | None = None) -> TableResult:
    """Table 6: native gcc relative to native cc."""
    return _ratio_table(
        "Table 6: native gcc vs native cc",
        "native-gcc", "native-cc", PAPER_TABLE6, runner,
    )


ALL_TABLES = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
}
