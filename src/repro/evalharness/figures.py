"""Reproduction of the paper's figures.

**Figure 1** — dynamic instruction expansion during translation, for MIPS
and PowerPC, broken into the paper's categories (``addr``, ``cmp``,
``ldi``, ``bnop``, ``sfi``).  Values are extra native instructions
executed per OmniVM instruction executed (the interpreter run provides
the denominator), rendered as a text bar chart.

**Figure 2** — the "universal substrate" diagram: many source languages
compile to one mobile format that runs on many targets.  Reproduced
executably by :func:`figure2_demo`: a MiniC module and a MiniLisp module
are linked into one mobile program and executed on the reference VM and
all four translated targets, asserting identical output everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evalharness.runner import RunKey, Runner, global_runner
from repro.workloads.suite import WORKLOAD_NAMES

FIG1_CATEGORIES = ("addr", "cmp", "ldi", "bnop", "sfi")
FIG1_ARCHS = ("mips", "ppc")


@dataclass
class Figure1Result:
    """expansion[arch][workload][category] = extra instructions per
    OmniVM instruction executed."""

    expansion: dict[str, dict[str, dict[str, float]]] = field(
        default_factory=dict
    )

    def total(self, arch: str, workload: str) -> float:
        return sum(self.expansion[arch][workload].values())

    def render(self) -> str:
        lines = ["Figure 1: dynamic expansion per OmniVM instruction", ""]
        for arch in self.expansion:
            lines.append(f"  {arch}:")
            for workload, cats in self.expansion[arch].items():
                lines.append(f"    {workload:<10}"
                             + "  ".join(f"{c}={cats[c]:.3f}"
                                         for c in FIG1_CATEGORIES))
                bar = ""
                for cat in FIG1_CATEGORIES:
                    bar += {"addr": "a", "cmp": "c", "ldi": "l",
                            "bnop": "n", "sfi": "s"}[cat] * int(
                                round(cats[cat] * 40))
                lines.append(f"    {'':<10}|{bar}")
        lines.append("")
        lines.append("legend: a=addr c=cmp l=ldi n=bnop s=sfi "
                     "(each char = 0.025 extra instructions)")
        return "\n".join(lines)


def figure1(runner: Runner | None = None,
            archs: tuple[str, ...] = FIG1_ARCHS) -> Figure1Result:
    runner = runner or global_runner()
    result = Figure1Result()
    for arch in archs:
        result.expansion[arch] = {}
        for workload in WORKLOAD_NAMES:
            run = runner.run(RunKey(workload, arch, "mobile-sfi"))
            omni = run.omni_instret
            result.expansion[arch][workload] = {
                cat: run.categories.get(cat, 0) / omni
                for cat in FIG1_CATEGORIES
            }
    return result


# ---------------------------------------------------------------------------
# Figure 2: the universality demo
# ---------------------------------------------------------------------------

_MINIC_PART = r"""
extern int lisp_entry(int n);

int c_square(int x) { return x * x; }

int main() {
    /* A C module calling into a module compiled from a different
       language, both shipped as one OmniVM mobile program. */
    emit_int(c_square(7));
    emit_int(lisp_entry(8));
    return 0;
}
"""

_MINILISP_PART = "(defun lisp_entry (n) (if (< n 2) 1 (* n (lisp_entry (- n 1)))))"


def figure2_demo() -> dict[str, list[object]]:
    """Compile MiniC + MiniLisp into one mobile module, run it on the
    reference VM and all four targets; returns outputs per engine."""
    from repro.compiler import CompileOptions, compile_to_object
    from repro.lang2.compiler import compile_minilisp
    from repro.omnivm.linker import link
    from repro.runtime.loader import run_module
    from repro.runtime.native_loader import run_on_target
    from repro.native.profiles import MOBILE_SFI

    c_obj = compile_to_object(_MINIC_PART, CompileOptions(module_name="cpart"))
    lisp_obj = compile_minilisp(_MINILISP_PART, module_name="lisppart")
    program = link([c_obj, lisp_obj], name="fig2")

    outputs: dict[str, list[object]] = {}
    _code, host = run_module(program)
    outputs["omnivm"] = host.output_values()
    for arch in ("mips", "sparc", "ppc", "x86"):
        _code, module = run_on_target(program, arch, MOBILE_SFI)
        outputs[arch] = module.host.output_values()
    return outputs
