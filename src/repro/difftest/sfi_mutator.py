"""Sandbox-escape mutation fuzzing of the SFI verifier.

The verifier is the trusted computing base of the whole system: the
translator may be arbitrarily buggy (or malicious) as long as the
verifier rejects unsafe output.  Differential testing exercises the
translator; *this* module exercises the verifier, from the adversary's
side.  It takes modules the verifier accepts, applies seeded
index-stable mutations that model realistic sandbox escapes, and
demands:

* every **unsafe** mutant — one whose mutations break the provable SFI
  invariant at some instruction — is rejected (the *kill-rate* must be
  100%); a surviving unsafe mutant is a verifier soundness hole;
* every **behavior-preserving** mutant — one that provably keeps the
  invariant — still verifies; a rejected safe mutant means the
  verifier is overtight (it would reject legal translator output).

Mutation operators (all keep instruction indices stable so branch
targets and the ``omni_to_native`` map stay valid):

=====================  ====================================================
operator               effect
=====================  ====================================================
``drop-guard``         replace one guard instruction with ``nop``
``retarget-guard``     point a mask/rebase at the wrong register/immediate
``reorder-guard``      swap a guard with its successor instruction
``widen-sp``           grow an ``addi sp`` past the small-constant bound
``redirect-sp``        turn an sp update into a register-register ``add``
``redirect-store``     move a store's base off the sandboxed register
``redirect-storex``    break the indexed store's base/index register pair
``raw-jump``           point ``jr``/``jalr`` at an unmasked register
``clobber-dedicated``  make an ALU result land in a dedicated register
``tweak-value``        flip a bit in a non-guard immediate         (safe)
``tweak-store-value``  store a different general register          (safe)
``fill-nop``           replace a scheduler nop with ``addi g,g,0`` (safe)
=====================  ====================================================

Expected classification is *not* "operator X is always unsafe": some
guard mutations are genuinely behavior-preserving (dropping the
address-forming ``mov``/``addi`` before a mask only changes *which*
in-sandbox address is stored to; dropping the mask before an indexed
store whose scratch register is still masked from the previous store
changes nothing the invariant cares about).  For guard-chain mutations
the fuzzer therefore replays the verifier's own transfer function
(:func:`repro.sfi.verifier.scratch_step`) over the mutated chain,
starting from the dataflow in-state the CFG analysis computed for the
chain on the original module, and asks whether the consumer's
requirement still holds; register-redirections and sp widenings
violate a per-instruction rule and are unconditionally unsafe.

Surviving mutants are minimized with the existing ddmin
(:func:`repro.difftest.minimize.minimize_program`) down to a minimal
still-surviving mutation subset, so a verifier hole is reported as the
smallest escape that slips through.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field

from repro import metrics
from repro.difftest.generator import ProgramGenerator
from repro.difftest.minimize import minimize_program
from repro.errors import VerifyError
from repro.native.profiles import MOBILE_SFI
from repro.sfi.policy import DEFAULT_POLICY, SandboxPolicy
from repro.sfi.verifier import (
    SCRATCH_CODE_SANDBOXED,
    SCRATCH_DATA_MASKED,
    SCRATCH_DATA_SANDBOXED,
    SfiAnalysis,
    scratch_step,
    verify_sfi,
)
from repro.translators import ARCHITECTURES, translate
from repro.translators.base import TranslatedModule

_STORE_OPS = frozenset("sb sh sw sfs sfd".split())
_STOREX_OPS = frozenset("sbx shx swx sfsx sfdx".split())
_TWEAKABLE_OPS = frozenset("li addi ori xori andi slli srli".split())

#: How far back a guard chain may stretch from its consumer (the
#: scheduler interleaves at most a handful of unrelated instructions).
_CHAIN_WINDOW = 16


@dataclass(frozen=True)
class Mutation:
    """One index-stable rewrite of a translated module."""

    kind: str
    index: int          # native instruction index rewritten (or swapped)
    expected: str       # "unsafe" | "safe"
    detail: str         # human-readable description
    #: disjointness key — two mutations of one mutant never share a
    #: site (same guard chain / same instruction), so a composite
    #: mutant's expectation is the OR of its parts
    site: int = -1
    #: operator payload (replacement register, new immediate, ...)
    arg: int = 0

    def describe(self) -> str:
        return f"{self.kind}@{self.index} ({self.detail})"


@dataclass
class MutantReport:
    """One mutant and what the verifier did with it."""

    program: int
    arch: str
    mutations: list[Mutation]
    expected: str       # "unsafe" | "safe"
    verdict: str        # "killed" | "survived" | "accepted" | "overtight"
    error: str = ""
    minimized: list[Mutation] | None = None

    def to_dict(self) -> dict:
        payload = {
            "program": self.program,
            "arch": self.arch,
            "expected": self.expected,
            "verdict": self.verdict,
            "mutations": [m.describe() for m in self.mutations],
        }
        if self.error:
            payload["error"] = self.error
        if self.minimized is not None:
            payload["minimized"] = [m.describe() for m in self.minimized]
        return payload


@dataclass
class SfiFuzzSummary:
    """Aggregate result of a mutation-fuzzing run."""

    seed: str
    programs: int
    targets: tuple[str, ...]
    modules: int = 0
    mutants: int = 0
    unsafe_total: int = 0
    unsafe_killed: int = 0
    safe_total: int = 0
    safe_accepted: int = 0
    shrink_checks: int = 0
    survivors: list[MutantReport] = field(default_factory=list)
    overtight: list[MutantReport] = field(default_factory=list)

    @property
    def kill_rate(self) -> float:
        return (self.unsafe_killed / self.unsafe_total
                if self.unsafe_total else 1.0)

    @property
    def clean(self) -> bool:
        return not self.survivors and not self.overtight

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "programs": self.programs,
            "targets": list(self.targets),
            "modules": self.modules,
            "mutants": self.mutants,
            "unsafe_total": self.unsafe_total,
            "unsafe_killed": self.unsafe_killed,
            "kill_rate": self.kill_rate,
            "safe_total": self.safe_total,
            "safe_accepted": self.safe_accepted,
            "shrink_checks": self.shrink_checks,
            "survivors": [s.to_dict() for s in self.survivors],
            "overtight": [o.to_dict() for o in self.overtight],
        }

    def render(self) -> str:
        lines = [
            f"sfi mutation fuzz: seed={self.seed!r} programs={self.programs}"
            f" targets={','.join(self.targets)}",
            f"  mutants:        {self.mutants} over {self.modules} modules",
            f"  unsafe killed:  {self.unsafe_killed}/{self.unsafe_total}"
            f"  (kill-rate {self.kill_rate * 100:.1f}%)",
            f"  safe accepted:  {self.safe_accepted}/{self.safe_total}",
        ]
        for report in self.survivors:
            muts = report.minimized or report.mutations
            lines.append(
                f"  SURVIVOR program {report.program} on {report.arch}: "
                + "; ".join(m.describe() for m in muts)
            )
        for report in self.overtight:
            lines.append(
                f"  OVERTIGHT program {report.program} on {report.arch}: "
                + "; ".join(m.describe() for m in report.mutations)
                + f" — {report.error}"
            )
        if self.clean:
            lines.append("  no survivors, no overtight rejections")
        return "\n".join(lines)


def clone_module(module: TranslatedModule) -> TranslatedModule:
    """Deep-copy the instruction stream (fresh MInstr objects with the
    scheduling caches cleared) so mutants never alias the original."""
    instrs = []
    for instr in module.instrs:
        copy = dataclasses.replace(instr)
        copy.creads = None
        copy.cwrites = None
        copy.clat = -1
        copy.cclass = ""
        instrs.append(copy)
    return TranslatedModule(
        spec=module.spec,
        options=module.options,
        instrs=instrs,
        omni_to_native=dict(module.omni_to_native),
        entry_native=module.entry_native,
        program=module.program,
    )


class SfiMutator:
    """Derives candidate mutations from one verified module and applies
    them to clones."""

    def __init__(self, module: TranslatedModule, analysis: SfiAnalysis,
                 policy: SandboxPolicy = DEFAULT_POLICY):
        self.module = module
        self.analysis = analysis
        self.policy = policy
        spec = module.spec
        self.spec = spec
        self.at = spec.reserved["at"]
        self.sp = spec.int_map[15]
        self.protected = sorted(
            reg for name, reg in spec.reserved.items()
            if reg >= 0 and name in (
                "sfi_mask", "sfi_base", "sfi_code_base", "sfi_code_mask",
                "gp",
            )
        )
        self.general = sorted(
            reg for reg in set(spec.int_map.values())
            if reg not in (self.at, self.sp) and reg not in self.protected
        )
        #: indices a mutation must never move: branch targets and legal
        #: indirect entries (moving them would change *which* code a
        #: transfer reaches, i.e. not be index-stable).
        self.pinned = set(module.omni_to_native.values())
        for instr in module.instrs:
            if instr.target >= 0:
                self.pinned.add(instr.target)
        self.pinned.add(module.entry_native)

    # -- site discovery -----------------------------------------------------

    def candidates(self) -> list[Mutation]:
        sites: list[Mutation] = []
        instrs = self.module.instrs
        for index, instr in enumerate(instrs):
            if self._is_consumer(instr):
                sites.extend(self._chain_mutations(index))
            if instr.op in _STORE_OPS and instr.rs == self.sp:
                sites.append(Mutation(
                    "widen-sp-store", index, "unsafe",
                    f"sp store offset {instr.imm} -> 40016",
                    site=index, arg=40016,
                ))
            if (instr.op == "addi" and instr.rd == self.sp
                    and instr.rs == self.sp):
                sites.append(Mutation(
                    "widen-sp", index, "unsafe",
                    f"sp update {instr.imm} -> {1 << 17}",
                    site=index, arg=1 << 17,
                ))
                if self.general:
                    sites.append(Mutation(
                        "redirect-sp", index, "unsafe",
                        f"addi sp -> add sp, sp, r{self.general[0]}",
                        site=index, arg=self.general[0],
                    ))
            sites.extend(self._plain_mutations(index, instr))
        return sites

    def _is_consumer(self, instr) -> bool:
        if instr.op in _STORE_OPS:
            return instr.rs == self.at
        if instr.op in _STOREX_OPS:
            return instr.rd == self.at
        return instr.op in ("jr", "jalr") and instr.rs == self.at

    def _chain(self, consumer: int) -> list[int]:
        """Guard instructions feeding *consumer* (same OmniVM origin,
        ``category="sfi"``, within the scheduling window)."""
        instrs = self.module.instrs
        origin = instrs[consumer].omni_addr
        return [
            j for j in range(max(0, consumer - _CHAIN_WINDOW), consumer)
            if instrs[j].category == "sfi"
            and instrs[j].omni_addr == origin
        ]

    def _chain_mutations(self, consumer: int) -> list[Mutation]:
        instrs = self.module.instrs
        out: list[Mutation] = []
        chain = self._chain(consumer)
        if not chain:
            return out
        start = chain[0]
        for j in chain:
            guard = instrs[j]
            out.append(self._classified(
                Mutation("drop-guard", j, "?", f"{guard.op} -> nop",
                         site=consumer),
                start))
            if guard.op in ("and", "or") and self.general:
                out.append(self._classified(
                    Mutation("retarget-guard", j, "?",
                             f"{guard.op} rt=r{guard.rt} -> "
                             f"r{self.general[0]}",
                             site=consumer, arg=self.general[0]),
                    start))
            elif guard.op in ("andi", "ori"):
                out.append(self._classified(
                    Mutation("retarget-guard", j, "?",
                             f"{guard.op} imm {guard.imm:#x} -> "
                             f"{guard.imm ^ 0x8:#x}",
                             site=consumer, arg=guard.imm ^ 0x8),
                    start))
            swap_ok = (
                j + 1 <= consumer
                and not instrs[j + 1].is_branch()
                and j not in self.pinned
                and j + 1 not in self.pinned
            )
            if swap_ok:
                out.append(self._classified(
                    Mutation("reorder-guard", j, "?",
                             f"swap {guard.op} with {instrs[j + 1].op}",
                             site=consumer),
                    start))
        consumer_instr = instrs[consumer]
        if consumer_instr.op in _STORE_OPS and self.general:
            out.append(Mutation(
                "redirect-store", consumer, "unsafe",
                f"store base r{consumer_instr.rs} -> r{self.general[0]}",
                site=consumer, arg=self.general[0]))
        elif consumer_instr.op in _STOREX_OPS and self.general:
            out.append(Mutation(
                "redirect-storex", consumer, "unsafe",
                f"storex base r{consumer_instr.rs} -> r{self.general[0]}",
                site=consumer, arg=self.general[0]))
        elif consumer_instr.op in ("jr", "jalr") and self.general:
            out.append(Mutation(
                "raw-jump", consumer, "unsafe",
                f"jump through r{self.general[0]} instead of sandboxed at",
                site=consumer, arg=self.general[0]))
        return out

    def _plain_mutations(self, index: int, instr) -> list[Mutation]:
        out: list[Mutation] = []
        if (instr.op in _TWEAKABLE_OPS and instr.category != "sfi"
                and instr.rd >= 0 and instr.rd != self.sp
                and instr.rd not in self.protected):
            out.append(Mutation(
                "tweak-value", index, "safe",
                f"{instr.op} imm {instr.imm} -> {instr.imm ^ 1}",
                site=index, arg=instr.imm ^ 1))
            if self.protected:
                out.append(Mutation(
                    "clobber-dedicated", index, "unsafe",
                    f"{instr.op} rd=r{instr.rd} -> dedicated "
                    f"r{self.protected[0]}",
                    site=index, arg=self.protected[0]))
        if (instr.op in _STORE_OPS or instr.op in _STOREX_OPS):
            value = [r for r in self.general if r != instr.rt]
            if value:
                out.append(Mutation(
                    "tweak-store-value", index, "safe",
                    f"store value r{instr.rt} -> r{value[0]}",
                    site=index, arg=value[0]))
        if instr.op == "nop" and self.general:
            out.append(Mutation(
                "fill-nop", index, "safe",
                f"nop -> addi r{self.general[0]}, r{self.general[0]}, 0",
                site=index, arg=self.general[0]))
        return out

    # -- expected classification -------------------------------------------

    def _classified(self, mutation: Mutation, chain_start: int) -> Mutation:
        """Decide safe/unsafe for a guard-chain mutation by replaying
        the verifier's transfer function over the mutated chain."""
        clone = clone_module(self.module)
        self.apply(clone, mutation)
        expected = ("safe" if self._chain_still_safe(clone, chain_start)
                    else "unsafe")
        return dataclasses.replace(mutation, expected=expected)

    def _chain_still_safe(self, clone: TranslatedModule,
                          start: int) -> bool:
        instrs = clone.instrs
        scratch = self.analysis.in_scratch[start]
        for index in range(start, min(len(instrs),
                                      start + 2 * _CHAIN_WINDOW)):
            instr = instrs[index]
            if self._is_consumer_requirement(instr) is not None:
                return self._requirement_holds(instr, scratch)
            scratch = scratch_step(instr, self.spec, self.policy, scratch)
        # The consumer vanished (can happen when a reorder pushed it
        # out of the window): treat as unsafe so a surviving accept
        # gets flagged rather than silently excused.
        return False

    def _is_consumer_requirement(self, instr):
        if instr.op in _STORE_OPS and instr.rs != self.sp:
            return "store"
        if instr.op in _STOREX_OPS:
            return "storex"
        if instr.op in ("jr", "jalr"):
            return "jump"
        return None

    def _requirement_holds(self, instr, scratch: int) -> bool:
        if instr.op in _STORE_OPS:
            return (instr.rs == self.at
                    and scratch == SCRATCH_DATA_SANDBOXED
                    and instr.imm == 0)
        if instr.op in _STOREX_OPS:
            return (instr.rs == self.spec.reserved.get("sfi_base")
                    and instr.rd == self.at
                    and scratch == SCRATCH_DATA_MASKED)
        return instr.rs == self.at and scratch == SCRATCH_CODE_SANDBOXED

    # -- application --------------------------------------------------------

    def apply(self, clone: TranslatedModule, mutation: Mutation) -> None:
        instr = clone.instrs[mutation.index]
        kind = mutation.kind
        if kind == "drop-guard":
            instr.op = "nop"
            instr.rd = instr.rs = instr.rt = -1
            instr.imm = 0
        elif kind == "retarget-guard":
            if instr.op in ("and", "or"):
                instr.rt = mutation.arg
            else:
                instr.imm = mutation.arg
        elif kind == "reorder-guard":
            i = mutation.index
            clone.instrs[i], clone.instrs[i + 1] = (
                clone.instrs[i + 1], clone.instrs[i])
        elif kind in ("widen-sp", "widen-sp-store", "tweak-value"):
            instr.imm = mutation.arg
        elif kind == "redirect-sp":
            instr.op = "add"
            instr.rt = mutation.arg
            instr.imm = 0
        elif kind in ("redirect-store", "redirect-storex", "raw-jump"):
            instr.rs = mutation.arg
        elif kind == "clobber-dedicated":
            instr.rd = mutation.arg
        elif kind == "tweak-store-value":
            instr.rt = mutation.arg
        elif kind == "fill-nop":
            instr.op = "addi"
            instr.rd = instr.rs = mutation.arg
            instr.rt = -1
            instr.imm = 0
        else:
            raise ValueError(f"unknown mutation kind {kind!r}")
        # The rewritten instruction must never change the CFG shape.
        assert not instr.is_branch() or kind in (
            "raw-jump", "reorder-guard",
        ), mutation


def evaluate_mutant(module: TranslatedModule, mutator: SfiMutator,
                    mutations: list[Mutation]) -> tuple[str, str]:
    """Apply *mutations* to a clone and run the verifier; returns
    (verdict, error-message)."""
    clone = clone_module(module)
    for mutation in mutations:
        mutator.apply(clone, mutation)
    expected = ("unsafe" if any(m.expected == "unsafe" for m in mutations)
                else "safe")
    try:
        verify_sfi(clone)
    except VerifyError as exc:
        return ("killed" if expected == "unsafe" else "overtight"), str(exc)
    return ("survived" if expected == "unsafe" else "accepted"), ""


def _minimize_survivor(module: TranslatedModule, mutator: SfiMutator,
                       mutations: list[Mutation],
                       ) -> tuple[list[Mutation], int]:
    """ddmin a surviving mutant down to a minimal mutation subset that
    still escapes the verifier."""
    items = [("instr", m) for m in mutations]

    def still_survives(stmts) -> bool:
        subset = [m for _tag, m in stmts]
        if not any(m.expected == "unsafe" for m in subset):
            return False
        verdict, _err = evaluate_mutant(module, mutator, subset)
        return verdict == "survived"

    minimized, checks = minimize_program(items, still_survives)
    return [m for _tag, m in minimized], checks


def run_sfi_mutation_fuzz(
    count: int = 20,
    seed: str = "sfi-mutants",
    targets: tuple[str, ...] | None = None,
    mutants_per_module: int = 6,
    max_mutations: int = 3,
    minimize: bool = True,
) -> SfiFuzzSummary:
    """Fuzz the SFI verifier with sandbox-escape mutants.

    Generates *count* seeded programs, translates each for every target
    under the SFI profile, verifies the original, then derives
    *mutants_per_module* mutants of 1..*max_mutations* site-disjoint
    mutations each and checks the verifier's verdict against the
    expected classification.  Deterministic for a given
    (seed, count, targets, mutants_per_module, max_mutations).

    Precondition: the guard *templates* must themselves be safe.  The
    fuzzer's oracle assumes unmutated translator output is correct, so
    a broken template would surface as a storm of baffling mutant
    verdicts; model-checking the templates first turns that into one
    loud failure with a concrete counterexample.  The check is
    memoized, so repeated fuzz runs pay it once."""
    from repro.sfi.modelcheck import assert_templates_safe

    targets = tuple(targets or ARCHITECTURES)
    assert_templates_safe(targets)
    summary = SfiFuzzSummary(seed=seed, programs=count, targets=targets)
    generator = ProgramGenerator(seed)
    for index in range(count):
        program = generator.program(index).build()
        for arch in targets:
            module = translate(program, arch, MOBILE_SFI)
            analysis = verify_sfi(module)  # the original must be clean
            mutator = SfiMutator(module, analysis)
            sites = mutator.candidates()
            if not sites:
                continue
            summary.modules += 1
            rng = random.Random(f"{seed}:{index}:{arch}")
            for _ in range(mutants_per_module):
                wanted = rng.randint(1, max_mutations)
                picked: list[Mutation] = []
                used_sites: set[int] = set()
                for mutation in rng.sample(sites, len(sites)):
                    if mutation.site in used_sites:
                        continue
                    picked.append(mutation)
                    used_sites.add(mutation.site)
                    if len(picked) == wanted:
                        break
                if not picked:
                    continue
                summary.mutants += 1
                expected = ("unsafe"
                            if any(m.expected == "unsafe" for m in picked)
                            else "safe")
                verdict, error = evaluate_mutant(module, mutator, picked)
                report = MutantReport(index, arch, picked, expected,
                                      verdict, error)
                if expected == "unsafe":
                    summary.unsafe_total += 1
                    if verdict == "killed":
                        summary.unsafe_killed += 1
                    else:
                        if minimize:
                            report.minimized, checks = _minimize_survivor(
                                module, mutator, picked)
                            summary.shrink_checks += checks
                        summary.survivors.append(report)
                else:
                    summary.safe_total += 1
                    if verdict == "accepted":
                        summary.safe_accepted += 1
                    else:
                        summary.overtight.append(report)
    if metrics.active():
        metrics.count("difftest.sfi.modules", summary.modules)
        metrics.count("difftest.sfi.mutants", summary.mutants)
        metrics.count("difftest.sfi.killed", summary.unsafe_killed)
        metrics.count("difftest.sfi.survivors", len(summary.survivors))
        metrics.count("difftest.sfi.accepted", summary.safe_accepted)
        metrics.count("difftest.sfi.overtight", len(summary.overtight))
        metrics.count("difftest.sfi.shrink_checks", summary.shrink_checks)
    return summary
