"""Cross-executor harness: one program, five executions, one verdict.

Each generated program runs on the reference interpreter (the semantic
oracle) and on every simulated target, under the default mobile profile
(SFI + scheduling + peepholes).  The harness then compares:

* the **outcome** — clean exit code, or the trap/violation that ended the
  run (kind plus payload; engine-internal scratch state is not compared
  on exceptional paths, where a target may legitimately stop mid-expansion);
* the **final register files** — all OmniVM integer registers except
  ``r14`` (the return sentinel differs between engines by design) and
  all FP registers, compared bit-exactly through ``f64_to_bits``;
* a **memory digest** — SHA-256 over the data and heap segments.

Divergent programs are shrunk by :mod:`repro.difftest.minimize` and
reported with both the original and the minimized listing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable

from repro.engine import ARCHITECTURES, Engine, INTERPRETER, RunConfig
from repro.errors import (
    AccessViolation,
    FuelExhausted,
    SandboxViolation,
    VMRuntimeError,
    VMTrap,
)
from repro.difftest.generator import GenProgram, ProgramGenerator
from repro.difftest.minimize import minimize_program
from repro.omnivm.linker import LinkedProgram
from repro.utils.bits import f64_to_bits

#: OmniVM integer registers included in state comparison.  r14 (link) is
#: excluded: the interpreter's return sentinel is 0 while translated
#: code uses the SFI RETURN_SENTINEL, an intentional asymmetry.
COMPARED_INT_REGS = tuple(i for i in range(16) if i != 14)

#: Default per-run budgets.  Generated programs terminate structurally;
#: fuel is a backstop.  Targets get more headroom because translation
#: expands each OmniVM instruction into several native ones.
DEFAULT_FUEL = 1_000_000
TARGET_FUEL_FACTOR = 20

#: Small module segments keep per-program memory digests cheap.
DEFAULT_SEGMENT_SIZE = 1 << 18


@dataclass
class Outcome:
    """Observable result of running one program on one executor."""

    kind: str  # "exit" | "trap" | "violation" | "vmerror" | "sandbox" | "fuel"
    detail: str = ""
    exit_code: int | None = None
    regs: tuple | None = None
    fregs: tuple | None = None
    digest: str | None = None

    def describe(self) -> str:
        if self.kind == "exit":
            return f"exit code={self.exit_code} digest={self.digest}"
        return f"{self.kind} ({self.detail})"


@dataclass
class Divergence:
    """One program on which an executor disagreed with the interpreter."""

    index: int
    seed: str
    target: str
    differences: list[str]
    listing: str
    minimized_listing: str | None = None
    minimized_differences: list[str] | None = None
    minimized_instrs: int | None = None

    def report(self) -> str:
        lines = [
            f"divergence: program {self.index} (seed {self.seed!r}) "
            f"on target {self.target}",
        ]
        lines += [f"  - {diff}" for diff in self.differences]
        if self.minimized_listing is not None:
            lines.append(
                f"  minimized to {self.minimized_instrs} instructions:"
            )
            for row in self.minimized_listing.splitlines():
                lines.append(f"    {row}")
            for diff in self.minimized_differences or ():
                lines.append(f"    -> {diff}")
        else:
            lines.append("  program:")
            for row in self.listing.splitlines():
                lines.append(f"    {row}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "seed": self.seed,
            "target": self.target,
            "differences": self.differences,
            "listing": self.listing,
            "minimized_listing": self.minimized_listing,
            "minimized_differences": self.minimized_differences,
        }


@dataclass
class DiffSummary:
    """Aggregate result of a difftest run."""

    seed: str
    programs: int = 0
    executions: int = 0
    skipped: int = 0
    shrink_steps: int = 0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "programs": self.programs,
            "executions": self.executions,
            "skipped": self.skipped,
            "shrink_steps": self.shrink_steps,
            "divergence_count": len(self.divergences),
            "divergences": [d.to_dict() for d in self.divergences],
        }

    def render(self) -> str:
        verdict = "CLEAN" if self.clean else (
            f"{len(self.divergences)} DIVERGENCE(S)"
        )
        return (
            f"difftest: {self.programs} programs x "
            f"{self.executions // max(self.programs, 1)} executors "
            f"(seed {self.seed!r}, {self.skipped} skipped, "
            f"{self.shrink_steps} shrink steps) -> {verdict}"
        )


def memory_digest(memory) -> str:
    """SHA-256 over the module's writable data+heap segments."""
    digest = hashlib.sha256()
    for name in ("data", "heap"):
        digest.update(memory.segment_named(name).data)
    return digest.hexdigest()[:16]


def _interp_state(module) -> tuple[tuple, tuple]:
    regs = tuple(module.vm.state.regs[i] for i in COMPARED_INT_REGS)
    fregs = tuple(f64_to_bits(f) for f in module.vm.state.fregs)
    return regs, fregs


def _native_state(module) -> tuple[tuple, tuple]:
    machine = module.machine
    int_map = machine.spec.int_map
    fp_map = machine.spec.fp_map
    regs = tuple(machine.regs[int_map[i]] for i in COMPARED_INT_REGS)
    fregs = tuple(f64_to_bits(machine.fregs[fp_map[i]]) for i in range(16))
    return regs, fregs


def run_one(
    engine: Engine,
    program: LinkedProgram,
    executor: str,
    fuel: int = DEFAULT_FUEL,
    segment_size: int = DEFAULT_SEGMENT_SIZE,
) -> Outcome:
    """Run *program* on *executor* and capture its observable outcome.

    Pipeline errors (verification, translation, linking) propagate —
    they indicate a generator or toolchain bug, not a semantic
    divergence.
    """
    if executor != INTERPRETER:
        fuel *= TARGET_FUEL_FACTOR
    module = engine.load(program, target=executor,
                         config=RunConfig(fuel=fuel,
                                          segment_size=segment_size))
    try:
        code = module.run()
    except VMTrap as trap:
        return Outcome("trap", f"code={trap.code}")
    except AccessViolation as violation:
        return Outcome(
            "violation", f"{violation.kind}@{violation.address:#010x}"
        )
    except SandboxViolation as violation:
        return Outcome("sandbox", str(violation))
    except VMRuntimeError as error:
        return Outcome("vmerror", str(error))
    except FuelExhausted:
        return Outcome("fuel")
    if executor == INTERPRETER:
        regs, fregs = _interp_state(module)
    else:
        regs, fregs = _native_state(module)
    return Outcome("exit", exit_code=code, regs=regs, fregs=fregs,
                   digest=memory_digest(module.memory))


def compare_outcomes(reference: Outcome, observed: Outcome) -> list[str]:
    """Field-level differences of *observed* against *reference*."""
    if reference.kind != observed.kind or (
        reference.kind != "exit" and reference.detail != observed.detail
    ):
        return [
            f"outcome: interpreter {reference.describe()} vs "
            f"target {observed.describe()}"
        ]
    if reference.kind != "exit":
        return []
    diffs: list[str] = []
    if reference.exit_code != observed.exit_code:
        diffs.append(
            f"exit code: {reference.exit_code} vs {observed.exit_code}"
        )
    for position, omni_reg in enumerate(COMPARED_INT_REGS):
        ref, got = reference.regs[position], observed.regs[position]
        if ref != got:
            diffs.append(f"int reg r{omni_reg}: {ref:#010x} vs {got:#010x}")
    for index in range(16):
        ref, got = reference.fregs[index], observed.fregs[index]
        if ref != got:
            diffs.append(f"fp reg f{index}: {ref:#018x} vs {got:#018x}")
    if reference.digest != observed.digest:
        diffs.append(
            f"memory digest: {reference.digest} vs {observed.digest}"
        )
    return diffs


def _diff_categories(diffs: list[str]) -> frozenset:
    return frozenset(diff.split(":", 1)[0] for diff in diffs)


def run_difftest(
    count: int = 500,
    seed: str | int = "difftest",
    targets: tuple[str, ...] | None = None,
    engine: Engine | None = None,
    minimize: bool = True,
    fuel: int = DEFAULT_FUEL,
    segment_size: int = DEFAULT_SEGMENT_SIZE,
    progress: Callable[[int, DiffSummary], None] | None = None,
) -> DiffSummary:
    """Generate *count* programs and cross-execute each on the
    interpreter and *targets* (default: all four architectures).

    Counters ``difftest.programs``, ``difftest.divergences`` and
    ``difftest.shrink_steps`` accumulate on the engine's metrics
    collector.
    """
    targets = tuple(targets) if targets else tuple(ARCHITECTURES)
    engine = engine or Engine(cache=False)
    generator = ProgramGenerator(seed)
    summary = DiffSummary(seed=str(seed))
    for index in range(count):
        gen = generator.program(index)
        program = gen.build()
        reference = run_one(engine, program, INTERPRETER, fuel, segment_size)
        summary.programs += 1
        summary.executions += 1
        if engine.metrics is not None:
            engine.metrics.count("difftest.programs")
        if reference.kind == "fuel":
            # The oracle itself timed out: nothing to compare against.
            summary.skipped += 1
            continue
        for target in targets:
            observed = run_one(engine, program, target, fuel, segment_size)
            summary.executions += 1
            diffs = compare_outcomes(reference, observed)
            if not diffs:
                continue
            divergence = Divergence(
                index=index, seed=str(seed), target=target,
                differences=diffs, listing=gen.listing(),
            )
            if engine.metrics is not None:
                engine.metrics.count("difftest.divergences")
            if minimize:
                _minimize_divergence(
                    divergence, gen, engine, target, diffs,
                    fuel, segment_size, summary,
                )
            summary.divergences.append(divergence)
        if progress is not None:
            progress(index, summary)
    return summary


def _minimize_divergence(
    divergence: Divergence,
    gen: GenProgram,
    engine: Engine,
    target: str,
    original_diffs: list[str],
    fuel: int,
    segment_size: int,
    summary: DiffSummary,
) -> None:
    """Shrink *gen* while it still shows the same class of divergence."""
    from repro.errors import ReproError

    wanted = _diff_categories(original_diffs)
    steps = [0]

    def still_diverges(stmts: list) -> bool:
        steps[0] += 1
        candidate = GenProgram(gen.name + "_min", list(stmts), gen.data)
        try:
            program = candidate.build()
            reference = run_one(engine, program, INTERPRETER, fuel,
                                segment_size)
            if reference.kind == "fuel":
                return False
            observed = run_one(engine, program, target, fuel, segment_size)
        except ReproError:
            return False
        diffs = compare_outcomes(reference, observed)
        # Require the same *class* of divergence so shrinking cannot
        # wander onto an unrelated (e.g. artificially truncated) repro.
        return bool(diffs) and bool(_diff_categories(diffs) & wanted)

    reduced, _ = minimize_program(gen.stmts, still_diverges)
    shrunk = GenProgram(gen.name + "_min", reduced, gen.data)
    final_program = shrunk.build()
    reference = run_one(engine, final_program, INTERPRETER, fuel,
                        segment_size)
    observed = run_one(engine, final_program, target, fuel, segment_size)
    divergence.minimized_listing = shrunk.listing()
    divergence.minimized_differences = compare_outcomes(reference, observed)
    divergence.minimized_instrs = len(shrunk.instructions())
    summary.shrink_steps += steps[0]
    if engine.metrics is not None:
        engine.metrics.count("difftest.shrink_steps", steps[0])
