"""Differential-execution testing of OmniVM against the target simulators.

The paper's central claim is that load-time translation preserves OmniVM
semantics on every target.  This package makes that claim continuously
testable: a seeded generator produces verifier-valid OmniVM programs, a
harness cross-executes each one on the reference interpreter and all four
simulated targets, and any disagreement in final register files, memory
digest, or trap outcome is shrunk to a minimal repro by the minimizer.

The package also fuzzes the *other* trust boundary: the SFI verifier.
:mod:`repro.difftest.sfi_mutator` mutates verified translations with
seeded sandbox-escape mutations (dropped/reordered/retargeted guards,
widened sp updates, redirected store bases, clobbered dedicated
registers) and demands a 100% kill-rate on unsafe mutants while
behavior-preserving mutants keep verifying.

Entry points:

* :func:`repro.difftest.harness.run_difftest` — the programmatic API;
* :func:`repro.difftest.sfi_mutator.run_sfi_mutation_fuzz` — the SFI
  verifier fuzzer (``omnicc difftest --sfi``);
* ``omnicc difftest`` — the CLI front end;
* ``benchmarks/difftest_sweep.py`` — long-running sweeps with JSON output.
"""

from repro.difftest.generator import GenProgram, ProgramGenerator
from repro.difftest.harness import (
    DiffSummary,
    Divergence,
    Outcome,
    run_difftest,
)
from repro.difftest.minimize import minimize_program
from repro.difftest.sfi_mutator import (
    Mutation,
    MutantReport,
    SfiFuzzSummary,
    SfiMutator,
    run_sfi_mutation_fuzz,
)

__all__ = [
    "DiffSummary",
    "Divergence",
    "GenProgram",
    "MutantReport",
    "Mutation",
    "Outcome",
    "ProgramGenerator",
    "SfiFuzzSummary",
    "SfiMutator",
    "minimize_program",
    "run_difftest",
    "run_sfi_mutation_fuzz",
]
