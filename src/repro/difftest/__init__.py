"""Differential-execution testing of OmniVM against the target simulators.

The paper's central claim is that load-time translation preserves OmniVM
semantics on every target.  This package makes that claim continuously
testable: a seeded generator produces verifier-valid OmniVM programs, a
harness cross-executes each one on the reference interpreter and all four
simulated targets, and any disagreement in final register files, memory
digest, or trap outcome is shrunk to a minimal repro by the minimizer.

Entry points:

* :func:`repro.difftest.harness.run_difftest` — the programmatic API;
* ``omnicc difftest`` — the CLI front end;
* ``benchmarks/difftest_sweep.py`` — long-running sweeps with JSON output.
"""

from repro.difftest.generator import GenProgram, ProgramGenerator
from repro.difftest.harness import (
    DiffSummary,
    Divergence,
    Outcome,
    run_difftest,
)
from repro.difftest.minimize import minimize_program

__all__ = [
    "DiffSummary",
    "Divergence",
    "GenProgram",
    "Outcome",
    "ProgramGenerator",
    "minimize_program",
    "run_difftest",
]
